//! Cross-version trace parity: one recorded execution, archived as
//! v3 text and v4 binary, re-judged by every detector — identical
//! conflict sets and exit-code verdicts regardless of the container
//! format, sequentially or region-sharded over worker threads. Also
//! promotes the old CI awk v3→v2 lowering hack into a Rust test on
//! the same `lower_ranges` path `sharc trace convert --lower` uses.

use sharc::prelude::*;
use std::path::PathBuf;

fn tmp(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(name)
}

/// One stunnel fleet run, emitted as v3 text and v4 binary; both
/// files decode to the recorded events exactly, all three detectors
/// reach the same conflicts through either container (and through
/// parallel replay), the exit-code split is the documented one
/// (sharc clean, eraser false-positive), and the binary archive
/// costs at most ¼ the bytes of the text one on this real trace.
#[test]
fn stunnel_text_and_binary_archives_replay_identically() {
    let (run, trace) = native_trace(NativeWorkload::Stunnel);
    assert!(run.threads > 63, "fleet width: got {} threads", run.threads);
    assert!(!trace.is_empty());

    let text_path = tmp("parity-stunnel.trace");
    let bin_path = tmp("parity-stunnel.sbt");
    write_trace_file(&text_path, &trace).expect("text written");
    write_trace_file(&bin_path, &trace).expect("binary written");

    // Both containers hold the identical event sequence.
    let from_text = read_trace_file(&text_path).expect("text parses");
    let from_bin = read_trace_file(&bin_path).expect("binary decodes");
    assert_eq!(from_text, trace, "text round trip lost events");
    assert_eq!(from_bin, trace, "binary round trip lost events");

    // The archive claim on a real recorded run, not just the bench's
    // synthetic trace.
    let text_bytes = std::fs::metadata(&text_path).expect("text stat").len();
    let bin_bytes = std::fs::metadata(&bin_path).expect("binary stat").len();
    assert!(
        bin_bytes * 4 <= text_bytes,
        "binary must be at most 1/4 the bytes of text ({bin_bytes} vs {text_bytes})"
    );

    // And `trace info`'s summary agrees across formats.
    let ti = trace_file_info(&text_path).expect("text info");
    let bi = trace_file_info(&bin_path).expect("binary info");
    assert_eq!((ti.format, ti.version), ("text", 3));
    assert_eq!((bi.format, bi.version), ("binary", 4));
    assert_eq!(ti.events, trace.len());
    assert_eq!(bi.events, trace.len());
    assert_eq!(ti.counts, bi.counts);
    assert_eq!(ti.max_tid, bi.max_tid);
    assert_eq!(ti.granule_span, bi.granule_span);

    for kind in [DetectorKind::Sharc, DetectorKind::Eraser, DetectorKind::Vc] {
        let (name, from_memory) = judge_trace(&trace, kind);
        let (_, via_text) = judge_trace(&from_text, kind);
        let (_, via_bin) = judge_trace(&from_bin, kind);
        assert_eq!(via_text, from_memory, "{name}: text archive diverged");
        assert_eq!(via_bin, from_memory, "{name}: binary archive diverged");
        for jobs in [2, 4] {
            let (_, par) = sharc::judge_trace_jobs(&from_bin, kind, jobs);
            assert_eq!(
                par, from_memory,
                "{name}: parallel replay (jobs={jobs}) diverged"
            );
        }
        // Exit-code parity with the CLI smoke: sharc accepts the
        // session hand-offs, the lockset baseline must not.
        match kind {
            DetectorKind::Sharc => assert!(
                from_memory.is_empty(),
                "sharc must accept the stunnel hand-offs: {from_memory:?}"
            ),
            DetectorKind::Eraser => assert!(
                !from_memory.is_empty(),
                "eraser must false-positive on the unlocked hand-offs"
            ),
            DetectorKind::Vc => {}
        }
    }
}

/// The v1 lowering the CI pipeline used to hand-roll with awk, as a
/// real test: a recorded pbzip2 trace and its `lower_ranges`
/// expansion (every range event per-granule — the v1 vocabulary,
/// what `sharc trace convert --lower` writes) produce identical
/// conflicts under every detector, through the file round trip too.
#[test]
fn pbzip2_v1_lowering_replays_identically() {
    let (_run, trace) = native_trace(NativeWorkload::Pbzip2);
    assert!(
        trace.iter().any(|e| matches!(
            e,
            sharc::checker::CheckEvent::RangeCast { .. }
                | sharc::checker::CheckEvent::RangeFree { .. }
        )),
        "pbzip2 must record ranged hand-offs for the lowering to mean anything"
    );

    let lowered = sharc::checker::lower_ranges(&trace);
    assert!(
        !lowered.iter().any(|e| matches!(
            e,
            sharc::checker::CheckEvent::RangeRead { .. }
                | sharc::checker::CheckEvent::RangeWrite { .. }
                | sharc::checker::CheckEvent::RangeCast { .. }
                | sharc::checker::CheckEvent::RangeFree { .. }
        )),
        "lowering leaves only per-granule events"
    );

    let path = tmp("parity-pbzip2-v1.trace");
    write_trace_file(&path, &lowered).expect("lowered trace written");
    let reread = read_trace_file(&path).expect("lowered trace parses");
    assert_eq!(reread, lowered, "lowered round trip lost events");

    for kind in [DetectorKind::Sharc, DetectorKind::Eraser, DetectorKind::Vc] {
        let (name, original) = judge_trace(&trace, kind);
        let (_, via_lowered) = judge_trace(&reread, kind);
        assert_eq!(
            via_lowered, original,
            "{name}: v1 lowering changed the verdict"
        );
    }
    // The documented exit-code split survives the lowering.
    let (_, sharc_v) = judge_trace(&reread, DetectorKind::Sharc);
    let (_, eraser_v) = judge_trace(&reread, DetectorKind::Eraser);
    assert!(sharc_v.is_empty(), "sharc accepts the lowered hand-offs");
    assert!(!eraser_v.is_empty(), "eraser still false-positives");
}
