//! Property tests for the §3.4 soundness theorem: randomized
//! well-typed core-calculus programs, every interleaving explored,
//! verified against an oracle independent of the inserted checks.
//!
//! The theorem: *private cells are only accessed by the thread that
//! owns them*, and *no two threads race on a dynamic cell* (unless an
//! intervening sharing cast changed its mode).

use proptest::prelude::*;
use sharc::interp::formal::*;

/// The fixed typing environment the generator draws from:
/// dynamic globals `g` (int) and `h` (int), plus per-thread locals
/// `a` (private int), `x` (private ref dynamic int), and
/// `y` (private ref private int).
fn globals() -> Vec<(String, FType)> {
    vec![
        ("g".into(), FType::int(Mode::Dynamic)),
        ("h".into(), FType::int(Mode::Dynamic)),
    ]
}

fn locals() -> Vec<(String, FType)> {
    vec![
        ("a".into(), FType::int(Mode::Private)),
        (
            "x".into(),
            FType::reft(Mode::Private, FType::int(Mode::Dynamic)),
        ),
        (
            "y".into(),
            FType::reft(Mode::Private, FType::int(Mode::Private)),
        ),
    ]
}

/// A menu of well-typed statements over that environment.
fn stmt_strategy(can_spawn: bool) -> impl Strategy<Value = FStmt> {
    let choices = prop_oneof![
        // writes to dynamic globals
        Just(FStmt::Assign(LVal::Var("g".into()), RExpr::Const(1))),
        Just(FStmt::Assign(LVal::Var("h".into()), RExpr::Const(2))),
        // reads of dynamic globals into a private local
        Just(FStmt::Assign(
            LVal::Var("a".into()),
            RExpr::L(LVal::Var("g".into()))
        )),
        Just(FStmt::Assign(
            LVal::Var("a".into()),
            RExpr::L(LVal::Var("h".into()))
        )),
        // private local work
        Just(FStmt::Assign(LVal::Var("a".into()), RExpr::Const(7))),
        // allocate a dynamic cell, write through the reference
        Just(FStmt::Assign(
            LVal::Var("x".into()),
            RExpr::New(FType::int(Mode::Dynamic))
        )),
        Just(FStmt::Assign(LVal::Deref("x".into()), RExpr::Const(3))),
        // allocate a private cell, write through it
        Just(FStmt::Assign(
            LVal::Var("y".into()),
            RExpr::New(FType::int(Mode::Private))
        )),
        Just(FStmt::Assign(LVal::Deref("y".into()), RExpr::Const(4))),
        // sharing cast: x's dynamic referent becomes private in y
        Just(FStmt::Assign(
            LVal::Var("y".into()),
            RExpr::Scast(FType::int(Mode::Private), "x".into())
        )),
        Just(FStmt::Skip),
    ];
    if can_spawn {
        prop_oneof![choices, Just(FStmt::Spawn("helper".into()))].boxed()
    } else {
        choices.boxed()
    }
}

fn program_strategy() -> impl Strategy<Value = FProgram> {
    let main_body = proptest::collection::vec(stmt_strategy(true), 1..4);
    let helper_body = proptest::collection::vec(stmt_strategy(false), 1..4);
    (main_body, helper_body).prop_map(|(mb, hb)| FProgram {
        globals: globals(),
        threads: vec![
            ThreadDef {
                name: "main".into(),
                locals: locals(),
                body: mb,
            },
            ThreadDef {
                name: "helper".into(),
                locals: locals(),
                body: hb,
            },
        ],
            n_locks: 0,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The soundness theorem holds on every interleaving of every
    /// generated well-typed program.
    #[test]
    fn checked_programs_never_violate_soundness(p in program_strategy()) {
        let cp = typecheck(&p).expect("generator emits well-typed programs");
        let (violations, states) = explore(&cp, 150_000);
        let real: Vec<_> = violations
            .iter()
            .filter(|v| !matches!(v, Violation::Budget))
            .collect();
        prop_assert!(real.is_empty(), "violations {real:?} in {states} states");
    }

    /// The runtime checks are load-bearing: when a generated program
    /// contains a cross-thread dynamic write pair, stripping the
    /// guards lets the oracle observe the race in some interleaving.
    #[test]
    fn guards_are_load_bearing(p in program_strategy()) {
        // Force a cross-thread write/write pair on global g: the
        // spawn goes first in main, both threads end with a g write.
        // Deref statements are dropped so a null dereference cannot
        // kill a thread before it reaches its racing write.
        let mut p = p;
        for t in &mut p.threads {
            t.body.retain(|s| !matches!(
                s,
                FStmt::Assign(LVal::Deref(_), _) | FStmt::Assign(_, RExpr::L(LVal::Deref(_)))
            ));
            t.body.push(FStmt::Assign(LVal::Var("g".into()), RExpr::Const(9)));
        }
        p.threads[0].body.retain(|s| !matches!(s, FStmt::Spawn(_)));
        p.threads[0].body.insert(0, FStmt::Spawn("helper".into()));

        let checked = typecheck(&p).expect("well-typed");
        let (violations, _) = explore(&strip_guards(&checked), 150_000);
        prop_assert!(
            violations.iter().any(|v| matches!(v, Violation::DynamicRace { .. })),
            "stripped guards must expose the race"
        );
        // And with guards intact the same program is sound.
        let (violations, _) = explore(&checked, 150_000);
        let real: Vec<_> = violations
            .iter()
            .filter(|v| !matches!(v, Violation::Budget))
            .collect();
        prop_assert!(real.is_empty(), "{real:?}");
    }
}

#[test]
fn exhaustive_exploration_covers_many_interleavings() {
    let p = FProgram {
        globals: globals(),
        threads: vec![
            ThreadDef {
                name: "main".into(),
                locals: locals(),
                body: vec![
                    FStmt::Spawn("helper".into()),
                    FStmt::Assign(LVal::Var("a".into()), RExpr::L(LVal::Var("g".into()))),
                    FStmt::Assign(LVal::Var("a".into()), RExpr::L(LVal::Var("h".into()))),
                ],
            },
            ThreadDef {
                name: "helper".into(),
                locals: locals(),
                body: vec![
                    FStmt::Assign(LVal::Var("a".into()), RExpr::L(LVal::Var("g".into()))),
                    FStmt::Assign(LVal::Var("a".into()), RExpr::L(LVal::Var("h".into()))),
                ],
            },
        ],
            n_locks: 0,
        };
    let cp = typecheck(&p).unwrap();
    let (violations, states) = explore(&cp, 1_000_000);
    assert!(violations.is_empty(), "{violations:?}");
    assert!(states > 20, "interleavings explored: {states}");
}
