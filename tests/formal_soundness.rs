//! Property tests for the §3.4 soundness theorem: randomized
//! well-typed core-calculus programs, every interleaving explored,
//! verified against an oracle independent of the inserted checks.
//!
//! The theorem: *private cells are only accessed by the thread that
//! owns them*, and *no two threads race on a dynamic cell* (unless an
//! intervening sharing cast changed its mode).
//!
//! Runs on the sharc-testkit property harness. Base seed comes from
//! `SHARC_TEST_SEED`; failing case seeds are persisted to
//! `tests/formal_soundness.regressions` and replayed before random
//! cases. Historical proptest failures are preserved as the explicit
//! `regression_*` tests below.

use sharc::interp::formal::*;
use sharc_testkit::gen::{self, Gen};
use sharc_testkit::prop::Config;
use sharc_testkit::{forall, prop_assert};

/// The fixed typing environment the generator draws from:
/// dynamic globals `g` (int) and `h` (int), plus per-thread locals
/// `a` (private int), `x` (private ref dynamic int), and
/// `y` (private ref private int).
fn globals() -> Vec<(String, FType)> {
    vec![
        ("g".into(), FType::int(Mode::Dynamic)),
        ("h".into(), FType::int(Mode::Dynamic)),
    ]
}

fn locals() -> Vec<(String, FType)> {
    vec![
        ("a".into(), FType::int(Mode::Private)),
        (
            "x".into(),
            FType::reft(Mode::Private, FType::int(Mode::Dynamic)),
        ),
        (
            "y".into(),
            FType::reft(Mode::Private, FType::int(Mode::Private)),
        ),
    ]
}

/// A menu of well-typed statements over that environment. Shrinks
/// toward the earlier (simpler) entries.
fn stmt_gen(can_spawn: bool) -> Gen<FStmt> {
    let mut choices = vec![
        // a no-op (the shrink target)
        FStmt::Skip,
        // writes to dynamic globals
        FStmt::Assign(LVal::Var("g".into()), RExpr::Const(1)),
        FStmt::Assign(LVal::Var("h".into()), RExpr::Const(2)),
        // reads of dynamic globals into a private local
        FStmt::Assign(LVal::Var("a".into()), RExpr::L(LVal::Var("g".into()))),
        FStmt::Assign(LVal::Var("a".into()), RExpr::L(LVal::Var("h".into()))),
        // private local work
        FStmt::Assign(LVal::Var("a".into()), RExpr::Const(7)),
        // allocate a dynamic cell, write through the reference
        FStmt::Assign(LVal::Var("x".into()), RExpr::New(FType::int(Mode::Dynamic))),
        FStmt::Assign(LVal::Deref("x".into()), RExpr::Const(3)),
        // allocate a private cell, write through it
        FStmt::Assign(LVal::Var("y".into()), RExpr::New(FType::int(Mode::Private))),
        FStmt::Assign(LVal::Deref("y".into()), RExpr::Const(4)),
        // sharing cast: x's dynamic referent becomes private in y
        FStmt::Assign(
            LVal::Var("y".into()),
            RExpr::Scast(FType::int(Mode::Private), "x".into()),
        ),
    ];
    if can_spawn {
        choices.push(FStmt::Spawn("helper".into()));
    }
    gen::choose(choices)
}

fn make_program(main_body: Vec<FStmt>, helper_body: Vec<FStmt>) -> FProgram {
    FProgram {
        globals: globals(),
        threads: vec![
            ThreadDef {
                name: "main".into(),
                locals: locals(),
                body: main_body,
            },
            ThreadDef {
                name: "helper".into(),
                locals: locals(),
                body: helper_body,
            },
        ],
        n_locks: 0,
    }
}

fn program_gen() -> Gen<FProgram> {
    gen::pair(
        gen::vec_of(stmt_gen(true), 1..4),
        gen::vec_of(stmt_gen(false), 1..4),
    )
    .map(|p| make_program(p.0.clone(), p.1.clone()))
}

fn cfg() -> Config {
    Config::from_env()
        .with_cases(64)
        .persist_to("tests/formal_soundness.regressions")
}

/// Asserts the soundness theorem on every interleaving of `p`.
/// Shared by the property and the explicit regression cases.
fn assert_sound(p: &FProgram) -> Result<(), String> {
    let cp = typecheck(p).expect("generator emits well-typed programs");
    let (violations, states) = explore(&cp, 150_000);
    let real: Vec<_> = violations
        .iter()
        .filter(|v| !matches!(v, Violation::Budget))
        .collect();
    prop_assert!(real.is_empty(), "violations {real:?} in {states} states");
    Ok(())
}

/// The soundness theorem holds on every interleaving of every
/// generated well-typed program.
#[test]
fn checked_programs_never_violate_soundness() {
    forall!(
        "checked_programs_never_violate_soundness",
        cfg(),
        program_gen(),
        |p| {
            assert_sound(p)?;
        }
    );
}

/// The runtime checks are load-bearing: when a generated program
/// contains a cross-thread dynamic write pair, stripping the guards
/// lets the oracle observe the race in some interleaving.
#[test]
fn guards_are_load_bearing() {
    forall!("guards_are_load_bearing", cfg(), program_gen(), |p| {
        // Force a cross-thread write/write pair on global g: the
        // spawn goes first in main, both threads end with a g write.
        // Deref statements are dropped so a null dereference cannot
        // kill a thread before it reaches its racing write.
        let mut p = p.clone();
        for t in &mut p.threads {
            t.body.retain(|s| {
                !matches!(
                    s,
                    FStmt::Assign(LVal::Deref(_), _) | FStmt::Assign(_, RExpr::L(LVal::Deref(_)))
                )
            });
            t.body
                .push(FStmt::Assign(LVal::Var("g".into()), RExpr::Const(9)));
        }
        p.threads[0].body.retain(|s| !matches!(s, FStmt::Spawn(_)));
        p.threads[0].body.insert(0, FStmt::Spawn("helper".into()));

        let checked = typecheck(&p).expect("well-typed");
        let (violations, _) = explore(&strip_guards(&checked), 150_000);
        prop_assert!(
            violations
                .iter()
                .any(|v| matches!(v, Violation::DynamicRace { .. })),
            "stripped guards must expose the race"
        );
        // And with guards intact the same program is sound.
        let (violations, _) = explore(&checked, 150_000);
        let real: Vec<_> = violations
            .iter()
            .filter(|v| !matches!(v, Violation::Budget))
            .collect();
        prop_assert!(real.is_empty(), "{real:?}");
    });
}

// ---------------------------------------------------------------
// Historical proptest regression seeds, re-encoded as explicit
// cases (formerly tests/formal_soundness.proptest-regressions).
// Each is the shrunk program a past run found, re-run against the
// full soundness oracle.
// ---------------------------------------------------------------

/// proptest seed 1307...423a: a dynamic-global write in main racing
/// with a helper read of the same global.
#[test]
fn regression_dynamic_write_vs_read() {
    let p = make_program(
        vec![FStmt::Assign(LVal::Var("g".into()), RExpr::Const(1))],
        vec![FStmt::Assign(
            LVal::Var("a".into()),
            RExpr::L(LVal::Var("g".into())),
        )],
    );
    assert_sound(&p).unwrap();
}

/// proptest seed 781c...09a9: main writes g then spawns a helper that
/// reads and rewrites g — a write/write pair across the spawn edge.
#[test]
fn regression_write_spawn_write() {
    let p = make_program(
        vec![
            FStmt::Assign(LVal::Var("g".into()), RExpr::Const(1)),
            FStmt::Spawn("helper".into()),
        ],
        vec![
            FStmt::Assign(LVal::Var("a".into()), RExpr::L(LVal::Var("g".into()))),
            FStmt::Assign(LVal::Var("g".into()), RExpr::Const(1)),
        ],
    );
    assert_sound(&p).unwrap();
}

/// proptest seed d48e...7d10: helper dereferences an unallocated
/// dynamic ref (null) before writing the global — exercises the
/// thread-kill path during exploration.
#[test]
fn regression_null_deref_then_write() {
    let p = make_program(
        vec![
            FStmt::Assign(LVal::Var("g".into()), RExpr::Const(1)),
            FStmt::Spawn("helper".into()),
        ],
        vec![
            FStmt::Assign(LVal::Deref("x".into()), RExpr::Const(3)),
            FStmt::Assign(LVal::Var("g".into()), RExpr::Const(1)),
        ],
    );
    assert_sound(&p).unwrap();
}

#[test]
fn exhaustive_exploration_covers_many_interleavings() {
    let p = make_program(
        vec![
            FStmt::Spawn("helper".into()),
            FStmt::Assign(LVal::Var("a".into()), RExpr::L(LVal::Var("g".into()))),
            FStmt::Assign(LVal::Var("a".into()), RExpr::L(LVal::Var("h".into()))),
        ],
        vec![
            FStmt::Assign(LVal::Var("a".into()), RExpr::L(LVal::Var("g".into()))),
            FStmt::Assign(LVal::Var("a".into()), RExpr::L(LVal::Var("h".into()))),
        ],
    );
    let cp = typecheck(&p).unwrap();
    let (violations, states) = explore(&cp, 1_000_000);
    assert!(violations.is_empty(), "{violations:?}");
    assert!(states > 20, "interleavings explored: {states}");
}
