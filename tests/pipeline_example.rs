//! Integration test reproducing the paper's §2.1 walkthrough
//! end-to-end: Figure 1's pipeline, the conflict reports, the
//! inferred annotations of Figure 2, and the clean annotated run.

use sharc::prelude::*;

const UNANNOTATED: &str = r#"
typedef struct stage {
    struct stage * next;
    cond * cv;
    mutex * mut;
    char * sdata;
    void (* fun)(char * fdata);
    int nitems;
} stage_t;

void process(char * fdata) {
    fdata[0] = fdata[0] + 1;
}

void thrFunc(stage_t * d) {
    stage_t * S = d;
    stage_t * nextS = S->next;
    char * ldata;
    int handled;
    handled = 0;
    while (handled < S->nitems) {
        mutex_lock(S->mut);
        while (S->sdata == NULL)
            cond_wait(S->cv, S->mut);
        ldata = S->sdata;
        S->sdata = NULL;
        cond_signal(S->cv);
        mutex_unlock(S->mut);
        S->fun(ldata);
        if (nextS) {
            mutex_lock(nextS->mut);
            while (nextS->sdata)
                cond_wait(nextS->cv, nextS->mut);
            nextS->sdata = ldata;
            cond_signal(nextS->cv);
            mutex_unlock(nextS->mut);
        } else {
            free(ldata);
        }
        handled = handled + 1;
    }
}

void main() {
    stage_t * s2;
    stage_t * s1;
    char * buf;
    int i;
    s2 = new(stage_t);
    s2->mut = new(mutex); s2->cv = new(cond);
    s2->fun = process; s2->next = NULL; s2->nitems = 5;
    s1 = new(stage_t);
    s1->mut = new(mutex); s1->cv = new(cond);
    s1->fun = process; s1->next = s2; s1->nitems = 5;
    spawn(thrFunc, s1);
    spawn(thrFunc, s2);
    for (i = 0; i < 5; i++) {
        buf = newarray(char, 16);
        mutex_lock(s1->mut);
        while (s1->sdata)
            cond_wait(s1->cv, s1->mut);
        s1->sdata = buf;
        cond_signal(s1->cv);
        mutex_unlock(s1->mut);
    }
    join_all();
}
"#;

const ANNOTATED: &str = r#"
typedef struct stage {
    struct stage * next;
    cond * cv;
    mutex * mut;
    char *locked(mut) sdata;
    void (* fun)(char private * fdata);
    int nitems;
} stage_t;

void process(char private * fdata) {
    fdata[0] = fdata[0] + 1;
}

void thrFunc(stage_t * d) {
    stage_t * S = d;
    stage_t * nextS = S->next;
    char private * ldata;
    int handled;
    int quota;
    handled = 0;
    quota = S->nitems;
    while (handled < quota) {
        mutex_lock(S->mut);
        while (S->sdata == NULL)
            cond_wait(S->cv, S->mut);
        ldata = SCAST(char private *, S->sdata);
        cond_signal(S->cv);
        mutex_unlock(S->mut);
        S->fun(ldata);
        if (nextS) {
            mutex_lock(nextS->mut);
            while (nextS->sdata)
                cond_wait(nextS->cv, nextS->mut);
            nextS->sdata = SCAST(char locked(nextS->mut) *, ldata);
            cond_signal(nextS->cv);
            mutex_unlock(nextS->mut);
        } else {
            free(ldata);
        }
        handled = handled + 1;
    }
}

void main() {
    stage_t private * t2;
    stage_t private * t1;
    char private * buf;
    int i;
    t2 = new(stage_t private);
    t2->mut = new(mutex); t2->cv = new(cond);
    t2->fun = process; t2->next = NULL; t2->nitems = 5;
    stage_t * s2 = SCAST(stage_t dynamic *, t2);
    t1 = new(stage_t private);
    t1->mut = new(mutex); t1->cv = new(cond);
    t1->fun = process; t1->next = s2; t1->nitems = 5;
    stage_t * s1 = SCAST(stage_t dynamic *, t1);
    spawn(thrFunc, s1);
    spawn(thrFunc, s2);
    for (i = 0; i < 5; i++) {
        buf = newarray(char private, 16);
        mutex_lock(s1->mut);
        while (s1->sdata)
            cond_wait(s1->cv, s1->mut);
        s1->sdata = SCAST(char locked(s1->mut) *, buf);
        cond_signal(s1->cv);
        mutex_unlock(s1->mut);
    }
    join_all();
}
"#;

#[test]
fn unannotated_pipeline_reports_sharing() {
    let checked = sharc::check("pipeline_test.c", UNANNOTATED).unwrap();
    assert!(
        !checked.diags.has_errors(),
        "unannotated program type-checks (everything dynamic):\n{}",
        checked.render_diags()
    );
    // SharC infers dynamic for the shared stage objects.
    assert!(checked.sharing.stats.n_dynamic > 0);

    // At least one seed exposes the sharing at runtime, in the
    // paper's report format.
    let mut saw_sdata_report = false;
    for seed in 0..6 {
        let out = sharc::run(
            &checked,
            RunConfig {
                seed,
                ..RunConfig::default()
            },
        )
        .unwrap();
        for r in &out.reports {
            let text = r.to_string();
            assert!(text.contains("who("), "paper format: {text}");
            if text.contains("sdata") || text.contains("fdata") || text.contains("S->") {
                saw_sdata_report = true;
            }
        }
        if saw_sdata_report {
            break;
        }
    }
    assert!(
        saw_sdata_report,
        "expected a report naming the pipeline's shared data"
    );
}

#[test]
fn annotated_pipeline_is_clean() {
    let checked = sharc::check("pipeline_test.c", ANNOTATED).unwrap();
    assert!(
        !checked.diags.has_errors(),
        "two annotations + casts suffice:\n{}",
        checked.render_diags()
    );
    for seed in [0u64, 1, 42] {
        let out = sharc::run(
            &checked,
            RunConfig {
                seed,
                ..RunConfig::default()
            },
        )
        .unwrap();
        assert_eq!(out.status, ExitStatus::Completed, "seed {seed}");
        assert!(out.reports.is_empty(), "seed {seed}: {}", out.reports[0]);
    }
}

#[test]
fn inferred_annotations_match_figure_2() {
    let checked = sharc::check("pipeline_test.c", ANNOTATED).unwrap();
    let printed = minic::pretty::program(&checked.program);
    // The paper's Figure 2, field by field.
    assert!(printed.contains("stage dynamic *q next"), "{printed}");
    assert!(printed.contains("cond racy *q cv"), "{printed}");
    assert!(printed.contains("mutex racy *readonly mut"), "{printed}");
    assert!(
        printed.contains("char locked(mut) *locked(mut) sdata"),
        "{printed}"
    );
    assert!(
        printed.contains("(*q fun)(char private *private fdata)"),
        "{printed}"
    );
    // thrFunc's locals as in Figure 2.
    assert!(printed.contains("stage dynamic *private S"), "{printed}");
    assert!(
        printed.contains("stage dynamic *private nextS"),
        "{printed}"
    );
    assert!(printed.contains("char private *private ldata"), "{printed}");
}

#[test]
fn missing_cast_gets_suggested() {
    // Annotate `fdata` private but keep the plain assignment of
    // Figure 1 line 17: type checking fails and SharC suggests the
    // SCAST, as in the paper.
    let src = r#"
        struct q { mutex m; char *locked(m) slot; };
        void worker(struct q * w) {
            char private * l;
            l = w->slot;
        }
        void main() { struct q * w; w = new(struct q); spawn(worker, w); }
    "#;
    let checked = sharc::check("suggest.c", src).unwrap();
    assert!(checked.diags.has_errors());
    let rendered = checked.render_diags();
    assert!(
        rendered.contains("SCAST(char private *, w->slot)"),
        "the tool suggests the exact cast:\n{rendered}"
    );
}

#[test]
fn annotation_and_cast_counts_are_small() {
    // The paper's headline: a handful of annotations per program.
    let parsed = minic::parse(ANNOTATED).unwrap();
    let annots = sharc::core::count_annotations(&parsed);
    let casts = ANNOTATED.matches("SCAST(").count();
    assert!(annots <= 12, "few annotations needed, got {annots}");
    assert_eq!(casts, 5);
}
