//! Differential testing of the three runtime-check engines that all
//! claim to implement the §4.2 granule state machine:
//!
//! * [`BitmapBackend`] — the VM's engine: `bitmap::step` applied
//!   directly, no atomics (the interpreter serializes instructions);
//! * [`Shadow`] — the native-threads engine: the same `bitmap::step`
//!   inside a compare-exchange retry loop, with and without the
//!   owned-granule epoch cache;
//! * [`ScalableShadow`] — the adaptive-encoding engine
//!   (`adaptive::step`), which forgets reader identities once a
//!   granule is read-shared.
//!
//! One seeded operation trace is driven through all of them and the
//! per-operation verdicts must be *identical* — not just the final
//! conflict counts. This holds because every engine obeys the shared
//! contract that a conflicting access leaves the shadow word
//! unchanged, so the engines stay in lockstep even after conflicts.
//!
//! Thread-exit clearing is deliberately absent from the generated
//! vocabulary: the adaptive encoding documents that it cannot clear
//! one reader out of a `SHARED_READ` granule (identities are not
//! tracked), so after `clear_thread` it is *soundly conservative*
//! rather than exact, and verdicts may legitimately diverge. Full
//! clears (`free` / sharing casts) are exact in every engine and are
//! generated.

use std::collections::HashMap;

use sharc_checker::{BitmapBackend, CheckBackend, CheckEvent, OwnedCache};
use sharc_detectors::{BaselineBackend, Eraser};
use sharc_runtime::{ScalableShadow, Shadow, ThreadId, WideThreadId};
use sharc_testkit::gen::{self, Gen};
use sharc_testkit::prop::Config;
use sharc_testkit::{forall, prop_assert};

/// Granule universe for the generated traces: small enough that
/// threads collide constantly.
const GRANULES: usize = 8;
/// Thread universe: ids 1..=4 (0 is reserved in every encoding).
const THREADS: u32 = 4;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Op {
    Read {
        tid: u32,
        granule: usize,
    },
    Write {
        tid: u32,
        granule: usize,
    },
    /// A full reset of one granule — `free` or a successful sharing
    /// cast. Exact in every engine.
    Clear {
        granule: usize,
    },
}

fn op_gen() -> Gen<Op> {
    let access = gen::pair(
        gen::u32_range(1..THREADS + 1),
        gen::usize_range(0..GRANULES),
    );
    gen::one_of(vec![
        access
            .clone()
            .map(|&(tid, granule)| Op::Read { tid, granule }),
        access
            .clone()
            .map(|&(tid, granule)| Op::Write { tid, granule }),
        // Clears are rarer than accesses so histories build up.
        gen::usize_range(0..GRANULES).map(|&granule| Op::Clear { granule }),
    ])
}

fn trace_gen() -> Gen<Vec<Op>> {
    gen::vec_of(op_gen(), 0..96)
}

fn cfg() -> Config {
    Config::from_env().with_cases(128)
}

/// The tentpole invariant: the VM's direct-step engine, the CAS
/// bitmap engine (cached and uncached), and the adaptive engine
/// return the same verdict for every operation of any trace.
#[test]
fn all_engines_agree_on_every_verdict() {
    forall!(
        "all_engines_agree_on_every_verdict",
        cfg(),
        trace_gen(),
        |ops| {
            let mut vm = BitmapBackend::new();
            let shadow: Shadow = Shadow::new(GRANULES);
            let cached: Shadow = Shadow::new(GRANULES);
            let mut caches: HashMap<u32, OwnedCache> = HashMap::new();
            let scalable = ScalableShadow::new(GRANULES);

            for (i, &op) in ops.iter().enumerate() {
                match op {
                    Op::Read { tid, granule } => {
                        let a = vm.chkread(tid, granule).is_conflict();
                        let b = shadow.check_read(granule, ThreadId(tid as u8)).is_err();
                        let cache = caches.entry(tid).or_default();
                        let c = cached
                            .check_read_cached(granule, ThreadId(tid as u8), cache)
                            .is_err();
                        let d = scalable.check_read(granule, WideThreadId(tid)).is_err();
                        prop_assert!(a == b, "op {}: vm vs shadow (read)", i);
                        prop_assert!(b == c, "op {}: shadow vs cached (read)", i);
                        prop_assert!(b == d, "op {}: shadow vs scalable (read)", i);
                    }
                    Op::Write { tid, granule } => {
                        let a = vm.chkwrite(tid, granule).is_conflict();
                        let b = shadow.check_write(granule, ThreadId(tid as u8)).is_err();
                        let cache = caches.entry(tid).or_default();
                        let c = cached
                            .check_write_cached(granule, ThreadId(tid as u8), cache)
                            .is_err();
                        let d = scalable.check_write(granule, WideThreadId(tid)).is_err();
                        prop_assert!(a == b, "op {}: vm vs shadow (write)", i);
                        prop_assert!(b == c, "op {}: shadow vs cached (write)", i);
                        prop_assert!(b == d, "op {}: shadow vs scalable (write)", i);
                    }
                    Op::Clear { granule } => {
                        vm.on_alloc(granule);
                        shadow.clear(granule);
                        cached.clear(granule);
                        scalable.clear(granule);
                    }
                }
            }
            // The two bitmap engines also agree on the *state*, word for
            // word, not only on verdicts.
            for g in 0..GRANULES {
                prop_assert!(vm.raw(g) == shadow.raw(g), "final word of granule {}", g);
                prop_assert!(
                    shadow.raw(g) == cached.raw(g),
                    "cached word of granule {}",
                    g
                );
            }
        }
    );
}

/// The epoch cache never changes which conflicts exist — only who
/// pays to discover them. Interleaving clears (epoch bumps) at
/// arbitrary points must leave the cached engine in lockstep; this
/// is implied by the test above but called out here because the
/// cache was *the* reason the engines were unified behind one
/// transition function.
#[test]
fn cache_is_invisible_under_adversarial_clears() {
    let shadow: Shadow = Shadow::new(4);
    let cached: Shadow = Shadow::new(4);
    let mut cache = OwnedCache::with_slots(2); // force collisions
    let t1 = ThreadId(1);
    let t2 = ThreadId(2);
    for round in 0..50 {
        let g = round % 4;
        assert_eq!(
            shadow.check_write(g, t1).is_err(),
            cached.check_write_cached(g, t1, &mut cache).is_err(),
            "round {round} owner write"
        );
        if round % 7 == 0 {
            shadow.clear(g);
            cached.clear(g);
        }
        // The second thread always takes the slow path and must see
        // the conflict iff the uncached engine does.
        assert_eq!(
            shadow.check_read(g, t2).is_err(),
            cached.check_read(g, t2).is_err(),
            "round {round} intruder read"
        );
    }
}

/// The named regression: ownership hand-off through a sharing cast
/// (the paper's §2.1 producer/consumer idiom, `examples/minic/handoff.c`).
/// SharC's engine is silent — the `oneref`-checked cast transfers the
/// object and clears its history — while the Eraser adapter, blind to
/// `on_cast_clear`, keeps judging the object by its pre-transfer
/// accesses and reports a false positive on the very same trace.
#[test]
fn ownership_transfer_sharc_silent_eraser_false_positive() {
    use CheckEvent as E;
    let g = 3;
    let trace = vec![
        E::Fork {
            parent: 1,
            child: 2,
        },
        // Producer initializes the private buffer...
        E::Write { tid: 1, granule: g },
        // ...and hands it off with a reference-count-checked cast.
        E::SharingCast {
            tid: 1,
            granule: g,
            refs: 1,
        },
        // Consumer now owns the buffer.
        E::Read { tid: 2, granule: g },
        E::Write { tid: 2, granule: g },
    ];

    let mut sharc = BitmapBackend::new();
    let sharc_conflicts = sharc_checker::replay(&trace, &mut sharc);
    assert!(
        sharc_conflicts.is_empty(),
        "SharC accepts the hand-off: {sharc_conflicts:?}"
    );

    let mut eraser = BaselineBackend::new(Eraser::new());
    let eraser_conflicts = sharc_checker::replay(&trace, &mut eraser);
    assert!(
        !eraser_conflicts.is_empty(),
        "Eraser has no ownership-transfer model and must false-positive"
    );

    // Drop the cast from the trace and SharC agrees with Eraser:
    // without the transfer the second thread's write *is* a race.
    let no_cast: Vec<CheckEvent> = trace
        .iter()
        .copied()
        .filter(|e| !matches!(e, E::SharingCast { .. }))
        .collect();
    let mut sharc2 = BitmapBackend::new();
    assert!(
        !sharc_checker::replay(&no_cast, &mut sharc2).is_empty(),
        "the cast is load-bearing: without it SharC reports the race"
    );
}
