//! Differential testing of the three runtime-check engines that all
//! claim to implement the §4.2 granule state machine:
//!
//! * [`BitmapBackend`] — the VM's engine: `bitmap::step` applied
//!   directly, no atomics (the interpreter serializes instructions);
//! * [`Shadow`] — the native-threads engine: the same `bitmap::step`
//!   inside a compare-exchange retry loop, with and without the
//!   owned-granule epoch cache;
//! * [`ScalableShadow`] — the adaptive-encoding engine
//!   (`adaptive::step`), which forgets reader identities once a
//!   granule is read-shared.
//!
//! One seeded operation trace is driven through all of them and the
//! per-operation verdicts must be *identical* — not just the final
//! conflict counts. This holds because every engine obeys the shared
//! contract that a conflicting access leaves the shadow word
//! unchanged, so the engines stay in lockstep even after conflicts.
//!
//! Thread-exit clearing is deliberately absent from the generated
//! vocabulary: the adaptive encoding documents that it cannot clear
//! one reader out of a `SHARED_READ` granule (identities are not
//! tracked), so after `clear_thread` it is *soundly conservative*
//! rather than exact, and verdicts may legitimately diverge. Full
//! clears (`free` / sharing casts) are exact in every engine and are
//! generated.

use std::collections::HashMap;

use sharc_checker::{
    geometry_for_trace, BitmapBackend, CheckBackend, CheckEvent, EventSink, OwnedCache,
    ShadowGeometry, StreamingSink,
};
use sharc_detectors::{BaselineBackend, Eraser, VcDetector};
use sharc_runtime::{ScalableShadow, Shadow, ShardedShadow, ThreadId, WideThreadId};
use sharc_testkit::gen::{self, Gen};
use sharc_testkit::prop::Config;
use sharc_testkit::{forall, prop_assert};

/// Granule universe for the generated traces: small enough that
/// threads collide constantly.
const GRANULES: usize = 8;
/// Thread universe: ids 1..=4 (0 is reserved in every encoding).
const THREADS: u32 = 4;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Op {
    Read {
        tid: u32,
        granule: usize,
    },
    Write {
        tid: u32,
        granule: usize,
    },
    /// A full reset of one granule — `free` or a successful sharing
    /// cast. Exact in every engine.
    Clear {
        granule: usize,
    },
}

fn op_gen() -> Gen<Op> {
    let access = gen::pair(
        gen::u32_range(1..THREADS + 1),
        gen::usize_range(0..GRANULES),
    );
    gen::one_of(vec![
        access
            .clone()
            .map(|&(tid, granule)| Op::Read { tid, granule }),
        access
            .clone()
            .map(|&(tid, granule)| Op::Write { tid, granule }),
        // Clears are rarer than accesses so histories build up.
        gen::usize_range(0..GRANULES).map(|&granule| Op::Clear { granule }),
    ])
}

fn trace_gen() -> Gen<Vec<Op>> {
    gen::vec_of(op_gen(), 0..96)
}

fn cfg() -> Config {
    Config::from_env().with_cases(128)
}

/// The tentpole invariant: the VM's direct-step engine, the CAS
/// bitmap engine (cached and uncached), and the adaptive engine
/// return the same verdict for every operation of any trace.
#[test]
fn all_engines_agree_on_every_verdict() {
    forall!(
        "all_engines_agree_on_every_verdict",
        cfg(),
        trace_gen(),
        |ops| {
            let mut vm = BitmapBackend::new();
            let shadow: Shadow = Shadow::new(GRANULES);
            let cached: Shadow = Shadow::new(GRANULES);
            let mut caches: HashMap<u32, OwnedCache> = HashMap::new();
            let scalable = ScalableShadow::new(GRANULES);

            for (i, &op) in ops.iter().enumerate() {
                match op {
                    Op::Read { tid, granule } => {
                        let a = vm.chkread(tid, granule).is_conflict();
                        let b = shadow.check_read(granule, ThreadId(tid as u8)).is_err();
                        let cache = caches.entry(tid).or_default();
                        let c = cached
                            .check_read_cached(granule, ThreadId(tid as u8), cache)
                            .is_err();
                        let d = scalable.check_read(granule, WideThreadId(tid)).is_err();
                        prop_assert!(a == b, "op {}: vm vs shadow (read)", i);
                        prop_assert!(b == c, "op {}: shadow vs cached (read)", i);
                        prop_assert!(b == d, "op {}: shadow vs scalable (read)", i);
                    }
                    Op::Write { tid, granule } => {
                        let a = vm.chkwrite(tid, granule).is_conflict();
                        let b = shadow.check_write(granule, ThreadId(tid as u8)).is_err();
                        let cache = caches.entry(tid).or_default();
                        let c = cached
                            .check_write_cached(granule, ThreadId(tid as u8), cache)
                            .is_err();
                        let d = scalable.check_write(granule, WideThreadId(tid)).is_err();
                        prop_assert!(a == b, "op {}: vm vs shadow (write)", i);
                        prop_assert!(b == c, "op {}: shadow vs cached (write)", i);
                        prop_assert!(b == d, "op {}: shadow vs scalable (write)", i);
                    }
                    Op::Clear { granule } => {
                        vm.on_alloc(granule);
                        shadow.clear(granule);
                        cached.clear(granule);
                        scalable.clear(granule);
                    }
                }
            }
            // The two bitmap engines also agree on the *state*, word for
            // word, not only on verdicts.
            for g in 0..GRANULES {
                prop_assert!(vm.raw(g) == shadow.raw(g), "final word of granule {}", g);
                prop_assert!(
                    shadow.raw(g) == cached.raw(g),
                    "cached word of granule {}",
                    g
                );
            }
        }
    );
}

/// The per-region epoch refinement is invisible to verdicts: for any
/// trace, a cached engine over a real region table (here the finest
/// one — one granule per region), a cached engine over the degenerate
/// `R = 1` global table, the uncached engine, the adaptive engine,
/// and the VM's direct-step oracle all return the same verdict for
/// every single operation. Only the *cost* differs, which the `misses`
/// counters make observable: across the whole run the region-epoch
/// caches can never refill more often than the global-epoch ones.
#[test]
fn region_epoch_engines_agree_with_global_epoch() {
    forall!(
        "region_epoch_engines_agree_with_global_epoch",
        cfg(),
        trace_gen(),
        |ops| {
            let mut oracle = BitmapBackend::new();
            let uncached: Shadow = Shadow::new(GRANULES);
            let region: Shadow = Shadow::new(GRANULES);
            let global: Shadow = Shadow::with_epoch_regions(GRANULES, 1);
            let adaptive = ScalableShadow::new(GRANULES);
            let adaptive_global = ScalableShadow::with_epoch_regions(GRANULES, 1);
            prop_assert!(
                region.epochs().regions() > 1,
                "the region engine must have a real table"
            );
            prop_assert!(global.epochs().regions() == 1, "the R = 1 degeneracy");
            let mut region_caches: HashMap<u32, OwnedCache> = HashMap::new();
            let mut global_caches: HashMap<u32, OwnedCache> = HashMap::new();
            let mut ad_region_caches: HashMap<u32, OwnedCache> = HashMap::new();
            let mut ad_global_caches: HashMap<u32, OwnedCache> = HashMap::new();

            for (i, &op) in ops.iter().enumerate() {
                let (tid, granule, is_write) = match op {
                    Op::Read { tid, granule } => (tid, granule, false),
                    Op::Write { tid, granule } => (tid, granule, true),
                    Op::Clear { granule } => {
                        oracle.on_alloc(granule);
                        uncached.clear(granule);
                        region.clear(granule);
                        global.clear(granule);
                        adaptive.clear(granule);
                        adaptive_global.clear(granule);
                        continue;
                    }
                };
                let t8 = ThreadId(tid as u8);
                let tw = WideThreadId(tid);
                let rc = region_caches.entry(tid).or_default();
                let gc = global_caches.entry(tid).or_default();
                let arc = ad_region_caches.entry(tid).or_default();
                let agc = ad_global_caches.entry(tid).or_default();
                let verdicts = if is_write {
                    [
                        oracle.chkwrite(tid, granule).is_conflict(),
                        uncached.check_write(granule, t8).is_err(),
                        region.check_write_cached(granule, t8, rc).is_err(),
                        global.check_write_cached(granule, t8, gc).is_err(),
                        adaptive.check_write_cached(granule, tw, arc).is_err(),
                        adaptive_global
                            .check_write_cached(granule, tw, agc)
                            .is_err(),
                    ]
                } else {
                    [
                        oracle.chkread(tid, granule).is_conflict(),
                        uncached.check_read(granule, t8).is_err(),
                        region.check_read_cached(granule, t8, rc).is_err(),
                        global.check_read_cached(granule, t8, gc).is_err(),
                        adaptive.check_read_cached(granule, tw, arc).is_err(),
                        adaptive_global.check_read_cached(granule, tw, agc).is_err(),
                    ]
                };
                prop_assert!(
                    verdicts.iter().all(|&v| v == verdicts[0]),
                    "op {} ({}): verdicts diverged {:?} \
                     [oracle, uncached, region, global, ad-region, ad-global]",
                    i,
                    if is_write { "write" } else { "read" },
                    verdicts
                );
            }
            // States agree word for word across the bitmap engines.
            for g in 0..GRANULES {
                prop_assert!(
                    oracle.raw(g) == region.raw(g) && region.raw(g) == global.raw(g),
                    "final word of granule {}",
                    g
                );
            }
            // Cost: partial invalidation can only remove refills. Per
            // thread, the region-epoch cache never misses more often
            // than the global-epoch cache on the identical trace.
            for (tid, rc) in &region_caches {
                let gc = &global_caches[tid];
                prop_assert!(
                    rc.misses <= gc.misses,
                    "tid {}: region cache refilled more than global ({} > {})",
                    tid,
                    rc.misses,
                    gc.misses
                );
            }
        }
    );
}

/// The epoch cache never changes which conflicts exist — only who
/// pays to discover them. Interleaving clears (epoch bumps) at
/// arbitrary points must leave the cached engine in lockstep; this
/// is implied by the test above but called out here because the
/// cache was *the* reason the engines were unified behind one
/// transition function.
#[test]
fn cache_is_invisible_under_adversarial_clears() {
    let shadow: Shadow = Shadow::new(4);
    let cached: Shadow = Shadow::new(4);
    let mut cache: OwnedCache = OwnedCache::with_slots(2); // force collisions
    let t1 = ThreadId(1);
    let t2 = ThreadId(2);
    for round in 0..50 {
        let g = round % 4;
        assert_eq!(
            shadow.check_write(g, t1).is_err(),
            cached.check_write_cached(g, t1, &mut cache).is_err(),
            "round {round} owner write"
        );
        if round % 7 == 0 {
            shadow.clear(g);
            cached.clear(g);
        }
        // The second thread always takes the slow path and must see
        // the conflict iff the uncached engine does.
        assert_eq!(
            shadow.check_read(g, t2).is_err(),
            cached.check_read(g, t2).is_err(),
            "round {round} intruder read"
        );
    }
}

/// Wide-tid vocabulary for the sharded differential: accesses from
/// ids spanning several shards, full clears, and thread exits (the
/// operation the adaptive encoding is documented to coarsen).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WideOp {
    Read { tid: u32, granule: usize },
    Write { tid: u32, granule: usize },
    Clear { granule: usize },
    ThreadExit { tid: u32 },
}

const WIDE_THREADS: u32 = 256;

fn wide_op_gen() -> Gen<WideOp> {
    let access = gen::pair(
        gen::u32_range(1..WIDE_THREADS + 1),
        gen::usize_range(0..GRANULES),
    );
    gen::one_of(vec![
        access
            .clone()
            .map(|&(tid, granule)| WideOp::Read { tid, granule }),
        access
            .clone()
            .map(|&(tid, granule)| WideOp::Write { tid, granule }),
        gen::usize_range(0..GRANULES).map(|&granule| WideOp::Clear { granule }),
        gen::u32_range(1..WIDE_THREADS + 1).map(|&tid| WideOp::ThreadExit { tid }),
    ])
}

/// Beyond 63 threads the sharded engines must *stay* exact: for any
/// trace over tids `1..=256` the lock-free [`ShardedShadow`] (cached
/// and uncached) returns the same per-operation verdict — and ends
/// with the same shadow words — as the VM's [`BitmapBackend`] over
/// the identical five-shard geometry. The adaptive engine rides
/// along as the soundness baseline, pinned to its exact contract:
///
/// * verdicts are *identical* until the first thread exit
///   (`SHARED_READ` forgets reader identities, so exits are the one
///   operation it coarsens);
/// * the first verdict divergence, if any, is always an **extra**
///   adaptive conflict (a phantom retained reader), never a hidden
///   one. After that first extra report the histories legitimately
///   drift — conflicts never install, so the engines record
///   different access sets and per-op comparison is meaningless
///   (e.g. the exact engine installs a write the adaptive engine
///   rejected, and a later read then conflicts only in the exact
///   engine);
/// * what survives at whole-execution level: if the exact engines
///   report anything, the adaptive engine reports something too.
#[test]
fn sharded_engines_agree_up_to_256_threads() {
    let geom = ShadowGeometry::for_threads(WIDE_THREADS as usize);
    assert!(geom.shards() > 1, "the point is a multi-shard geometry");
    forall!(
        "sharded_engines_agree_up_to_256_threads",
        cfg(),
        gen::vec_of(wide_op_gen(), 0..96),
        |ops| {
            let mut oracle = BitmapBackend::with_geometry(geom);
            let sharded = ShardedShadow::with_geometry(GRANULES, geom);
            let cached = ShardedShadow::with_geometry(GRANULES, geom);
            // The same engine under the degenerate R = 1 epoch table:
            // the per-region refinement must be invisible to verdicts
            // even at five-shard geometry and 256 tids.
            let cached_global = ShardedShadow::with_epoch_regions(GRANULES, geom, 1);
            let mut caches: HashMap<u32, OwnedCache> = HashMap::new();
            let mut global_caches: HashMap<u32, OwnedCache> = HashMap::new();
            let adaptive = ScalableShadow::new(GRANULES);
            // Adaptive tracking: exact until the first exit; the
            // first divergence must be an extra adaptive conflict;
            // afterwards only the whole-trace implication holds.
            let mut exits_seen = false;
            let mut diverged = false;
            let mut exact_conflicts = 0usize;
            let mut adaptive_conflicts = 0usize;

            for (i, &op) in ops.iter().enumerate() {
                match op {
                    WideOp::Read { tid, granule } => {
                        let a = oracle.chkread(tid, granule).is_conflict();
                        let b = sharded.check_read(granule, WideThreadId(tid)).is_err();
                        let cache = caches.entry(tid).or_default();
                        let c = cached
                            .check_read_cached(granule, WideThreadId(tid), cache)
                            .is_err();
                        let gcache = global_caches.entry(tid).or_default();
                        let cg = cached_global
                            .check_read_cached(granule, WideThreadId(tid), gcache)
                            .is_err();
                        let d = adaptive.check_read(granule, WideThreadId(tid)).is_err();
                        prop_assert!(a == b, "op {}: oracle vs sharded (read)", i);
                        prop_assert!(b == c, "op {}: sharded vs cached (read)", i);
                        prop_assert!(c == cg, "op {}: region vs global epoch (read)", i);
                        exact_conflicts += a as usize;
                        adaptive_conflicts += d as usize;
                        if !diverged && a != d {
                            prop_assert!(exits_seen, "op {}: adaptive diverged before any exit", i);
                            prop_assert!(d && !a, "op {}: adaptive hid a read conflict", i);
                            diverged = true;
                        }
                    }
                    WideOp::Write { tid, granule } => {
                        let a = oracle.chkwrite(tid, granule).is_conflict();
                        let b = sharded.check_write(granule, WideThreadId(tid)).is_err();
                        let cache = caches.entry(tid).or_default();
                        let c = cached
                            .check_write_cached(granule, WideThreadId(tid), cache)
                            .is_err();
                        let gcache = global_caches.entry(tid).or_default();
                        let cg = cached_global
                            .check_write_cached(granule, WideThreadId(tid), gcache)
                            .is_err();
                        let d = adaptive.check_write(granule, WideThreadId(tid)).is_err();
                        prop_assert!(a == b, "op {}: oracle vs sharded (write)", i);
                        prop_assert!(b == c, "op {}: sharded vs cached (write)", i);
                        prop_assert!(c == cg, "op {}: region vs global epoch (write)", i);
                        exact_conflicts += a as usize;
                        adaptive_conflicts += d as usize;
                        if !diverged && a != d {
                            prop_assert!(exits_seen, "op {}: adaptive diverged before any exit", i);
                            prop_assert!(d && !a, "op {}: adaptive hid a write conflict", i);
                            diverged = true;
                        }
                    }
                    WideOp::Clear { granule } => {
                        oracle.on_alloc(granule);
                        sharded.clear(granule);
                        cached.clear(granule);
                        cached_global.clear(granule);
                        adaptive.clear(granule);
                    }
                    WideOp::ThreadExit { tid } => {
                        oracle.on_thread_exit(tid);
                        for g in 0..GRANULES {
                            // Clearing a granule the thread never
                            // touched is a no-op in every engine, so
                            // sweeping all of them mirrors the
                            // oracle's access-log walk.
                            sharded.clear_thread(g, WideThreadId(tid));
                            cached.clear_thread(g, WideThreadId(tid));
                            cached_global.clear_thread(g, WideThreadId(tid));
                            adaptive.clear_thread(g, WideThreadId(tid));
                        }
                        exits_seen = true;
                    }
                }
            }
            // Whole-execution soundness for the adaptive engine: it
            // may report extra conflicts and its history may drift
            // after doing so, but it never stays silent on a trace
            // the exact engines flag.
            prop_assert!(
                exact_conflicts == 0 || adaptive_conflicts > 0,
                "adaptive engine hid the whole race ({} exact conflicts)",
                exact_conflicts
            );
            // Beyond per-op verdicts, the sharded engines and the
            // oracle agree on every shadow word of every granule.
            for g in 0..GRANULES {
                prop_assert!(
                    oracle.raw_words(g) == sharded.raw_words(g),
                    "final words of granule {}",
                    g
                );
                prop_assert!(
                    sharded.raw_words(g) == cached.raw_words(g),
                    "cached words of granule {}",
                    g
                );
                prop_assert!(
                    cached.raw_words(g) == cached_global.raw_words(g),
                    "global-epoch words of granule {}",
                    g
                );
            }
        }
    );
}

/// The named cross-shard regression: ownership hand-off where the
/// producer and consumer live in *different shards* of the wide
/// geometry (tid 1 → shard 0, tid 200 → shard 3). The sharing cast
/// must clear every shard word, not just the producer's — a
/// shard-0-only clear would leave the producer's writer bit behind
/// and turn the legal hand-off into a phantom conflict.
#[test]
fn cross_shard_ownership_transfer_is_exact() {
    let geom = ShadowGeometry::for_threads(256);
    let (producer, consumer) = (1u32, 200u32);
    assert_ne!(
        geom.shard_of(producer),
        geom.shard_of(consumer),
        "the pair must straddle a shard boundary"
    );
    let g = 0;

    // Replay level: the wide BitmapBackend accepts the §2.1 trace.
    use CheckEvent as E;
    let trace = vec![
        E::Fork {
            parent: producer,
            child: consumer,
        },
        E::Write {
            tid: producer,
            granule: g,
        },
        E::SharingCast {
            tid: producer,
            granule: g,
            refs: 1,
        },
        E::Read {
            tid: consumer,
            granule: g,
        },
        E::Write {
            tid: consumer,
            granule: g,
        },
    ];
    let mut wide = BitmapBackend::with_geometry(geom);
    let conflicts = sharc_checker::replay(&trace, &mut wide);
    assert!(
        conflicts.is_empty(),
        "cross-shard hand-off is legal: {conflicts:?}"
    );
    assert!(
        wide.raw_words(g).iter().any(|&w| w != 0),
        "the consumer re-registered after the cast"
    );

    // Native level: the lock-free ShardedShadow agrees.
    let s = ShardedShadow::with_geometry(4, geom);
    s.check_write(g, WideThreadId(producer)).unwrap();
    s.clear(g); // the successful sharing cast
    s.check_read(g, WideThreadId(consumer)).unwrap();
    s.check_write(g, WideThreadId(consumer)).unwrap();

    // And without the cast both levels report the cross-shard race.
    let no_cast: Vec<CheckEvent> = trace
        .iter()
        .copied()
        .filter(|e| !matches!(e, E::SharingCast { .. }))
        .collect();
    let mut wide2 = BitmapBackend::with_geometry(geom);
    assert!(
        !sharc_checker::replay(&no_cast, &mut wide2).is_empty(),
        "without the cast the consumer's access races"
    );
    let s2 = ShardedShadow::with_geometry(4, geom);
    s2.check_write(g, WideThreadId(producer)).unwrap();
    assert!(
        s2.check_read(g, WideThreadId(consumer)).is_err(),
        "sharded engine sees the same cross-shard race"
    );
}

// ----- Ranged checks (PR 5) -----

/// Granule universe for the ranged traces: big enough that runs have
/// room to span several epoch regions, small enough that threads
/// keep colliding.
const RANGE_GRANULES: usize = 16;

/// Vocabulary for the ranged differential: buffer sweeps (the new
/// ranged checks), single-granule accesses (the old vocabulary,
/// interleaved so point entries and run summaries coexist in one
/// cache), and **mid-range clears** — the adversarial case, since a
/// clear inside a summarized run must kill the summary while a clear
/// elsewhere must not resurrect anything.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RangeOp {
    Range {
        tid: u32,
        start: usize,
        len: usize,
        is_write: bool,
    },
    Point {
        tid: u32,
        granule: usize,
        is_write: bool,
    },
    Clear {
        granule: usize,
    },
}

fn range_op_gen(threads: u32) -> Gen<RangeOp> {
    let sweep = gen::pair(
        gen::pair(gen::u32_range(1..threads + 1), gen::bool_any()),
        gen::pair(
            gen::usize_range(0..RANGE_GRANULES),
            gen::usize_range(1..RANGE_GRANULES + 1),
        ),
    );
    gen::one_of(vec![
        sweep.map(|&((tid, is_write), (start, len))| RangeOp::Range {
            tid,
            start,
            len: len.min(RANGE_GRANULES - start),
            is_write,
        }),
        gen::pair(
            gen::pair(gen::u32_range(1..threads + 1), gen::bool_any()),
            gen::usize_range(0..RANGE_GRANULES),
        )
        .map(|&((tid, is_write), granule)| RangeOp::Point {
            tid,
            granule,
            is_write,
        }),
        gen::usize_range(0..RANGE_GRANULES).map(|&granule| RangeOp::Clear { granule }),
    ])
}

/// Folds the per-granule check over a run on the oracle backend,
/// returning the conflict count — the definition the ranged checks
/// must reproduce.
fn oracle_fold(oracle: &mut BitmapBackend, tid: u32, start: usize, len: usize, w: bool) -> usize {
    (start..start + len)
        .filter(|&g| {
            if w {
                oracle.chkwrite(tid, g).is_conflict()
            } else {
                oracle.chkread(tid, g).is_conflict()
            }
        })
        .count()
}

/// The ranged fold contract, engine-differentially: for any trace of
/// sweeps, point accesses, and mid-range clears, the per-op conflict
/// count of `check_range_*` — uncached, cached (owned runs + point
/// entries), and on the adaptive engine — equals the fold of
/// per-granule verdicts on the VM's direct-step oracle, and the
/// bitmap engines end bit-identical word for word.
#[test]
fn range_checks_equal_per_granule_fold() {
    forall!(
        "range_checks_equal_per_granule_fold",
        cfg(),
        gen::vec_of(range_op_gen(THREADS), 0..96),
        |ops| {
            let mut oracle = BitmapBackend::new();
            let ranged: Shadow = Shadow::new(RANGE_GRANULES);
            let cached: Shadow = Shadow::new(RANGE_GRANULES);
            let adaptive = ScalableShadow::new(RANGE_GRANULES);
            let mut caches: HashMap<u32, OwnedCache> = HashMap::new();
            let mut ad_caches: HashMap<u32, OwnedCache> = HashMap::new();

            for (i, &op) in ops.iter().enumerate() {
                match op {
                    RangeOp::Range {
                        tid,
                        start,
                        len,
                        is_write,
                    } => {
                        let want = oracle_fold(&mut oracle, tid, start, len, is_write);
                        let t8 = ThreadId(tid as u8);
                        let tw = WideThreadId(tid);
                        let cache = caches.entry(tid).or_default();
                        let ad_cache = ad_caches.entry(tid).or_default();
                        let got = if is_write {
                            [
                                ranged.check_range_write(start, len, t8, |_| {}, |_| {}),
                                cached.check_range_write_cached(
                                    start,
                                    len,
                                    t8,
                                    cache,
                                    |_| {},
                                    |_| {},
                                ),
                                adaptive.check_range_write_cached(
                                    start,
                                    len,
                                    tw,
                                    ad_cache,
                                    |_| {},
                                    |_| {},
                                ),
                            ]
                        } else {
                            [
                                ranged.check_range_read(start, len, t8, |_| {}, |_| {}),
                                cached.check_range_read_cached(
                                    start,
                                    len,
                                    t8,
                                    cache,
                                    |_| {},
                                    |_| {},
                                ),
                                adaptive.check_range_read_cached(
                                    start,
                                    len,
                                    tw,
                                    ad_cache,
                                    |_| {},
                                    |_| {},
                                ),
                            ]
                        };
                        prop_assert!(
                            got == [want; 3],
                            "op {} (range {} {}..{}): fold {} vs \
                             [uncached, cached, adaptive] {:?}",
                            i,
                            if is_write { "write" } else { "read" },
                            start,
                            start + len,
                            want,
                            got
                        );
                    }
                    RangeOp::Point {
                        tid,
                        granule,
                        is_write,
                    } => {
                        let t8 = ThreadId(tid as u8);
                        let tw = WideThreadId(tid);
                        let cache = caches.entry(tid).or_default();
                        let ad_cache = ad_caches.entry(tid).or_default();
                        let verdicts = if is_write {
                            [
                                oracle.chkwrite(tid, granule).is_conflict(),
                                ranged.check_write(granule, t8).is_err(),
                                cached.check_write_cached(granule, t8, cache).is_err(),
                                adaptive.check_write_cached(granule, tw, ad_cache).is_err(),
                            ]
                        } else {
                            [
                                oracle.chkread(tid, granule).is_conflict(),
                                ranged.check_read(granule, t8).is_err(),
                                cached.check_read_cached(granule, t8, cache).is_err(),
                                adaptive.check_read_cached(granule, tw, ad_cache).is_err(),
                            ]
                        };
                        prop_assert!(
                            verdicts.iter().all(|&v| v == verdicts[0]),
                            "op {} (point): verdicts diverged {:?}",
                            i,
                            verdicts
                        );
                    }
                    RangeOp::Clear { granule } => {
                        oracle.on_alloc(granule);
                        ranged.clear(granule);
                        cached.clear(granule);
                        adaptive.clear(granule);
                    }
                }
            }
            for g in 0..RANGE_GRANULES {
                prop_assert!(
                    oracle.raw(g) == ranged.raw(g) && ranged.raw(g) == cached.raw(g),
                    "final word of granule {}",
                    g
                );
            }
        }
    );
}

/// The same fold contract on the five-shard geometry: ranged checks
/// from tids up to 256 — cached and uncached, with mid-range clears —
/// agree per op with the per-granule fold on the wide oracle, and
/// every shard word ends bit-identical.
#[test]
fn ranged_sharded_checks_agree_up_to_256_threads() {
    let geom = ShadowGeometry::for_threads(WIDE_THREADS as usize);
    assert!(geom.shards() > 1, "the point is a multi-shard geometry");
    forall!(
        "ranged_sharded_checks_agree_up_to_256_threads",
        cfg(),
        gen::vec_of(range_op_gen(WIDE_THREADS), 0..96),
        |ops| {
            let mut oracle = BitmapBackend::with_geometry(geom);
            let ranged = ShardedShadow::with_geometry(RANGE_GRANULES, geom);
            let cached = ShardedShadow::with_geometry(RANGE_GRANULES, geom);
            let mut caches: HashMap<u32, OwnedCache> = HashMap::new();

            for (i, &op) in ops.iter().enumerate() {
                match op {
                    RangeOp::Range {
                        tid,
                        start,
                        len,
                        is_write,
                    } => {
                        let want = oracle_fold(&mut oracle, tid, start, len, is_write);
                        let tw = WideThreadId(tid);
                        let cache = caches.entry(tid).or_default();
                        let got = if is_write {
                            [
                                ranged.check_range_write(start, len, tw, |_| {}, |_| {}),
                                cached.check_range_write_cached(
                                    start,
                                    len,
                                    tw,
                                    cache,
                                    |_| {},
                                    |_| {},
                                ),
                            ]
                        } else {
                            [
                                ranged.check_range_read(start, len, tw, |_| {}, |_| {}),
                                cached.check_range_read_cached(
                                    start,
                                    len,
                                    tw,
                                    cache,
                                    |_| {},
                                    |_| {},
                                ),
                            ]
                        };
                        prop_assert!(
                            got == [want; 2],
                            "op {} (wide range): fold {} vs [uncached, cached] {:?}",
                            i,
                            want,
                            got
                        );
                    }
                    RangeOp::Point {
                        tid,
                        granule,
                        is_write,
                    } => {
                        let tw = WideThreadId(tid);
                        let cache = caches.entry(tid).or_default();
                        let verdicts = if is_write {
                            [
                                oracle.chkwrite(tid, granule).is_conflict(),
                                ranged.check_write(granule, tw).is_err(),
                                cached.check_write_cached(granule, tw, cache).is_err(),
                            ]
                        } else {
                            [
                                oracle.chkread(tid, granule).is_conflict(),
                                ranged.check_read(granule, tw).is_err(),
                                cached.check_read_cached(granule, tw, cache).is_err(),
                            ]
                        };
                        prop_assert!(
                            verdicts.iter().all(|&v| v == verdicts[0]),
                            "op {} (wide point): verdicts diverged {:?}",
                            i,
                            verdicts
                        );
                    }
                    RangeOp::Clear { granule } => {
                        oracle.on_alloc(granule);
                        ranged.clear(granule);
                        cached.clear(granule);
                    }
                }
            }
            for g in 0..RANGE_GRANULES {
                prop_assert!(
                    oracle.raw_words(g) == ranged.raw_words(g),
                    "final words of granule {}",
                    g
                );
                prop_assert!(
                    ranged.raw_words(g) == cached.raw_words(g),
                    "cached words of granule {}",
                    g
                );
            }
        }
    );
}

// ----- Ranged casts & frees (this PR) -----

/// Vocabulary for the ranged-clear differential: cached buffer sweeps
/// interleaved with **ranged clears** (`free` / block-granular
/// sharing casts) and **ranged thread exits**. The adversarial case
/// is a sweep that summarizes a run into the owned cache followed by
/// a `clear_range` through the middle of it: the single ranged epoch
/// bump must invalidate the summary exactly like the per-granule
/// clear fold's one-bump-per-granule does, or the cached instance
/// skips re-registration and its shadow words drift from the fold's.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum HandoffOp {
    Sweep {
        tid: u32,
        start: usize,
        len: usize,
        is_write: bool,
    },
    ClearRange {
        start: usize,
        len: usize,
    },
    ExitRange {
        tid: u32,
        start: usize,
        len: usize,
    },
}

fn handoff_op_gen(threads: u32) -> Gen<HandoffOp> {
    let span = gen::pair(
        gen::usize_range(0..RANGE_GRANULES),
        gen::usize_range(1..RANGE_GRANULES + 1),
    );
    gen::one_of(vec![
        gen::pair(
            gen::pair(gen::u32_range(1..threads + 1), gen::bool_any()),
            span.clone(),
        )
        .map(|&((tid, is_write), (start, len))| HandoffOp::Sweep {
            tid,
            start,
            len: len.min(RANGE_GRANULES - start),
            is_write,
        }),
        span.clone().map(|&(start, len)| HandoffOp::ClearRange {
            start,
            len: len.min(RANGE_GRANULES - start),
        }),
        gen::pair(gen::u32_range(1..threads + 1), span).map(|&(tid, (start, len))| {
            HandoffOp::ExitRange {
                tid,
                start,
                len: len.min(RANGE_GRANULES - start),
            }
        }),
    ])
}

/// The ranged-clear contract on the narrow and adaptive engines: a
/// `clear_range` / `clear_thread_range` (one word-level sweep, ONE
/// epoch bump per covered region) leaves verdicts and final shadow
/// words bit-identical to the per-granule `clear` / `clear_thread`
/// fold it replaces. The ranged instance runs every sweep through the
/// owned-run cache so a missing or short epoch bump surfaces as a
/// stale summary and diverging words.
#[test]
fn ranged_clears_equal_per_granule_clear_fold() {
    forall!(
        "ranged_clears_equal_per_granule_clear_fold",
        cfg(),
        gen::vec_of(handoff_op_gen(THREADS), 0..96),
        |ops| {
            let ranged: Shadow = Shadow::new(RANGE_GRANULES);
            let folded: Shadow = Shadow::new(RANGE_GRANULES);
            let ad_ranged = ScalableShadow::new(RANGE_GRANULES);
            let ad_folded = ScalableShadow::new(RANGE_GRANULES);
            let mut caches: HashMap<u32, OwnedCache> = HashMap::new();
            let mut ad_caches: HashMap<u32, OwnedCache> = HashMap::new();
            for (i, &op) in ops.iter().enumerate() {
                match op {
                    HandoffOp::Sweep {
                        tid,
                        start,
                        len,
                        is_write,
                    } => {
                        let t8 = ThreadId(tid as u8);
                        let tw = WideThreadId(tid);
                        let cache = caches.entry(tid).or_default();
                        let ad_cache = ad_caches.entry(tid).or_default();
                        let got = if is_write {
                            [
                                ranged.check_range_write_cached(
                                    start,
                                    len,
                                    t8,
                                    cache,
                                    |_| {},
                                    |_| {},
                                ),
                                folded.check_range_write(start, len, t8, |_| {}, |_| {}),
                                ad_ranged.check_range_write_cached(
                                    start,
                                    len,
                                    tw,
                                    ad_cache,
                                    |_| {},
                                    |_| {},
                                ),
                                ad_folded.check_range_write(start, len, tw, |_| {}, |_| {}),
                            ]
                        } else {
                            [
                                ranged.check_range_read_cached(
                                    start,
                                    len,
                                    t8,
                                    cache,
                                    |_| {},
                                    |_| {},
                                ),
                                folded.check_range_read(start, len, t8, |_| {}, |_| {}),
                                ad_ranged.check_range_read_cached(
                                    start,
                                    len,
                                    tw,
                                    ad_cache,
                                    |_| {},
                                    |_| {},
                                ),
                                ad_folded.check_range_read(start, len, tw, |_| {}, |_| {}),
                            ]
                        };
                        prop_assert!(
                            got[0] == got[1] && got[2] == got[3],
                            "op {} (sweep {}..{}): [ranged, folded, ad-ranged, ad-folded] {:?}",
                            i,
                            start,
                            start + len,
                            got
                        );
                    }
                    HandoffOp::ClearRange { start, len } => {
                        ranged.clear_range(start, len);
                        ad_ranged.clear_range(start, len);
                        for g in start..start + len {
                            folded.clear(g);
                            ad_folded.clear(g);
                        }
                    }
                    HandoffOp::ExitRange { tid, start, len } => {
                        ranged.clear_thread_range(start, len, ThreadId(tid as u8));
                        ad_ranged.clear_thread_range(start, len, WideThreadId(tid));
                        for g in start..start + len {
                            folded.clear_thread(g, ThreadId(tid as u8));
                            ad_folded.clear_thread(g, WideThreadId(tid));
                        }
                    }
                }
            }
            for g in 0..RANGE_GRANULES {
                prop_assert!(
                    ranged.raw(g) == folded.raw(g),
                    "narrow word of granule {}",
                    g
                );
                prop_assert!(
                    ad_ranged.raw(g) == ad_folded.raw(g),
                    "adaptive word of granule {}",
                    g
                );
            }
        }
    );
}

/// The same ranged-clear contract on the multi-shard geometry, with
/// tids up to 256: `clear_range` / `clear_thread_range` on the
/// sharded engine end bit-identical — every shard word — to the
/// per-granule clear fold, under cached sweeps from threads that
/// straddle shard boundaries.
#[test]
fn wide_ranged_clears_equal_per_granule_clear_fold() {
    let geom = ShadowGeometry::for_threads(WIDE_THREADS as usize);
    assert!(geom.shards() > 1, "the point is a multi-shard geometry");
    forall!(
        "wide_ranged_clears_equal_per_granule_clear_fold",
        cfg(),
        gen::vec_of(handoff_op_gen(WIDE_THREADS), 0..96),
        |ops| {
            let ranged = ShardedShadow::with_geometry(RANGE_GRANULES, geom);
            let folded = ShardedShadow::with_geometry(RANGE_GRANULES, geom);
            let mut caches: HashMap<u32, OwnedCache> = HashMap::new();
            for (i, &op) in ops.iter().enumerate() {
                match op {
                    HandoffOp::Sweep {
                        tid,
                        start,
                        len,
                        is_write,
                    } => {
                        let tw = WideThreadId(tid);
                        let cache = caches.entry(tid).or_default();
                        let got = if is_write {
                            [
                                ranged.check_range_write_cached(
                                    start,
                                    len,
                                    tw,
                                    cache,
                                    |_| {},
                                    |_| {},
                                ),
                                folded.check_range_write(start, len, tw, |_| {}, |_| {}),
                            ]
                        } else {
                            [
                                ranged.check_range_read_cached(
                                    start,
                                    len,
                                    tw,
                                    cache,
                                    |_| {},
                                    |_| {},
                                ),
                                folded.check_range_read(start, len, tw, |_| {}, |_| {}),
                            ]
                        };
                        prop_assert!(
                            got[0] == got[1],
                            "op {} (wide sweep {}..{}): [ranged, folded] {:?}",
                            i,
                            start,
                            start + len,
                            got
                        );
                    }
                    HandoffOp::ClearRange { start, len } => {
                        ranged.clear_range(start, len);
                        for g in start..start + len {
                            folded.clear(g);
                        }
                    }
                    HandoffOp::ExitRange { tid, start, len } => {
                        ranged.clear_thread_range(start, len, WideThreadId(tid));
                        for g in start..start + len {
                            folded.clear_thread(g, WideThreadId(tid));
                        }
                    }
                }
            }
            for g in 0..RANGE_GRANULES {
                prop_assert!(
                    ranged.raw_words(g) == folded.raw_words(g),
                    "wide words of granule {}",
                    g
                );
            }
        }
    );
}

/// The whole `CheckEvent` vocabulary over tids `1..=threads`: point
/// and ranged accesses, lock traffic, forks, sharing casts (point and
/// ranged), exits, allocs, and ranged frees. Shared by the lowering
/// differential (narrow tids) and the streaming differential (narrow
/// *and* cross-shard tids).
fn spine_event_gen(threads: u32) -> Gen<CheckEvent> {
    use CheckEvent as E;
    gen::pair(
        gen::u32_range(0..14),
        gen::pair(
            gen::u32_range(1..threads + 1),
            gen::usize_range(0..GRANULES),
        ),
    )
    .map(|&(kind, (tid, granule))| {
        let lock = granule % 3;
        let len = (granule % 5) + 1;
        match kind {
            0 => E::Read { tid, granule },
            1 => E::Write { tid, granule },
            2 | 3 => E::RangeRead { tid, granule, len },
            4 | 5 => E::RangeWrite { tid, granule, len },
            6 => E::Acquire { tid, lock },
            7 => E::Release { tid, lock },
            8 => E::Fork {
                parent: tid,
                child: tid + 1,
            },
            9 => E::SharingCast {
                tid,
                granule,
                refs: 1,
            },
            10 => E::ThreadExit { tid },
            11 => E::RangeCast {
                tid,
                granule,
                len,
                refs: 1,
            },
            12 => E::RangeFree { granule, len },
            _ => E::Alloc { granule },
        }
    })
}

/// Replay-lowering is verdict-invisible for **every** backend, not
/// just SharC's: a trace with range events and the same trace with
/// each range expanded to per-granule events produce bit-identical
/// conflict lists under the bitmap engine, Eraser, and the
/// vector-clock detector. This is what licenses workloads to emit one
/// event per buffer sweep while the §6.2 detector comparison keeps
/// judging the same execution.
#[test]
fn range_replay_lowering_is_bit_identical_for_every_backend() {
    use sharc_checker::lower_ranges;
    use sharc_detectors::VcDetector;

    forall!(
        "range_replay_lowering_is_bit_identical_for_every_backend",
        cfg(),
        gen::vec_of(spine_event_gen(5), 0..64),
        |events| {
            let lowered = lower_ranges(events);
            prop_assert!(
                !lowered.iter().any(|e| matches!(
                    e,
                    CheckEvent::RangeRead { .. }
                        | CheckEvent::RangeWrite { .. }
                        | CheckEvent::RangeCast { .. }
                        | CheckEvent::RangeFree { .. }
                )),
                "lowering leaves only per-granule events"
            );
            let a = sharc_checker::replay(events, &mut BitmapBackend::new());
            let b = sharc_checker::replay(&lowered, &mut BitmapBackend::new());
            prop_assert!(a == b, "sharc: ranged {:?} vs lowered {:?}", a, b);
            let a = sharc_checker::replay(events, &mut BaselineBackend::new(Eraser::new()));
            let b = sharc_checker::replay(&lowered, &mut BaselineBackend::new(Eraser::new()));
            prop_assert!(a == b, "eraser: ranged {:?} vs lowered {:?}", a, b);
            let a = sharc_checker::replay(events, &mut BaselineBackend::new(VcDetector::new()));
            let b = sharc_checker::replay(&lowered, &mut BaselineBackend::new(VcDetector::new()));
            prop_assert!(a == b, "vc: ranged {:?} vs lowered {:?}", a, b);
        }
    );
}

/// Parallel region-sharded replay is bit-identical to the sequential
/// fold for **every** backend — at cross-shard tids (256 threads,
/// five shards), over the full spine vocabulary, for every worker
/// count 1–5. Conflict *lists*, order included, not just sets: this
/// is the acceptance differential licensing `sharc replay --jobs N`
/// to stand in for the sequential judge.
#[test]
fn parallel_replay_is_bit_identical_to_sequential_for_every_backend() {
    use sharc_checker::{geometry_for_trace, ParallelReplay};
    use sharc_detectors::VcDetector;

    forall!(
        "parallel_replay_is_bit_identical_to_sequential_for_every_backend",
        cfg(),
        gen::pair(
            gen::vec_of(spine_event_gen(WIDE_THREADS), 0..96),
            gen::usize_range(1..6),
        ),
        |(events, jobs)| {
            let engine = ParallelReplay::new(*jobs);
            let geom = geometry_for_trace(events);
            let seq = sharc_checker::replay(events, &mut BitmapBackend::with_geometry(geom));
            let par = engine.replay(events, move || {
                Box::new(BitmapBackend::with_geometry(geom)) as _
            });
            prop_assert!(seq == par, "sharc jobs={}: {:?} vs {:?}", jobs, seq, par);
            let seq = sharc_checker::replay(events, &mut BaselineBackend::new(Eraser::new()));
            let par = engine.replay(events, || {
                Box::new(BaselineBackend::new(Eraser::new())) as _
            });
            prop_assert!(seq == par, "eraser jobs={}: {:?} vs {:?}", jobs, seq, par);
            let seq = sharc_checker::replay(events, &mut BaselineBackend::new(VcDetector::new()));
            let par = engine.replay(events, || {
                Box::new(BaselineBackend::new(VcDetector::new())) as _
            });
            prop_assert!(seq == par, "vc jobs={}: {:?} vs {:?}", jobs, seq, par);
        }
    );
}

/// The named regression: ownership hand-off through a sharing cast
/// (the paper's §2.1 producer/consumer idiom, `examples/minic/handoff.c`).
/// SharC's engine is silent — the `oneref`-checked cast transfers the
/// object and clears its history — while the Eraser adapter, blind to
/// `on_cast_clear`, keeps judging the object by its pre-transfer
/// accesses and reports a false positive on the very same trace.
#[test]
fn ownership_transfer_sharc_silent_eraser_false_positive() {
    use CheckEvent as E;
    let g = 3;
    let trace = vec![
        E::Fork {
            parent: 1,
            child: 2,
        },
        // Producer initializes the private buffer...
        E::Write { tid: 1, granule: g },
        // ...and hands it off with a reference-count-checked cast.
        E::SharingCast {
            tid: 1,
            granule: g,
            refs: 1,
        },
        // Consumer now owns the buffer.
        E::Read { tid: 2, granule: g },
        E::Write { tid: 2, granule: g },
    ];

    let mut sharc = BitmapBackend::new();
    let sharc_conflicts = sharc_checker::replay(&trace, &mut sharc);
    assert!(
        sharc_conflicts.is_empty(),
        "SharC accepts the hand-off: {sharc_conflicts:?}"
    );

    let mut eraser = BaselineBackend::new(Eraser::new());
    let eraser_conflicts = sharc_checker::replay(&trace, &mut eraser);
    assert!(
        !eraser_conflicts.is_empty(),
        "Eraser has no ownership-transfer model and must false-positive"
    );

    // Drop the cast from the trace and SharC agrees with Eraser:
    // without the transfer the second thread's write *is* a race.
    let no_cast: Vec<CheckEvent> = trace
        .iter()
        .copied()
        .filter(|e| !matches!(e, E::SharingCast { .. }))
        .collect();
    let mut sharc2 = BitmapBackend::new();
    assert!(
        !sharc_checker::replay(&no_cast, &mut sharc2).is_empty(),
        "the cast is load-bearing: without it SharC reports the race"
    );
}

/// A *native* execution at fleet width: one recorded stunnel run with
/// more than 200 real worker threads, replayed through all three
/// engines. The pinning mirrors the paper's §6.2 comparison on a
/// single concrete execution instead of a synthetic trace:
///
/// * SharC is clean — every hand-off is a reference-count-checked
///   sharing cast, every counter access is under its lock;
/// * Eraser false-positives — the worker's nonce write into the
///   handshake buffer happens after the cast, with an empty lockset
///   intersection against the acceptor's unlocked initialization;
/// * vector clocks are clean — the session-lock release→acquire pair
///   linearized through the event log gives HB the edge the lockset
///   algorithm cannot see.
///
/// The cast-stripping control shows the cast is SharC's load-bearing
/// evidence: without it SharC reports the transfer as a race too.
#[test]
fn stunnel_wide_trace_pins_all_backends() {
    use sharc_workloads::benchmarks::stunnel::{self, Params};

    // ≥ 200 worker tids: workers land at tids 3..=222, four shards.
    let params = Params {
        clients: 220,
        workers: 220,
        messages: 2,
        msg_len: 64,
    };
    let (run, trace) = stunnel::run_traced(&params);
    assert!(
        run.threads > 200,
        "fleet width: got {} threads",
        run.threads
    );
    assert_eq!(run.conflicts, 0, "the native run itself is clean");
    let widest = trace
        .iter()
        .filter_map(|e| match e {
            CheckEvent::RangeWrite { tid, .. } | CheckEvent::RangeRead { tid, .. } => Some(*tid),
            _ => None,
        })
        .max()
        .unwrap_or(0);
    assert!(widest > 200, "ranged sweeps carry wide tids: max {widest}");

    // SharC, at the geometry the recorded tids demand.
    let geom = geometry_for_trace(&trace);
    assert!(
        geom.shards() > 1,
        "fleet width needs a multi-shard geometry"
    );
    let mut sharc = BitmapBackend::with_geometry(geom);
    let sharc_conflicts = sharc_checker::replay(&trace, &mut sharc);
    assert!(
        sharc_conflicts.is_empty(),
        "SharC accepts the fleet's hand-offs: {sharc_conflicts:?}"
    );

    // Eraser on the identical execution.
    let mut eraser = BaselineBackend::new(Eraser::new());
    assert!(
        !sharc_checker::replay(&trace, &mut eraser).is_empty(),
        "Eraser must false-positive on the unlocked ownership transfers"
    );

    // Vector clocks on the identical execution.
    let mut vc = BaselineBackend::new(VcDetector::new());
    let vc_conflicts = sharc_checker::replay(&trace, &mut vc);
    assert!(
        vc_conflicts.is_empty(),
        "HB sees the session-lock edges: {vc_conflicts:?}"
    );

    // Control: strip the casts and SharC joins Eraser in reporting.
    let no_cast: Vec<CheckEvent> = trace
        .iter()
        .copied()
        .filter(|e| {
            !matches!(
                e,
                CheckEvent::SharingCast { .. } | CheckEvent::RangeCast { .. }
            )
        })
        .collect();
    let mut sharc2 = BitmapBackend::with_geometry(geom);
    assert!(
        !sharc_checker::replay(&no_cast, &mut sharc2).is_empty(),
        "without the casts the wide-tid transfers are races to SharC"
    );
}

// ----- Streaming detection (PR 7) -----

/// The streaming pipeline's tentpole invariant: for **every** choice
/// of ring count, ring capacity, and drain interleaving, feeding a
/// trace through a [`StreamingSink`] yields conflicts bit-identical
/// to the serialized replay fold of the same trace on the same
/// backend — for SharC's bitmap engine, Eraser, and vector clocks
/// alike. Traces draw from the full spine vocabulary (ranged events
/// included) at both narrow and cross-shard tid widths, and the
/// stream's accounting must close: everything recorded is drained,
/// and the peak resident count never exceeds the ring budget.
#[test]
fn streaming_verdicts_equal_replay_fold_for_every_backend() {
    use sharc_detectors::VcDetector;

    type BackendFactory = Box<dyn Fn() -> Box<dyn CheckBackend + Send>>;

    let scenario = gen::pair(
        gen::one_of(vec![
            gen::vec_of(spine_event_gen(5), 0..64),
            gen::vec_of(spine_event_gen(WIDE_THREADS - 1), 0..64),
        ]),
        gen::pair(
            gen::pair(gen::usize_range(1..5), gen::usize_range(1..17)),
            gen::usize_range(0..8),
        ),
    );
    forall!(
        "streaming_verdicts_equal_replay_fold_for_every_backend",
        cfg(),
        scenario,
        |scenario| {
            let (events, ((rings, cap), drain_every)) = scenario;
            let (rings, cap, drain_every) = (*rings, *cap, *drain_every);
            let geom = geometry_for_trace(events);
            let backends: Vec<(&str, BackendFactory)> = vec![
                (
                    "sharc",
                    Box::new(move || Box::new(BitmapBackend::with_geometry(geom))),
                ),
                (
                    "eraser",
                    Box::new(|| Box::new(BaselineBackend::new(Eraser::new()))),
                ),
                (
                    "vc",
                    Box::new(|| Box::new(BaselineBackend::new(VcDetector::new()))),
                ),
            ];
            for (name, make) in &backends {
                let mut replay_backend = make();
                let want = sharc_checker::replay(events, replay_backend.as_mut());
                let sink = StreamingSink::new(rings, cap, make());
                for (i, &e) in events.iter().enumerate() {
                    sink.record(e);
                    if drain_every != 0 && (i + 1) % drain_every == 0 {
                        sink.collect();
                    }
                }
                let (got, stats) = sink.finish();
                prop_assert!(
                    got == want,
                    "{}: rings {} cap {} drain_every {}: streamed {:?} vs replay {:?}",
                    name,
                    rings,
                    cap,
                    drain_every,
                    got,
                    want
                );
                prop_assert!(
                    stats.recorded == events.len() as u64 && stats.drained == stats.recorded,
                    "{}: accounting must close: {:?} over {} events",
                    name,
                    stats,
                    events.len()
                );
                prop_assert!(
                    stats.peak_resident <= stats.ring_budget,
                    "{}: peak {} exceeds ring budget {}",
                    name,
                    stats.peak_resident,
                    stats.ring_budget
                );
            }
        }
    );
}

/// Streaming at fleet width: the same >200-worker recorded stunnel
/// execution that pins the three replay engines is streamed through
/// per-thread rings with a deliberately tiny capacity, and the
/// collector's verdict is bit-identical to the replay fold while the
/// peak resident event count stays inside the fixed ring budget —
/// the recorded trace is three orders of magnitude larger. A second,
/// *live* streaming run (real worker threads racing the collector)
/// then confirms verdict parity under actual concurrency: SharC
/// clean, Eraser false-positive, with the budget still holding.
#[test]
fn stunnel_streaming_is_bit_identical_to_replay_at_fleet_width() {
    use std::sync::Arc;

    use sharc_workloads::benchmarks::stunnel::{self, Params};

    let params = Params {
        clients: 220,
        workers: 220,
        messages: 2,
        msg_len: 64,
    };
    let (run, trace) = stunnel::run_traced(&params);
    assert!(
        run.threads > 200,
        "fleet width: got {} threads",
        run.threads
    );
    let geom = geometry_for_trace(&trace);
    assert!(geom.shards() > 1, "wide tids demand a multi-shard geometry");

    // Replay fold of the recorded execution — the pinned oracle.
    let want = sharc_checker::replay(&trace, &mut BitmapBackend::with_geometry(geom));
    assert!(want.is_empty(), "SharC accepts the fleet: {want:?}");

    // The identical recorded execution, streamed through tiny rings
    // with periodic mid-stream drains.
    let sink = StreamingSink::new(8, 64, Box::new(BitmapBackend::with_geometry(geom)));
    for (i, &e) in trace.iter().enumerate() {
        sink.record(e);
        if (i + 1) % 97 == 0 {
            sink.collect();
        }
    }
    let (got, stats) = sink.finish();
    assert_eq!(got, want, "streamed verdicts must equal the replay fold");
    assert_eq!(stats.recorded, trace.len() as u64);
    assert_eq!(stats.drained, stats.recorded, "no event may be lost");
    assert!(
        stats.peak_resident <= stats.ring_budget,
        "peak {} exceeds ring budget {}",
        stats.peak_resident,
        stats.ring_budget
    );
    assert!(
        stats.ring_budget < trace.len() / 2,
        "the budget must be far below the trace ({} vs {})",
        stats.ring_budget,
        trace.len()
    );

    // Live: real threads race the collector, same fixed budget.
    let wide = ShadowGeometry::for_threads(params.workers + 2);
    let live = Arc::new(StreamingSink::new(
        8,
        64,
        Box::new(BitmapBackend::with_geometry(wide)),
    ));
    let live_run = stunnel::run_with_events(&params, live.clone());
    let (live_conflicts, live_stats) = live.finish();
    assert_eq!(live_run.conflicts, 0, "the live run itself is clean");
    assert!(
        live_conflicts.is_empty(),
        "live streaming SharC stays clean: {live_conflicts:?}"
    );
    assert!(
        live_stats.peak_resident <= live_stats.ring_budget,
        "live peak {} exceeds ring budget {}",
        live_stats.peak_resident,
        live_stats.ring_budget
    );
    assert_eq!(live_stats.drained, live_stats.recorded);

    // Eraser live-streams its ownership-transfer false positive too.
    let eraser = Arc::new(StreamingSink::new(
        8,
        64,
        Box::new(BaselineBackend::new(Eraser::new())),
    ));
    stunnel::run_with_events(&params, eraser.clone());
    let (eraser_conflicts, _) = eraser.finish();
    assert!(
        !eraser_conflicts.is_empty(),
        "Eraser must false-positive while streaming live"
    );
}
