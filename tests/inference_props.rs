//! Property tests on the sharing analysis itself (paper §4.1):
//! inference totality, idempotence through the pretty-printer, and
//! the paper's incrementality story — "as the user adds more
//! annotations, false warnings are reduced, and performance
//! improves".
//!
//! Runs on the sharc-testkit property harness; base seed comes from
//! `SHARC_TEST_SEED`.

use minic::{Qual, Type};
use sharc_testkit::gen::{self, Gen};
use sharc_testkit::prop::Config;
use sharc_testkit::{forall, prop_assert, prop_assert_eq};

/// Checks that no qualifier variable or `Infer` survives inference
/// anywhere in the program (struct fields may keep `Poly`).
fn fully_concrete(p: &minic::Program) -> bool {
    fn ty_ok(t: &Type, allow_poly: bool) -> bool {
        let mut ok = true;
        t.for_each_level(&mut |l| match &l.qual {
            Qual::Infer | Qual::Var(_) => ok = false,
            Qual::Poly if !allow_poly => ok = false,
            _ => {}
        });
        ok
    }
    let mut ok = true;
    for sd in &p.structs {
        for f in &sd.fields {
            if !ty_ok(&f.ty, true) {
                ok = false;
            }
        }
    }
    for g in &p.globals {
        if !ty_ok(&g.ty, false) {
            ok = false;
        }
    }
    for f in &p.fns {
        if !ty_ok(&f.ret, false) {
            ok = false;
        }
        for param in &f.params {
            if !ty_ok(&param.ty, false) {
                ok = false;
            }
        }
    }
    ok
}

/// A small generator of well-formed MiniC programs assembled from
/// worker/main statement fragments.
fn program_gen() -> Gen<String> {
    let worker_stmts = gen::choose(vec![
        "*d = *d + 1;",
        "v = *d;",
        "g = g + 1;",
        "v = g;",
        "v = v * 2;",
    ]);
    let main_stmts = gen::choose(vec!["x = x + 1;", "g = 0;", "*p = 3;"]);
    gen::triple(
        gen::vec_of(worker_stmts, 1..4),
        gen::vec_of(main_stmts, 0..3),
        gen::bool_any(),
    )
    .map(|t| {
        let (ws, ms, two_threads) = t;
        let worker_body: String = ws.join("\n    ");
        let main_body: String = ms.join("\n    ");
        let second = if *two_threads {
            "spawn(worker, p);"
        } else {
            ""
        };
        format!(
            "int g;\n\
             void worker(int * d) {{\n    int v;\n    {worker_body}\n}}\n\
             void main() {{\n    int x;\n    int * p;\n    p = new(int);\n    \
             {main_body}\n    spawn(worker, p);\n    {second}\n    join_all();\n}}"
        )
    })
}

fn cfg() -> Config {
    Config::from_env().with_cases(48)
}

/// Inference always terminates with every qualifier concrete, and
/// the result passes the checker (no internal inconsistencies).
#[test]
fn inference_is_total_and_self_consistent() {
    forall!(
        "inference_is_total_and_self_consistent",
        cfg(),
        program_gen(),
        |src| {
            let checked = sharc::check("gen.c", src).expect("parses");
            prop_assert!(
                fully_concrete(&checked.program),
                "{}",
                minic::pretty::program(&checked.program)
            );
            prop_assert!(!checked.diags.has_errors(), "{}", checked.render_diags());
        }
    );
}

/// Printing the inferred program and re-checking it is stable: the
/// annotations SharC infers are themselves valid annotations
/// ("compiler-checked documentation").
#[test]
fn inference_fixpoint_through_pretty_printer() {
    forall!(
        "inference_fixpoint_through_pretty_printer",
        cfg(),
        program_gen(),
        |src| {
            let first = sharc::check("gen.c", src).expect("parses");
            if first.diags.has_errors() {
                // prop_assume: only error-free programs are interesting.
                return Ok(());
            }
            let printed = minic::pretty::program(&first.program);
            let second = sharc::check("gen2.c", &printed)
                .unwrap_or_else(|e| panic!("inferred program must reparse: {e}\n{printed}"));
            prop_assert!(
                !second.diags.has_errors(),
                "{}\n---\n{printed}",
                second.render_diags()
            );
            // The same positions end up dynamic.
            let quals = |p: &minic::Program| -> Vec<minic::Qual> {
                let mut v = Vec::new();
                for f in &p.fns {
                    for param in &f.params {
                        param.ty.for_each_level(&mut |l| v.push(l.qual.clone()));
                    }
                }
                v
            };
            prop_assert_eq!(quals(&first.program), quals(&second.program));
        }
    );
}

/// Annotating inferred-dynamic data as racy removes runtime checks —
/// the incrementality knob the paper describes.
#[test]
fn racy_annotation_reduces_checks() {
    forall!(
        "racy_annotation_reduces_checks",
        cfg(),
        gen::usize_range(1..5),
        |&n_writes| {
            let body: String = (0..n_writes)
                .map(|_| "g = g + 1;")
                .collect::<Vec<_>>()
                .join("\n    ");
            let plain = format!(
                "int g;\nvoid worker(int * d) {{\n    {body}\n}}\n\
             void main() {{ int * p; spawn(worker, p); spawn(worker, p); join_all(); }}"
            );
            let racy = plain.replace("int g;", "int racy g;");
            let a = sharc::check("plain.c", &plain).expect("parses");
            let b = sharc::check("racy.c", &racy).expect("parses");
            prop_assert!(a.instr.n_dynamic_sites > 0);
            prop_assert_eq!(b.instr.n_dynamic_sites, 0);
        }
    );
}

#[test]
fn annotations_monotonically_reduce_dynamic_fraction() {
    // The paper's incremental-adoption claim, measured: unannotated
    // -> locked annotation shifts accesses from dynamic checks to
    // (cheaper) lock-log checks.
    let unannotated = "
        struct s { mutex m; int v; };
        void w(struct s * x) { int i; for (i = 0; i < 20; i++) {
            mutex_lock(&x->m); x->v = x->v + 1; mutex_unlock(&x->m); } }
        void main() { struct s * x = new(struct s);
            spawn(w, x); spawn(w, x); join_all(); }";
    let annotated = unannotated.replace("int v;", "int locked(m) v;");

    let a = sharc::check_and_run("u.c", unannotated, sharc::RunConfig::default()).unwrap();
    let checked = sharc::check("a.c", &annotated).unwrap();
    let b = sharc::run(&checked, sharc::RunConfig::default()).unwrap();
    assert!(a.stats.dynamic_accesses > b.stats.dynamic_accesses);
    // The shift goes further than the paper's dynamic->lock-log step
    // now: the annotated accesses are lock-dominated, so the elision
    // pass proves the lock-log checks away entirely. The reference
    // (full-checks) build still performs them.
    let b_full = sharc::run_full_checks(&checked, sharc::RunConfig::default()).unwrap();
    assert!(b_full.stats.lock_checks > 0);
    assert_eq!(b.stats.lock_checks, 0);
    assert!(b.stats.checks_elided > 0);
    assert!(b.reports.is_empty() && b_full.reports.is_empty());
}
