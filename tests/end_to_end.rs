//! Cross-crate integration tests: the five sharing modes end to end,
//! mode transitions via sharing casts, and agreement between the
//! checker, the VM, and the native runtime on what constitutes a
//! violation.

use sharc::prelude::*;

fn run_seeded(src: &str, seed: u64) -> RunOutcome {
    sharc::check_and_run(
        "e2e.c",
        src,
        RunConfig {
            seed,
            ..RunConfig::default()
        },
    )
    .unwrap_or_else(|e| panic!("program rejected: {e}"))
}

fn reports_across_seeds(src: &str, seeds: std::ops::Range<u64>) -> usize {
    seeds.map(|s| run_seeded(src, s).reports.len()).sum()
}

// ----- the five modes -----

#[test]
fn private_mode_is_never_checked() {
    let out = run_seeded(
        "void main() { int x; int * p; p = &x; *p = 5; print(*p); }",
        0,
    );
    assert_eq!(out.stats.dynamic_accesses, 0);
    assert_eq!(out.output, vec!["5"]);
}

#[test]
fn readonly_mode_allows_concurrent_reads() {
    let src = "
        int readonly limit = 10;
        void worker(int * d) { int i; int s; s = 0;
            for (i = 0; i < limit; i++) s = s + i; *d = s; }
        void main() { int * a; int * b;
            a = new(int); b = new(int);
            spawn(worker, a); spawn(worker, b); join_all();
            print(*a + *b); }";
    let out = run_seeded(src, 1);
    assert!(out.reports.is_empty(), "{}", out.reports[0]);
    assert_eq!(out.output, vec!["90"]);
}

#[test]
fn readonly_write_is_static_error() {
    let checked = sharc::check("ro.c", "int readonly k = 1; void main() { k = 2; }").unwrap();
    assert!(checked.diags.has_errors());
}

#[test]
fn locked_mode_enforced_at_runtime() {
    // Forgetting the lock on one path is caught.
    let src = "
        struct s { mutex m; int locked(m) v; };
        void w1(struct s * x) { mutex_lock(&x->m); x->v = 1; mutex_unlock(&x->m); }
        void w2(struct s * x) { x->v = 2; }
        void main() { struct s * x = new(struct s);
            spawn(w1, x); spawn(w2, x); join_all(); }";
    let out = run_seeded(src, 0);
    assert!(
        out.reports.iter().any(|r| r.kind == ConflictKind::Lock),
        "{:?}",
        out.reports
    );
}

#[test]
fn racy_mode_is_trusted() {
    let src = "
        int racy stats;
        void worker(int * d) { int i; for (i = 0; i < 30; i++) stats = stats + 1; }
        void main() { int * p; spawn(worker, p); spawn(worker, p); join_all(); }";
    assert_eq!(reports_across_seeds(src, 0..4), 0);
}

#[test]
fn dynamic_mode_catches_real_races_only() {
    // Same dynamic object: exclusive writer windows via join are
    // fine; concurrent writers are not.
    let serial = "
        void w(int * d) { *d = *d + 1; }
        void main() { int * p; int t; p = new(int);
            t = spawn(w, p); join(t);
            t = spawn(w, p); join(t); print(*p); }";
    let out = run_seeded(serial, 3);
    assert!(out.reports.is_empty());
    assert_eq!(out.output, vec!["2"]);

    let parallel = "
        void w(int * d) { int i; for (i = 0; i < 30; i++) *d = *d + 1; }
        void main() { int * p; p = new(int);
            spawn(w, p); spawn(w, p); join_all(); }";
    assert!(reports_across_seeds(parallel, 0..4) > 0);
}

// ----- mode transitions -----

#[test]
fn full_lifecycle_private_locked_private() {
    // The producer-consumer lifecycle of §2: private -> locked ->
    // private, each transition a checked sharing cast.
    let src = "
        struct ch { mutex m; cond cv; int *locked(m) slot; };
        void consumer(struct ch * c) {
            int private * d;
            int n;
            for (n = 0; n < 8; n++) {
                mutex_lock(&c->m);
                while (c->slot == NULL) cond_wait(&c->cv, &c->m);
                d = SCAST(int private *, c->slot);
                cond_signal(&c->cv);
                mutex_unlock(&c->m);
                assert(*d == n * 10);
                free(d);
            }
        }
        void main() {
            struct ch * c = new(struct ch);
            int private * b;
            int n;
            spawn(consumer, c);
            for (n = 0; n < 8; n++) {
                b = new(int private);
                *b = n * 10;
                mutex_lock(&c->m);
                while (c->slot) cond_wait(&c->cv, &c->m);
                c->slot = SCAST(int locked(c->m) *, b);
                cond_signal(&c->cv);
                mutex_unlock(&c->m);
            }
            join_all();
        }";
    for seed in [0u64, 5, 11] {
        let out = run_seeded(src, seed);
        assert_eq!(out.status, ExitStatus::Completed, "seed {seed}");
        assert!(out.reports.is_empty(), "seed {seed}: {}", out.reports[0]);
        assert!(out.stats.oneref_checks >= 16);
    }
}

#[test]
fn leaked_alias_makes_cast_fail() {
    // Keeping a second pointer alive across the hand-off defeats the
    // ownership transfer; SharC's oneref check catches it.
    let src = "
        int * leak;
        void worker(int * d) { int private * l; l = SCAST(int private *, d); }
        void main() { int * b; b = new(int); leak = b;
            spawn(worker, b); join_all(); }";
    let out = run_seeded(src, 0);
    assert!(
        out.reports.iter().any(|r| r.kind == ConflictKind::OneRef),
        "{:?}",
        out.reports
    );
}

#[test]
fn cast_forgives_past_accesses() {
    // After a successful cast, earlier accesses by other threads no
    // longer count as sharing (the formal semantics clears the
    // reader/writer sets).
    let src = "
        void worker(int * d) {
            int private * mine;
            *d = 1;
            mine = SCAST(int private *, d);
            *mine = 2;
        }
        void main() {
            int * p;
            int t;
            p = new(int);
            *p = 0;
            t = spawn(worker, SCAST(int dynamic *, p));
            join(t);
        }";
    let out = run_seeded(src, 0);
    assert!(out.reports.is_empty(), "{}", out.reports[0]);
}

// ----- inference behaviours -----

#[test]
fn sharing_analysis_keeps_main_only_data_private() {
    let src = "
        int main_only;
        int shared_flag;
        void worker(int * d) { shared_flag = 1; }
        void main() { int * p; main_only = 7; spawn(worker, p); join_all(); }";
    let checked = sharc::check("inf.c", src).unwrap();
    let main_only = checked.program.global_by_name("main_only").unwrap();
    let shared = checked.program.global_by_name("shared_flag").unwrap();
    assert_eq!(main_only.ty.qual, minic::Qual::Private);
    assert_eq!(shared.ty.qual, minic::Qual::Dynamic);
    // And at runtime, only the shared flag's accesses are checked.
    let out = sharc::run(&checked, RunConfig::default()).unwrap();
    assert!(out.stats.dynamic_accesses >= 1);
    assert!(out.stats.dynamic_accesses <= 4);
}

#[test]
fn function_pointer_callees_are_checked_too() {
    // Dispatch through a function pointer: the callee's accesses to
    // shared data are still instrumented.
    let src = "
        int counter;
        void bump(int x) { counter = counter + x; }
        void worker(int * d) {
            void (* f)(int x);
            f = bump;
            f(1);
        }
        void main() { int * p; spawn(worker, p); spawn(worker, p); join_all(); }";
    let mut any = 0;
    for seed in 0..6 {
        any += run_seeded(src, seed).reports.len();
    }
    assert!(
        any > 0,
        "racy counter behind a function pointer must be caught"
    );
}

#[test]
fn vm_and_native_runtime_agree_on_granularity() {
    // Both implementations treat 16 bytes as one granule: adjacent
    // word-sized fields false-share.
    use sharc_runtime::{Arena, ThreadCtx, ThreadId};
    let arena: Arena = Arena::new(2);
    let mut c1 = ThreadCtx::new(ThreadId(1));
    let mut c2 = ThreadCtx::new(ThreadId(2));
    arena.write_checked(&mut c1, 0, 1);
    arena.write_checked(&mut c2, 1, 1);
    assert_eq!(c2.conflicts, 1, "native runtime: same granule");

    let src = "
        struct two { int a; int b; };
        void w1(struct two * t) { t->a = 1; }
        void w2(struct two * t) { t->b = 1; }
        void main() { struct two * t = new(struct two);
            spawn(w1, t); spawn(w2, t); join_all(); }";
    let total: usize = (0..8).map(|s| run_seeded(src, s).reports.len()).sum();
    assert!(total > 0, "VM: same granule reports false sharing");
}

// ----- static check elision -----

#[test]
fn elision_exemplar_explains_exact_sites() {
    // The `--explain-elision` contract on examples/minic/elision.c:
    // the spawn-unique loop body (line 16) and the lock-dominated
    // region (line 22) are elided with their reasons; the escaping
    // counterexample (lines 27-28) keeps its checks and must not
    // appear in the explanation.
    let src = include_str!("../examples/minic/elision.c");
    let checked = sharc::check("elision.c", src).unwrap();
    assert!(!checked.diags.has_errors(), "{}", checked.render_diags());
    let lines = sharc::explain_elision(&checked);
    assert_eq!(
        lines,
        vec![
            "elide write *d [spawn-unique] @ elision.c:16",
            "elide read *d [spawn-unique] @ elision.c:16",
            "elide write c->v [lock-held] @ elision.c:22",
            "elide read c->v [lock-held] @ elision.c:22",
        ]
    );
    let el = &checked.elision.summary;
    assert_eq!(el.elided_slots, 4);
    assert_eq!(el.checked_slots, 6, "the escaping sites stay checked");
    // Elided and full-checks builds agree on the clean verdict, and
    // the elided run needs no dynamic accesses for the private loop
    // or the locked region.
    let elided = sharc::run(
        &checked,
        RunConfig {
            seed: 3,
            ..RunConfig::default()
        },
    )
    .unwrap();
    let full = sharc::run_full_checks(
        &checked,
        RunConfig {
            seed: 3,
            ..RunConfig::default()
        },
    )
    .unwrap();
    assert_eq!(elided.status, ExitStatus::Completed);
    assert_eq!(elided.status, full.status);
    assert_eq!(elided.output, full.output);
    assert!(elided.reports.is_empty() && full.reports.is_empty());
    assert_eq!(elided.stats.checks_elided, 4);
    assert!(elided.stats.dynamic_accesses < full.stats.dynamic_accesses);
}

#[test]
fn racy_exemplar_still_reports_under_elision() {
    // Elision may never hide a report: the racy counter's accesses
    // are reached by two threads, so nothing is elided and the race
    // is still caught by the default (eliding) build.
    let src = include_str!("../examples/minic/counter_racy.c");
    let checked = sharc::check("counter_racy.c", src).unwrap();
    assert!(!checked.diags.has_errors(), "{}", checked.render_diags());
    assert_eq!(checked.elision.summary.elided_slots, 0);
    let total: usize = (0..4u64)
        .map(|seed| {
            sharc::run(
                &checked,
                RunConfig {
                    seed,
                    ..RunConfig::default()
                },
            )
            .unwrap()
            .reports
            .len()
        })
        .sum();
    assert!(total > 0, "the race must still be reported under elision");
}

#[test]
fn output_is_deterministic_per_seed_and_varies_across() {
    let src = "
        void w(int * d) { int i; for (i = 0; i < 20; i++) *d = *d + 1; }
        void main() { int * p; p = new(int);
            spawn(w, p); spawn(w, p); join_all(); print(*p); }";
    let a1 = run_seeded(src, 7);
    let a2 = run_seeded(src, 7);
    assert_eq!(a1.output, a2.output);
    assert_eq!(a1.stats.steps, a2.stats.steps);
}
