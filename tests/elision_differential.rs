//! Soundness of the static check-elision pass, pinned the way this
//! repo pins every optimization: a differential against the
//! unoptimized build, plus a mutation property.
//!
//! * **Differential** — for generated programs that are race-free
//!   *by construction* (single spawn, or every access behind its
//!   lock), the default (eliding) build must be bit-identical to the
//!   fully-checked build on every seed: same clean report list, same
//!   status, same output. The comparison keys on the program shape,
//!   not on one observed execution: a racy program that happened not
//!   to race under the full build's interleaving proves nothing about
//!   the elided build's *different* interleaving.
//! * **Mutation** — making an elided access actually race (a second
//!   spawn on the same object, an escaping alias) must force the
//!   analysis to stop eliding it: the facts table keeps the raced
//!   sites checked, and the default build still reports the race.
//!   Elision may never hide a report the checked build would make.

use sharc_testkit::gen::{self, Gen};
use sharc_testkit::prop::Config;
use sharc_testkit::{forall, prop_assert};

/// One generated program shape: a worker hammering a heap counter,
/// optionally lock-protected, optionally escaping its argument into
/// a global, spawned once (race-free) or twice (racy).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Knobs {
    /// Protect the counter with `locked(m)` + a lock-dominated region.
    locked: bool,
    /// Leak the worker's pointer into a global (kills elision).
    /// Ignored by the locked template (the leak store itself would
    /// race when two workers run).
    escape: bool,
    /// Spawn the worker twice on one object (induces the race).
    second_spawn: bool,
    /// Loop trip count.
    iters: u32,
    /// VM scheduler seed.
    seed: u64,
}

impl Knobs {
    /// Race-free by construction: lock-dominated accesses are always
    /// serialized; unlocked ones only when a single worker runs.
    fn race_free(&self) -> bool {
        self.locked || !self.second_spawn
    }
}

fn knobs_gen() -> Gen<Knobs> {
    gen::pair(
        gen::pair(gen::pair(gen::bool_any(), gen::bool_any()), gen::bool_any()),
        gen::pair(gen::u32_range(1..12), gen::u64_range(0..1 << 32)),
    )
    .map(|&(((locked, escape), second_spawn), (iters, seed))| Knobs {
        locked,
        escape,
        second_spawn,
        iters,
        seed,
    })
}

/// Renders the knobs as MiniC source. Output is printed only after
/// every join, so a race-free execution's output is deterministic
/// across builds even though their instruction streams differ.
fn program(k: &Knobs) -> String {
    let n = k.iters;
    if k.locked {
        let spawn = if k.second_spawn {
            "spawn(worker, c); spawn(worker, c); join_all();"
        } else {
            "t = spawn(worker, c); join(t);"
        };
        format!(
            "struct ctr {{ mutex m; int locked(m) v; }};\n\
             void worker(struct ctr * c) {{ int i; \
              for (i = 0; i < {n}; i = i + 1) {{ mutex_lock(&c->m); \
              c->v = c->v + 1; mutex_unlock(&c->m); }} }}\n\
             void main() {{ struct ctr * c = new(struct ctr); int t; \
              {spawn} \
              mutex_lock(&c->m); print(c->v); mutex_unlock(&c->m); }}"
        )
    } else {
        let escape = if k.escape { "leak = d;" } else { "" };
        let spawn = if k.second_spawn {
            "spawn(worker, p); spawn(worker, p); join_all();"
        } else {
            "t = spawn(worker, p); join(t);"
        };
        format!(
            "int dynamic * leak;\n\
             void worker(int * d) {{ int i; \
              for (i = 0; i < {n}; i = i + 1) *d = *d + 1; {escape} }}\n\
             void main() {{ int * p; int t; p = new(int); \
              {spawn} }}"
        )
    }
}

fn cfg() -> Config {
    Config::from_env().with_cases(96)
}

/// The tentpole differential: on race-free program shapes the
/// eliding build is bit-identical to the fully-checked build —
/// status, output, and the (empty) report list — on every seed.
#[test]
fn elided_build_is_bit_identical_on_race_free_executions() {
    forall!(
        "elided_build_is_bit_identical_on_race_free_executions",
        cfg(),
        knobs_gen(),
        |k| {
            let src = program(k);
            let checked = sharc::check("gen.c", &src).expect("template parses");
            prop_assert!(
                !checked.diags.has_errors(),
                "template must check: {}",
                checked.render_diags()
            );
            let rc = sharc::RunConfig {
                seed: k.seed,
                ..sharc::RunConfig::default()
            };
            if k.race_free() {
                let full = sharc::run_full_checks(&checked, rc.clone()).expect("full build runs");
                let elided = sharc::run(&checked, rc).expect("elided build runs");
                prop_assert!(
                    full.reports.is_empty(),
                    "{k:?}: race-free template reported under full checks: {}",
                    full.reports[0]
                );
                prop_assert!(
                    elided.reports.is_empty(),
                    "{k:?}: elision invented a report: {}",
                    elided.reports[0]
                );
                prop_assert!(
                    elided.status == full.status,
                    "{k:?}: status diverged ({:?} vs {:?})",
                    elided.status,
                    full.status
                );
                prop_assert!(
                    elided.output == full.output,
                    "{k:?}: output diverged ({:?} vs {:?})",
                    elided.output,
                    full.output
                );
            } else {
                // Racy shape: the guarantee is static — nothing on
                // the raced object is elided, so the eliding build
                // keeps the machinery to report. (Exact report
                // equality is not claimed: fewer instructions means a
                // different interleaving.)
                prop_assert!(
                    checked.elision.summary.elided_slots == 0,
                    "{k:?}: raced sites must stay checked: {:?}",
                    checked.elision.summary
                );
            }
        }
    );
}

/// The mutation property, statically: every race-inducing knob kills
/// the elision the race-free variant enjoys, site for site.
#[test]
fn racing_mutations_kill_elision() {
    forall!("racing_mutations_kill_elision", cfg(), knobs_gen(), |k| {
        let clean = Knobs {
            escape: false,
            second_spawn: false,
            ..*k
        };
        let base = sharc::check("gen.c", &program(&clean)).expect("parses");
        prop_assert!(!base.diags.has_errors(), "{}", base.render_diags());
        if !clean.locked {
            // The race-free dynamic counter elides both loop-body
            // slots (spawn-unique)…
            prop_assert!(
                base.elision.summary.elided_slots == 2,
                "baseline should elide the loop body: {:?}",
                base.elision.summary
            );
            // …and each mutation that lets the object race (or
            // escape) forces every slot back to checked.
            for mutant in [
                Knobs {
                    second_spawn: true,
                    ..clean
                },
                Knobs {
                    escape: true,
                    ..clean
                },
            ] {
                let c = sharc::check("gen.c", &program(&mutant)).expect("parses");
                prop_assert!(!c.diags.has_errors(), "{}", c.render_diags());
                prop_assert!(
                    c.elision.summary.elided_slots == 0,
                    "{mutant:?}: raced/escaped sites must stay checked: {:?}",
                    c.elision.summary
                );
            }
        } else {
            // Lock-dominated accesses stay elided even with two
            // workers — the held lock is the proof, and
            // ChkLockHeld installs no shadow state, so deleting a
            // provably-passing one is invisible on every
            // execution.
            let two = sharc::check(
                "gen.c",
                &program(&Knobs {
                    second_spawn: true,
                    ..clean
                }),
            )
            .expect("parses");
            prop_assert!(
                two.elision.summary.by_reason[sharc::core::Reason::LockHeld.index()] == 2,
                "lock-dominated region: {:?}",
                two.elision.summary
            );
        }
    });
}

/// The mutation property, dynamically: the racy dynamic counter must
/// still be reported by the default (eliding) build — across seeds,
/// both builds catch it.
#[test]
fn racy_mutant_still_reports_under_elision() {
    let k = Knobs {
        locked: false,
        escape: false,
        second_spawn: true,
        iters: 24,
        seed: 0,
    };
    let checked = sharc::check("gen.c", &program(&k)).expect("parses");
    assert!(!checked.diags.has_errors(), "{}", checked.render_diags());
    assert_eq!(checked.elision.summary.elided_slots, 0);
    let mut full = 0usize;
    let mut elided = 0usize;
    for seed in 0..6u64 {
        let rc = sharc::RunConfig {
            seed,
            ..sharc::RunConfig::default()
        };
        full += sharc::run_full_checks(&checked, rc.clone())
            .unwrap()
            .reports
            .len();
        elided += sharc::run(&checked, rc).unwrap().reports.len();
    }
    assert!(full > 0, "the mutant must race under full checks");
    assert!(elided > 0, "elision hid the race the checked build reports");
}
