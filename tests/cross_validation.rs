//! Cross-validation between SharC and the §6.2 baseline detectors on
//! *identical executions*: the VM records the event trace of a run,
//! which is then replayed through Eraser and the vector-clock
//! detector. Agreement/disagreement must match the paper's analysis:
//!
//! * honest races: everyone reports;
//! * lock-protected sharing: nobody reports;
//! * ownership hand-off via sharing casts: SharC is silent (the cast
//!   models the transfer), the baselines report a false positive.

use sharc::prelude::*;
use sharc_detectors::{Detector, Eraser, Event, Race, VcDetector};
use sharc_interp::TraceEvent;

/// Converts a VM trace into detector events. Sharing casts, thread
/// exits and frees have no baseline counterpart — the baselines'
/// blindness to ownership transfer is exactly what the comparison
/// demonstrates — so those events are dropped.
fn convert(trace: &[TraceEvent]) -> Vec<Event> {
    trace
        .iter()
        .filter_map(|e| match *e {
            TraceEvent::Read { tid, addr } => Some(Event::Read {
                tid: tid as u32,
                loc: addr as usize,
            }),
            TraceEvent::Write { tid, addr } => Some(Event::Write {
                tid: tid as u32,
                loc: addr as usize,
            }),
            TraceEvent::Acquire { tid, lock } => Some(Event::Acquire {
                tid: tid as u32,
                lock: lock as usize,
            }),
            TraceEvent::Release { tid, lock } => Some(Event::Release {
                tid: tid as u32,
                lock: lock as usize,
            }),
            TraceEvent::Fork { tid, child } => Some(Event::Fork {
                tid: tid as u32,
                child: child as u32,
            }),
            TraceEvent::Join { tid, child } => Some(Event::Join {
                tid: tid as u32,
                child: child as u32,
            }),
            TraceEvent::Alloc { addr, .. } => Some(Event::Alloc { loc: addr as usize }),
            TraceEvent::SharingCast { .. }
            | TraceEvent::ThreadExit { .. }
            | TraceEvent::Free { .. } => None,
        })
        .collect()
}

fn run_traced(src: &str, seed: u64) -> (RunOutcome, Vec<Event>) {
    let out = sharc::check_and_run(
        "xval.c",
        src,
        RunConfig {
            seed,
            collect_trace: true,
            ..RunConfig::default()
        },
    )
    .expect("program checks cleanly");
    let events = convert(&out.trace);
    (out, events)
}

fn heap_races(races: &[Race], heap_floor: usize) -> usize {
    // Filter to races on heap data (ignore stack-frame locations the
    // detectors see because the VM allocates frames in main memory —
    // a real tool would know the stack is thread-private).
    races.iter().filter(|r| r.loc >= heap_floor).count()
}

#[test]
fn honest_race_everyone_agrees() {
    let src = "void w(int * d) { int i; for (i = 0; i < 30; i++) *d = *d + 1; }\n\
               void main() { int * p; p = new(int);\n\
                 spawn(w, p); spawn(w, p); join_all(); }";
    let mut sharc_found = false;
    let mut eraser_found = false;
    let mut vc_found = false;
    for seed in 0..6 {
        let (out, events) = run_traced(src, seed);
        sharc_found |= !out.reports.is_empty();
        eraser_found |= !Eraser::new().run(&events).is_empty();
        vc_found |= !VcDetector::new().run(&events).is_empty();
    }
    assert!(sharc_found, "SharC reports the race");
    assert!(eraser_found, "Eraser reports the race");
    assert!(vc_found, "vector clocks report the race");
}

#[test]
fn lock_protected_everyone_silent_on_the_data() {
    let src = "struct c { mutex m; int locked(m) v; };\n\
               void w(struct c * x) { int i; for (i = 0; i < 10; i++) {\n\
                 mutex_lock(&x->m); x->v = x->v + 1; mutex_unlock(&x->m); } }\n\
               void main() { struct c * x = new(struct c);\n\
                 spawn(w, x); spawn(w, x); join_all(); }";
    let (out, events) = run_traced(src, 2);
    assert!(out.reports.is_empty(), "SharC: {:?}", out.reports);
    // The protected counter lives in the heap object allocated by
    // `new`; find its allocation to scope the comparison.
    let heap_floor = events
        .iter()
        .find_map(|e| match e {
            Event::Alloc { loc } => Some(*loc),
            _ => None,
        })
        .expect("new() allocates");
    let eraser = Eraser::new().run(&events);
    let vc = VcDetector::new().run(&events);
    assert_eq!(heap_races(&eraser, heap_floor), 0, "{eraser:?}");
    assert_eq!(heap_races(&vc, heap_floor), 0, "{vc:?}");
}

#[test]
fn handoff_sharc_accepts_baselines_object() {
    // Ownership transfer: SharC accepts (sharing casts); on the very
    // same execution the baselines flag the buffer.
    let src = "
        struct ch { mutex m; cond cv; int *locked(m) slot; };
        void consumer(struct ch * c) {
            int private * d;
            int got;
            got = 0;
            while (got < 6) {
                mutex_lock(&c->m);
                while (c->slot == NULL) cond_wait(&c->cv, &c->m);
                d = SCAST(int private *, c->slot);
                cond_signal(&c->cv);
                mutex_unlock(&c->m);
                *d = *d + 1;
                free(d);
                got = got + 1;
            }
        }
        void main() {
            struct ch * c = new(struct ch);
            int private * b;
            int i;
            spawn(consumer, c);
            for (i = 0; i < 6; i++) {
                b = new(int private);
                *b = i;
                mutex_lock(&c->m);
                while (c->slot) cond_wait(&c->cv, &c->m);
                c->slot = SCAST(int locked(c->m) *, b);
                cond_signal(&c->cv);
                mutex_unlock(&c->m);
            }
            join_all();
        }";
    let (out, events) = run_traced(src, 3);
    assert!(out.reports.is_empty(), "SharC accepts: {:?}", out.reports);

    // The producer writes each buffer before publishing; the consumer
    // writes it after taking. Same location, both orders mediated by
    // the channel mutex — the happens-before chain *does* cover this
    // particular trace (same lock), so to expose the baselines'
    // blindness to ownership we check Eraser's lockset view: the
    // buffer is written both with and without the channel lock held,
    // emptying its candidate lockset.
    let eraser = Eraser::new().run(&events);
    assert!(
        !eraser.is_empty(),
        "Eraser false-positives on the ownership hand-off"
    );
}

#[test]
fn trace_is_complete_and_ordered() {
    let src = "void main() { int * p; p = new(int); *p = 4; print(*p); free(p); }";
    let (out, events) = run_traced(src, 0);
    assert_eq!(out.output, vec!["4"]);
    let allocs = events
        .iter()
        .filter(|e| matches!(e, Event::Alloc { .. }))
        .count();
    assert_eq!(allocs, 1);
    // The write to *p precedes the read of *p.
    let heap_loc = events
        .iter()
        .find_map(|e| match e {
            Event::Alloc { loc } => Some(*loc),
            _ => None,
        })
        .unwrap();
    let w = events
        .iter()
        .position(|e| matches!(e, Event::Write { loc, .. } if *loc == heap_loc));
    let r = events
        .iter()
        .position(|e| matches!(e, Event::Read { loc, .. } if *loc == heap_loc));
    assert!(w.unwrap() < r.unwrap());
}
