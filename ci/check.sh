#!/usr/bin/env bash
# The offline CI gate: proves the workspace builds, tests, and
# regenerates the Table 1 smoke run with zero registry access.
#
# Usage: ci/check.sh   (from anywhere; cds to the repo root)
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== policy: no external dependencies in any manifest =="
if grep -rn 'rand\|proptest\|criterion\|crossbeam\|parking_lot\|serde' \
    Cargo.toml crates/*/Cargo.toml; then
    echo "ERROR: external dependency reference found in a manifest" >&2
    exit 1
fi
echo "ok"

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo build --release --offline =="
cargo build --release --offline

echo "== cargo clippy --offline -D warnings =="
cargo clippy --workspace --offline --all-targets -- -D warnings

echo "== cargo test -q --offline =="
cargo test -q --offline

echo "== table1 --smoke =="
cargo run --release --offline -p sharc-bench --bin table1 -- --smoke

echo "== high-thread smoke: sharded differential, tids past 63 =="
# The wide differential normally samples tids 1..=256 under the
# property-test default case count; this pins a fixed-seed, reduced
# run so CI exercises the multi-shard geometry deterministically.
SHARC_TEST_SEED=0xC1 SHARC_TEST_CASES=32 \
    cargo test -q --offline --release --test checker_differential -- \
    sharded_engines_agree_up_to_256_threads \
    cross_shard_ownership_transfer_is_exact

echo "== epoch geometry: region-vs-global differential, fixed seed =="
# The per-region epoch table must be verdict-invisible: the same
# trace through the R=1 (global) geometry, the default 64-region
# geometry, and the uncached engine agrees on every verdict. Pinned
# to a fixed seed so CI replays one known exploration.
SHARC_TEST_SEED=0xE9 SHARC_TEST_CASES=64 \
    cargo test -q --offline --release --test checker_differential -- \
    region_epoch_engines_agree_with_global_epoch \
    cache_is_invisible_under_adversarial_clears

echo "== ranged checks: range-vs-fold differential, fixed seed =="
# A range verdict must equal the fold of per-granule verdicts on
# every engine (single-word, cached owned-run, adaptive, and the
# five-shard 256-tid geometry, with adversarial mid-range clears),
# and replay-lowering a ranged trace must be bit-identical for
# SharC, Eraser, and the vector-clock detector alike. Fixed seed
# pins one known exploration.
SHARC_TEST_SEED=0x4A6E SHARC_TEST_CASES=64 \
    cargo test -q --offline --release --test checker_differential -- \
    range_checks_equal_per_granule_fold \
    ranged_sharded_checks_agree_up_to_256_threads \
    range_replay_lowering_is_bit_identical_for_every_backend

echo "== ranged casts & frees: clear-vs-fold differential, fixed seed =="
# The ranged hand-off must be verdict- and word-invisible: a
# clear_range / clear_thread_range (one word sweep, one epoch bump
# per covered region) leaves every engine bit-identical to the
# per-granule clear fold it replaced, under cached sweeps on the
# narrow, adaptive, and 256-tid sharded geometries. Fixed seed pins
# one known exploration.
SHARC_TEST_SEED=0xCA57 SHARC_TEST_CASES=64 \
    cargo test -q --offline --release --test checker_differential -- \
    ranged_clears_equal_per_granule_clear_fold \
    wide_ranged_clears_equal_per_granule_clear_fold

echo "== streaming detection: stream-vs-replay differential, fixed seed =="
# The streaming pipeline's tentpole invariant: for every ring
# count, ring capacity, and drain interleaving, a StreamingSink's
# conflicts are bit-identical to the serialized replay fold on the
# same backend (SharC bitmap, Eraser, vector clocks), at narrow and
# cross-shard tid widths, with the accounting closed (recorded ==
# drained, peak resident <= ring budget). The fleet-width companion
# streams one >200-thread recorded stunnel execution through tiny
# rings and re-runs it live against the collector. Fixed seed pins
# one known exploration.
SHARC_TEST_SEED=0x51EA SHARC_TEST_CASES=64 \
    cargo test -q --offline --release --test checker_differential -- \
    streaming_verdicts_equal_replay_fold_for_every_backend \
    stunnel_streaming_is_bit_identical_to_replay_at_fleet_width

echo "== check elision: differential + mutation, fixed seed =="
# The elision pass's soundness contract: on program shapes that are
# race-free by construction, the eliding build is bit-identical to
# the fully-checked build on every seed, and every race-inducing
# mutation (second spawn, escaping alias) forces the raced sites
# back to checked. Fixed seed pins one known exploration.
SHARC_TEST_SEED=0xE11DE SHARC_TEST_CASES=48 \
    cargo test -q --offline --release --test elision_differential -- \
    elided_build_is_bit_identical_on_race_free_executions \
    racing_mutations_kill_elision \
    racy_mutant_still_reports_under_elision

echo "== elision exemplar: explanations + racy exit code =="
# The explanation format end to end: the exemplar's spawn-unique
# loop and lock-dominated region are elided with their reasons, and
# the escaping counterexample keeps its checks (the e2e test pins
# exact line numbers; this smokes the CLI surface). The racy
# exemplar must STILL exit nonzero under the default (eliding)
# build — elision may never hide a report.
explain=$(cargo run --release --offline --bin sharc -- \
    run examples/minic/elision.c --explain-elision)
echo "$explain" | grep -q "spawn-unique" || {
    echo "ERROR: --explain-elision lost the spawn-unique explanation" >&2
    exit 1
}
echo "$explain" | grep -q "lock-held" || {
    echo "ERROR: --explain-elision lost the lock-held explanation" >&2
    exit 1
}
racy_caught=0
for seed in 0 1 2 3; do
    if ! cargo run --release --offline --bin sharc -- \
        run examples/minic/counter_racy.c --seed "$seed" >/dev/null 2>&1; then
        racy_caught=1
    fi
done
if [ "$racy_caught" -ne 1 ]; then
    echo "ERROR: counter_racy.c exited 0 on every seed under elision" >&2
    exit 1
fi

echo "== sharded revalidation stress: barrier-aligned real races =="
# Real threads, barrier-aligned into the cross-shard conflict
# window: a racing conflict must be reported by at least one
# participant, and fenced clears must force cache revalidation
# without false reports. Fixed seed pins the jitter streams.
SHARC_TEST_SEED=0x57E5 \
    cargo test -q --offline --release -p sharc-runtime --test sharded_stress

echo "== native event spine: one execution, two verdicts =="
# SharC accepts the concurrent hand-off (exit 0); the lockset
# baseline must false-positive on the identical recorded execution
# (exit 1 — inverted below). pbzip2 runs the same split through a
# trace file: record once with --trace-out, then re-judge the saved
# trace offline with both engines.
cargo run --release --offline --bin sharc -- native handoff --detector sharc
if cargo run --release --offline --bin sharc -- native handoff --detector eraser; then
    echo "ERROR: eraser accepted the hand-off it should false-positive on" >&2
    exit 1
fi
trace_file="target/ci-pbzip2.trace"
cargo run --release --offline --bin sharc -- native pbzip2 --trace-out "$trace_file"
cargo run --release --offline --bin sharc -- replay "$trace_file" --detector sharc
if cargo run --release --offline --bin sharc -- replay "$trace_file" --detector eraser; then
    echo "ERROR: eraser accepted the pbzip2 hand-offs it should false-positive on" >&2
    exit 1
fi
# Version-lowering compatibility. The recorded trace must be v3 with
# ONE rcast/rfree line per block hand-off — a per-granule `cast`
# expansion leaking back in would be the O(granules) spine this PR
# removed. Its lowered twin (`trace convert --lower`: every range
# event expanded to per-granule lines, the v1 vocabulary — what the
# old awk hack hand-rolled) must replay to the identical exit code on
# both detectors. tests/trace_parity.rs pins the conflict sets; this
# smokes the CLI surface.
grep -q '^# sharc-trace v3$' "$trace_file" || {
    echo "ERROR: recorded pbzip2 trace is not v3" >&2
    exit 1
}
grep -q '^rcast ' "$trace_file" || {
    echo "ERROR: pbzip2 trace has no ranged casts" >&2
    exit 1
}
if grep -q '^cast ' "$trace_file"; then
    echo "ERROR: per-granule cast lines leaked into the pbzip2 trace" >&2
    exit 1
fi
trace_v1="target/ci-pbzip2-v1.trace"
cargo run --release --offline --bin sharc -- trace convert "$trace_file" "$trace_v1" --lower
if grep -q '^rcast \|^rfree \|^rread \|^rwrite ' "$trace_v1"; then
    echo "ERROR: trace convert --lower left range events behind" >&2
    exit 1
fi
cargo run --release --offline --bin sharc -- replay "$trace_v1" --detector sharc
if cargo run --release --offline --bin sharc -- replay "$trace_v1" --detector eraser; then
    echo "ERROR: eraser accepted the v1-lowered pbzip2 trace" >&2
    exit 1
fi
# aget on the spine: workers store whole chunks with ranged writes
# and exit before main's ranged verification sweep — clean under
# SharC's lifetime model (exit 0), a false positive under Eraser
# (no lock ever protects the shared buffer; exit 1, inverted).
cargo run --release --offline --bin sharc -- native aget --detector sharc
if cargo run --release --offline --bin sharc -- native aget --detector eraser; then
    echo "ERROR: eraser accepted the aget download it should false-positive on" >&2
    exit 1
fi

echo "== wide-tid stunnel smoke: 100+ threads, record -> replay =="
# The fleet run: 128 real worker threads (tids past the second shard
# boundary) recorded once, then the saved trace re-judged offline.
# SharC must stay clean at the wide geometry (exit 0); Eraser must
# false-positive on the session hand-offs (exit 1, inverted).
stunnel_trace="target/ci-stunnel.trace"
cargo run --release --offline --bin sharc -- native stunnel --trace-out "$stunnel_trace"
cargo run --release --offline --bin sharc -- replay "$stunnel_trace" --detector sharc
if cargo run --release --offline --bin sharc -- replay "$stunnel_trace" --detector eraser; then
    echo "ERROR: eraser accepted the stunnel hand-offs it should false-positive on" >&2
    exit 1
fi

echo "== binary trace smoke: record .sbt -> info -> parallel replay =="
# The same fleet recorded straight into the v4 binary container
# (--trace-out picks the format from the .sbt extension), summarized
# without judging, then re-judged with the region-sharded parallel
# engine: SharC clean (exit 0), Eraser false-positive (exit 1,
# inverted) on the SAME .sbt file — verdicts are format- and
# parallelism-independent.
stunnel_sbt="target/ci-stunnel.sbt"
cargo run --release --offline --bin sharc -- native stunnel --trace-out "$stunnel_sbt"
info=$(cargo run --release --offline --bin sharc -- trace info "$stunnel_sbt")
echo "$info"
echo "$info" | grep -q "binary v4" || {
    echo "ERROR: trace info does not identify the .sbt file as binary v4" >&2
    exit 1
}
cargo run --release --offline --bin sharc -- replay "$stunnel_sbt" --jobs 4 --detector sharc
if cargo run --release --offline --bin sharc -- replay "$stunnel_sbt" --jobs 4 --detector eraser; then
    echo "ERROR: eraser accepted the stunnel hand-offs from the binary trace" >&2
    exit 1
fi
# Convert round trip: .sbt -> text -> .sbt must be byte-identical
# (the binary encoding is deterministic), and the text twin must be
# meaningfully larger — the archive claim on a real recorded run.
roundtrip_txt="target/ci-stunnel-rt.trace"
roundtrip_sbt="target/ci-stunnel-rt.sbt"
cargo run --release --offline --bin sharc -- trace convert "$stunnel_sbt" "$roundtrip_txt"
cargo run --release --offline --bin sharc -- trace convert "$roundtrip_txt" "$roundtrip_sbt"
cmp "$stunnel_sbt" "$roundtrip_sbt" || {
    echo "ERROR: .sbt -> text -> .sbt convert round trip is not byte-identical" >&2
    exit 1
}
sbt_bytes=$(wc -c < "$stunnel_sbt")
txt_bytes=$(wc -c < "$roundtrip_txt")
if [ $((sbt_bytes * 4)) -gt "$txt_bytes" ]; then
    echo "ERROR: binary trace ($sbt_bytes B) is not <=1/4 of text ($txt_bytes B)" >&2
    exit 1
fi

echo "== parallel replay: region-sharded differential, fixed seed =="
# The --jobs engine's acceptance differential: merged conflicts
# bit-identical to the sequential fold for SharC, Eraser, and vector
# clocks at 256 tids over every worker count 1-5, plus the
# cross-version parity suite (text/binary archives, v1 lowering).
# Fixed seed pins one known exploration.
SHARC_TEST_SEED=0x9A12 SHARC_TEST_CASES=64 \
    cargo test -q --offline --release --test checker_differential -- \
    parallel_replay_is_bit_identical_to_sequential_for_every_backend
cargo test -q --offline --release --test trace_parity

echo "== streaming online smoke: same verdicts, bounded memory =="
# The same fleet judged while it runs: the epoch-flip collector
# drains per-thread rings concurrently with the workload, so the
# exit code must match the record->replay path above on every
# detector — SharC clean (exit 0), Eraser false-positive (exit 1,
# inverted) — with peak resident events held inside the --ring-cap
# budget instead of the full recorded trace.
cargo run --release --offline --bin sharc -- native stunnel --detector sharc --online --ring-cap 256
if cargo run --release --offline --bin sharc -- native stunnel --detector eraser --online --ring-cap 256; then
    echo "ERROR: eraser accepted the stunnel hand-offs while streaming" >&2
    exit 1
fi
cargo run --release --offline --bin sharc -- native handoff --detector sharc --online
if cargo run --release --offline --bin sharc -- native handoff --detector eraser --online; then
    echo "ERROR: eraser accepted the hand-off while streaming" >&2
    exit 1
fi

echo "== checker bench --smoke (epoch-thrash + ranged gates) =="
# Asserts the perf claims in --smoke mode: the per-region epoch
# table is >=2x faster than the R=1 global geometry under
# clear-thrash and within noise on the private loop, the cached
# fast path stays competitive with the raw CAS protocol, and the
# ranged owned-4k sweep (one epoch-sum + run-slot compare per lap)
# beats the per-granule cached loop >=4x. Full rows — including the
# range/* family and the epoch-geom/r{R}-ws{WS} geometry sweep —
# plus deterministic flush/miss counters land in the repo-root
# BENCH_checker.json, the single canonical location (nothing is
# written under target/ anymore; also written by table1 --smoke
# above).
cargo bench --offline -p sharc-bench --bench checker -- --smoke
test -f BENCH_checker.json || {
    echo "ERROR: BENCH_checker.json missing at the repo root" >&2
    exit 1
}
# The stunnel fleet must be in the record: the headline timing rows
# (throughput pair + contention sweep, p50/p95 with every other row)
# and the derived messages-per-second figures.
for row in "stunnel/fleet-sharc" "stunnel/fleet-orig" "stunnel/sweep-c64-w16"; do
    grep -q "$row" BENCH_checker.json || {
        echo "ERROR: BENCH_checker.json is missing the $row row" >&2
        exit 1
    }
done
grep -q "msgs_per_sec" BENCH_checker.json || {
    echo "ERROR: BENCH_checker.json has no stunnel throughput records" >&2
    exit 1
}
# The streaming pipeline must be in the record too: timing rows for
# the streamed-vs-untraced pairs and the memory accounting (peak
# resident vs ring budget) the bench gate asserts.
for row in "online/stunnel-stream" "online/stunnel-orig" "online/pbzip2-stream"; do
    grep -q "$row" BENCH_checker.json || {
        echo "ERROR: BENCH_checker.json is missing the $row row" >&2
        exit 1
    }
done
grep -q "ring_budget" BENCH_checker.json || {
    echo "ERROR: BENCH_checker.json has no streaming memory accounting" >&2
    exit 1
}
# The ranged-cast rows: one-operation block hand-off vs the
# per-granule cast+clear loop at both block sizes (the >=4x win is
# asserted inside the bench by assert_ranged_cast_wins; this pins
# the rows into the machine-readable record).
for row in "cast/block-4k-ranged" "cast/block-4k-granule" \
    "cast/block-64k-ranged" "cast/block-64k-granule"; do
    grep -q "$row" BENCH_checker.json || {
        echo "ERROR: BENCH_checker.json is missing the $row row" >&2
        exit 1
    }
done
# The elision record: the three vm/private-loop rows (the elided row
# must have beaten checked+cached for the bench to have exited 0 —
# assert_elision_wins), plus per-workload static percentages with
# nonzero elision on the private-heavy ports.
for row in "vm/private-loop/elided" "vm/private-loop/cache-on" "vm/private-loop/cache-off"; do
    grep -q "$row" BENCH_checker.json || {
        echo "ERROR: BENCH_checker.json is missing the $row row" >&2
        exit 1
    }
done
grep -q "elided_pct" BENCH_checker.json || {
    echo "ERROR: BENCH_checker.json has no per-workload elision records" >&2
    exit 1
}
for w in pfscan stunnel dillo; do
    slots=$(grep -A2 "\"name\": \"$w\"," BENCH_checker.json \
        | grep '"elided_slots"' | grep -o '[0-9]\+' || true)
    if [ -z "$slots" ] || [ "$slots" -eq 0 ]; then
        echo "ERROR: $w must show nonzero static elision (got '${slots:-missing}')" >&2
        exit 1
    fi
done
# The binary-trace + parallel-replay record: codec rows for both
# formats and the seq/par replay pair (the byte and speed gates are
# asserted inside the bench by assert_trace_wins and
# assert_parallel_replay_wins; this pins the rows into the
# machine-readable record), plus the size comparison itself.
for row in "trace/encode-text" "trace/encode-binary" \
    "trace/decode-text" "trace/decode-binary" \
    "replay/seq" "replay/par-4"; do
    grep -q "$row" BENCH_checker.json || {
        echo "ERROR: BENCH_checker.json is missing the $row row" >&2
        exit 1
    }
done
grep -q "binary_bytes" BENCH_checker.json || {
    echo "ERROR: BENCH_checker.json has no trace size records" >&2
    exit 1
}

echo "All checks passed."
