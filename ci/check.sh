#!/usr/bin/env bash
# The offline CI gate: proves the workspace builds, tests, and
# regenerates the Table 1 smoke run with zero registry access.
#
# Usage: ci/check.sh   (from anywhere; cds to the repo root)
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== policy: no external dependencies in any manifest =="
if grep -rn 'rand\|proptest\|criterion\|crossbeam\|parking_lot\|serde' \
    Cargo.toml crates/*/Cargo.toml; then
    echo "ERROR: external dependency reference found in a manifest" >&2
    exit 1
fi
echo "ok"

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo build --release --offline =="
cargo build --release --offline

echo "== cargo clippy --offline -D warnings =="
cargo clippy --workspace --offline --all-targets -- -D warnings

echo "== cargo test -q --offline =="
cargo test -q --offline

echo "== table1 --smoke =="
cargo run --release --offline -p sharc-bench --bin table1 -- --smoke

echo "== high-thread smoke: sharded differential, tids past 63 =="
# The wide differential normally samples tids 1..=256 under the
# property-test default case count; this pins a fixed-seed, reduced
# run so CI exercises the multi-shard geometry deterministically.
SHARC_TEST_SEED=0xC1 SHARC_TEST_CASES=32 \
    cargo test -q --offline --release --test checker_differential -- \
    sharded_engines_agree_up_to_256_threads \
    cross_shard_ownership_transfer_is_exact

echo "== native event spine: one execution, two verdicts =="
# SharC accepts the concurrent hand-off (exit 0); the lockset
# baseline must false-positive on the identical recorded execution
# (exit 1 — inverted below).
cargo run --release --offline --bin sharc -- native handoff --detector sharc
if cargo run --release --offline --bin sharc -- native handoff --detector eraser; then
    echo "ERROR: eraser accepted the hand-off it should false-positive on" >&2
    exit 1
fi

echo "== checker bench --smoke (asserts cached beats uncached) =="
# Also covers the new assoc/* sweep, the sharded/* geometry rows, and
# the vm/private-loop cache pair; all land in target/BENCH_checker.json.
cargo bench --offline -p sharc-bench --bench checker -- --smoke

echo "All checks passed."
