#!/usr/bin/env bash
# The offline CI gate: proves the workspace builds, tests, and
# regenerates the Table 1 smoke run with zero registry access.
#
# Usage: ci/check.sh   (from anywhere; cds to the repo root)
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== policy: no external dependencies in any manifest =="
if grep -rn 'rand\|proptest\|criterion\|crossbeam\|parking_lot\|serde' \
    Cargo.toml crates/*/Cargo.toml; then
    echo "ERROR: external dependency reference found in a manifest" >&2
    exit 1
fi
echo "ok"

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo build --release --offline =="
cargo build --release --offline

echo "== cargo clippy --offline -D warnings =="
cargo clippy --workspace --offline --all-targets -- -D warnings

echo "== cargo test -q --offline =="
cargo test -q --offline

echo "== table1 --smoke =="
cargo run --release --offline -p sharc-bench --bin table1 -- --smoke

echo "== checker bench --smoke (asserts cached beats uncached) =="
cargo bench --offline -p sharc-bench --bench checker -- --smoke

echo "All checks passed."
