//! The flow-insensitive qualifier constraint system (paper §4.1).
//!
//! Variables stand for unannotated qualifier positions. The solver
//! computes which of them must be `dynamic` (checked at runtime); the
//! rest become `private`. Following CQual-style rules with the
//! paper's refinement for function calls, each variable tracks two
//! flags:
//!
//! * **`dyn_direct`** — the position is dynamic in its own right:
//!   seeded (thread formal / thread-touched global), or connected by
//!   an equality edge to a dynamic position, or the target of a
//!   shared reference (ref-constructor closure).
//! * **`dyn_in`** — the position became dynamic only because a
//!   dynamic actual was bound to this formal at some call site. This
//!   is the paper's internal `dynamic_in` qualifier: accesses must be
//!   checked, but the dynamicness does *not* flow back to other
//!   callers' private actuals.
//!
//! Edge kinds:
//!
//! * `eq(a, b)` — assignment-compatible positions; both flags flow
//!   both ways.
//! * `call_bind(actual, formal)` — at a call site; any dynamicness of
//!   the actual makes the formal `dyn_in`; `dyn_direct` on the formal
//!   (it escaped into a dynamic location inside the callee) flows
//!   back to the actual as `dyn_direct`.
//! * `ref_ctor(ptr, target)` — a checked pointer must not point to a
//!   private target, so each flag flows from pointer to target.

use minic::ast::Qual;
use minic::diag::{Diagnostic, Diagnostics};
use minic::span::Span;

/// Accumulates qualifier constraints, then solves them.
#[derive(Debug, Default)]
pub struct ConstraintSet {
    n_vars: usize,
    eq: Vec<(u32, u32)>,
    call_bind: Vec<(u32, u32)>,
    ref_ctor: Vec<(u32, u32)>,
    seeds_direct: Vec<u32>,
    seeds_in: Vec<u32>,
    /// Variables call-bound to a concretely-`dynamic` formal: the
    /// actual must itself be dynamic (the annotation is trusted as
    /// "really shared").
    pub diags: Diagnostics,
}

/// The solved assignment for every variable.
#[derive(Debug)]
pub struct Solution {
    dyn_direct: Vec<bool>,
    dyn_in: Vec<bool>,
}

impl ConstraintSet {
    /// Creates a constraint set over `n_vars` variables.
    pub fn new(n_vars: u32) -> Self {
        ConstraintSet {
            n_vars: n_vars as usize,
            ..Default::default()
        }
    }

    /// Records that two qualifier positions must agree (assignment
    /// between storage levels below the outermost).
    pub fn eq(&mut self, a: &Qual, b: &Qual) {
        match (a, b) {
            (Qual::Var(x), Qual::Var(y)) => self.eq.push((*x, *y)),
            (Qual::Var(x), Qual::Dynamic) | (Qual::Dynamic, Qual::Var(x)) => {
                self.seeds_direct.push(*x)
            }
            // Other concrete qualifiers do not flow into variables:
            // variables resolve only to private or dynamic (paper
            // §4.1); mismatches surface in the checker with a sharing
            // cast suggestion.
            _ => {}
        }
    }

    /// Records an actual-to-formal binding at a call site.
    pub fn call_bind(&mut self, actual: &Qual, formal: &Qual) {
        match (actual, formal) {
            (Qual::Var(a), Qual::Var(f)) => self.call_bind.push((*a, *f)),
            (Qual::Dynamic, Qual::Var(f)) => self.seeds_in.push(*f),
            // A concretely-annotated dynamic formal is trusted as
            // really shared: the actual becomes dynamic.
            (Qual::Var(a), Qual::Dynamic) => self.seeds_direct.push(*a),
            _ => {}
        }
    }

    /// Records that `target` is pointed to by a pointer in mode
    /// `ptr`: if the pointer is checked, the target cannot be
    /// private.
    pub fn ref_ctor(&mut self, ptr: &Qual, target: &Qual) {
        match (ptr, target) {
            (Qual::Var(p), Qual::Var(t)) => self.ref_ctor.push((*p, *t)),
            (Qual::Dynamic, Qual::Var(t)) => self.seeds_direct.push(*t),
            _ => {}
        }
    }

    /// Seeds a position as inherently shared (thread formals,
    /// thread-touched globals). Errors if the position was annotated
    /// `private` by the user.
    pub fn seed_dynamic(&mut self, q: &Qual, what: &str, span: Span) {
        match q {
            Qual::Var(v) => self.seeds_direct.push(*v),
            Qual::Private => self.diags.push(Diagnostic::error(
                format!("{what} is accessible from multiple threads but is annotated private"),
                span,
            )),
            _ => {}
        }
    }

    /// Solves the constraints to a fixpoint.
    pub fn solve(&self) -> Solution {
        let n = self.n_vars;
        let mut dyn_direct = vec![false; n];
        let mut dyn_in = vec![false; n];

        // Adjacency lists.
        let mut eq_adj: Vec<Vec<u32>> = vec![Vec::new(); n];
        for &(a, b) in &self.eq {
            if (a as usize) < n && (b as usize) < n {
                eq_adj[a as usize].push(b);
                eq_adj[b as usize].push(a);
            }
        }
        let mut out_ref: Vec<Vec<u32>> = vec![Vec::new(); n];
        for &(p, t) in &self.ref_ctor {
            if (p as usize) < n && (t as usize) < n {
                out_ref[p as usize].push(t);
            }
        }
        // call_bind grouped by actual and by formal.
        let mut bind_by_actual: Vec<Vec<u32>> = vec![Vec::new(); n];
        let mut bind_by_formal: Vec<Vec<u32>> = vec![Vec::new(); n];
        for &(a, f) in &self.call_bind {
            if (a as usize) < n && (f as usize) < n {
                bind_by_actual[a as usize].push(f);
                bind_by_formal[f as usize].push(a);
            }
        }

        let mut work: Vec<u32> = Vec::new();
        let mark =
            |v: u32, direct: bool, dd: &mut Vec<bool>, di: &mut Vec<bool>, work: &mut Vec<u32>| {
                let i = v as usize;
                if i >= n {
                    return;
                }
                let flag = if direct { &mut dd[i] } else { &mut di[i] };
                if !*flag {
                    *flag = true;
                    work.push(v);
                }
            };
        for &s in &self.seeds_direct {
            mark(s, true, &mut dyn_direct, &mut dyn_in, &mut work);
        }
        for &s in &self.seeds_in {
            mark(s, false, &mut dyn_direct, &mut dyn_in, &mut work);
        }

        while let Some(v) = work.pop() {
            let i = v as usize;
            let (dd, di) = (dyn_direct[i], dyn_in[i]);
            // Equality edges: both flags, both directions.
            for &u in &eq_adj[i] {
                if dd {
                    mark(u, true, &mut dyn_direct, &mut dyn_in, &mut work);
                }
                if di {
                    mark(u, false, &mut dyn_direct, &mut dyn_in, &mut work);
                }
            }
            // Ref-constructor edges: pointer -> target, flag-preserving.
            for &t in &out_ref[i] {
                if dd {
                    mark(t, true, &mut dyn_direct, &mut dyn_in, &mut work);
                }
                if di {
                    mark(t, false, &mut dyn_direct, &mut dyn_in, &mut work);
                }
            }
            // v as actual: any dynamicness makes formals dyn_in.
            if dd || di {
                for &f in &bind_by_actual[i] {
                    mark(f, false, &mut dyn_direct, &mut dyn_in, &mut work);
                }
            }
            // v as formal: direct dynamicness flows back to actuals.
            if dd {
                for &a in &bind_by_formal[i] {
                    mark(a, true, &mut dyn_direct, &mut dyn_in, &mut work);
                }
            }
        }

        Solution { dyn_direct, dyn_in }
    }
}

impl Solution {
    /// The concrete qualifier for variable `v`.
    pub fn qual(&self, v: u32) -> Qual {
        let i = v as usize;
        if self.dyn_direct.get(i).copied().unwrap_or(false)
            || self.dyn_in.get(i).copied().unwrap_or(false)
        {
            Qual::Dynamic
        } else {
            Qual::Private
        }
    }

    /// True if the variable is dynamic in its own right (not merely
    /// `dynamic_in`): such a formal requires dynamic actuals.
    pub fn escapes(&self, v: u32) -> bool {
        self.dyn_direct.get(v as usize).copied().unwrap_or(false)
    }

    /// True if the variable is only `dynamic_in`.
    pub fn is_dynamic_in_only(&self, v: u32) -> bool {
        let i = v as usize;
        !self.dyn_direct.get(i).copied().unwrap_or(false)
            && self.dyn_in.get(i).copied().unwrap_or(false)
    }

    /// Number of variables solved to dynamic.
    pub fn dynamic_count(&self) -> usize {
        (0..self.dyn_direct.len())
            .filter(|&i| self.dyn_direct[i] || self.dyn_in[i])
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn var(v: u32) -> Qual {
        Qual::Var(v)
    }

    #[test]
    fn seeds_propagate_over_eq() {
        let mut c = ConstraintSet::new(3);
        c.eq(&var(0), &var(1));
        c.eq(&var(1), &var(2));
        c.seed_dynamic(&var(0), "x", Span::DUMMY);
        let s = c.solve();
        assert_eq!(s.qual(0), Qual::Dynamic);
        assert_eq!(s.qual(2), Qual::Dynamic);
        assert!(s.escapes(2));
    }

    #[test]
    fn unseeded_vars_are_private() {
        let mut c = ConstraintSet::new(2);
        c.eq(&var(0), &var(1));
        let s = c.solve();
        assert_eq!(s.qual(0), Qual::Private);
        assert_eq!(s.qual(1), Qual::Private);
    }

    #[test]
    fn concrete_dynamic_seeds_var() {
        let mut c = ConstraintSet::new(1);
        c.eq(&var(0), &Qual::Dynamic);
        let s = c.solve();
        assert_eq!(s.qual(0), Qual::Dynamic);
    }

    #[test]
    fn concrete_locked_does_not_seed_var() {
        let mut c = ConstraintSet::new(1);
        c.eq(
            &var(0),
            &Qual::Locked(minic::ast::LockPath::new(vec!["m".into()], Span::DUMMY)),
        );
        let s = c.solve();
        assert_eq!(s.qual(0), Qual::Private);
    }

    #[test]
    fn call_bind_gives_dynamic_in_not_backflow() {
        // worker(p) called with dynamic actual 0 and private actual 2.
        let mut c = ConstraintSet::new(3);
        c.seed_dynamic(&var(0), "a1", Span::DUMMY);
        c.call_bind(&var(0), &var(1)); // dynamic actual -> formal
        c.call_bind(&var(2), &var(1)); // private actual -> same formal
        let s = c.solve();
        assert_eq!(s.qual(1), Qual::Dynamic, "formal is checked");
        assert!(s.is_dynamic_in_only(1));
        assert_eq!(s.qual(2), Qual::Private, "other actual unaffected");
    }

    #[test]
    fn formal_escape_flows_back_to_actual() {
        // Formal 1 is stored into a dynamic location (eq with seeded 3),
        // so the actual 0 must become dynamic too.
        let mut c = ConstraintSet::new(4);
        c.call_bind(&var(0), &var(1));
        c.eq(&var(1), &var(3));
        c.seed_dynamic(&var(3), "g", Span::DUMMY);
        let s = c.solve();
        assert!(s.escapes(1));
        assert_eq!(s.qual(0), Qual::Dynamic);
        assert!(s.escapes(0));
    }

    #[test]
    fn ref_ctor_pushes_dynamic_inward() {
        // ptr var 0 dynamic => target var 1 dynamic; not vice versa.
        let mut c = ConstraintSet::new(4);
        c.ref_ctor(&var(0), &var(1));
        c.ref_ctor(&var(2), &var(3));
        c.seed_dynamic(&var(0), "p", Span::DUMMY);
        c.seed_dynamic(&var(3), "q", Span::DUMMY);
        let s = c.solve();
        assert_eq!(s.qual(1), Qual::Dynamic);
        assert_eq!(
            s.qual(2),
            Qual::Private,
            "target dynamic does not force pointer"
        );
    }

    #[test]
    fn seeding_concrete_private_is_error() {
        let mut c = ConstraintSet::new(0);
        c.seed_dynamic(&Qual::Private, "global `g`", Span::DUMMY);
        assert!(c.diags.has_errors());
    }

    #[test]
    fn dynamic_in_propagates_through_eq_and_calls() {
        // formal 0 is dyn_in; it is assigned to local 1; local 1 is
        // passed to another call's formal 2 -> formal 2 is dyn_in.
        let mut c = ConstraintSet::new(3);
        c.call_bind(&Qual::Dynamic, &var(0));
        c.eq(&var(0), &var(1));
        c.call_bind(&var(1), &var(2));
        let s = c.solve();
        assert!(s.is_dynamic_in_only(0));
        assert!(s.is_dynamic_in_only(1));
        assert!(s.is_dynamic_in_only(2));
    }
}
