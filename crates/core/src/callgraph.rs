//! Call graph construction and thread-reachability (paper §4.1).
//!
//! SharC seeds its sharing analysis with the objects inherently
//! visible to spawned threads: the formals of thread functions and
//! every global touched by a function reachable from a thread root.
//! Function pointers are handled soundly by assuming a pointer may
//! alias any function in the program of the appropriate shape.

use minic::ast::*;
use std::collections::{HashMap, HashSet};

/// The call graph plus derived thread-reachability facts.
#[derive(Debug)]
pub struct CallGraph {
    /// Direct and (shape-resolved) indirect callees per function.
    pub callees: HashMap<String, HashSet<String>>,
    /// Functions passed to `spawn` (directly, or any shape-compatible
    /// function when a function pointer is spawned).
    pub thread_roots: HashSet<String>,
    /// Functions reachable from any thread root (including the roots).
    pub thread_reachable: HashSet<String>,
    /// Global variables referenced per function (directly).
    pub globals_touched: HashMap<String, HashSet<String>>,
}

impl CallGraph {
    /// Builds the call graph for `program`.
    pub fn build(program: &Program) -> CallGraph {
        let global_names: HashSet<String> =
            program.globals.iter().map(|g| g.name.clone()).collect();
        let fn_names: HashSet<String> = program.fns.iter().map(|f| f.name.clone()).collect();

        let mut callees: HashMap<String, HashSet<String>> = HashMap::new();
        let mut globals_touched: HashMap<String, HashSet<String>> = HashMap::new();
        let mut thread_roots: HashSet<String> = HashSet::new();

        for f in &program.fns {
            let mut ctx = FnWalk {
                program,
                global_names: &global_names,
                fn_names: &fn_names,
                callees: HashSet::new(),
                globals: HashSet::new(),
                spawned: Vec::new(),
                locals: collect_local_names(f),
            };
            ctx.block(&f.body);
            for root in ctx.spawned {
                thread_roots.insert(root);
            }
            callees.insert(f.name.clone(), ctx.callees);
            globals_touched.insert(f.name.clone(), ctx.globals);
        }

        // Reachability from thread roots.
        let mut thread_reachable = HashSet::new();
        let mut stack: Vec<String> = thread_roots.iter().cloned().collect();
        while let Some(f) = stack.pop() {
            if !thread_reachable.insert(f.clone()) {
                continue;
            }
            if let Some(cs) = callees.get(&f) {
                for c in cs {
                    if !thread_reachable.contains(c) {
                        stack.push(c.clone());
                    }
                }
            }
        }

        CallGraph {
            callees,
            thread_roots,
            thread_reachable,
            globals_touched,
        }
    }

    /// Globals touched by any thread-reachable function; these seed
    /// the sharing analysis.
    pub fn thread_touched_globals(&self) -> HashSet<String> {
        let mut out = HashSet::new();
        for f in &self.thread_reachable {
            if let Some(gs) = self.globals_touched.get(f) {
                out.extend(gs.iter().cloned());
            }
        }
        out
    }
}

/// Returns every function in `program` whose shape matches `sig`
/// (candidate targets of a function pointer of that type).
pub fn shape_matching_fns<'p>(program: &'p Program, sig: &FnSig) -> Vec<&'p FnDef> {
    program
        .fns
        .iter()
        .filter(|f| {
            f.ret.same_shape(&sig.ret)
                && f.params.len() == sig.params.len()
                && f.params
                    .iter()
                    .zip(&sig.params)
                    .all(|(a, b)| a.ty.same_shape(&b.ty))
        })
        .collect()
}

fn collect_local_names(f: &FnDef) -> HashSet<String> {
    let mut names: HashSet<String> = f.params.iter().map(|p| p.name.clone()).collect();
    fn walk_block(b: &Block, names: &mut HashSet<String>) {
        for s in &b.stmts {
            walk_stmt(s, names);
        }
    }
    fn walk_stmt(s: &Stmt, names: &mut HashSet<String>) {
        match &s.kind {
            StmtKind::Decl { name, .. } => {
                names.insert(name.clone());
            }
            StmtKind::If {
                then_blk, else_blk, ..
            } => {
                walk_block(then_blk, names);
                if let Some(eb) = else_blk {
                    walk_block(eb, names);
                }
            }
            StmtKind::While { body, .. } => walk_block(body, names),
            StmtKind::For {
                init, step, body, ..
            } => {
                if let Some(i) = init {
                    walk_stmt(i, names);
                }
                if let Some(st) = step {
                    walk_stmt(st, names);
                }
                walk_block(body, names);
            }
            StmtKind::Block(b) => walk_block(b, names),
            _ => {}
        }
    }
    walk_block(&f.body, &mut names);
    names
}

struct FnWalk<'p> {
    program: &'p Program,
    global_names: &'p HashSet<String>,
    fn_names: &'p HashSet<String>,
    callees: HashSet<String>,
    globals: HashSet<String>,
    spawned: Vec<String>,
    locals: HashSet<String>,
}

impl<'p> FnWalk<'p> {
    fn block(&mut self, b: &Block) {
        for s in &b.stmts {
            self.stmt(s);
        }
    }

    fn stmt(&mut self, s: &Stmt) {
        match &s.kind {
            StmtKind::Decl { init, .. } => {
                if let Some(e) = init {
                    self.expr(e);
                }
            }
            StmtKind::Assign { lhs, rhs } => {
                self.expr(lhs);
                self.expr(rhs);
            }
            StmtKind::Expr(e) => self.expr(e),
            StmtKind::If {
                cond,
                then_blk,
                else_blk,
            } => {
                self.expr(cond);
                self.block(then_blk);
                if let Some(eb) = else_blk {
                    self.block(eb);
                }
            }
            StmtKind::While { cond, body } => {
                self.expr(cond);
                self.block(body);
            }
            StmtKind::For {
                init,
                cond,
                step,
                body,
            } => {
                if let Some(i) = init {
                    self.stmt(i);
                }
                if let Some(c) = cond {
                    self.expr(c);
                }
                if let Some(st) = step {
                    self.stmt(st);
                }
                self.block(body);
            }
            StmtKind::Return(Some(e)) => self.expr(e),
            StmtKind::Return(None) | StmtKind::Break | StmtKind::Continue => {}
            StmtKind::Block(b) => self.block(b),
        }
    }

    /// Resolves an indirect-call / spawned-pointer shape to candidate
    /// functions.
    fn fnptr_candidates(&self, callee: &Expr) -> Vec<String> {
        // We only need the shape. Reconstruct it from the expression
        // by a light local walk: identifiers naming functions resolve
        // exactly; everything else aliases all shape-compatible fns.
        // Without full types here we conservatively alias every
        // function whose *arity* matches the call; the analysis phase
        // refines by shape via the type table when binding formals.
        let _ = callee;
        Vec::new()
    }

    fn expr(&mut self, e: &Expr) {
        match &e.kind {
            ExprKind::Call(callee, args) => {
                if let ExprKind::Ident(name) = &callee.kind {
                    if name == "spawn" {
                        // spawn(f, arg)
                        if let Some(first) = args.first() {
                            match &first.kind {
                                ExprKind::Ident(f) if self.fn_names.contains(f) => {
                                    self.spawned.push(f.clone());
                                }
                                _ => {
                                    // A spawned function pointer: every
                                    // shape-compatible unary function
                                    // is a potential root.
                                    for f in &self.program.fns {
                                        if f.params.len() == 1 {
                                            self.spawned.push(f.name.clone());
                                        }
                                    }
                                }
                            }
                        }
                        for a in args {
                            self.expr(a);
                        }
                        return;
                    }
                    if is_builtin(name) {
                        for a in args {
                            self.expr(a);
                        }
                        return;
                    }
                    if self.fn_names.contains(name) && !self.locals.contains(name) {
                        self.callees.insert(name.clone());
                        self.expr(callee);
                        for a in args {
                            self.expr(a);
                        }
                        return;
                    }
                }
                // Indirect call through a function pointer: assume it
                // may alias any function of matching arity (shape
                // refinement happens during constraint binding).
                let _ = self.fnptr_candidates(callee);
                for f in &self.program.fns {
                    if f.params.len() == args.len() {
                        self.callees.insert(f.name.clone());
                    }
                }
                self.expr(callee);
                for a in args {
                    self.expr(a);
                }
            }
            ExprKind::Ident(name)
                if self.global_names.contains(name) && !self.locals.contains(name) =>
            {
                self.globals.insert(name.clone());
            }
            ExprKind::Unary(_, a) => self.expr(a),
            ExprKind::Binary(_, a, b) => {
                self.expr(a);
                self.expr(b);
            }
            ExprKind::Index(a, b) => {
                self.expr(a);
                self.expr(b);
            }
            ExprKind::Field(a, _, _) => self.expr(a),
            ExprKind::Cast(_, a) | ExprKind::Scast(_, a) | ExprKind::NewArray(_, a) => self.expr(a),
            ExprKind::Ternary(c, a, b) => {
                self.expr(c);
                self.expr(a);
                self.expr(b);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minic::parse;

    #[test]
    fn direct_spawn_is_root() {
        let src = "int g;\n\
                   void worker(int * d) { g = 1; }\n\
                   void main() { int * p; spawn(worker, p); }";
        let p = parse(src).unwrap();
        let cg = CallGraph::build(&p);
        assert!(cg.thread_roots.contains("worker"));
        assert!(cg.thread_reachable.contains("worker"));
        assert!(!cg.thread_reachable.contains("main"));
        assert!(cg.thread_touched_globals().contains("g"));
    }

    #[test]
    fn globals_through_callees_are_seeded() {
        let src = "int shared_flag;\n\
                   void helper() { shared_flag = 1; }\n\
                   void worker(int * d) { helper(); }\n\
                   void main() { int * p; spawn(worker, p); }";
        let p = parse(src).unwrap();
        let cg = CallGraph::build(&p);
        assert!(cg.thread_reachable.contains("helper"));
        assert!(cg.thread_touched_globals().contains("shared_flag"));
    }

    #[test]
    fn globals_only_in_main_not_seeded() {
        let src = "int main_only;\n\
                   void worker(int * d) { }\n\
                   void main() { int * p; main_only = 3; spawn(worker, p); }";
        let p = parse(src).unwrap();
        let cg = CallGraph::build(&p);
        assert!(!cg.thread_touched_globals().contains("main_only"));
    }

    #[test]
    fn indirect_calls_alias_by_arity() {
        let src = "int g;\n\
                   void cb(int x) { g = x; }\n\
                   void other(int x) { }\n\
                   void worker(int * d) { void (* f)(int x); f(3); }\n\
                   void main() { int * p; spawn(worker, p); }";
        let p = parse(src).unwrap();
        let cg = CallGraph::build(&p);
        assert!(cg.thread_reachable.contains("cb"));
        assert!(cg.thread_reachable.contains("other"));
        assert!(cg.thread_touched_globals().contains("g"));
    }

    #[test]
    fn shape_matching() {
        let src = "void a(int x) { }\nvoid b(char c) { }\nvoid c(int x) { }";
        let p = parse(src).unwrap();
        let sig = p.fns[0].sig();
        let m = shape_matching_fns(&p, &sig);
        let names: Vec<_> = m.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["a", "c"]);
    }
}
