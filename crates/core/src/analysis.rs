//! The whole-program sharing analysis (paper §4.1): generates
//! qualifier constraints from assignments, calls, and reference
//! construction; seeds them with the objects inherently visible to
//! threads; solves; and substitutes the solution back into the
//! program, leaving every qualifier concrete.

use crate::callgraph::{shape_matching_fns, CallGraph};
use crate::constraints::{ConstraintSet, Solution};
use crate::typer::{type_function, TypeEnv, TypeTable};
use minic::ast::*;
use minic::diag::Diagnostics;
use minic::env::StructTable;
use std::collections::HashMap;

/// Result of the sharing analysis.
#[derive(Debug)]
pub struct SharingAnalysis {
    /// Diagnostics from typing and seeding.
    pub diags: Diagnostics,
    /// For each function parameter `(fn, index)` of pointer type:
    /// whether the pointed-to object "escapes" (is dynamic in its own
    /// right). Escaping formals require dynamic actuals; non-escaping
    /// dynamic formals are `dynamic_in` and accept private actuals.
    pub param_escapes: HashMap<(String, usize), bool>,
    /// Statistics for reporting.
    pub stats: AnalysisStats,
}

/// Counters describing the inference outcome.
#[derive(Debug, Clone, Copy, Default)]
pub struct AnalysisStats {
    pub n_vars: u32,
    pub n_dynamic: usize,
    pub n_thread_roots: usize,
    pub n_seeded_globals: usize,
}

/// Runs the sharing analysis over an elaborated program, replacing
/// every qualifier variable with `private` or `dynamic` in place.
pub fn analyze(program: &mut Program, structs: &StructTable, n_vars: u32) -> SharingAnalysis {
    let mut diags = Diagnostics::new();
    let cg = CallGraph::build(program);
    let mut cs = ConstraintSet::new(n_vars);

    // Type every function over the variable-annotated program.
    let tables: HashMap<String, TypeTable> = {
        let env = TypeEnv::new(program, structs);
        program
            .fns
            .iter()
            .map(|f| (f.name.clone(), type_function(&env, f)))
            .collect()
    };
    for t in tables.values() {
        for e in &t.errors {
            diags.push(e.clone());
        }
    }

    // Ref-constructor edges for every declared type.
    for g in &program.globals {
        ref_ctor_type(&g.ty, &mut cs);
    }
    for sd in &program.structs {
        for f in &sd.fields {
            ref_ctor_type(&f.ty, &mut cs);
        }
    }
    for f in &program.fns {
        ref_ctor_type(&f.ret, &mut cs);
        for p in &f.params {
            ref_ctor_type(&p.ty, &mut cs);
        }
    }

    // Constraints from each function body.
    for f in &program.fns {
        let table = &tables[&f.name];
        let mut gen = ConstraintGen {
            program,
            table,
            cs: &mut cs,
            fn_sigs: program
                .fns
                .iter()
                .map(|f| (f.name.clone(), f.sig()))
                .collect(),
            ret: f.ret.clone(),
        };
        gen.block(&f.body);
        ref_ctor_decls(&f.body, &mut cs);
    }

    // Seeds: globals touched by thread-reachable code.
    let touched = cg.thread_touched_globals();
    let mut n_seeded_globals = 0;
    for g in &program.globals {
        if touched.contains(&g.name) {
            n_seeded_globals += 1;
            cs.seed_dynamic(&g.ty.qual, &format!("global `{}`", g.name), g.span);
            // An array global shares one qualifier between the array
            // level and elements, so seeding the outer level suffices.
        }
    }

    let solution = cs.solve();
    let mut seed_diags = Diagnostics::new();
    std::mem::swap(&mut seed_diags, &mut cs.diags);
    diags.extend(seed_diags);

    // Record escape info before substitution erases variables.
    let mut param_escapes = HashMap::new();
    for f in &program.fns {
        for (i, p) in f.params.iter().enumerate() {
            if let Some(pointee) = p.ty.pointee() {
                let escapes = match &pointee.qual {
                    Qual::Var(v) => solution.escapes(*v),
                    Qual::Dynamic => true,
                    _ => false,
                };
                param_escapes.insert((f.name.clone(), i), escapes);
            }
        }
    }

    let stats = AnalysisStats {
        n_vars,
        n_dynamic: solution.dynamic_count(),
        n_thread_roots: cg.thread_roots.len(),
        n_seeded_globals,
    };

    substitute_program(program, &solution);

    SharingAnalysis {
        diags,
        param_escapes,
        stats,
    }
}

// ----- constraint generation -----

struct ConstraintGen<'a> {
    program: &'a Program,
    table: &'a TypeTable,
    cs: &'a mut ConstraintSet,
    fn_sigs: HashMap<String, FnSig>,
    ret: Type,
}

impl<'a> ConstraintGen<'a> {
    fn ty_of(&self, e: &Expr) -> Option<Type> {
        self.table.exprs.get(&e.id).cloned()
    }

    fn block(&mut self, b: &Block) {
        for s in &b.stmts {
            self.stmt(s);
        }
    }

    fn stmt(&mut self, s: &Stmt) {
        match &s.kind {
            StmtKind::Decl { ty, init, .. } => {
                if let Some(e) = init {
                    self.expr(e);
                    if !matches!(e.kind, ExprKind::Null) {
                        if let Some(te) = self.ty_of(e) {
                            tie_below(ty, &te, self.cs);
                        }
                    }
                }
            }
            StmtKind::Assign { lhs, rhs } => {
                self.expr(lhs);
                self.expr(rhs);
                if !matches!(rhs.kind, ExprKind::Null) {
                    if let (Some(tl), Some(tr)) = (self.ty_of(lhs), self.ty_of(rhs)) {
                        tie_below(&tl, &tr, self.cs);
                    }
                }
            }
            StmtKind::Expr(e) => self.expr(e),
            StmtKind::If {
                cond,
                then_blk,
                else_blk,
            } => {
                self.expr(cond);
                self.block(then_blk);
                if let Some(eb) = else_blk {
                    self.block(eb);
                }
            }
            StmtKind::While { cond, body } => {
                self.expr(cond);
                self.block(body);
            }
            StmtKind::For {
                init,
                cond,
                step,
                body,
            } => {
                if let Some(i) = init {
                    self.stmt(i);
                }
                if let Some(c) = cond {
                    self.expr(c);
                }
                if let Some(st) = step {
                    self.stmt(st);
                }
                self.block(body);
            }
            StmtKind::Return(Some(e)) => {
                self.expr(e);
                if !matches!(e.kind, ExprKind::Null) {
                    if let Some(te) = self.ty_of(e) {
                        let ret = self.ret.clone();
                        tie_below(&ret, &te, self.cs);
                    }
                }
            }
            StmtKind::Return(None) | StmtKind::Break | StmtKind::Continue => {}
            StmtKind::Block(b) => self.block(b),
        }
    }

    fn expr(&mut self, e: &Expr) {
        match &e.kind {
            ExprKind::Call(callee, args) => {
                if let ExprKind::Ident(name) = &callee.kind {
                    if name == "spawn" {
                        self.spawn_site(e, args);
                        for a in args {
                            self.expr(a);
                        }
                        return;
                    }
                    if is_builtin(name) {
                        for a in args {
                            self.expr(a);
                        }
                        return;
                    }
                    if let Some(sig) = self.fn_sigs.get(name).cloned() {
                        self.bind_call(&sig, args);
                        for a in args {
                            self.expr(a);
                        }
                        return;
                    }
                }
                // Indirect call: bind against the function-pointer
                // signature (unification has already tied that
                // signature to every function assigned to it).
                self.expr(callee);
                if let Some(tc) = self.ty_of(callee) {
                    let sig = match &tc.kind {
                        TypeKind::Ptr(p) => match &p.kind {
                            TypeKind::Fn(sig) => Some((**sig).clone()),
                            _ => None,
                        },
                        TypeKind::Fn(sig) => Some((**sig).clone()),
                        _ => None,
                    };
                    if let Some(sig) = sig {
                        self.bind_call(&sig, args);
                    }
                }
                for a in args {
                    self.expr(a);
                }
            }
            ExprKind::Scast(ty, src) => {
                self.expr(src);
                // Deep levels (below the pointee's own mode) must
                // agree between source and destination type.
                if let (Some(tp), Some(ts)) = (ty.pointee(), self.ty_of(src)) {
                    if let Some(sp) = ts.pointee() {
                        tie_below(tp, sp, self.cs);
                    }
                }
            }
            ExprKind::Cast(ty, src) => {
                self.expr(src);
                if let Some(ts) = self.ty_of(src) {
                    if ty.is_ptr() && (ts.is_ptr() || matches!(ts.kind, TypeKind::Array(..))) {
                        tie_below(ty, &ts, self.cs);
                    }
                }
            }
            ExprKind::Unary(_, a) => self.expr(a),
            ExprKind::Binary(_, a, b) => {
                self.expr(a);
                self.expr(b);
            }
            ExprKind::Index(a, b) => {
                self.expr(a);
                self.expr(b);
            }
            ExprKind::Field(a, _, _) => self.expr(a),
            ExprKind::NewArray(_, n) => self.expr(n),
            ExprKind::Ternary(c, a, b) => {
                self.expr(c);
                self.expr(a);
                self.expr(b);
                // Both branches flow to the same consumer; tie them.
                if let (Some(ta), Some(tb)) = (self.ty_of(a), self.ty_of(b)) {
                    if !matches!(a.kind, ExprKind::Null) && !matches!(b.kind, ExprKind::Null) {
                        tie_below(&ta, &tb, self.cs);
                    }
                }
            }
            _ => {}
        }
    }

    fn bind_call(&mut self, sig: &FnSig, args: &[Expr]) {
        for (arg, p) in args.iter().zip(&sig.params) {
            if matches!(arg.kind, ExprKind::Null) {
                continue;
            }
            if let Some(ta) = self.ty_of(arg) {
                call_bind_types(&ta, &p.ty, self.cs);
            }
        }
    }

    /// `spawn(f, arg)`: the object passed to the thread is inherently
    /// shared — seed both the formal's pointee and the actual's.
    fn spawn_site(&mut self, e: &Expr, args: &[Expr]) {
        if args.len() != 2 {
            return;
        }
        let roots: Vec<&FnDef> = match &args[0].kind {
            ExprKind::Ident(name) => {
                if let Some(f) = self.program.fn_by_name(name) {
                    vec![f]
                } else if let Some(tf) = self.ty_of(&args[0]) {
                    spawn_candidates(self.program, &tf)
                } else {
                    Vec::new()
                }
            }
            _ => self
                .ty_of(&args[0])
                .map(|tf| spawn_candidates(self.program, &tf))
                .unwrap_or_default(),
        };
        for f in roots {
            if let Some(p) = f.params.first() {
                if let Some(pointee) = p.ty.pointee() {
                    self.cs.seed_dynamic(
                        &pointee.qual,
                        &format!("thread argument of `{}`", f.name),
                        p.span,
                    );
                }
                if !matches!(args[1].kind, ExprKind::Null) {
                    if let Some(ta) = self.ty_of(&args[1]) {
                        tie_below(&ta, &p.ty, self.cs);
                    }
                }
            }
        }
        if !matches!(args[1].kind, ExprKind::Null) {
            if let Some(ta) = self.ty_of(&args[1]) {
                if let Some(pointee) = ta.pointee() {
                    self.cs
                        .seed_dynamic(&pointee.qual, "spawned thread argument", e.span);
                }
            }
        }
    }
}

fn spawn_candidates<'p>(program: &'p Program, tf: &Type) -> Vec<&'p FnDef> {
    let sig = match &tf.kind {
        TypeKind::Ptr(p) => match &p.kind {
            TypeKind::Fn(sig) => Some((**sig).clone()),
            _ => None,
        },
        TypeKind::Fn(sig) => Some((**sig).clone()),
        _ => None,
    };
    sig.map(|s| shape_matching_fns(program, &s))
        .unwrap_or_default()
}

/// Equality constraints for all matching levels strictly below the
/// outermost (the storage modes of the two sides are independent; the
/// types of what they point to are not).
pub fn tie_below(a: &Type, b: &Type, cs: &mut ConstraintSet) {
    match (&a.kind, &b.kind) {
        (TypeKind::Ptr(pa), TypeKind::Ptr(pb)) => tie_all(pa, pb, cs),
        (TypeKind::Ptr(pa), TypeKind::Array(eb, _)) => tie_all(pa, eb, cs),
        (TypeKind::Array(ea, _), TypeKind::Ptr(pb)) => tie_all(ea, pb, cs),
        (TypeKind::Array(ea, _), TypeKind::Array(eb, _)) => tie_all(ea, eb, cs),
        (TypeKind::Fn(sa), TypeKind::Fn(sb)) => {
            tie_all(&sa.ret, &sb.ret, cs);
            for (x, y) in sa.params.iter().zip(&sb.params) {
                tie_all(&x.ty, &y.ty, cs);
            }
        }
        _ => {}
    }
}

fn tie_all(a: &Type, b: &Type, cs: &mut ConstraintSet) {
    cs.eq(&a.qual, &b.qual);
    tie_below(a, b, cs);
}

/// Call-site binding: the pointee's own mode binds actual-to-formal
/// (`dynamic_in` semantics); deeper levels are invariant.
pub fn call_bind_types(actual: &Type, formal: &Type, cs: &mut ConstraintSet) {
    match (&actual.kind, &formal.kind) {
        (TypeKind::Ptr(pa), TypeKind::Ptr(pf)) => {
            cs.call_bind(&pa.qual, &pf.qual);
            tie_below(pa, pf, cs);
        }
        (TypeKind::Array(ea, _), TypeKind::Ptr(pf)) => {
            cs.call_bind(&ea.qual, &pf.qual);
            tie_below(ea, pf, cs);
        }
        (TypeKind::Fn(_), TypeKind::Fn(_)) => tie_below(actual, formal, cs),
        _ => {}
    }
}

fn ref_ctor_type(ty: &Type, cs: &mut ConstraintSet) {
    match &ty.kind {
        TypeKind::Ptr(inner) => {
            cs.ref_ctor(&ty.qual, &inner.qual);
            ref_ctor_type(inner, cs);
        }
        TypeKind::Array(elem, _) => ref_ctor_type(elem, cs),
        TypeKind::Fn(sig) => {
            ref_ctor_type(&sig.ret, cs);
            for p in &sig.params {
                ref_ctor_type(&p.ty, cs);
            }
        }
        _ => {}
    }
}

fn ref_ctor_decls(b: &Block, cs: &mut ConstraintSet) {
    for s in &b.stmts {
        match &s.kind {
            StmtKind::Decl { ty, .. } => ref_ctor_type(ty, cs),
            StmtKind::If {
                then_blk, else_blk, ..
            } => {
                ref_ctor_decls(then_blk, cs);
                if let Some(eb) = else_blk {
                    ref_ctor_decls(eb, cs);
                }
            }
            StmtKind::While { body, .. } => ref_ctor_decls(body, cs),
            StmtKind::For {
                init, step, body, ..
            } => {
                if let Some(i) = init {
                    if let StmtKind::Decl { ty, .. } = &i.kind {
                        ref_ctor_type(ty, cs);
                    }
                }
                let _ = step;
                ref_ctor_decls(body, cs);
            }
            StmtKind::Block(b) => ref_ctor_decls(b, cs),
            _ => {}
        }
    }
}

// ----- substitution -----

/// Replaces every `Qual::Var` in the program with its solution.
pub fn substitute_program(p: &mut Program, sol: &Solution) {
    let subst = |ty: &mut Type| {
        ty.for_each_level_mut(&mut |l| {
            if let Qual::Var(v) = l.qual {
                l.qual = sol.qual(v);
            }
        });
    };
    for g in &mut p.globals {
        subst(&mut g.ty);
    }
    for sd in &mut p.structs {
        for f in &mut sd.fields {
            subst(&mut f.ty);
        }
    }
    for f in &mut p.fns {
        subst(&mut f.ret);
        for param in &mut f.params {
            subst(&mut param.ty);
        }
        subst_block(&mut f.body, &subst);
    }
}

fn subst_block(b: &mut Block, subst: &impl Fn(&mut Type)) {
    for s in &mut b.stmts {
        subst_stmt(s, subst);
    }
}

fn subst_stmt(s: &mut Stmt, subst: &impl Fn(&mut Type)) {
    match &mut s.kind {
        StmtKind::Decl { ty, init, .. } => {
            subst(ty);
            if let Some(e) = init {
                subst_expr(e, subst);
            }
        }
        StmtKind::Assign { lhs, rhs } => {
            subst_expr(lhs, subst);
            subst_expr(rhs, subst);
        }
        StmtKind::Expr(e) => subst_expr(e, subst),
        StmtKind::If {
            cond,
            then_blk,
            else_blk,
        } => {
            subst_expr(cond, subst);
            subst_block(then_blk, subst);
            if let Some(eb) = else_blk {
                subst_block(eb, subst);
            }
        }
        StmtKind::While { cond, body } => {
            subst_expr(cond, subst);
            subst_block(body, subst);
        }
        StmtKind::For {
            init,
            cond,
            step,
            body,
        } => {
            if let Some(i) = init {
                subst_stmt(i, subst);
            }
            if let Some(c) = cond {
                subst_expr(c, subst);
            }
            if let Some(st) = step {
                subst_stmt(st, subst);
            }
            subst_block(body, subst);
        }
        StmtKind::Return(Some(e)) => subst_expr(e, subst),
        StmtKind::Return(None) | StmtKind::Break | StmtKind::Continue => {}
        StmtKind::Block(b) => subst_block(b, subst),
    }
}

fn subst_expr(e: &mut Expr, subst: &impl Fn(&mut Type)) {
    match &mut e.kind {
        ExprKind::Unary(_, a) => subst_expr(a, subst),
        ExprKind::Binary(_, a, b) => {
            subst_expr(a, subst);
            subst_expr(b, subst);
        }
        ExprKind::Index(a, b) => {
            subst_expr(a, subst);
            subst_expr(b, subst);
        }
        ExprKind::Field(a, _, _) => subst_expr(a, subst),
        ExprKind::Call(f, args) => {
            subst_expr(f, subst);
            for a in args {
                subst_expr(a, subst);
            }
        }
        ExprKind::Cast(ty, a) | ExprKind::Scast(ty, a) | ExprKind::NewArray(ty, a) => {
            subst(ty);
            subst_expr(a, subst);
        }
        ExprKind::New(ty) | ExprKind::Sizeof(ty) => subst(ty),
        ExprKind::Ternary(c, a, b) => {
            subst_expr(c, subst);
            subst_expr(a, subst);
            subst_expr(b, subst);
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elaborate::elaborate;
    use minic::parse;

    fn run(src: &str) -> (Program, SharingAnalysis) {
        let mut p = parse(src).unwrap();
        let elab = elaborate(&mut p);
        assert!(!elab.diags.has_errors());
        let structs = StructTable::build(&p).unwrap();
        let a = analyze(&mut p, &structs, elab.n_vars);
        (p, a)
    }

    #[test]
    fn thread_formal_pointee_becomes_dynamic() {
        let (p, a) = run("void worker(int * d) { *d = 1; }\n\
             void main() { int * p; p = new(int); spawn(worker, p); }");
        assert!(
            !a.diags.has_errors(),
            "{:?}",
            a.diags.iter().collect::<Vec<_>>()
        );
        let worker = p.fn_by_name("worker").unwrap();
        assert_eq!(worker.params[0].ty.pointee().unwrap().qual, Qual::Dynamic);
        // And the pointer cell itself stays private.
        assert_eq!(worker.params[0].ty.qual, Qual::Private);
    }

    #[test]
    fn main_local_stays_private() {
        let (p, _) = run("void worker(int * d) { }\n\
             void main() { int x; int * q; q = &x; *q = 3; }");
        let main = p.fn_by_name("main").unwrap();
        let StmtKind::Decl { ty, .. } = &main.body.stmts[0].kind else {
            panic!()
        };
        assert_eq!(ty.qual, Qual::Private);
    }

    #[test]
    fn thread_touched_global_becomes_dynamic() {
        let (p, _) = run("int flag;\n\
             void worker(int * d) { flag = 1; }\n\
             void main() { int * p; spawn(worker, p); flag = 0; }");
        assert_eq!(p.globals[0].ty.qual, Qual::Dynamic);
    }

    #[test]
    fn untouched_global_stays_private() {
        let (p, _) = run("int main_only;\n\
             void worker(int * d) { }\n\
             void main() { int * p; main_only = 1; spawn(worker, p); }");
        assert_eq!(p.globals[0].ty.qual, Qual::Private);
    }

    #[test]
    fn dynamicness_flows_through_assignment() {
        let (p, _) = run(
            "void worker(int * d) { int * alias; alias = d; *alias = 2; }\n\
             void main() { int * p; spawn(worker, p); }",
        );
        let worker = p.fn_by_name("worker").unwrap();
        let StmtKind::Decl { ty, .. } = &worker.body.stmts[0].kind else {
            panic!()
        };
        assert_eq!(ty.pointee().unwrap().qual, Qual::Dynamic);
    }

    #[test]
    fn private_annotation_on_thread_formal_is_error() {
        let (_, a) = run("void worker(int private * d) { }\n\
             void main() { int * p; spawn(worker, p); }");
        assert!(a.diags.has_errors());
    }

    #[test]
    fn helper_called_from_one_thread_stays_private() {
        // helper is called with a private actual from main only; its
        // formal must not become dynamic.
        let (p, a) = run("void helper(int * x) { *x = 1; }\n\
             void worker(int * d) { }\n\
             void main() { int * p; p = new(int); helper(p); spawn(worker, NULL); }");
        assert!(!a.diags.has_errors());
        let helper = p.fn_by_name("helper").unwrap();
        assert_eq!(helper.params[0].ty.pointee().unwrap().qual, Qual::Private);
    }

    #[test]
    fn dynamic_in_checks_formal_but_not_other_actuals() {
        let (p, a) = run("void helper(int * x) { *x = 1; }\n\
             void worker(int * d) { helper(d); }\n\
             void main() { int * p; int * q; p = new(int); q = new(int);\n\
                           spawn(worker, p); helper(q); }");
        assert!(!a.diags.has_errors());
        let helper = p.fn_by_name("helper").unwrap();
        // The formal is checked (dynamic)...
        assert_eq!(helper.params[0].ty.pointee().unwrap().qual, Qual::Dynamic);
        // ...but it does not escape, so private actuals are accepted.
        assert!(!a.param_escapes[&("helper".to_string(), 0)]);
        // And q in main stays private.
        let main = p.fn_by_name("main").unwrap();
        let StmtKind::Decl { ty, .. } = &main.body.stmts[1].kind else {
            panic!()
        };
        assert_eq!(ty.pointee().unwrap().qual, Qual::Private);
    }

    #[test]
    fn escaping_formal_flows_back() {
        // worker stores its formal into a shared global, so main's
        // pointer must become dynamic.
        let (p, a) = run("int * keep;\n\
             void stash(int * x) { keep = x; }\n\
             void worker(int * d) { int v; v = *keep; }\n\
             void main() { int * p; p = new(int); stash(p); spawn(worker, NULL); }");
        assert!(!a.diags.has_errors());
        assert!(a.param_escapes[&("stash".to_string(), 0)]);
        let main = p.fn_by_name("main").unwrap();
        let StmtKind::Decl { ty, .. } = &main.body.stmts[0].kind else {
            panic!()
        };
        assert_eq!(ty.pointee().unwrap().qual, Qual::Dynamic);
    }

    #[test]
    fn new_allocation_ties_to_destination() {
        let (p, _) = run("void worker(int * d) { *d = 1; }\n\
             void main() { int * p; p = new(int); spawn(worker, p); }");
        // The allocation type literal must have been substituted to
        // dynamic (it flows into the spawned thread).
        let main = p.fn_by_name("main").unwrap();
        let StmtKind::Assign { rhs, .. } = &main.body.stmts[1].kind else {
            panic!()
        };
        let ExprKind::New(ty) = &rhs.kind else {
            panic!()
        };
        assert_eq!(ty.qual, Qual::Dynamic);
    }

    #[test]
    fn stats_are_populated() {
        let (_, a) = run("int flag;\n\
             void worker(int * d) { flag = 1; }\n\
             void main() { int * p; spawn(worker, p); }");
        assert!(a.stats.n_vars > 0);
        assert!(a.stats.n_dynamic > 0);
        assert_eq!(a.stats.n_thread_roots, 1);
        assert_eq!(a.stats.n_seeded_globals, 1);
    }
}
