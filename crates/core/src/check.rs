//! The static checker and instrumenter (paper §3 typing judgments,
//! generalized to all five sharing modes).
//!
//! Runs after the sharing analysis, when every qualifier is concrete.
//! It verifies:
//!
//! * **Well-formedness** — no shared (non-`private`) reference may
//!   point to a `private` target (the REF-CTOR rule); `locked(l)`
//!   lock expressions must be verifiably constant.
//! * **Access rules** — writes through `readonly` are rejected except
//!   the paper's exception (a `readonly` field of a `private` struct
//!   instance); reads and writes through `locked` and `dynamic`
//!   storage get runtime checks.
//! * **Assignment/call compatibility** — referent types must agree
//!   exactly (qualifiers are invariant below the outermost level);
//!   where only the referent's own mode differs, SharC *suggests* the
//!   sharing cast that would fix it, as the paper's tool does.
//! * **Sharing casts** — `SCAST(t, lv)` may only change the referent's
//!   outermost mode; the source is nulled, so a definite later use
//!   produces a warning.
//!
//! The output is an [`Instrumentation`] table mapping l-value
//! occurrences to the runtime checks the VM must execute — exactly
//! the `when chkread/chkwrite/oneref` guards of the formal model.

use crate::analysis::SharingAnalysis;
use crate::typer::{type_function, TypeEnv, TypeTable};
use minic::ast::*;
use minic::diag::{Diagnostic, Diagnostics};
use minic::env::StructTable;
use minic::pretty;
use minic::span::Span;
use std::collections::{HashMap, HashSet};

/// Which runtime check an access needs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckKind {
    /// Reader/writer-set check on `dynamic` storage.
    Dynamic,
    /// Held-lock check; index into [`Instrumentation::lock_exprs`].
    Locked(usize),
}

/// Checks attached to one l-value occurrence.
#[derive(Debug, Clone)]
pub struct AccessCheck {
    pub read: Option<CheckKind>,
    pub write: Option<CheckKind>,
    /// The l-value as written (`S->sdata`, `*(fdata + i)`), used in
    /// conflict reports.
    pub lvalue: String,
    pub span: Span,
}

/// The instrumentation table consumed by the VM compiler.
#[derive(Debug, Default)]
pub struct Instrumentation {
    /// Checks per l-value expression node.
    pub checks: HashMap<NodeId, AccessCheck>,
    /// Synthesized lock expressions (evaluated uninstrumented).
    pub lock_exprs: Vec<Expr>,
    /// Call arguments covered by a trusted library *read summary*
    /// (paper §4.4): the callee reads through the pointer, so for a
    /// dynamic actual the reader set must be updated over the range
    /// the library touches.
    pub lib_read_summaries: HashSet<NodeId>,
    /// Number of statically-checked access sites, by kind (for
    /// reporting).
    pub n_dynamic_sites: usize,
    pub n_locked_sites: usize,
}

/// Result of the checking phase.
#[derive(Debug)]
pub struct CheckResult {
    pub diags: Diagnostics,
    pub instr: Instrumentation,
}

/// Checks the fully-annotated `program` and builds instrumentation.
pub fn check(program: &Program, structs: &StructTable, sharing: &SharingAnalysis) -> CheckResult {
    let mut diags = Diagnostics::new();

    // Well-formedness of declared types.
    for g in &program.globals {
        wf_type(&g.ty, g.span, &mut diags);
    }
    for sd in &program.structs {
        for f in &sd.fields {
            wf_field_type(&f.ty, f.span, &mut diags);
        }
    }
    for f in &program.fns {
        wf_type(&f.ret, f.span, &mut diags);
        for p in &f.params {
            wf_type(&p.ty, p.span, &mut diags);
        }
    }

    let env = TypeEnv::new(program, structs);
    let mut instr = Instrumentation::default();
    // Reserve synthesized-expression ids beyond any parser id.
    let mut next_expr_id = 1_000_000u32;

    for f in &program.fns {
        let table = type_function(&env, f);
        for e in &table.errors {
            diags.push(e.clone());
        }
        let assigned = collect_assigned_names(f);
        let mut ck = FnChecker {
            env: &env,
            table: &table,
            sharing,
            diags: &mut diags,
            instr: &mut instr,
            next_expr_id: &mut next_expr_id,
            assigned_names: assigned,
            fn_name: &f.name,
        };
        ck.block(&f.body);
        wf_decl_types(&f.body, &mut diags);
    }

    CheckResult { diags, instr }
}

// ----- well-formedness -----

/// No shared reference to a private target (REF-CTOR generalized).
fn wf_type(ty: &Type, span: Span, diags: &mut Diagnostics) {
    if let TypeKind::Ptr(inner) = &ty.kind {
        let ptr_shared = !matches!(ty.qual, Qual::Private | Qual::Infer | Qual::Var(_));
        if ptr_shared
            && matches!(inner.qual, Qual::Private)
            && !inner.is_void()
            && !matches!(inner.kind, TypeKind::Fn(_))
        {
            diags.push(Diagnostic::error(
                format!(
                    "ill-formed type `{}`: a shared ({}) reference may not point to a \
                     private target",
                    pretty::type_str(ty),
                    ty.qual
                ),
                span,
            ));
        }
    }
    match &ty.kind {
        TypeKind::Ptr(inner) | TypeKind::Array(inner, _) => wf_type(inner, span, diags),
        TypeKind::Fn(sig) => {
            wf_type(&sig.ret, span, diags);
            for p in &sig.params {
                wf_type(&p.ty, span, diags);
            }
        }
        _ => {}
    }
}

/// Field types may use `Poly` at the outermost level; a `Poly`
/// pointer is as restrictive as a shared one (the instance may be
/// shared), so a `Poly` pointer to `private` is ill-formed — this is
/// why the paper disallows `private` as the outermost annotation of a
/// field.
fn wf_field_type(ty: &Type, span: Span, diags: &mut Diagnostics) {
    if let TypeKind::Ptr(inner) = &ty.kind {
        let ptr_maybe_shared = !matches!(ty.qual, Qual::Private | Qual::Infer | Qual::Var(_));
        if ptr_maybe_shared
            && matches!(inner.qual, Qual::Private)
            && !inner.is_void()
            && !matches!(inner.kind, TypeKind::Fn(_))
        {
            diags.push(Diagnostic::error(
                format!(
                    "ill-formed field type `{}`: a possibly-shared reference may not point \
                     to a private target",
                    pretty::type_str(ty)
                ),
                span,
            ));
        }
    }
    match &ty.kind {
        TypeKind::Ptr(inner) | TypeKind::Array(inner, _) => wf_field_type(inner, span, diags),
        TypeKind::Fn(_) => wf_type(ty, span, diags),
        _ => {}
    }
}

fn wf_decl_types(b: &Block, diags: &mut Diagnostics) {
    for s in &b.stmts {
        match &s.kind {
            StmtKind::Decl { ty, .. } => wf_type(ty, s.span, diags),
            StmtKind::If {
                then_blk, else_blk, ..
            } => {
                wf_decl_types(then_blk, diags);
                if let Some(eb) = else_blk {
                    wf_decl_types(eb, diags);
                }
            }
            StmtKind::While { body, .. } => wf_decl_types(body, diags),
            StmtKind::For { init, body, .. } => {
                if let Some(i) = init {
                    if let StmtKind::Decl { ty, .. } = &i.kind {
                        wf_type(ty, i.span, diags);
                    }
                }
                wf_decl_types(body, diags);
            }
            StmtKind::Block(b) => wf_decl_types(b, diags),
            _ => {}
        }
    }
}

/// Names assigned (or address-taken) anywhere in the function; used
/// for the `locked(l)` verifiable-constancy requirement.
fn collect_assigned_names(f: &FnDef) -> HashSet<String> {
    let mut names = HashSet::new();
    fn expr_walk(e: &Expr, names: &mut HashSet<String>) {
        match &e.kind {
            // Taking an address (e.g. `mutex_lock(&gm)`) does not by
            // itself modify the variable; only assignments and
            // sharing casts (which null their source) do.
            ExprKind::Unary(_, a) => expr_walk(a, names),
            ExprKind::Binary(_, a, b) => {
                expr_walk(a, names);
                expr_walk(b, names);
            }
            ExprKind::Index(a, b) => {
                expr_walk(a, names);
                expr_walk(b, names);
            }
            ExprKind::Field(a, _, _) => expr_walk(a, names),
            ExprKind::Call(f, args) => {
                expr_walk(f, names);
                for a in args {
                    expr_walk(a, names);
                }
            }
            ExprKind::Cast(_, a) | ExprKind::NewArray(_, a) => expr_walk(a, names),
            ExprKind::Scast(_, a) => {
                // The source of a sharing cast is nulled out: it is a
                // modification.
                if let ExprKind::Ident(n) = &a.kind {
                    names.insert(n.clone());
                }
                expr_walk(a, names);
            }
            ExprKind::Ternary(c, a, b) => {
                expr_walk(c, names);
                expr_walk(a, names);
                expr_walk(b, names);
            }
            _ => {}
        }
    }
    fn stmt_walk(s: &Stmt, names: &mut HashSet<String>) {
        match &s.kind {
            StmtKind::Decl { init: Some(e), .. } => expr_walk(e, names),
            StmtKind::Assign { lhs, rhs } => {
                if let ExprKind::Ident(n) = &lhs.kind {
                    names.insert(n.clone());
                }
                expr_walk(lhs, names);
                expr_walk(rhs, names);
            }
            StmtKind::Expr(e) => expr_walk(e, names),
            StmtKind::If {
                cond,
                then_blk,
                else_blk,
            } => {
                expr_walk(cond, names);
                block_walk(then_blk, names);
                if let Some(eb) = else_blk {
                    block_walk(eb, names);
                }
            }
            StmtKind::While { cond, body } => {
                expr_walk(cond, names);
                block_walk(body, names);
            }
            StmtKind::For {
                init,
                cond,
                step,
                body,
            } => {
                if let Some(i) = init {
                    stmt_walk(i, names);
                }
                if let Some(c) = cond {
                    expr_walk(c, names);
                }
                if let Some(st) = step {
                    stmt_walk(st, names);
                }
                block_walk(body, names);
            }
            StmtKind::Return(Some(e)) => expr_walk(e, names),
            StmtKind::Block(b) => block_walk(b, names),
            _ => {}
        }
    }
    fn block_walk(b: &Block, names: &mut HashSet<String>) {
        for s in &b.stmts {
            stmt_walk(s, names);
        }
    }
    block_walk(&f.body, &mut names);
    names
}

// ----- per-function checking -----

struct FnChecker<'a> {
    env: &'a TypeEnv<'a>,
    table: &'a TypeTable,
    sharing: &'a SharingAnalysis,
    diags: &'a mut Diagnostics,
    instr: &'a mut Instrumentation,
    next_expr_id: &'a mut u32,
    assigned_names: HashSet<String>,
    fn_name: &'a str,
}

impl<'a> FnChecker<'a> {
    fn ty_of(&self, e: &Expr) -> Option<Type> {
        self.table.exprs.get(&e.id).cloned()
    }

    fn block(&mut self, b: &Block) {
        for s in &b.stmts {
            self.stmt(s);
        }
        // Scan straight-line statement sequences for uses of a
        // pointer after it was nulled by a sharing cast.
        self.warn_use_after_scast(b);
    }

    fn stmt(&mut self, s: &Stmt) {
        match &s.kind {
            StmtKind::Decl { ty, init, .. } => {
                if let Some(e) = init {
                    self.rvalue(e);
                    self.check_assign_compat(ty, e, s.span);
                }
            }
            StmtKind::Assign { lhs, rhs } => {
                self.rvalue(rhs);
                self.lvalue_addr(lhs);
                let lhs_ty = self.ty_of(lhs);
                if let Some(lt) = &lhs_ty {
                    self.record_write(lhs, lt);
                    self.check_assign_compat(lt, rhs, s.span);
                }
            }
            StmtKind::Expr(e) => self.rvalue(e),
            StmtKind::If {
                cond,
                then_blk,
                else_blk,
            } => {
                self.rvalue(cond);
                self.block(then_blk);
                if let Some(eb) = else_blk {
                    self.block(eb);
                }
            }
            StmtKind::While { cond, body } => {
                self.rvalue(cond);
                self.block(body);
            }
            StmtKind::For {
                init,
                cond,
                step,
                body,
            } => {
                if let Some(i) = init {
                    self.stmt(i);
                }
                if let Some(c) = cond {
                    self.rvalue(c);
                }
                if let Some(st) = step {
                    self.stmt(st);
                }
                self.block(body);
            }
            StmtKind::Return(Some(e)) => self.rvalue(e),
            StmtKind::Return(None) | StmtKind::Break | StmtKind::Continue => {}
            StmtKind::Block(b) => self.block(b),
        }
    }

    /// Visits an expression used as an r-value; records read checks
    /// on every storage load inside it.
    fn rvalue(&mut self, e: &Expr) {
        match &e.kind {
            ExprKind::Ident(name) => {
                // Loading a variable; function names are constants.
                if self.env.fn_sigs.contains_key(name) && self.ty_of(e).is_some_and(|t| {
                    matches!(&t.kind, TypeKind::Ptr(p) if matches!(p.kind, TypeKind::Fn(_)))
                }) && !self.table.exprs.contains_key(&e.id)
                {
                    return;
                }
                if let Some(t) = self.ty_of(e) {
                    self.record_read(e, &t);
                }
            }
            ExprKind::Unary(UnOp::Deref, p) => {
                self.rvalue(p);
                if let Some(t) = self.ty_of(e) {
                    self.record_read(e, &t);
                }
            }
            ExprKind::Unary(UnOp::AddrOf, lv) => {
                self.lvalue_addr(lv);
            }
            ExprKind::Unary(_, a) => self.rvalue(a),
            ExprKind::Binary(_, a, b) => {
                self.rvalue(a);
                self.rvalue(b);
            }
            ExprKind::Index(base, idx) => {
                self.index_base(base);
                self.rvalue(idx);
                if let Some(t) = self.ty_of(e) {
                    self.record_read(e, &t);
                }
            }
            ExprKind::Field(base, _, arrow) => {
                if *arrow {
                    self.rvalue(base);
                } else {
                    self.lvalue_addr(base);
                }
                if let Some(t) = self.ty_of(e) {
                    self.record_read(e, &t);
                }
            }
            ExprKind::Call(callee, args) => self.call(e, callee, args),
            ExprKind::Cast(ty, inner) => {
                self.rvalue(inner);
                self.check_ordinary_cast(ty, inner, e.span);
            }
            ExprKind::Scast(ty, src) => self.scast(e, ty, src),
            ExprKind::New(_) | ExprKind::Sizeof(_) => {}
            ExprKind::NewArray(_, n) => self.rvalue(n),
            ExprKind::Ternary(c, a, b) => {
                self.rvalue(c);
                self.rvalue(a);
                self.rvalue(b);
            }
            _ => {}
        }
    }

    /// Visits an l-value in *address* context: its own storage is not
    /// loaded, but inner pointers on the path are.
    fn lvalue_addr(&mut self, e: &Expr) {
        match &e.kind {
            ExprKind::Ident(_) => {}
            ExprKind::Unary(UnOp::Deref, p) => self.rvalue(p),
            ExprKind::Index(base, idx) => {
                self.index_base(base);
                self.rvalue(idx);
            }
            ExprKind::Field(base, _, arrow) => {
                if *arrow {
                    self.rvalue(base);
                } else {
                    self.lvalue_addr(base);
                }
            }
            _ => self.rvalue(e),
        }
    }

    /// An index base is loaded if it is a pointer, addressed if it is
    /// an array l-value.
    fn index_base(&mut self, base: &Expr) {
        let is_array = self
            .ty_of(base)
            .is_some_and(|t| matches!(t.kind, TypeKind::Array(..)));
        if is_array && base.is_lvalue() {
            self.lvalue_addr(base);
        } else {
            self.rvalue(base);
        }
    }

    // ----- checks recording -----

    fn access_entry(&mut self, e: &Expr) -> &mut AccessCheck {
        self.instr
            .checks
            .entry(e.id)
            .or_insert_with(|| AccessCheck {
                read: None,
                write: None,
                lvalue: pretty::expr(e),
                span: e.span,
            })
    }

    fn check_kind_for(&mut self, qual: &Qual, span: Span) -> Option<CheckKind> {
        match qual {
            Qual::Dynamic => {
                self.instr.n_dynamic_sites += 1;
                Some(CheckKind::Dynamic)
            }
            Qual::Locked(path) => {
                self.instr.n_locked_sites += 1;
                let idx = self.lock_expr_index(path, span);
                Some(CheckKind::Locked(idx))
            }
            _ => None,
        }
    }

    fn lock_expr_index(&mut self, path: &LockPath, span: Span) -> usize {
        let src = path.segs.join("->");
        let id = *self.next_expr_id;
        match minic::parse_expr(&src, id) {
            Ok(expr) => {
                *self.next_expr_id += 10_000;
                self.check_lock_constancy(&expr, span);
                self.instr.lock_exprs.push(expr);
                self.instr.lock_exprs.len() - 1
            }
            Err(_) => {
                self.diags.push(Diagnostic::error(
                    format!("cannot resolve lock expression `{src}`"),
                    span,
                ));
                self.instr.lock_exprs.push(Expr {
                    kind: ExprKind::Null,
                    span,
                    id: NodeId(id),
                });
                *self.next_expr_id += 10_000;
                self.instr.lock_exprs.len() - 1
            }
        }
    }

    /// The lock expression must be verifiably constant: its base must
    /// be an unmodified local/formal or a readonly global, and every
    /// field on the path must be readonly (forced by elaboration).
    fn check_lock_constancy(&mut self, lock: &Expr, span: Span) {
        let mut base = lock;
        loop {
            match &base.kind {
                ExprKind::Field(inner, _, _) => base = inner,
                ExprKind::Index(inner, _) => base = inner,
                ExprKind::Unary(UnOp::Deref, inner) => base = inner,
                _ => break,
            }
        }
        if let ExprKind::Ident(name) = &base.kind {
            if self.assigned_names.contains(name) {
                self.diags.push(Diagnostic::error(
                    format!(
                        "lock base `{name}` must be verifiably constant, but it is \
                         modified in `{}`",
                        self.fn_name
                    ),
                    span,
                ));
            }
        }
    }

    fn record_read(&mut self, e: &Expr, ty: &Type) {
        if let Some(kind) = self.check_kind_for(&ty.qual.clone(), e.span) {
            self.access_entry(e).read = Some(kind);
        }
    }

    fn record_write(&mut self, e: &Expr, ty: &Type) {
        match &ty.qual {
            Qual::Readonly => {
                // The paper's exception: a readonly field of a private
                // structure instance is writable (initialization).
                let allowed = match &e.kind {
                    ExprKind::Field(base, _, arrow) => {
                        let inst_qual = self.ty_of(base).map(|t| {
                            if *arrow {
                                t.pointee().map(|p| p.qual.clone()).unwrap_or(Qual::Private)
                            } else {
                                t.qual
                            }
                        });
                        matches!(inst_qual, Some(Qual::Private))
                    }
                    _ => false,
                };
                if !allowed {
                    self.diags.push(Diagnostic::error(
                        format!(
                            "write to readonly l-value `{}` (readonly fields are only \
                             writable through a private struct instance)",
                            pretty::expr(e)
                        ),
                        e.span,
                    ));
                }
            }
            q => {
                if let Some(kind) = self.check_kind_for(&q.clone(), e.span) {
                    self.access_entry(e).write = Some(kind);
                }
            }
        }
    }

    // ----- compatibility -----

    fn check_assign_compat(&mut self, lhs_ty: &Type, rhs: &Expr, span: Span) {
        if matches!(rhs.kind, ExprKind::Null) {
            if !lhs_ty.is_ptr() && !lhs_ty.is_integral() {
                self.diags
                    .push(Diagnostic::error("NULL assigned to non-pointer", span));
            }
            return;
        }
        let Some(rhs_ty) = self.ty_of(rhs) else {
            return;
        };
        if lhs_ty.is_integral() && rhs_ty.is_integral() {
            return;
        }
        let array_decay = lhs_ty.is_ptr() && matches!(rhs_ty.kind, TypeKind::Array(..));
        if !(lhs_ty.same_shape(&rhs_ty) || array_decay) {
            // Pointer-from-array decay is fine; anything else must
            // match shapes (ordinary casts handle C-style punning).
            if !(lhs_ty.is_ptr() && is_null_shape(&rhs_ty)) {
                self.diags.push(Diagnostic::error(
                    format!(
                        "type mismatch: cannot assign `{}` to `{}`",
                        pretty::type_str(&rhs_ty),
                        pretty::type_str(lhs_ty)
                    ),
                    span,
                ));
            }
            return;
        }
        // Referent types must agree exactly.
        let (la, ra) = match (level_below(lhs_ty), level_below(&rhs_ty)) {
            (Some(a), Some(b)) => (a, b),
            _ => return,
        };
        if !deep_equal(&la, &ra) {
            // If only the referent's own mode differs, suggest the
            // sharing cast the paper's tool suggests.
            if shallow_fixable(&la, &ra) {
                // Print the cast as the paper writes it: the referent
                // type with no qualifier on the pointer itself.
                let cast_ty = Type::ptr(la.clone(), Qual::Infer);
                self.diags.push(
                    Diagnostic::error(
                        format!(
                            "sharing modes differ: cannot assign `{}` to `{}`",
                            pretty::type_str(&rhs_ty),
                            pretty::type_str(lhs_ty)
                        ),
                        span,
                    )
                    .with_note(
                        format!(
                            "insert a sharing cast: SCAST({}, {})",
                            pretty::type_str(&cast_ty),
                            pretty::expr(rhs)
                        ),
                        rhs.span,
                    ),
                );
            } else {
                self.diags.push(Diagnostic::error(
                    format!(
                        "referent types differ: cannot assign `{}` to `{}`",
                        pretty::type_str(&rhs_ty),
                        pretty::type_str(lhs_ty)
                    ),
                    span,
                ));
            }
        }
    }

    fn check_ordinary_cast(&mut self, to: &Type, from: &Expr, span: Span) {
        let Some(from_ty) = self.ty_of(from) else {
            return;
        };
        // Integer <-> pointer casts are allowed (C legacy; see the
        // dillo benchmark), as are pointer shape changes, but sharing
        // modes may not change at matching referent levels.
        if let (Some(tp), Some(fp)) = (to.pointee(), from_ty.pointee()) {
            if tp.same_shape(fp) && !deep_equal(tp, fp) {
                self.diags.push(Diagnostic::error(
                    format!(
                        "ordinary cast cannot change sharing modes: `{}` -> `{}`; \
                             use SCAST",
                        pretty::type_str(&from_ty),
                        pretty::type_str(to)
                    ),
                    span,
                ));
            }
        }
    }

    fn scast(&mut self, e: &Expr, to: &Type, src: &Expr) {
        self.lvalue_addr(src);
        if let Some(src_ty) = self.ty_of(src) {
            // Record read+write checks on the source (it is loaded and
            // nulled).
            self.record_read(src, &src_ty.clone());
            if src.is_lvalue() {
                self.record_write(src, &src_ty.clone());
            }
            // Only the referent's outermost mode may change; deeper
            // levels are invariant (you cannot cast
            // ref(dynamic ref(dynamic int)) to ref(private ref(private int))).
            if let (Some(tp), Some(sp)) = (to.pointee(), src_ty.pointee()) {
                if !tp.same_shape(sp) {
                    self.diags.push(Diagnostic::error(
                        "sharing cast cannot change the referent's shape",
                        e.span,
                    ));
                } else if !deep_equal_below(tp, sp) {
                    self.diags.push(Diagnostic::error(
                        "sharing cast may only change the referent's own mode; deeper \
                         sharing modes must be identical",
                        e.span,
                    ));
                }
            }
        }
    }

    fn call(&mut self, e: &Expr, callee: &Expr, args: &[Expr]) {
        if let ExprKind::Ident(name) = &callee.kind {
            if is_builtin(name) {
                self.check_builtin_args(name, args, e.span);
                for a in args {
                    self.rvalue(a);
                }
                return;
            }
            if let Some(sig) = self.env.fn_sigs.get(name).cloned() {
                self.check_call_args(Some(name), &sig, args, e.span);
                for a in args {
                    self.rvalue(a);
                }
                return;
            }
        }
        self.rvalue(callee);
        if let Some(tc) = self.ty_of(callee) {
            let sig = match &tc.kind {
                TypeKind::Ptr(p) => match &p.kind {
                    TypeKind::Fn(sig) => Some((**sig).clone()),
                    _ => None,
                },
                TypeKind::Fn(sig) => Some((**sig).clone()),
                _ => None,
            };
            if let Some(sig) = sig {
                self.check_call_args(None, &sig, args, e.span);
            }
        }
        for a in args {
            self.rvalue(a);
        }
    }

    fn check_call_args(&mut self, fn_name: Option<&str>, sig: &FnSig, args: &[Expr], span: Span) {
        for (i, (arg, p)) in args.iter().zip(&sig.params).enumerate() {
            if matches!(arg.kind, ExprKind::Null) {
                continue;
            }
            let Some(ta) = self.ty_of(arg) else { continue };
            let (fa, fp) = match (level_below(&ta), level_below(&p.ty)) {
                (Some(a), Some(b)) => (a, b),
                _ => continue,
            };
            if deep_equal(&fa, &fp) {
                continue;
            }
            // dynamic_in acceptance: a dynamic, non-escaping formal
            // accepts a private actual; accesses are checked inside
            // the callee, which is sound for a single-thread object.
            let dynamic_in_ok = matches!(fp.qual, Qual::Dynamic)
                && matches!(fa.qual, Qual::Private)
                && deep_equal_below(&fa, &fp)
                && fn_name.is_some_and(|n| {
                    !self
                        .sharing
                        .param_escapes
                        .get(&(n.to_string(), i))
                        .copied()
                        .unwrap_or(true)
                });
            if dynamic_in_ok {
                continue;
            }
            if shallow_fixable(&fa, &fp) {
                let cast_ty = Type::ptr(fp.clone(), Qual::Infer);
                self.diags.push(
                    Diagnostic::error(
                        format!(
                            "argument {} has sharing mode `{}` but the parameter expects \
                             `{}`",
                            i + 1,
                            fa.qual,
                            fp.qual
                        ),
                        span,
                    )
                    .with_note(
                        format!(
                            "insert a sharing cast: SCAST({}, {})",
                            pretty::type_str(&cast_ty),
                            pretty::expr(arg)
                        ),
                        arg.span,
                    ),
                );
            } else {
                self.diags.push(Diagnostic::error(
                    format!(
                        "argument {} referent type `{}` does not match parameter `{}`",
                        i + 1,
                        pretty::type_str(&ta),
                        pretty::type_str(&p.ty)
                    ),
                    span,
                ));
            }
        }
    }

    /// Library-call argument rules (paper §4.4): a call with a
    /// read/write summary accepts any sharing mode *except* `locked`;
    /// a `dynamic` actual gets its reader set updated per the summary.
    fn check_builtin_args(&mut self, name: &str, args: &[Expr], span: Span) {
        // `print_str` is the library call with a read summary: it
        // reads the string through its pointer argument.
        let summarized: &[usize] = match name {
            "print_str" => &[0],
            _ => &[],
        };
        for &i in summarized {
            let Some(arg) = args.get(i) else { continue };
            let Some(ta) = self.ty_of(arg) else { continue };
            let Some(pointee) = ta.pointee() else {
                continue;
            };
            match &pointee.qual {
                Qual::Locked(_) => {
                    self.diags.push(Diagnostic::error(
                        format!(
                            "library call `{name}` cannot take a locked argument;                              read/write summaries do not cover lock-protected data"
                        ),
                        span,
                    ));
                }
                Qual::Dynamic => {
                    self.instr.lib_read_summaries.insert(arg.id);
                }
                _ => {}
            }
        }
    }

    /// Warns when a pointer is definitely used after being nulled by a
    /// sharing cast (straight-line scan within one block).
    fn warn_use_after_scast(&mut self, b: &Block) {
        for (i, s) in b.stmts.iter().enumerate() {
            let Some(name) = scast_source_ident(s) else {
                continue;
            };
            for later in &b.stmts[i + 1..] {
                match first_use_or_def(later, &name) {
                    Some(UseOrDef::Use(span)) => {
                        self.diags.push(Diagnostic::warning(
                            format!(
                                "`{name}` is used here but was nulled out by a sharing \
                                 cast; it is NULL at this point"
                            ),
                            span,
                        ));
                        break;
                    }
                    Some(UseOrDef::Def) => break,
                    None => {}
                }
            }
        }
    }
}

fn is_null_shape(t: &Type) -> bool {
    matches!(&t.kind, TypeKind::Ptr(p) if p.is_void())
}

/// The storage level below the outermost: `ptr -> pointee`,
/// `array -> element`.
fn level_below(t: &Type) -> Option<Type> {
    match &t.kind {
        TypeKind::Ptr(p) => Some((**p).clone()),
        TypeKind::Array(e, _) => Some((**e).clone()),
        _ => None,
    }
}

/// Exact agreement of a referent type, qualifiers included.
pub fn deep_equal(a: &Type, b: &Type) -> bool {
    quals_equal(&a.qual, &b.qual) && deep_equal_below(a, b)
}

/// Agreement of everything strictly below this level.
pub fn deep_equal_below(a: &Type, b: &Type) -> bool {
    match (&a.kind, &b.kind) {
        (TypeKind::Ptr(pa), TypeKind::Ptr(pb)) => deep_equal(pa, pb),
        (TypeKind::Array(ea, n), TypeKind::Array(eb, m)) => n == m && deep_equal(ea, eb),
        (TypeKind::Ptr(pa), TypeKind::Array(eb, _)) => deep_equal(pa, eb),
        (TypeKind::Array(ea, _), TypeKind::Ptr(pb)) => deep_equal(ea, pb),
        (TypeKind::Fn(sa), TypeKind::Fn(sb)) => {
            sa.params.len() == sb.params.len()
                && deep_equal(&sa.ret, &sb.ret)
                && sa
                    .params
                    .iter()
                    .zip(&sb.params)
                    .all(|(x, y)| deep_equal(&x.ty, &y.ty))
        }
        (TypeKind::Named(x), TypeKind::Named(y)) => x == y,
        _ => a.same_shape(b),
    }
}

fn quals_equal(a: &Qual, b: &Qual) -> bool {
    match (a, b) {
        (Qual::Locked(p), Qual::Locked(q)) => p.segs == q.segs,
        _ => a == b,
    }
}

/// True if the two referent types differ *only* in their own
/// (outermost) sharing mode — the case a sharing cast fixes.
fn shallow_fixable(a: &Type, b: &Type) -> bool {
    a.same_shape(b) && !quals_equal(&a.qual, &b.qual) && deep_equal_below(a, b)
}

fn scast_source_ident(s: &Stmt) -> Option<String> {
    let e = match &s.kind {
        StmtKind::Assign { rhs, .. } => rhs,
        StmtKind::Decl { init: Some(e), .. } => e,
        StmtKind::Expr(e) => e,
        _ => return None,
    };
    if let ExprKind::Scast(_, src) = &e.kind {
        if let ExprKind::Ident(name) = &src.kind {
            return Some(name.clone());
        }
    }
    None
}

enum UseOrDef {
    Use(Span),
    Def,
}

/// First use or (re)definition of `name` in a statement, scanning
/// only straight-line structure (conditionals count as possible uses
/// but not definite ones, so they are skipped for "definitely live").
fn first_use_or_def(s: &Stmt, name: &str) -> Option<UseOrDef> {
    fn in_expr(e: &Expr, name: &str) -> Option<Span> {
        match &e.kind {
            ExprKind::Ident(n) if n == name => Some(e.span),
            ExprKind::Unary(_, a) => in_expr(a, name),
            ExprKind::Binary(_, a, b) => in_expr(a, name).or_else(|| in_expr(b, name)),
            ExprKind::Index(a, b) => in_expr(a, name).or_else(|| in_expr(b, name)),
            ExprKind::Field(a, _, _) => in_expr(a, name),
            ExprKind::Call(f, args) => {
                in_expr(f, name).or_else(|| args.iter().find_map(|a| in_expr(a, name)))
            }
            ExprKind::Cast(_, a) | ExprKind::NewArray(_, a) => in_expr(a, name),
            ExprKind::Scast(_, a) => in_expr(a, name),
            ExprKind::Ternary(c, a, b) => in_expr(c, name)
                .or_else(|| in_expr(a, name))
                .or_else(|| in_expr(b, name)),
            _ => None,
        }
    }
    match &s.kind {
        StmtKind::Assign { lhs, rhs } => {
            if let Some(sp) = in_expr(rhs, name) {
                return Some(UseOrDef::Use(sp));
            }
            if let ExprKind::Ident(n) = &lhs.kind {
                if n == name {
                    return Some(UseOrDef::Def);
                }
            }
            in_expr(lhs, name).map(UseOrDef::Use)
        }
        StmtKind::Expr(e) => in_expr(e, name).map(UseOrDef::Use),
        StmtKind::Decl { init: Some(e), .. } => in_expr(e, name).map(UseOrDef::Use),
        StmtKind::Return(Some(e)) => in_expr(e, name).map(UseOrDef::Use),
        // Control flow ends the "definite" straight-line scan.
        _ => Some(UseOrDef::Def),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::analyze;
    use crate::elaborate::elaborate;
    use minic::parse;

    fn run(src: &str) -> (Program, CheckResult) {
        let mut p = parse(src).unwrap();
        let elab = elaborate(&mut p);
        assert!(!elab.diags.has_errors(), "elab failed");
        let structs = StructTable::build(&p).unwrap();
        let sharing = analyze(&mut p, &structs, elab.n_vars);
        let r = check(&p, &structs, &sharing);
        (p, r)
    }

    fn errors(r: &CheckResult) -> Vec<String> {
        r.diags
            .iter()
            .filter(|d| d.severity == minic::Severity::Error)
            .map(|d| d.message.clone())
            .collect()
    }

    #[test]
    fn clean_private_program_has_no_checks() {
        let (_, r) = run("void main() { int x; int * p; p = &x; *p = 3; }");
        assert!(errors(&r).is_empty(), "{:?}", errors(&r));
        assert_eq!(r.instr.n_dynamic_sites, 0);
    }

    #[test]
    fn dynamic_accesses_get_checks() {
        let (p, r) = run("void worker(int * d) { *d = 1; }\n\
             void main() { int * q; q = new(int); spawn(worker, q); }");
        assert!(errors(&r).is_empty(), "{:?}", errors(&r));
        assert!(r.instr.n_dynamic_sites > 0);
        // The `*d = 1` write must be checked.
        let worker = p.fn_by_name("worker").unwrap();
        let StmtKind::Assign { lhs, .. } = &worker.body.stmts[0].kind else {
            panic!()
        };
        let ac = &r.instr.checks[&lhs.id];
        assert_eq!(ac.write, Some(CheckKind::Dynamic));
        assert_eq!(ac.lvalue, "*d");
    }

    #[test]
    fn locked_access_gets_lock_check() {
        let (p, r) = run("struct q { mutex * m; int locked(m) count; };\n\
             void worker(struct q * w) { mutex_lock(w->m); w->count = w->count + 1; \
              mutex_unlock(w->m); }\n\
             void main() { struct q * w; w = new(struct q); spawn(worker, w); }");
        assert!(errors(&r).is_empty(), "{:?}", errors(&r));
        assert!(r.instr.n_locked_sites > 0);
        let worker = p.fn_by_name("worker").unwrap();
        let StmtKind::Assign { lhs, .. } = &worker.body.stmts[1].kind else {
            panic!()
        };
        let ac = &r.instr.checks[&lhs.id];
        assert!(matches!(ac.write, Some(CheckKind::Locked(_))));
        // The synthesized lock expression is w->m.
        let Some(CheckKind::Locked(idx)) = &ac.write else {
            panic!()
        };
        assert_eq!(pretty::expr(&r.instr.lock_exprs[*idx]), "w->m");
    }

    #[test]
    fn readonly_write_rejected() {
        let (_, r) = run("int readonly config;\n\
             void main() { config = 5; }");
        assert!(!errors(&r).is_empty());
    }

    #[test]
    fn readonly_field_of_private_struct_writable() {
        let (_, r) = run("struct s { mutex * m; int locked(m) v; };\n\
             void main() { struct s private * x; mutex * mm; x = new(struct s); \
             mm = new(mutex); x->m = mm; }");
        assert!(errors(&r).is_empty(), "{:?}", errors(&r));
    }

    #[test]
    fn readonly_field_of_shared_struct_not_writable() {
        let (_, r) = run("struct s { mutex * m; int locked(m) v; };\n\
             void worker(struct s * w) { mutex private * mm; mm = new(mutex); w->m = mm; }\n\
             void main() { struct s * w; w = new(struct s); spawn(worker, w); }");
        assert!(!errors(&r).is_empty());
    }

    #[test]
    fn mode_mismatch_suggests_scast() {
        let (_, r) = run("struct q { mutex * m; char locked(m) *locked(m) data; };\n\
             void worker(struct q * w) { char private * l; l = w->data; }\n\
             void main() { struct q * w; w = new(struct q); spawn(worker, w); }");
        let errs = errors(&r);
        assert!(!errs.is_empty());
        let has_suggestion = r
            .diags
            .iter()
            .any(|d| d.notes.iter().any(|(m, _)| m.contains("SCAST(")));
        assert!(has_suggestion, "{:?}", errs);
    }

    #[test]
    fn scast_fixes_mode_mismatch() {
        let (_, r) = run("struct q { mutex * m; char locked(m) *locked(m) data; };\n\
             void worker(struct q * w) { char private * l; \
              l = SCAST(char private *, w->data); }\n\
             void main() { struct q * w; w = new(struct q); spawn(worker, w); }");
        assert!(errors(&r).is_empty(), "{:?}", errors(&r));
    }

    #[test]
    fn scast_cannot_change_deep_modes() {
        let (_, r) = run("void main() { int dynamic * dynamic * private pp; \
             int private * private * private qq; \
             qq = SCAST(int private * private *, pp); }");
        assert!(!errors(&r).is_empty());
    }

    #[test]
    fn shared_ref_to_private_is_ill_formed() {
        let (_, r) = run("int private * dynamic g;");
        assert!(!errors(&r).is_empty());
    }

    #[test]
    fn modified_lock_base_rejected() {
        let (_, r) = run("struct q { mutex * m; int locked(m) v; };\n\
             void worker(struct q * w) { w = NULL; w->v = 1; }\n\
             void main() { struct q * w; w = new(struct q); spawn(worker, w); }");
        assert!(
            errors(&r).iter().any(|e| e.contains("verifiably constant")),
            "{:?}",
            errors(&r)
        );
    }

    #[test]
    fn use_after_scast_warns() {
        let (_, r) = run("void worker(char * d) { char private * l; \
              l = SCAST(char private *, d); *d = 'x'; }\n\
             void main() { char * c; c = new(char); spawn(worker, c); }");
        let warned = r
            .diags
            .iter()
            .any(|d| d.severity == minic::Severity::Warning && d.message.contains("nulled"));
        assert!(warned);
    }

    #[test]
    fn racy_access_unchecked() {
        let (_, r) = run("int racy flag;\n\
             void worker(int * d) { flag = 1; }\n\
             void main() { int * p; spawn(worker, p); flag = 0; }");
        assert!(errors(&r).is_empty(), "{:?}", errors(&r));
        assert_eq!(r.instr.n_dynamic_sites, 0);
    }

    #[test]
    fn dynamic_in_accepts_private_actual() {
        let (_, r) = run("void helper(int * x) { *x = 1; }\n\
             void worker(int * d) { helper(d); }\n\
             void main() { int * p; int * q; p = new(int); q = new(int); \
              spawn(worker, p); helper(q); }");
        assert!(errors(&r).is_empty(), "{:?}", errors(&r));
    }

    #[test]
    fn escaping_formal_rejects_private_actual() {
        // stash stores its argument into a global reachable by the
        // thread; a concretely-private actual must be rejected.
        let (_, r) = run("int * keep;\n\
             void stash(int * x) { keep = x; }\n\
             void worker(int * d) { int v; v = *keep; }\n\
             void main() { int private * p; p = new(int private); stash(p); \
              spawn(worker, NULL); }");
        assert!(!errors(&r).is_empty());
    }
}
