//! Static check elision (ROADMAP item 3): an escape + lockset
//! pre-analysis that deletes provably-redundant runtime checks before
//! bytecode exists.
//!
//! Runs after the sharing analysis and the checker, over the typed AST
//! (every qualifier concrete) and the [`Instrumentation`] table. The
//! output is an [`ElisionFacts`] side table mapping l-value nodes to a
//! machine-checkable [`Reason`] per elided check slot; the VM compiler
//! consults it and emits **no instruction** for an elided slot.
//!
//! Four elision rules, each a thread-locality or lock-domination proof:
//!
//! * **E1 `PrivateActuals`** — a `dynamic` formal of a function that is
//!   never a thread root, never aliased, and never leaks its parameter
//!   is checked only so `dynamic_in` callers can pass private data. If
//!   *every* call site passes a private pointer (or a provably fresh,
//!   non-escaping local), the object is single-threaded for the whole
//!   call and the callee's checks are dead.
//! * **E2 `FreshPrivate`** — a local pointer assigned only fresh
//!   allocations (or NULL) whose value never escapes the function
//!   (no address-taken, no aliasing copy, no spawn, only sink-safe
//!   call sites) points at thread-local storage; its `dynamic`
//!   accesses cannot race.
//! * **E3 `SpawnUnique`** — a thread function spawned at exactly one
//!   non-loop site, with its sole argument a fresh local the spawner
//!   never dereferences, receives an object only the spawned thread
//!   ever touches; the callee's formal accesses are thread-local for
//!   the object's whole shared lifetime.
//! * **E4 `LockHeld`** — a `locked(l)` access dominated by a
//!   `mutex_lock(l)` on the *same, verifiably stable* lock path with
//!   no intervening unlock / `cond_wait` / call cannot fail its
//!   `ChkLockHeld`; the check installs nothing, so skipping it is
//!   bit-identical on every execution.
//!
//! Plus one peephole: **E5 `ReadOfWrite`** collapses the read check of
//! a compound assignment (`*p = *p + 1`) into its write check when the
//! address expression is side-effect-free. E5 is applied by the
//! default compile only (a conflicted write installs no shadow state,
//! so on already-racy runs the read check can fire where the write
//! does not); the fully-checked build keeps both.
//!
//! Soundness is pinned by `tests/elision_differential.rs`: a `forall!`
//! differential (elided and fully-checked builds agree bit-for-bit on
//! race-free executions) and a mutation property (making an elided
//! access race forces the analysis to stop eliding it).

use crate::check::{AccessCheck, CheckKind, Instrumentation};
use minic::ast::*;
use minic::pretty;
use minic::span::SourceMap;
use std::collections::{HashMap, HashSet};

/// Why a check slot was removed. Every elided site carries one, so
/// `--explain-elision` and the differential can audit the proof.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Reason {
    /// E1: every call site passes a private or fresh-local actual.
    PrivateActuals,
    /// E2: fresh allocation that never escapes its function.
    FreshPrivate,
    /// E3: unique spawn hand-off; only the spawned thread touches it.
    SpawnUnique,
    /// E4: access dominated by a held lock on a stable path.
    LockHeld,
    /// E5: read check collapsed into the same statement's write check.
    ReadOfWrite,
}

impl Reason {
    /// Stable index into [`ElisionSummary::by_reason`].
    pub fn index(self) -> usize {
        match self {
            Reason::PrivateActuals => 0,
            Reason::FreshPrivate => 1,
            Reason::SpawnUnique => 2,
            Reason::LockHeld => 3,
            Reason::ReadOfWrite => 4,
        }
    }

    /// Short machine-checkable label used in explain output.
    pub fn label(self) -> &'static str {
        match self {
            Reason::PrivateActuals => "private-actuals",
            Reason::FreshPrivate => "fresh-private",
            Reason::SpawnUnique => "spawn-unique",
            Reason::LockHeld => "lock-held",
            Reason::ReadOfWrite => "read-of-write",
        }
    }

    /// All reasons in [`Reason::index`] order (for reporting).
    pub const ALL: [Reason; 5] = [
        Reason::PrivateActuals,
        Reason::FreshPrivate,
        Reason::SpawnUnique,
        Reason::LockHeld,
        Reason::ReadOfWrite,
    ];
}

/// Elision verdicts for one instrumented l-value occurrence.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SiteFacts {
    pub read: Option<Reason>,
    pub write: Option<Reason>,
}

/// Static totals over the whole program (for `sharc check` and the
/// bench tables).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ElisionSummary {
    /// Check slots the checker emitted (each read/write slot is one).
    pub checked_slots: usize,
    /// Slots deleted outright by E1–E4.
    pub elided_slots: usize,
    /// Read slots collapsed into their write check by E5.
    pub collapsed_reads: usize,
    /// Per-[`Reason`] tally, indexed by [`Reason::index`].
    pub by_reason: [usize; 5],
}

impl ElisionSummary {
    /// Percentage of static check slots deleted (E1–E4 only).
    pub fn elided_pct(&self) -> f64 {
        if self.checked_slots == 0 {
            0.0
        } else {
            self.elided_slots as f64 * 100.0 / self.checked_slots as f64
        }
    }
}

/// The per-NodeId elision table consumed by the VM compiler.
#[derive(Debug, Default)]
pub struct ElisionFacts {
    pub sites: HashMap<NodeId, SiteFacts>,
    pub summary: ElisionSummary,
}

impl ElisionFacts {
    /// Reason the read check at `id` may be skipped, if any.
    pub fn read_reason(&self, id: NodeId) -> Option<Reason> {
        self.sites.get(&id).and_then(|s| s.read)
    }

    /// Reason the write check at `id` may be skipped, if any.
    pub fn write_reason(&self, id: NodeId) -> Option<Reason> {
        self.sites.get(&id).and_then(|s| s.write)
    }

    fn elide_read(&mut self, id: NodeId, r: Reason) {
        let s = self.sites.entry(id).or_default();
        if s.read.is_none() {
            s.read = Some(r);
        }
    }

    fn elide_write(&mut self, id: NodeId, r: Reason) {
        let s = self.sites.entry(id).or_default();
        if s.write.is_none() {
            s.write = Some(r);
        }
    }
}

/// How one call-site actual presents to the escape analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Actual {
    /// The literal NULL: nothing to protect.
    Null,
    /// An expression whose pointee mode is `private` (the type system
    /// already proves the object never crosses threads).
    PrivatePtr,
    /// A named local of the caller; qualified if private-pointee or
    /// provably fresh and non-escaping.
    Local(String),
    Other,
}

/// Everything the scan learned about one local or formal.
#[derive(Debug, Default)]
struct VarUse {
    decls: usize,
    is_param: bool,
    /// Declared type (post-analysis, all quals concrete).
    ty: Option<Type>,
    /// Assignments whose rhs is `new(..)` / `newarray(..)`.
    fresh_assigns: usize,
    /// Assignments of the literal NULL.
    null_assigns: usize,
    /// Any other assignment (aliasing, arithmetic, call result, ...).
    other_assigns: usize,
    /// L-value nodes that access storage *through* this pointer
    /// (single-level paths only: `*x`, `x[i]`, `x->f`, `*(x + i)`).
    accesses: Vec<NodeId>,
    /// Direct calls this var is passed to, as (callee, position).
    call_args: Vec<(String, usize)>,
    /// Times passed as the data argument of `spawn`.
    spawn_args: usize,
    freed: usize,
    addr_taken: bool,
    /// Any use the rules cannot account for (value copied, returned,
    /// stored, scast, compared, indirect-call arg, ...).
    other: usize,
}

impl VarUse {
    fn pointee_qual(&self) -> Option<&Qual> {
        self.ty.as_ref().and_then(|t| t.pointee()).map(|p| &p.qual)
    }
}

/// One direct call site of a user function.
#[derive(Debug)]
struct CallSite {
    caller: String,
    actuals: Vec<Actual>,
}

/// One `spawn(f, arg)` site.
#[derive(Debug)]
struct SpawnSite {
    caller: String,
    /// The data argument, when it is a bare local of the caller.
    arg: Option<String>,
    in_loop: bool,
}

/// Per-function scan results.
#[derive(Debug, Default)]
struct FnInfo {
    uses: HashMap<String, VarUse>,
    /// Names assigned or scast-nulled anywhere in the function (the
    /// same notion the checker uses for lock constancy).
    assigned_vars: HashSet<String>,
    /// Field names assigned (or address-taken) anywhere in the
    /// function, including fields reachable through struct copies.
    assigned_fields: HashSet<String>,
    /// A store through a pointer whose written type could not be
    /// resolved (or could hold a mutex pointer / struct): lock paths
    /// with field components are not stable in this function.
    blob_store: bool,
}

/// Whole-program facts.
#[derive(Debug, Default)]
struct ProgFacts {
    /// Direct call sites per callee.
    callsites: HashMap<String, Vec<CallSite>>,
    /// Spawn sites per target function.
    spawn_sites: HashMap<String, Vec<SpawnSite>>,
    /// Function names used as values (taken as pointers).
    fn_value_used: HashSet<String>,
    /// A non-identifier spawn target was seen: every function may be a
    /// thread root and any formal may be reached indirectly.
    all_fns_aliased: bool,
    assigned_globals: HashSet<String>,
    addr_taken_globals: HashSet<String>,
}

impl ProgFacts {
    fn aliased(&self, f: &str) -> bool {
        self.all_fns_aliased || self.fn_value_used.contains(f)
    }
}

/// Computes the elision table for a checked program. `program` must be
/// post-analysis (all sharing modes concrete).
pub fn elide(program: &Program, instr: &Instrumentation) -> ElisionFacts {
    let graph = crate::callgraph::CallGraph::build(program);
    let fn_names: HashSet<String> = program.fns.iter().map(|f| f.name.clone()).collect();
    let global_names: HashSet<String> = program.globals.iter().map(|g| g.name.clone()).collect();

    let mut prog = ProgFacts::default();
    let mut infos: HashMap<String, FnInfo> = HashMap::new();
    for f in &program.fns {
        let mut scan = FnScan {
            program,
            fn_names: &fn_names,
            global_names: &global_names,
            caller: f.name.clone(),
            info: FnInfo::default(),
            prog: &mut prog,
            loop_depth: 0,
        };
        scan.init(f);
        scan.block(&f.body);
        infos.insert(f.name.clone(), scan.info);
    }

    let mut facts = ElisionFacts::default();

    // E1: PrivateActuals.
    for f in &program.fns {
        if graph.thread_roots.contains(&f.name) || prog.aliased(&f.name) {
            continue;
        }
        let info = &infos[&f.name];
        for (i, p) in f.params.iter().enumerate() {
            let Some(u) = info.uses.get(&p.name) else {
                continue;
            };
            if !matches!(u.pointee_qual(), Some(Qual::Dynamic)) {
                continue;
            }
            if !sink_safe(info, &f.name, i, f, instr) {
                continue;
            }
            let all_ok = prog
                .callsites
                .get(&f.name)
                .map(|sites| {
                    sites.iter().all(|cs| match cs.actuals.get(i) {
                        Some(Actual::Null) | Some(Actual::PrivatePtr) => true,
                        Some(Actual::Local(x)) => {
                            // Re-resolve against the *caller's* scan: a
                            // private-pointee local is safe by typing; a
                            // fresh, never-escaping local is safe by E2's
                            // own argument.
                            infos.get(&cs.caller).is_some_and(|ci| {
                                ci.uses.get(x).is_some_and(|u| {
                                    matches!(u.pointee_qual(), Some(Qual::Private))
                                        || fresh_local(u, &infos, &prog, &graph, program, instr)
                                })
                            })
                        }
                        _ => false,
                    })
                })
                .unwrap_or(true);
            if all_ok {
                elide_dynamic_accesses(&mut facts, u, instr, Reason::PrivateActuals);
            }
        }
    }

    // E2: FreshPrivate.
    for f in &program.fns {
        let info = &infos[&f.name];
        for u in info.uses.values() {
            if u.is_param || !matches!(u.pointee_qual(), Some(Qual::Dynamic)) {
                continue;
            }
            if fresh_local(u, &infos, &prog, &graph, program, instr) {
                elide_dynamic_accesses(&mut facts, u, instr, Reason::FreshPrivate);
            }
        }
    }

    // E3: SpawnUnique.
    for f in &program.fns {
        if !graph.thread_roots.contains(&f.name) || prog.aliased(&f.name) {
            continue;
        }
        if prog.all_fns_aliased || f.params.len() != 1 {
            continue;
        }
        let direct_calls = prog.callsites.get(&f.name).map_or(0, |v| v.len());
        if direct_calls != 0 {
            continue;
        }
        let sites = match prog.spawn_sites.get(&f.name) {
            Some(s) if s.len() == 1 => &s[0],
            _ => continue,
        };
        if sites.in_loop {
            continue;
        }
        let Some(arg) = &sites.arg else { continue };
        let Some(g) = infos.get(&sites.caller) else {
            continue;
        };
        let Some(gu) = g.uses.get(arg) else { continue };
        let hand_off_ok = gu.decls == 1
            && !gu.is_param
            && gu.other_assigns == 0
            && gu.other == 0
            && !gu.addr_taken
            && gu.freed == 0
            && gu.spawn_args == 1
            && gu.call_args.is_empty()
            && gu.accesses.is_empty();
        let finfo = &infos[&f.name];
        if hand_off_ok && sink_safe(finfo, &f.name, 0, f, instr) {
            if let Some(u) = finfo.uses.get(&f.params[0].name) {
                elide_dynamic_accesses(&mut facts, u, instr, Reason::SpawnUnique);
            }
        }
    }

    // E4: LockHeld — forward dataflow of held stable lock paths.
    let lock_strs: Vec<String> = instr.lock_exprs.iter().map(pretty::expr).collect();
    for f in &program.fns {
        let info = &infos[&f.name];
        let mut flow = LockFlow {
            info,
            prog: &prog,
            instr,
            lock_strs: &lock_strs,
            facts: &mut facts,
            stable_memo: HashMap::new(),
        };
        let mut held: HashSet<String> = HashSet::new();
        flow.block(&f.body, &mut held);
    }

    // E5: ReadOfWrite collapse of compound assignments.
    for f in &program.fns {
        collapse_block(&f.body, instr, &mut facts);
    }

    // Static totals.
    let mut sum = ElisionSummary::default();
    for (id, ac) in &instr.checks {
        let site = facts.sites.get(id).copied().unwrap_or_default();
        if ac.read.is_some() {
            sum.checked_slots += 1;
            match site.read {
                Some(Reason::ReadOfWrite) => {
                    sum.collapsed_reads += 1;
                    sum.by_reason[Reason::ReadOfWrite.index()] += 1;
                }
                Some(r) => {
                    sum.elided_slots += 1;
                    sum.by_reason[r.index()] += 1;
                }
                None => {}
            }
        }
        if ac.write.is_some() {
            sum.checked_slots += 1;
            if let Some(r) = site.write {
                sum.elided_slots += 1;
                sum.by_reason[r.index()] += 1;
            }
        }
    }
    facts.summary = sum;
    facts
}

/// Elides the Dynamic slots of every recorded access through `u`.
fn elide_dynamic_accesses(
    facts: &mut ElisionFacts,
    u: &VarUse,
    instr: &Instrumentation,
    r: Reason,
) {
    for id in &u.accesses {
        if let Some(ac) = instr.checks.get(id) {
            if matches!(ac.read, Some(CheckKind::Dynamic)) {
                facts.elide_read(*id, r);
            }
            if matches!(ac.write, Some(CheckKind::Dynamic)) {
                facts.elide_write(*id, r);
            }
        }
    }
}

/// A formal is *sink-safe* when the callee can neither leak it nor
/// hand it to another thread: never reassigned or shadowed, never
/// address-taken, freed, spawned, or passed on, and every recorded
/// access carries only Dynamic-kind checks.
fn sink_safe(info: &FnInfo, _fn_name: &str, i: usize, f: &FnDef, instr: &Instrumentation) -> bool {
    let Some(p) = f.params.get(i) else {
        return false;
    };
    let Some(u) = info.uses.get(&p.name) else {
        return false;
    };
    u.decls == 0
        && u.fresh_assigns == 0
        && u.null_assigns == 0
        && u.other_assigns == 0
        && u.spawn_args == 0
        && u.freed == 0
        && !u.addr_taken
        && u.other == 0
        && u.call_args.is_empty()
        && !u.accesses.iter().any(|id| {
            instr.checks.get(id).is_some_and(|ac| {
                matches!(ac.read, Some(CheckKind::Locked(_)))
                    || matches!(ac.write, Some(CheckKind::Locked(_)))
            })
        })
}

/// A local is *fresh* when it only ever holds freshly-allocated (or
/// NULL) thread-local storage and its value never escapes: it may be
/// dereferenced and passed to sink-safe callees, nothing else.
fn fresh_local(
    u: &VarUse,
    infos: &HashMap<String, FnInfo>,
    prog: &ProgFacts,
    graph: &crate::callgraph::CallGraph,
    program: &Program,
    instr: &Instrumentation,
) -> bool {
    u.decls == 1
        && !u.is_param
        && u.other_assigns == 0
        && u.other == 0
        && !u.addr_taken
        && u.spawn_args == 0
        && u.freed == 0
        && matches!(u.pointee_qual(), Some(Qual::Dynamic) | Some(Qual::Private))
        && u.call_args.iter().all(|(callee, pos)| {
            !graph.thread_roots.contains(callee)
                && !prog.aliased(callee)
                && program
                    .fn_by_name(callee)
                    .zip(infos.get(callee))
                    .is_some_and(|(fd, fi)| sink_safe(fi, callee, *pos, fd, instr))
        })
}

// ----- the per-function scan -----

struct FnScan<'a> {
    program: &'a Program,
    fn_names: &'a HashSet<String>,
    global_names: &'a HashSet<String>,
    caller: String,
    info: FnInfo,
    prog: &'a mut ProgFacts,
    loop_depth: usize,
}

impl<'a> FnScan<'a> {
    fn init(&mut self, f: &FnDef) {
        for p in &f.params {
            let u = self.info.uses.entry(p.name.clone()).or_default();
            u.is_param = true;
            u.ty = Some(p.ty.clone());
        }
        // Pre-collect declared locals so forward references resolve as
        // locals, not globals.
        collect_decls(&f.body, &mut self.info.uses);
    }

    fn is_local(&self, name: &str) -> bool {
        self.info.uses.contains_key(name)
    }

    fn use_mut(&mut self, name: &str) -> Option<&mut VarUse> {
        self.info.uses.get_mut(name)
    }

    fn block(&mut self, b: &Block) {
        for s in &b.stmts {
            self.stmt(s);
        }
    }

    fn stmt(&mut self, s: &Stmt) {
        match &s.kind {
            StmtKind::Decl { name, init, .. } => {
                // A decl initializer classifies the local but does not
                // make its lock base non-constant (it matches the
                // checker's own constancy rule, which only counts
                // re-assignments).
                if let Some(e) = init {
                    self.record_assign(name, e);
                    self.expr(e);
                }
            }
            StmtKind::Assign { lhs, rhs } => {
                self.assign_lhs(lhs);
                if let ExprKind::Ident(n) = &lhs.kind {
                    if self.is_local(n) {
                        self.info.assigned_vars.insert(n.clone());
                        self.record_assign(n, rhs);
                    } else if self.global_names.contains(n) {
                        self.prog.assigned_globals.insert(n.clone());
                    }
                }
                self.expr(rhs);
            }
            StmtKind::Expr(e) => self.expr(e),
            StmtKind::If {
                cond,
                then_blk,
                else_blk,
            } => {
                self.expr(cond);
                self.block(then_blk);
                if let Some(eb) = else_blk {
                    self.block(eb);
                }
            }
            StmtKind::While { cond, body } => {
                self.expr(cond);
                self.loop_depth += 1;
                self.block(body);
                self.loop_depth -= 1;
            }
            StmtKind::For {
                init,
                cond,
                step,
                body,
            } => {
                if let Some(i) = init {
                    self.stmt(i);
                }
                self.loop_depth += 1;
                if let Some(c) = cond {
                    self.expr(c);
                }
                if let Some(st) = step {
                    self.stmt(st);
                }
                self.block(body);
                self.loop_depth -= 1;
            }
            StmtKind::Return(Some(e)) => self.expr(e),
            StmtKind::Return(None) | StmtKind::Break | StmtKind::Continue => {}
            StmtKind::Block(b) => self.block(b),
        }
    }

    /// Classifies an assignment to local `name` by its rhs shape.
    fn record_assign(&mut self, name: &str, rhs: &Expr) {
        if let Some(u) = self.use_mut(name) {
            match &rhs.kind {
                ExprKind::New(_) | ExprKind::NewArray(..) => u.fresh_assigns += 1,
                ExprKind::Null => u.null_assigns += 1,
                _ => u.other_assigns += 1,
            }
        }
    }

    /// Effects of the lhs of an assignment beyond the plain-ident
    /// case: field stores feed E4's stability set, unresolvable
    /// pointer stores poison it.
    fn assign_lhs(&mut self, lhs: &Expr) {
        match &lhs.kind {
            ExprKind::Ident(_) => {
                // Stored type could be a whole struct (struct copy by
                // value into a local): its fields change too.
                if let Some(t) = self.static_ty(lhs) {
                    self.note_struct_store(&t);
                }
            }
            ExprKind::Field(_, fname, _) => {
                self.info.assigned_fields.insert(fname.clone());
                if let Some(t) = self.static_ty(lhs) {
                    self.note_struct_store(&t);
                }
                self.scan_lhs_path(lhs);
            }
            ExprKind::Unary(UnOp::Deref, _) | ExprKind::Index(..) => {
                match self.static_ty(lhs) {
                    Some(t) => {
                        if is_mutex_ptr(&t) {
                            self.info.blob_store = true;
                        }
                        self.note_struct_store(&t);
                    }
                    None => self.info.blob_store = true,
                }
                self.scan_lhs_path(lhs);
            }
            _ => {
                self.info.blob_store = true;
                self.scan_lhs_path(lhs);
            }
        }
    }

    /// Records the *access* the lhs itself makes (the write target);
    /// inner pointers on the path are scanned as ordinary rvalues by
    /// `expr` on the same node.
    fn scan_lhs_path(&mut self, lhs: &Expr) {
        self.expr(lhs);
    }

    /// A struct stored by value dirties every field name it contains,
    /// transitively (they may include a lock path component).
    fn note_struct_store(&mut self, t: &Type) {
        let mut seen: HashSet<String> = HashSet::new();
        self.collect_struct_fields(t, &mut seen);
        for f in seen {
            self.info.assigned_fields.insert(f);
        }
    }

    fn collect_struct_fields(&self, t: &Type, out: &mut HashSet<String>) {
        if let TypeKind::Named(s) = &t.kind {
            if let Some(sd) = self.program.struct_by_name(s) {
                for fld in &sd.fields {
                    if out.insert(fld.name.clone()) {
                        self.collect_struct_fields(&fld.ty, out);
                    }
                }
            }
        }
    }

    /// Best-effort static type of simple l-value paths from declared
    /// types (post-analysis, all quals concrete). `None` = unknown.
    fn static_ty(&self, e: &Expr) -> Option<Type> {
        match &e.kind {
            ExprKind::Ident(n) => {
                if let Some(u) = self.info.uses.get(n) {
                    u.ty.clone()
                } else {
                    self.program.global_by_name(n).map(|g| g.ty.clone())
                }
            }
            ExprKind::Unary(UnOp::Deref, inner) => {
                let t = self.static_ty(inner)?;
                t.pointee().or_else(|| t.elem()).cloned()
            }
            ExprKind::Index(base, _) => {
                let t = self.static_ty(base)?;
                t.pointee().or_else(|| t.elem()).cloned()
            }
            ExprKind::Field(base, fname, arrow) => {
                let bt = self.static_ty(base)?;
                let st = if *arrow { bt.pointee().cloned()? } else { bt };
                if let TypeKind::Named(s) = &st.kind {
                    self.program
                        .struct_by_name(s)
                        .and_then(|sd| sd.field(fname))
                        .map(|f| f.ty.clone())
                } else {
                    None
                }
            }
            _ => None,
        }
    }

    /// The single-level access-path classifier: returns the pointer
    /// variable accessed through and the side expressions to scan
    /// normally.
    fn access_path<'e>(&self, e: &'e Expr) -> Option<(String, Vec<&'e Expr>)> {
        let is_local_ptr = |name: &str| {
            self.info
                .uses
                .get(name)
                .and_then(|u| u.ty.as_ref())
                .is_some_and(|t| t.is_ptr() || matches!(t.kind, TypeKind::Array(..)))
        };
        match &e.kind {
            ExprKind::Unary(UnOp::Deref, inner) => match &inner.kind {
                ExprKind::Ident(n) if self.is_local(n) => Some((n.clone(), vec![])),
                ExprKind::Binary(op, a, b) if matches!(op, BinOp::Add | BinOp::Sub) => {
                    if let ExprKind::Ident(n) = &a.kind {
                        if is_local_ptr(n) {
                            return Some((n.clone(), vec![b]));
                        }
                    }
                    if let ExprKind::Ident(n) = &b.kind {
                        if is_local_ptr(n) && matches!(op, BinOp::Add) {
                            return Some((n.clone(), vec![a]));
                        }
                    }
                    None
                }
                _ => None,
            },
            ExprKind::Index(base, idx) => match &base.kind {
                ExprKind::Ident(n) if is_local_ptr(n) => Some((n.clone(), vec![idx])),
                _ => None,
            },
            ExprKind::Field(base, _, true) => match &base.kind {
                ExprKind::Ident(n) if self.is_local(n) => Some((n.clone(), vec![])),
                _ => None,
            },
            _ => None,
        }
    }

    fn expr(&mut self, e: &Expr) {
        if let Some((name, rest)) = self.access_path(e) {
            if let Some(u) = self.use_mut(&name) {
                u.accesses.push(e.id);
            }
            for r in rest {
                self.expr(r);
            }
            return;
        }
        match &e.kind {
            ExprKind::Ident(n) => {
                if self.is_local(n) {
                    if let Some(u) = self.use_mut(n) {
                        u.other += 1;
                    }
                } else if self.fn_names.contains(n) {
                    self.prog.fn_value_used.insert(n.clone());
                }
            }
            ExprKind::Unary(UnOp::AddrOf, inner) => match &inner.kind {
                ExprKind::Ident(n) => {
                    if self.is_local(n) {
                        if let Some(u) = self.use_mut(n) {
                            u.addr_taken = true;
                        }
                    } else if self.global_names.contains(n) {
                        self.prog.addr_taken_globals.insert(n.clone());
                    } else if self.fn_names.contains(n) {
                        self.prog.fn_value_used.insert(n.clone());
                    }
                }
                ExprKind::Field(_, fname, _) => {
                    self.info.assigned_fields.insert(fname.clone());
                    self.expr(inner);
                }
                _ => self.expr(inner),
            },
            ExprKind::Unary(_, a) => self.expr(a),
            ExprKind::Binary(_, a, b) => {
                self.expr(a);
                self.expr(b);
            }
            ExprKind::Index(a, b) => {
                self.expr(a);
                self.expr(b);
            }
            ExprKind::Field(a, _, _) => self.expr(a),
            ExprKind::Call(callee, args) => self.call(callee, args),
            ExprKind::Cast(_, a) | ExprKind::NewArray(_, a) => self.expr(a),
            ExprKind::Scast(_, src) => {
                // The scast nulls its source and carries its own
                // checks; protect them and kill elision on the root.
                if let Some(root) = root_ident(src) {
                    if self.is_local(&root) {
                        self.info.assigned_vars.insert(root.clone());
                        if let Some(u) = self.use_mut(&root) {
                            u.other += 1;
                        }
                    } else if self.global_names.contains(&root) {
                        self.prog.assigned_globals.insert(root);
                    }
                }
                self.expr(src);
            }
            ExprKind::Ternary(c, a, b) => {
                self.expr(c);
                self.expr(a);
                self.expr(b);
            }
            _ => {}
        }
    }

    fn call(&mut self, callee: &Expr, args: &[Expr]) {
        if let ExprKind::Ident(name) = &callee.kind {
            if name == "spawn" {
                match args.first().map(|a| &a.kind) {
                    Some(ExprKind::Ident(f)) if self.fn_names.contains(f) => {
                        let data = args.get(1);
                        let arg_local = match data.map(|a| &a.kind) {
                            Some(ExprKind::Ident(x)) if self.is_local(x) => Some(x.clone()),
                            _ => None,
                        };
                        if let Some(x) = &arg_local {
                            if let Some(u) = self.use_mut(x) {
                                u.spawn_args += 1;
                            }
                        } else if let Some(d) = data {
                            self.expr(d);
                        }
                        self.prog
                            .spawn_sites
                            .entry(f.clone())
                            .or_default()
                            .push(SpawnSite {
                                caller: self.caller.clone(),
                                arg: arg_local,
                                in_loop: self.loop_depth > 0,
                            });
                        for extra in args.iter().skip(2) {
                            self.expr(extra);
                        }
                    }
                    _ => {
                        self.prog.all_fns_aliased = true;
                        for a in args {
                            self.expr(a);
                        }
                    }
                }
                return;
            }
            if name == "free" {
                match args.first().map(|a| &a.kind) {
                    Some(ExprKind::Ident(x)) if self.is_local(x) => {
                        let x = x.clone();
                        if let Some(u) = self.use_mut(&x) {
                            u.freed += 1;
                        }
                    }
                    _ => {
                        for a in args {
                            self.expr(a);
                        }
                    }
                }
                return;
            }
            if is_builtin(name) {
                let sync = matches!(
                    name.as_str(),
                    "mutex_lock" | "mutex_unlock" | "cond_wait" | "cond_signal" | "cond_broadcast"
                );
                for a in args {
                    // A sync builtin's `&path` argument *names* its
                    // mutex/cond — the builtin mutates that object's
                    // state but can never retarget the path, so the
                    // address-of must not poison lock-path stability.
                    if sync {
                        if let ExprKind::Unary(UnOp::AddrOf, inner) = &a.kind {
                            if is_ident_field_chain(inner) {
                                self.expr(inner);
                                continue;
                            }
                        }
                    }
                    self.expr(a);
                }
                return;
            }
            if self.fn_names.contains(name) {
                let mut actuals = Vec::with_capacity(args.len());
                for (i, a) in args.iter().enumerate() {
                    let act = self.classify_actual(a);
                    if let Actual::Local(x) = &act {
                        if let Some(u) = self.use_mut(x) {
                            u.call_args.push((name.clone(), i));
                        }
                    } else {
                        self.expr(a);
                    }
                    actuals.push(act);
                }
                self.prog
                    .callsites
                    .entry(name.clone())
                    .or_default()
                    .push(CallSite {
                        caller: self.caller.clone(),
                        actuals,
                    });
                return;
            }
        }
        // Indirect call: any argument may escape anywhere.
        self.expr(callee);
        for a in args {
            self.expr(a);
            if let ExprKind::Ident(x) = &a.kind {
                if self.is_local(x) {
                    if let Some(u) = self.use_mut(x) {
                        u.other += 1;
                    }
                }
            }
        }
    }

    fn classify_actual(&self, a: &Expr) -> Actual {
        match &a.kind {
            ExprKind::Null => Actual::Null,
            ExprKind::Ident(x) if self.is_local(x) => Actual::Local(x.clone()),
            ExprKind::Unary(UnOp::AddrOf, inner) => {
                if let ExprKind::Ident(x) = &inner.kind {
                    let qual = self
                        .info
                        .uses
                        .get(x)
                        .and_then(|u| u.ty.as_ref())
                        .map(|t| t.qual.clone());
                    if matches!(qual, Some(Qual::Private)) {
                        return Actual::PrivatePtr;
                    }
                }
                Actual::Other
            }
            _ => {
                if matches!(
                    self.static_ty(a).as_ref().and_then(|t| t.pointee()),
                    Some(p) if matches!(p.qual, Qual::Private)
                ) {
                    Actual::PrivatePtr
                } else {
                    Actual::Other
                }
            }
        }
    }
}

fn root_ident(e: &Expr) -> Option<String> {
    let mut cur = e;
    loop {
        match &cur.kind {
            ExprKind::Ident(n) => return Some(n.clone()),
            ExprKind::Field(b, _, _) => cur = b,
            ExprKind::Index(b, _) => cur = b,
            ExprKind::Unary(UnOp::Deref, b) => cur = b,
            _ => return None,
        }
    }
}

fn collect_decls(b: &Block, uses: &mut HashMap<String, VarUse>) {
    for s in &b.stmts {
        match &s.kind {
            StmtKind::Decl { name, ty, .. } => {
                let u = uses.entry(name.clone()).or_default();
                u.decls += 1;
                if u.ty.is_none() {
                    u.ty = Some(ty.clone());
                }
            }
            StmtKind::If {
                then_blk, else_blk, ..
            } => {
                collect_decls(then_blk, uses);
                if let Some(eb) = else_blk {
                    collect_decls(eb, uses);
                }
            }
            StmtKind::While { body, .. } => collect_decls(body, uses),
            StmtKind::For { init, body, .. } => {
                if let Some(i) = init {
                    if let StmtKind::Decl { name, ty, .. } = &i.kind {
                        let u = uses.entry(name.clone()).or_default();
                        u.decls += 1;
                        if u.ty.is_none() {
                            u.ty = Some(ty.clone());
                        }
                    }
                }
                collect_decls(body, uses);
            }
            StmtKind::Block(inner) => collect_decls(inner, uses),
            _ => {}
        }
    }
}

fn is_mutex_ptr(t: &Type) -> bool {
    matches!(&t.kind, TypeKind::Ptr(p) if matches!(p.kind, TypeKind::Mutex))
}

// ----- E4: LockHeld dataflow -----

/// Locks killed by one loop iteration (pre-scanned so the loop entry
/// set is a sound fixed point without iteration).
#[derive(Debug, Default)]
struct KillSet {
    all: bool,
    locks: HashSet<String>,
}

struct LockFlow<'a> {
    info: &'a FnInfo,
    prog: &'a ProgFacts,
    instr: &'a Instrumentation,
    lock_strs: &'a [String],
    facts: &'a mut ElisionFacts,
    /// Per-lock-string stability in this function, memoized.
    stable_memo: HashMap<String, bool>,
}

impl<'a> LockFlow<'a> {
    fn block(&mut self, b: &Block, held: &mut HashSet<String>) {
        for s in &b.stmts {
            self.stmt(s, held);
        }
    }

    fn stmt(&mut self, s: &Stmt, held: &mut HashSet<String>) {
        match &s.kind {
            StmtKind::Decl { init, .. } => {
                if let Some(e) = init {
                    self.straightline_exprs(&[e], held);
                }
            }
            StmtKind::Assign { lhs, rhs } => {
                self.straightline_exprs(&[lhs, rhs], held);
            }
            StmtKind::Expr(e) => {
                if let Some((op, lock)) = lock_transfer(e) {
                    match op {
                        LockOp::Lock => {
                            if let Some(path) = lock_path_string(lock) {
                                if self.stable(&path) {
                                    held.insert(path);
                                }
                            }
                        }
                        LockOp::Unlock => match lock_path_string(lock) {
                            Some(path) => {
                                held.remove(&path);
                            }
                            None => held.clear(),
                        },
                        LockOp::Wait => held.clear(),
                    }
                    return;
                }
                self.straightline_exprs(&[e], held);
            }
            StmtKind::If {
                cond,
                then_blk,
                else_blk,
            } => {
                self.straightline_exprs(&[cond], held);
                let mut then_held = held.clone();
                self.block(then_blk, &mut then_held);
                let mut else_held = held.clone();
                if let Some(eb) = else_blk {
                    self.block(eb, &mut else_held);
                }
                *held = then_held.intersection(&else_held).cloned().collect();
            }
            StmtKind::While { cond, body } => {
                let mut kills = KillSet::default();
                expr_kills(cond, &mut kills);
                block_kills(body, &mut kills);
                apply_kills(held, &kills);
                self.straightline_exprs(&[cond], held);
                let entry = held.clone();
                let mut inner = entry.clone();
                self.block(body, &mut inner);
                *held = entry;
            }
            StmtKind::For {
                init,
                cond,
                step,
                body,
            } => {
                if let Some(i) = init {
                    self.stmt(i, held);
                }
                let mut kills = KillSet::default();
                if let Some(c) = cond {
                    expr_kills(c, &mut kills);
                }
                if let Some(st) = step {
                    stmt_kills(st, &mut kills);
                }
                block_kills(body, &mut kills);
                apply_kills(held, &kills);
                if let Some(c) = cond {
                    self.straightline_exprs(&[c], held);
                }
                let entry = held.clone();
                let mut inner = entry.clone();
                self.block(body, &mut inner);
                if let Some(st) = step {
                    self.stmt(st, &mut inner);
                }
                *held = entry;
            }
            StmtKind::Return(Some(e)) => {
                self.straightline_exprs(&[e], held);
            }
            StmtKind::Return(None) | StmtKind::Break | StmtKind::Continue => {}
            StmtKind::Block(b) => self.block(b, held),
        }
    }

    /// Straight-line statement content: elide `Locked` slots dominated
    /// by a held lock when the statement contains no call at all (a
    /// callee could unlock mid-statement); then account for any calls
    /// it does contain.
    fn straightline_exprs(&mut self, exprs: &[&Expr], held: &mut HashSet<String>) {
        let clean = exprs.iter().all(|e| !contains_call(e));
        if clean && !held.is_empty() {
            for e in exprs {
                self.elide_locked(e, held);
            }
            return;
        }
        let mut kills = KillSet::default();
        for e in exprs {
            expr_kills(e, &mut kills);
        }
        apply_kills(held, &kills);
    }

    fn elide_locked(&mut self, e: &Expr, held: &HashSet<String>) {
        if let Some(ac) = self.instr.checks.get(&e.id) {
            if let Some(CheckKind::Locked(idx)) = &ac.read {
                if self.lock_ok(*idx, held) {
                    self.facts.elide_read(e.id, Reason::LockHeld);
                }
            }
            if let Some(CheckKind::Locked(idx)) = &ac.write {
                if self.lock_ok(*idx, held) {
                    self.facts.elide_write(e.id, Reason::LockHeld);
                }
            }
        }
        match &e.kind {
            ExprKind::Unary(_, a) => self.elide_locked(a, held),
            ExprKind::Binary(_, a, b) | ExprKind::Index(a, b) => {
                self.elide_locked(a, held);
                self.elide_locked(b, held);
            }
            ExprKind::Field(a, _, _) => self.elide_locked(a, held),
            ExprKind::Cast(_, a) | ExprKind::NewArray(_, a) => self.elide_locked(a, held),
            ExprKind::Ternary(c, a, b) => {
                self.elide_locked(c, held);
                self.elide_locked(a, held);
                self.elide_locked(b, held);
            }
            // Calls never reach here (the statement is call-free) and
            // scast checks are deliberately preserved.
            _ => {}
        }
    }

    fn lock_ok(&mut self, idx: usize, held: &HashSet<String>) -> bool {
        let Some(s) = self.lock_strs.get(idx) else {
            return false;
        };
        held.contains(s) && self.stable(s)
    }

    /// Is the lock path verifiably constant within this function?
    fn stable(&mut self, path: &str) -> bool {
        if let Some(v) = self.stable_memo.get(path) {
            return *v;
        }
        let v = self.compute_stable(path);
        self.stable_memo.insert(path.to_string(), v);
        v
    }

    fn compute_stable(&self, path: &str) -> bool {
        let segs: Vec<&str> = path.split("->").collect();
        let Some((root, fields)) = segs.split_first() else {
            return false;
        };
        // Paths only ever come from `pretty::expr` of ident/arrow-field
        // chains; anything else (deref stars, brackets) is rejected.
        if path.contains(['*', '[', '&', '(', ' ']) {
            return false;
        }
        let root_ok = if let Some(u) = self.info.uses.get(*root) {
            !self.info.assigned_vars.contains(*root)
                && !u.addr_taken
                && u.decls + usize::from(u.is_param) <= 1
        } else {
            !self.prog.assigned_globals.contains(*root)
                && !self.prog.addr_taken_globals.contains(*root)
        };
        if !root_ok {
            return false;
        }
        if fields.is_empty() {
            return true;
        }
        // Field components must never be reassigned in this function,
        // and no unresolvable pointer store may alias them.
        !self.info.blob_store
            && fields
                .iter()
                .all(|f| !self.info.assigned_fields.contains(*f))
    }
}

enum LockOp {
    Lock,
    Unlock,
    Wait,
}

/// Recognizes a top-level lock-transfer statement.
fn lock_transfer(e: &Expr) -> Option<(LockOp, &Expr)> {
    let ExprKind::Call(callee, args) = &e.kind else {
        return None;
    };
    let ExprKind::Ident(name) = &callee.kind else {
        return None;
    };
    match name.as_str() {
        "mutex_lock" => args.first().map(|a| (LockOp::Lock, a)),
        "mutex_unlock" => args.first().map(|a| (LockOp::Unlock, a)),
        // cond_wait releases its mutex while blocked.
        "cond_wait" => args.first().map(|a| (LockOp::Wait, a)),
        _ => None,
    }
}

/// Normalizes a lock operand to the pretty string the checker uses
/// for its synthesized lock expressions: `&m` locks what `m` names.
fn lock_path_string(e: &Expr) -> Option<String> {
    let target = match &e.kind {
        ExprKind::Unary(UnOp::AddrOf, inner) => inner,
        _ => e,
    };
    if is_ident_field_chain(target) {
        Some(pretty::expr(target))
    } else {
        None
    }
}

fn is_ident_field_chain(e: &Expr) -> bool {
    match &e.kind {
        ExprKind::Ident(_) => true,
        ExprKind::Field(b, _, true) => is_ident_field_chain(b),
        _ => false,
    }
}

fn contains_call(e: &Expr) -> bool {
    match &e.kind {
        ExprKind::Call(..) => true,
        ExprKind::Unary(_, a) => contains_call(a),
        ExprKind::Binary(_, a, b) | ExprKind::Index(a, b) => contains_call(a) || contains_call(b),
        ExprKind::Field(a, _, _) => contains_call(a),
        ExprKind::Cast(_, a) | ExprKind::NewArray(_, a) | ExprKind::Scast(_, a) => contains_call(a),
        ExprKind::Ternary(c, a, b) => contains_call(c) || contains_call(a) || contains_call(b),
        _ => false,
    }
}

fn expr_kills(e: &Expr, kills: &mut KillSet) {
    if let ExprKind::Call(callee, args) = &e.kind {
        match &callee.kind {
            ExprKind::Ident(name) if is_builtin(name) => match name.as_str() {
                "mutex_unlock" => match args.first().and_then(lock_path_string) {
                    Some(p) => {
                        kills.locks.insert(p);
                    }
                    None => kills.all = true,
                },
                "cond_wait" => kills.all = true,
                _ => {}
            },
            ExprKind::Ident(name) if !is_builtin(name) => {
                // A user callee may unlock anything.
                let _ = name;
                kills.all = true;
            }
            _ => kills.all = true,
        }
        for a in args {
            expr_kills(a, kills);
        }
        return;
    }
    match &e.kind {
        ExprKind::Unary(_, a) => expr_kills(a, kills),
        ExprKind::Binary(_, a, b) | ExprKind::Index(a, b) => {
            expr_kills(a, kills);
            expr_kills(b, kills);
        }
        ExprKind::Field(a, _, _) => expr_kills(a, kills),
        ExprKind::Cast(_, a) | ExprKind::NewArray(_, a) | ExprKind::Scast(_, a) => {
            expr_kills(a, kills)
        }
        ExprKind::Ternary(c, a, b) => {
            expr_kills(c, kills);
            expr_kills(a, kills);
            expr_kills(b, kills);
        }
        _ => {}
    }
}

fn stmt_kills(s: &Stmt, kills: &mut KillSet) {
    match &s.kind {
        StmtKind::Decl { init: Some(e), .. } | StmtKind::Expr(e) | StmtKind::Return(Some(e)) => {
            expr_kills(e, kills)
        }
        StmtKind::Assign { lhs, rhs } => {
            expr_kills(lhs, kills);
            expr_kills(rhs, kills);
        }
        StmtKind::If {
            cond,
            then_blk,
            else_blk,
        } => {
            expr_kills(cond, kills);
            block_kills(then_blk, kills);
            if let Some(eb) = else_blk {
                block_kills(eb, kills);
            }
        }
        StmtKind::While { cond, body } => {
            expr_kills(cond, kills);
            block_kills(body, kills);
        }
        StmtKind::For {
            init,
            cond,
            step,
            body,
        } => {
            if let Some(i) = init {
                stmt_kills(i, kills);
            }
            if let Some(c) = cond {
                expr_kills(c, kills);
            }
            if let Some(st) = step {
                stmt_kills(st, kills);
            }
            block_kills(body, kills);
        }
        StmtKind::Block(b) => block_kills(b, kills),
        _ => {}
    }
}

fn block_kills(b: &Block, kills: &mut KillSet) {
    for s in &b.stmts {
        stmt_kills(s, kills);
    }
}

fn apply_kills(held: &mut HashSet<String>, kills: &KillSet) {
    if kills.all {
        held.clear();
    } else {
        for k in &kills.locks {
            held.remove(k);
        }
    }
}

// ----- E5: ReadOfWrite collapse -----

fn collapse_block(b: &Block, instr: &Instrumentation, facts: &mut ElisionFacts) {
    for s in &b.stmts {
        match &s.kind {
            StmtKind::Assign { lhs, rhs } => collapse_assign(lhs, rhs, instr, facts),
            StmtKind::If {
                then_blk, else_blk, ..
            } => {
                collapse_block(then_blk, instr, facts);
                if let Some(eb) = else_blk {
                    collapse_block(eb, instr, facts);
                }
            }
            StmtKind::While { body, .. } => collapse_block(body, instr, facts),
            StmtKind::For {
                init, step, body, ..
            } => {
                if let Some(i) = init {
                    if let StmtKind::Assign { lhs, rhs } = &i.kind {
                        collapse_assign(lhs, rhs, instr, facts);
                    }
                }
                if let Some(st) = step {
                    if let StmtKind::Assign { lhs, rhs } = &st.kind {
                        collapse_assign(lhs, rhs, instr, facts);
                    }
                }
                collapse_block(body, instr, facts);
            }
            StmtKind::Block(inner) => collapse_block(inner, instr, facts),
            _ => {}
        }
    }
}

/// `*p = *p + 1`: when the write check on the lhs is Dynamic and the
/// statement is side-effect-free, the rhs read of the *same* l-value
/// string is covered by the write check that immediately follows it.
fn collapse_assign(lhs: &Expr, rhs: &Expr, instr: &Instrumentation, facts: &mut ElisionFacts) {
    let Some(lac) = instr.checks.get(&lhs.id) else {
        return;
    };
    if !matches!(lac.write, Some(CheckKind::Dynamic)) {
        return;
    }
    if has_side_effects(lhs) || has_side_effects(rhs) {
        return;
    }
    let lhs_str = pretty::expr(lhs);
    mark_matching_reads(rhs, &lhs_str, instr, facts);
}

fn mark_matching_reads(e: &Expr, lhs_str: &str, instr: &Instrumentation, facts: &mut ElisionFacts) {
    if let Some(ac) = instr.checks.get(&e.id) {
        if matches!(ac.read, Some(CheckKind::Dynamic))
            && facts.read_reason(e.id).is_none()
            && pretty::expr(e) == lhs_str
        {
            facts.elide_read(e.id, Reason::ReadOfWrite);
        }
    }
    match &e.kind {
        ExprKind::Unary(_, a) => mark_matching_reads(a, lhs_str, instr, facts),
        ExprKind::Binary(_, a, b) | ExprKind::Index(a, b) => {
            mark_matching_reads(a, lhs_str, instr, facts);
            mark_matching_reads(b, lhs_str, instr, facts);
        }
        ExprKind::Field(a, _, _) => mark_matching_reads(a, lhs_str, instr, facts),
        ExprKind::Cast(_, a) => mark_matching_reads(a, lhs_str, instr, facts),
        ExprKind::Ternary(c, a, b) => {
            mark_matching_reads(c, lhs_str, instr, facts);
            mark_matching_reads(a, lhs_str, instr, facts);
            mark_matching_reads(b, lhs_str, instr, facts);
        }
        _ => {}
    }
}

fn has_side_effects(e: &Expr) -> bool {
    match &e.kind {
        ExprKind::Call(..) | ExprKind::New(_) | ExprKind::NewArray(..) | ExprKind::Scast(..) => {
            true
        }
        ExprKind::Unary(_, a) => has_side_effects(a),
        ExprKind::Binary(_, a, b) | ExprKind::Index(a, b) => {
            has_side_effects(a) || has_side_effects(b)
        }
        ExprKind::Field(a, _, _) => has_side_effects(a),
        ExprKind::Cast(_, a) => has_side_effects(a),
        ExprKind::Ternary(c, a, b) => {
            has_side_effects(c) || has_side_effects(a) || has_side_effects(b)
        }
        _ => false,
    }
}

// ----- explain output -----

/// Renders one human-auditable line per elided or collapsed slot,
/// sorted by source position: `elide write *d [spawn-unique] @ f.c:4`.
pub fn explain(facts: &ElisionFacts, instr: &Instrumentation, sm: &SourceMap) -> Vec<String> {
    let mut rows: Vec<(u32, u32, String)> = Vec::new();
    for (id, site) in &facts.sites {
        let Some(ac) = instr.checks.get(id) else {
            continue;
        };
        let lc = sm.lookup(ac.span);
        let mut push = |rw: &str, r: Reason, ac: &AccessCheck| {
            let verb = if r == Reason::ReadOfWrite {
                "collapse"
            } else {
                "elide"
            };
            rows.push((
                lc.line,
                lc.col,
                format!(
                    "{verb} {rw} {} [{}] @ {}:{}",
                    ac.lvalue,
                    r.label(),
                    sm.name(),
                    lc.line
                ),
            ));
        };
        if let Some(r) = site.read {
            push("read", r, ac);
        }
        if let Some(r) = site.write {
            push("write", r, ac);
        }
    }
    rows.sort();
    rows.dedup();
    rows.into_iter().map(|(_, _, s)| s).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CheckedProgram;

    fn run(src: &str) -> CheckedProgram {
        let c = crate::compile("elide_test.c", src).unwrap();
        assert!(!c.diags.has_errors(), "{}", c.render_diags());
        c
    }

    fn reasons(c: &CheckedProgram) -> Vec<Reason> {
        let mut out: Vec<Reason> = c
            .elision
            .sites
            .values()
            .flat_map(|s| [s.read, s.write])
            .flatten()
            .collect();
        out.sort_by_key(|r| r.index());
        out
    }

    const SPAWN_UNIQUE: &str = "void worker(int * d) { int i; \
         for (i = 0; i < 10; i = i + 1) *d = *d + 1; }\n\
         void main() { int * p; int t; p = new(int); t = spawn(worker, p); join(t); }";

    #[test]
    fn spawn_unique_elides_every_worker_check() {
        let c = run(SPAWN_UNIQUE);
        let s = &c.elision.summary;
        // `*d = *d + 1`: one read slot + one write slot, both elided
        // (the read also matches E5, but E3 claims it first).
        assert_eq!(s.checked_slots, 2, "{:?}", c.instr.checks);
        assert_eq!(s.elided_slots, 2);
        assert!(reasons(&c).iter().all(|r| *r == Reason::SpawnUnique));
    }

    #[test]
    fn second_spawn_site_blocks_spawn_unique() {
        let c = run("void worker(int * d) { *d = 1; }\n\
             void main() { int * p; int * q; p = new(int); q = new(int); \
              spawn(worker, p); spawn(worker, q); }");
        assert_eq!(c.elision.summary.elided_slots, 0);
    }

    #[test]
    fn spawner_deref_blocks_spawn_unique() {
        // main reads *p unchecked-by-worker; eliding worker's checks
        // would hide the report the checked build makes.
        let c = run("void worker(int * d) { *d = 1; }\n\
             void main() { int * p; int v; p = new(int); *p = 4; \
              spawn(worker, p); v = *p; }");
        assert!(!c
            .elision
            .sites
            .values()
            .any(|s| s.write == Some(Reason::SpawnUnique)));
    }

    #[test]
    fn spawn_in_loop_blocks_spawn_unique() {
        let c = run("void worker(int * d) { *d = 1; }\n\
             void main() { int * p; int i; p = new(int); \
              for (i = 0; i < 2; i = i + 1) spawn(worker, p); }");
        assert_eq!(c.elision.summary.elided_slots, 0);
    }

    #[test]
    fn fresh_private_local_elides_dynamic_checks() {
        // g is inferred dynamic because the global leak makes the
        // *other* pointer thread-shared; b stays fresh & local.
        let c = run("int dynamic * leak;\n\
             void worker(int * d) { *d = 2; }\n\
             void main() { int dynamic * b; int v; b = new(int dynamic); \
              *b = 7; v = *b; leak = b; }");
        // `leak = b` makes b escape: other > 0, nothing elided for b.
        assert!(!c
            .elision
            .sites
            .values()
            .any(|s| s.write == Some(Reason::FreshPrivate)));

        let c2 = run(
            "void main() { int dynamic * b; int v; b = new(int dynamic); \
              *b = 7; v = *b; }",
        );
        let s = &c2.elision.summary;
        assert_eq!(s.checked_slots, 2);
        assert_eq!(s.elided_slots, 2);
        assert!(reasons(&c2).iter().all(|r| *r == Reason::FreshPrivate));
    }

    #[test]
    fn private_actuals_elide_callee_formal_checks() {
        // helper's formal is inferred dynamic (dynamic_in from worker
        // would block it), so use only private/fresh callers.
        let c = run("void bump(int dynamic * x) { *x = *x + 1; }\n\
             void main() { int * q; q = new(int); bump(q); }");
        let s = &c.elision.summary;
        assert!(s.elided_slots >= 2, "summary: {s:?}");
        assert!(reasons(&c).contains(&Reason::PrivateActuals));
    }

    #[test]
    fn shared_actual_blocks_private_actuals() {
        let c = run("void bump(int * x) { *x = *x + 1; }\n\
             void worker(int * d) { bump(d); }\n\
             void main() { int * p; int * q; p = new(int); q = new(int); \
              spawn(worker, p); bump(q); }");
        assert!(!c
            .elision
            .sites
            .values()
            .any(|s| s.write == Some(Reason::PrivateActuals)));
    }

    #[test]
    fn lock_dominated_region_elides_lock_checks() {
        let c = run("struct q { mutex * m; int locked(m) count; };\n\
             void worker(struct q * w) { mutex_lock(w->m); \
              w->count = w->count + 1; mutex_unlock(w->m); }\n\
             void main() { struct q * w; w = new(struct q); spawn(worker, w); }");
        let by = c.elision.summary.by_reason;
        assert_eq!(
            by[Reason::LockHeld.index()],
            2,
            "summary: {:?}",
            c.elision.summary
        );
    }

    #[test]
    fn by_value_mutex_field_elides_lock_checks() {
        // The `counter_locked.c` idiom: a by-value mutex locked
        // through `&c->m`. Taking the field's address inside the sync
        // builtin must not poison the lock path's stability.
        let c = run("struct ctr { mutex m; int locked(m) v; };\n\
             void worker(struct ctr * c) { int i; \
              for (i = 0; i < 10; i = i + 1) { mutex_lock(&c->m); \
              v_bump(c); mutex_unlock(&c->m); } }\n\
             void v_bump(struct ctr * c) { c->v = c->v + 1; }\n\
             void main() { struct ctr * c; c = new(struct ctr); \
              spawn(worker, c); spawn(worker, c); join_all(); }");
        // The accesses live in v_bump (no lock region there): nothing
        // elides. The point of this program is only stability, proven
        // by the direct-body variant below.
        let direct = run("struct ctr { mutex m; int locked(m) v; };\n\
             void worker(struct ctr * c) { int i; \
              for (i = 0; i < 10; i = i + 1) { mutex_lock(&c->m); \
              c->v = c->v + 1; mutex_unlock(&c->m); } }\n\
             void main() { struct ctr * c; c = new(struct ctr); \
              spawn(worker, c); spawn(worker, c); join_all(); }");
        assert_eq!(
            direct.elision.summary.by_reason[Reason::LockHeld.index()],
            2,
            "summary: {:?}",
            direct.elision.summary
        );
        assert_eq!(c.elision.summary.by_reason[Reason::LockHeld.index()], 0);
    }

    #[test]
    fn access_after_unlock_stays_checked() {
        let c = run("struct q { mutex * m; int locked(m) count; };\n\
             void worker(struct q * w) { mutex_lock(w->m); \
              w->count = 1; mutex_unlock(w->m); w->count = 2; }\n\
             void main() { struct q * w; w = new(struct q); spawn(worker, w); }");
        // Only the in-region write is elided; the post-unlock write
        // keeps its check (and will report at runtime).
        assert_eq!(c.elision.summary.by_reason[Reason::LockHeld.index()], 1);
    }

    #[test]
    fn lock_held_across_loop_body() {
        let c = run("struct q { mutex * m; int locked(m) count; };\n\
             void worker(struct q * w) { int i; mutex_lock(w->m); \
              for (i = 0; i < 5; i = i + 1) w->count = w->count + 1; \
              mutex_unlock(w->m); }\n\
             void main() { struct q * w; w = new(struct q); spawn(worker, w); }");
        assert_eq!(c.elision.summary.by_reason[Reason::LockHeld.index()], 2);
    }

    #[test]
    fn unlock_inside_loop_kills_the_entry_set() {
        let c = run("struct q { mutex * m; int locked(m) count; };\n\
             void worker(struct q * w) { int i; mutex_lock(w->m); \
              for (i = 0; i < 5; i = i + 1) { w->count = w->count + 1; \
               mutex_unlock(w->m); mutex_lock(w->m); } \
              mutex_unlock(w->m); }\n\
             void main() { struct q * w; w = new(struct q); spawn(worker, w); }");
        // The body unlocks, so the loop entry set is empty and the
        // body access stays checked.
        assert_eq!(c.elision.summary.by_reason[Reason::LockHeld.index()], 0);
    }

    #[test]
    fn compound_assign_read_collapses_into_write() {
        let c = run("int dynamic g;\n\
             void worker(int * d) { g = g + 1; }\n\
             void main() { int * p; spawn(worker, p); g = g + 1; }");
        let s = &c.elision.summary;
        assert_eq!(s.collapsed_reads, 2, "summary: {s:?}");
        assert_eq!(s.by_reason[Reason::ReadOfWrite.index()], 2);
        // Collapsed reads are not counted as elided.
        assert_eq!(s.elided_slots, 0);
    }

    #[test]
    fn explain_renders_sorted_reason_lines() {
        let c = run(SPAWN_UNIQUE);
        let lines = explain(&c.elision, &c.instr, &c.source_map);
        assert_eq!(lines.len(), 2, "{lines:?}");
        assert!(lines[0].contains("[spawn-unique]"), "{lines:?}");
        assert!(lines[0].contains("elide_test.c:"), "{lines:?}");
        assert!(lines.iter().any(|l| l.starts_with("elide write *d")));
    }

    #[test]
    fn racy_counter_program_keeps_its_checks() {
        // Two spawns of the same worker over one object: every rule
        // must refuse, so the racy report survives elision.
        let c = run("void worker(int * d) { *d = *d + 1; }\n\
             void main() { int * p; p = new(int); \
              spawn(worker, p); spawn(worker, p); }");
        assert_eq!(c.elision.summary.elided_slots, 0);
        // E5 may still collapse the worker-side read: the write check
        // remains and reports the same conflict.
        assert!(c.elision.summary.checked_slots >= 2);
    }
}
