//! Annotation elaboration: applies SharC's defaulting rules (paper
//! §4.1) and introduces qualifier inference variables for everything
//! still unannotated.
//!
//! The rules, in order:
//!
//! 1. `mutex`/`cond` levels are inherently `racy`.
//! 2. An unannotated pointer *target* inherits a user-written
//!    qualifier from its pointer level: `(int * dynamic)` becomes
//!    `(int dynamic * dynamic)`, but `(int dynamic * private)` is
//!    unchanged. Inheritance never copies defaults, only annotations.
//! 3. Inside a struct definition: a still-unannotated outermost field
//!    qualifier becomes `q` (the instance qualifier, [`Qual::Poly`]);
//!    still-unannotated inner levels become `dynamic`. In a `racy`
//!    struct both become `racy`.
//! 4. Outside structs (globals, params, locals, type literals): every
//!    still-unannotated level gets a fresh inference variable, solved
//!    to `private` or `dynamic` by the sharing analysis.
//! 5. An array is a single object of its base type: the array level
//!    and element level share one qualifier.
//! 6. A field used as the lock in a sibling `locked(f)` qualifier is
//!    forced `readonly` (required for soundness); likewise a global
//!    used as a lock.

use minic::ast::*;
use minic::diag::{Diagnostic, Diagnostics};
use minic::span::Span;
use std::collections::HashSet;

/// Result of elaboration: the number of inference variables created
/// and any diagnostics (annotation conflicts).
#[derive(Debug)]
pub struct ElabResult {
    /// Number of qualifier variables introduced; ids are `0..n_vars`.
    pub n_vars: u32,
    /// Declaration span of each variable (for diagnostics).
    pub var_spans: Vec<Span>,
    pub diags: Diagnostics,
}

/// Elaborates `program` in place.
pub fn elaborate(program: &mut Program) -> ElabResult {
    let mut e = Elab {
        next: 0,
        var_spans: Vec::new(),
        diags: Diagnostics::new(),
    };

    for sd in &mut program.structs {
        let racy = sd.racy;
        for f in &mut sd.fields {
            e.field_type(&mut f.ty, racy, true, f.span);
        }
    }
    e.force_lock_fields(program);

    // Collect global names before mutable iteration (for lock forcing).
    for g in &mut program.globals {
        e.code_type(&mut g.ty, g.span);
    }
    for f in &mut program.fns {
        e.code_type(&mut f.ret, f.span);
        for p in &mut f.params {
            e.code_type(&mut p.ty, p.span);
        }
        e.block(&mut f.body);
    }
    e.force_lock_globals(program);

    ElabResult {
        n_vars: e.next,
        var_spans: e.var_spans,
        diags: e.diags,
    }
}

struct Elab {
    next: u32,
    var_spans: Vec<Span>,
    diags: Diagnostics,
}

impl Elab {
    fn fresh(&mut self, span: Span) -> Qual {
        let id = self.next;
        self.next += 1;
        self.var_spans.push(span);
        Qual::Var(id)
    }

    /// Elaborates one level inside a struct field type.
    ///
    /// `inherited` carries a user-written qualifier from the parent
    /// pointer level, if any.
    fn field_type(&mut self, ty: &mut Type, racy: bool, outermost: bool, span: Span) {
        self.field_type_inner(ty, racy, outermost, None, span);
    }

    fn field_type_inner(
        &mut self,
        ty: &mut Type,
        racy: bool,
        outermost: bool,
        inherited: Option<&Qual>,
        span: Span,
    ) {
        // Unify array/element qualifiers first (rule 5).
        if let TypeKind::Array(elem, _) = &mut ty.kind {
            if ty.qual == Qual::Infer && elem.qual != Qual::Infer {
                ty.qual = elem.qual.clone();
            }
        }
        let user_annotated = ty.qual != Qual::Infer;
        if ty.qual == Qual::Infer {
            ty.qual = match &ty.kind {
                TypeKind::Mutex | TypeKind::Cond => Qual::Racy,
                TypeKind::Void | TypeKind::Fn(_) => Qual::Private,
                _ => {
                    if let Some(q) = inherited {
                        q.clone()
                    } else if racy {
                        Qual::Racy
                    } else if outermost {
                        Qual::Poly
                    } else {
                        Qual::Dynamic
                    }
                }
            };
        }
        let pass_down = if user_annotated {
            Some(ty.qual.clone())
        } else {
            None
        };
        match &mut ty.kind {
            TypeKind::Ptr(inner) => {
                self.field_type_inner(inner, racy, false, pass_down.as_ref(), span);
            }
            TypeKind::Array(elem, _) => {
                // Array and element are one object: same qualifier.
                elem.qual = ty.qual.clone();
                let q = ty.qual.clone();
                self.field_type_inner(elem, racy, false, Some(&q), span);
                elem.qual = ty.qual.clone();
            }
            TypeKind::Fn(sig) => {
                // Function signatures always use code-type defaulting
                // (fresh variables), so assignments of concrete
                // functions can unify with them.
                self.code_type(&mut sig.ret, span);
                for p in &mut sig.params {
                    self.code_type(&mut p.ty, p.span);
                }
            }
            _ => {}
        }
    }

    /// Elaborates a type appearing in code (globals, params, locals,
    /// casts, allocations): unannotated levels become fresh variables.
    fn code_type(&mut self, ty: &mut Type, span: Span) {
        self.code_type_inner(ty, None, span);
    }

    fn code_type_inner(&mut self, ty: &mut Type, inherited: Option<&Qual>, span: Span) {
        if let TypeKind::Array(elem, _) = &mut ty.kind {
            if ty.qual == Qual::Infer && elem.qual != Qual::Infer {
                ty.qual = elem.qual.clone();
            }
        }
        let user_annotated = ty.qual != Qual::Infer;
        if ty.qual == Qual::Infer {
            ty.qual = match &ty.kind {
                TypeKind::Mutex | TypeKind::Cond => Qual::Racy,
                TypeKind::Void | TypeKind::Fn(_) => Qual::Private,
                _ => {
                    if let Some(q) = inherited {
                        q.clone()
                    } else {
                        self.fresh(span)
                    }
                }
            };
        }
        let pass_down = if user_annotated {
            Some(ty.qual.clone())
        } else {
            None
        };
        match &mut ty.kind {
            TypeKind::Ptr(inner) => {
                self.code_type_inner(inner, pass_down.as_ref(), span);
            }
            TypeKind::Array(elem, _) => {
                elem.qual = ty.qual.clone();
                let q = ty.qual.clone();
                self.code_type_inner(elem, Some(&q), span);
                elem.qual = ty.qual.clone();
            }
            TypeKind::Fn(sig) => {
                self.code_type(&mut sig.ret, span);
                for p in &mut sig.params {
                    self.code_type(&mut p.ty, p.span);
                }
            }
            _ => {}
        }
    }

    fn block(&mut self, b: &mut Block) {
        for s in &mut b.stmts {
            self.stmt(s);
        }
    }

    fn stmt(&mut self, s: &mut Stmt) {
        let span = s.span;
        match &mut s.kind {
            StmtKind::Decl { ty, init, .. } => {
                self.code_type(ty, span);
                if let Some(e) = init {
                    self.expr(e);
                }
            }
            StmtKind::Assign { lhs, rhs } => {
                self.expr(lhs);
                self.expr(rhs);
            }
            StmtKind::Expr(e) => self.expr(e),
            StmtKind::If {
                cond,
                then_blk,
                else_blk,
            } => {
                self.expr(cond);
                self.block(then_blk);
                if let Some(eb) = else_blk {
                    self.block(eb);
                }
            }
            StmtKind::While { cond, body } => {
                self.expr(cond);
                self.block(body);
            }
            StmtKind::For {
                init,
                cond,
                step,
                body,
            } => {
                if let Some(i) = init {
                    self.stmt(i);
                }
                if let Some(c) = cond {
                    self.expr(c);
                }
                if let Some(st) = step {
                    self.stmt(st);
                }
                self.block(body);
            }
            StmtKind::Return(Some(e)) => self.expr(e),
            StmtKind::Return(None) | StmtKind::Break | StmtKind::Continue => {}
            StmtKind::Block(b) => self.block(b),
        }
    }

    fn expr(&mut self, e: &mut Expr) {
        let span = e.span;
        match &mut e.kind {
            ExprKind::Unary(_, a) => self.expr(a),
            ExprKind::Binary(_, a, b) => {
                self.expr(a);
                self.expr(b);
            }
            ExprKind::Index(a, b) => {
                self.expr(a);
                self.expr(b);
            }
            ExprKind::Field(a, _, _) => self.expr(a),
            ExprKind::Call(f, args) => {
                self.expr(f);
                for a in args {
                    self.expr(a);
                }
            }
            ExprKind::Cast(ty, a) | ExprKind::Scast(ty, a) | ExprKind::NewArray(ty, a) => {
                self.code_type(ty, span);
                self.expr(a);
            }
            ExprKind::New(ty) | ExprKind::Sizeof(ty) => self.code_type(ty, span),
            ExprKind::Ternary(c, a, b) => {
                self.expr(c);
                self.expr(a);
                self.expr(b);
            }
            _ => {}
        }
    }

    /// Rule 6 (fields): any sibling field named as a lock base must be
    /// `readonly`.
    fn force_lock_fields(&mut self, program: &mut Program) {
        for sd in &mut program.structs {
            let mut lock_bases: Vec<(String, Span)> = Vec::new();
            for f in &sd.fields {
                collect_lock_bases(&f.ty, &mut lock_bases);
            }
            for (base, span) in lock_bases {
                if let Some(f) = sd.fields.iter_mut().find(|f| f.name == base) {
                    // A by-value mutex field *is* the lock; its cell is
                    // mutated by lock operations and stays racy.
                    if matches!(f.ty.kind, TypeKind::Mutex | TypeKind::Cond) {
                        continue;
                    }
                    match &f.ty.qual {
                        Qual::Readonly => {}
                        Qual::Poly | Qual::Infer | Qual::Var(_) => {
                            f.ty.qual = Qual::Readonly;
                        }
                        other => {
                            self.diags.push(Diagnostic::error(
                                format!(
                                    "field `{}` is used in a locked(...) qualifier and must be \
                                     readonly, but is annotated `{other}`",
                                    f.name
                                ),
                                f.span,
                            ));
                        }
                    }
                }
                let _ = span;
            }
        }
    }

    /// Rule 6 (globals): a global named as a lock base anywhere in the
    /// program must be `readonly`.
    fn force_lock_globals(&mut self, program: &mut Program) {
        let mut bases: Vec<(String, Span)> = Vec::new();
        for sd in &program.structs {
            for f in &sd.fields {
                collect_lock_bases(&f.ty, &mut bases);
            }
        }
        for g in &program.globals {
            collect_lock_bases(&g.ty, &mut bases);
        }
        for f in &program.fns {
            for p in &f.params {
                collect_lock_bases(&p.ty, &mut bases);
            }
            collect_lock_bases_block(&f.body, &mut bases);
        }
        let global_names: HashSet<String> =
            program.globals.iter().map(|g| g.name.clone()).collect();
        for (base, _) in bases {
            if global_names.contains(&base) {
                let g = program
                    .globals
                    .iter_mut()
                    .find(|g| g.name == base)
                    .expect("checked membership");
                // A by-value mutex global *is* the lock: leave it racy.
                if matches!(g.ty.kind, TypeKind::Mutex | TypeKind::Cond) {
                    continue;
                }
                match &g.ty.qual {
                    Qual::Readonly => {}
                    Qual::Var(_) | Qual::Infer => g.ty.qual = Qual::Readonly,
                    other => {
                        self.diags.push(Diagnostic::error(
                            format!(
                                "global `{}` is used in a locked(...) qualifier and must be \
                                 readonly, but is annotated `{other}`",
                                g.name
                            ),
                            g.span,
                        ));
                    }
                }
            }
        }
    }
}

fn collect_lock_bases(ty: &Type, out: &mut Vec<(String, Span)>) {
    if let Qual::Locked(path) = &ty.qual {
        out.push((path.segs[0].clone(), path.span));
    }
    match &ty.kind {
        TypeKind::Ptr(inner) | TypeKind::Array(inner, _) => collect_lock_bases(inner, out),
        TypeKind::Fn(sig) => {
            collect_lock_bases(&sig.ret, out);
            for p in &sig.params {
                collect_lock_bases(&p.ty, out);
            }
        }
        _ => {}
    }
}

fn collect_lock_bases_block(b: &Block, out: &mut Vec<(String, Span)>) {
    for s in &b.stmts {
        collect_lock_bases_stmt(s, out);
    }
}

fn collect_lock_bases_stmt(s: &Stmt, out: &mut Vec<(String, Span)>) {
    match &s.kind {
        StmtKind::Decl { ty, .. } => collect_lock_bases(ty, out),
        StmtKind::If {
            then_blk, else_blk, ..
        } => {
            collect_lock_bases_block(then_blk, out);
            if let Some(eb) = else_blk {
                collect_lock_bases_block(eb, out);
            }
        }
        StmtKind::While { body, .. } => collect_lock_bases_block(body, out),
        StmtKind::For {
            init, step, body, ..
        } => {
            if let Some(i) = init {
                collect_lock_bases_stmt(i, out);
            }
            if let Some(st) = step {
                collect_lock_bases_stmt(st, out);
            }
            collect_lock_bases_block(body, out);
        }
        StmtKind::Block(b) => collect_lock_bases_block(b, out),
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minic::parse;

    fn elab(src: &str) -> (Program, ElabResult) {
        let mut p = parse(src).unwrap();
        let r = elaborate(&mut p);
        (p, r)
    }

    #[test]
    fn mutex_fields_become_racy() {
        let (p, r) = elab("struct s { mutex * m; };");
        assert!(!r.diags.has_errors());
        let f = &p.structs[0].fields[0];
        assert_eq!(f.ty.pointee().unwrap().qual, Qual::Racy);
        assert_eq!(f.ty.qual, Qual::Poly);
    }

    #[test]
    fn unannotated_field_pointer_target_is_dynamic() {
        let (p, _) = elab("struct stage { struct stage * next; };");
        let f = &p.structs[0].fields[0];
        assert_eq!(f.ty.qual, Qual::Poly);
        assert_eq!(f.ty.pointee().unwrap().qual, Qual::Dynamic);
    }

    #[test]
    fn annotation_inherits_to_target() {
        // (char * locked(mut)) becomes (char locked(mut) * locked(mut)),
        // exactly the paper's Figure 1 -> Figure 2 elaboration.
        let (p, _) = elab("struct s { mutex * m; char *locked(m) sdata; };");
        let f = p.structs[0].field("sdata").unwrap();
        assert!(matches!(f.ty.qual, Qual::Locked(_)));
        assert!(matches!(f.ty.pointee().unwrap().qual, Qual::Locked(_)));
    }

    #[test]
    fn lock_field_forced_readonly() {
        let (p, r) = elab("struct s { mutex * m; char *locked(m) sdata; };");
        assert!(!r.diags.has_errors());
        let m = p.structs[0].field("m").unwrap();
        assert_eq!(m.ty.qual, Qual::Readonly);
    }

    #[test]
    fn lock_field_conflicting_annotation_is_error() {
        let (_, r) = elab("struct s { mutex * private m; char *locked(m) d; };");
        assert!(r.diags.has_errors());
    }

    #[test]
    fn racy_struct_fields_racy() {
        let (p, _) = elab("racy struct s { int x; int * p; };");
        assert_eq!(p.structs[0].fields[0].ty.qual, Qual::Racy);
        assert_eq!(p.structs[0].fields[1].ty.qual, Qual::Racy);
        assert_eq!(
            p.structs[0].fields[1].ty.pointee().unwrap().qual,
            Qual::Racy
        );
    }

    #[test]
    fn code_types_get_fresh_vars() {
        let (p, r) = elab("void f() { int x; char * c; }");
        assert!(
            r.n_vars >= 3,
            "x, c (two levels) need vars; got {}",
            r.n_vars
        );
        let StmtKind::Decl { ty, .. } = &p.fns[0].body.stmts[0].kind else {
            panic!()
        };
        assert!(matches!(ty.qual, Qual::Var(_)));
    }

    #[test]
    fn annotated_pointer_target_inherits_in_code() {
        let (p, _) = elab("int * dynamic g;");
        let ty = &p.globals[0].ty;
        assert_eq!(ty.qual, Qual::Dynamic);
        assert_eq!(ty.pointee().unwrap().qual, Qual::Dynamic);
    }

    #[test]
    fn annotated_target_unannotated_pointer_stays_separate() {
        let (p, _) = elab("int dynamic * g;");
        let ty = &p.globals[0].ty;
        assert!(matches!(ty.qual, Qual::Var(_)));
        assert_eq!(ty.pointee().unwrap().qual, Qual::Dynamic);
    }

    #[test]
    fn array_and_element_share_qual() {
        let (p, _) = elab("int dynamic buf[8];");
        let ty = &p.globals[0].ty;
        assert_eq!(ty.qual, Qual::Dynamic);
        assert_eq!(ty.elem().unwrap().qual, Qual::Dynamic);
    }

    #[test]
    fn global_lock_forced_readonly() {
        let (p, r) = elab("mutex racy * gl; int locked(gl) counter;");
        assert!(!r.diags.has_errors());
        assert_eq!(p.globals[0].ty.qual, Qual::Readonly);
    }

    #[test]
    fn pipeline_struct_matches_figure2() {
        let src = "typedef struct stage {\n\
                       struct stage * next;\n\
                       cond * cv;\n\
                       mutex * mut;\n\
                       char locked(mut) *locked(mut) sdata;\n\
                       void (* fun)(char private *private fdata);\n\
                   } stage_t;";
        let (p, r) = elab(src);
        assert!(
            !r.diags.has_errors(),
            "{:?}",
            r.diags.iter().collect::<Vec<_>>()
        );
        let sd = &p.structs[0];
        // next: struct stage dynamic *q next
        let next = sd.field("next").unwrap();
        assert_eq!(next.ty.qual, Qual::Poly);
        assert_eq!(next.ty.pointee().unwrap().qual, Qual::Dynamic);
        // cv: cond racy *q cv
        let cv = sd.field("cv").unwrap();
        assert_eq!(cv.ty.qual, Qual::Poly);
        assert_eq!(cv.ty.pointee().unwrap().qual, Qual::Racy);
        // mut: mutex racy *readonly mut
        let m = sd.field("mut").unwrap();
        assert_eq!(m.ty.qual, Qual::Readonly);
        assert_eq!(m.ty.pointee().unwrap().qual, Qual::Racy);
        // fun: (*q fun) with private param retained
        let fun = sd.field("fun").unwrap();
        assert_eq!(fun.ty.qual, Qual::Poly);
    }
}
