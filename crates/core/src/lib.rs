//! # sharc-core
//!
//! The SharC checker (PLDI 2008) over MiniC: annotation elaboration,
//! the whole-program sharing analysis, the static checker, and the
//! instrumentation table consumed by the VM.
//!
//! The pipeline mirrors the paper's §4: the input is a partially
//! annotated program; SharC infers the missing annotations
//! ([`elaborate`] + [`analysis`]), type-checks the now-complete
//! program and inserts runtime checks ([`check`]), and hands the
//! instrumented program to the runtime (the `sharc-interp` crate).
//!
//! ## Example
//!
//! ```
//! let src = r#"
//!     void worker(int * d) { *d = *d + 1; }
//!     void main() {
//!         int * p;
//!         p = new(int);
//!         spawn(worker, p);
//!     }
//! "#;
//! let checked = sharc_core::compile("example.c", src)?;
//! assert!(!checked.diags.has_errors());
//! // The thread argument was inferred dynamic, so accesses are checked.
//! assert!(checked.instr.n_dynamic_sites > 0);
//! # Ok::<(), minic::Diagnostic>(())
//! ```

pub mod analysis;
pub mod callgraph;
pub mod check;
pub mod constraints;
pub mod elaborate;
pub mod elide;
pub mod typer;

use minic::ast::{Program, Qual, Type};
use minic::diag::Diagnostics;
use minic::env::StructTable;
use minic::span::SourceMap;

pub use analysis::{AnalysisStats, SharingAnalysis};
pub use check::{AccessCheck, CheckKind, CheckResult, Instrumentation};
pub use elide::{ElisionFacts, ElisionSummary, Reason, SiteFacts};

/// A fully analyzed, checked, and instrumented program.
#[derive(Debug)]
pub struct CheckedProgram {
    /// The program with every qualifier concrete.
    pub program: Program,
    pub structs: StructTable,
    /// Runtime checks per l-value occurrence.
    pub instr: Instrumentation,
    /// Statically-proven-redundant checks (the VM compiler skips
    /// them; `compile_full_checks` ignores the table).
    pub elision: elide::ElisionFacts,
    /// Sharing-analysis results (escape info, statistics).
    pub sharing: SharingAnalysis,
    /// All diagnostics from every phase.
    pub diags: Diagnostics,
    /// Source map for rendering report locations.
    pub source_map: SourceMap,
    /// Number of sharing-mode annotations the user wrote (Table 1's
    /// "Annots." column).
    pub annotation_count: usize,
}

impl CheckedProgram {
    /// Renders all diagnostics against the source.
    pub fn render_diags(&self) -> String {
        self.diags.render(&self.source_map)
    }
}

/// Runs the full SharC front-end pipeline on MiniC source text.
///
/// # Errors
///
/// Returns the first *syntax or layout* error. Sharing-mode errors do
/// not abort the pipeline; they are collected in
/// [`CheckedProgram::diags`] so a tool can show them all (and show
/// the sharing-cast suggestions).
pub fn compile(name: &str, src: &str) -> Result<CheckedProgram, minic::Diagnostic> {
    let source_map = SourceMap::new(name, src);
    let mut program = minic::parse(src)?;
    minic::env::canonicalize_struct_names(&mut program);
    let annotation_count = count_annotations(&program);
    let elab = elaborate::elaborate(&mut program);
    let structs = StructTable::build(&program)?;
    let mut diags = Diagnostics::new();
    for d in elab.diags.iter() {
        diags.push(d.clone());
    }
    let sharing = analysis::analyze(&mut program, &structs, elab.n_vars);
    for d in sharing.diags.iter() {
        diags.push(d.clone());
    }
    // Rebuild the struct table: analysis substituted qualifier
    // variables inside struct-field function signatures, and the
    // checker must see the solved types.
    let structs = StructTable::build(&program)?;
    let check::CheckResult { diags: cd, instr } = check::check(&program, &structs, &sharing);
    diags.extend(cd);
    let elision = elide::elide(&program, &instr);
    Ok(CheckedProgram {
        program,
        structs,
        instr,
        elision,
        sharing,
        diags,
        source_map,
        annotation_count,
    })
}

/// Counts user-written sharing-mode annotations in a freshly parsed
/// (pre-elaboration) program.
pub fn count_annotations(program: &Program) -> usize {
    let mut count = 0usize;
    let mut count_ty = |ty: &Type| {
        ty.for_each_level(&mut |l| {
            if l.qual.is_concrete() {
                count += 1;
            }
        });
    };
    for sd in &program.structs {
        for f in &sd.fields {
            count_ty(&f.ty);
        }
    }
    for g in &program.globals {
        count_ty(&g.ty);
    }
    for f in &program.fns {
        count_ty(&f.ret);
        for p in &f.params {
            count_ty(&p.ty);
        }
        count_decl_annotations(&f.body, &mut count_ty);
    }
    let _ = Qual::Infer;
    count
}

fn count_decl_annotations(b: &minic::ast::Block, count_ty: &mut impl FnMut(&Type)) {
    use minic::ast::StmtKind;
    for s in &b.stmts {
        match &s.kind {
            StmtKind::Decl { ty, .. } => count_ty(ty),
            StmtKind::If {
                then_blk, else_blk, ..
            } => {
                count_decl_annotations(then_blk, count_ty);
                if let Some(eb) = else_blk {
                    count_decl_annotations(eb, count_ty);
                }
            }
            StmtKind::While { body, .. } => count_decl_annotations(body, count_ty),
            StmtKind::For { init, body, .. } => {
                if let Some(i) = init {
                    if let StmtKind::Decl { ty, .. } = &i.kind {
                        count_ty(ty);
                    }
                }
                count_decl_annotations(body, count_ty);
            }
            StmtKind::Block(inner) => count_decl_annotations(inner, count_ty),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compile_clean_program() {
        let c = compile("t.c", "void main() { int x; x = 1; }").unwrap();
        assert!(!c.diags.has_errors());
        assert_eq!(c.annotation_count, 0);
    }

    #[test]
    fn annotation_counting() {
        let c = compile(
            "t.c",
            "int dynamic g;\nvoid main() { int private * x; x = NULL; }",
        )
        .unwrap();
        assert_eq!(c.annotation_count, 2);
    }

    #[test]
    fn syntax_error_propagates() {
        assert!(compile("t.c", "void main( {").is_err());
    }

    #[test]
    fn pipeline_example_with_annotations_is_clean() {
        // The paper's Figure 1 with its two annotations and two casts.
        let src = r#"
            typedef struct stage {
                struct stage * next;
                cond * cv;
                mutex * mut;
                char *locked(mut) sdata;
                void (* fun)(char private * fdata);
            } stage_t;

            int racy notDone;

            void process(char private * fdata) {
                fdata[0] = 'x';
            }

            void thrFunc(stage_t * d) {
                stage_t * S = d;
                stage_t * nextS = S->next;
                char private * ldata;
                while (notDone) {
                    mutex_lock(S->mut);
                    while (S->sdata == NULL)
                        cond_wait(S->cv, S->mut);
                    ldata = SCAST(char private *, S->sdata);
                    cond_signal(S->cv);
                    mutex_unlock(S->mut);
                    S->fun(ldata);
                    if (nextS) {
                        mutex_lock(nextS->mut);
                        while (nextS->sdata)
                            cond_wait(nextS->cv, nextS->mut);
                        nextS->sdata = SCAST(char locked(nextS->mut) *, ldata);
                        cond_signal(nextS->cv);
                        mutex_unlock(nextS->mut);
                    }
                }
            }

            void main() {
                stage_t * s1;
                s1 = new(stage_t);
                spawn(thrFunc, s1);
            }
        "#;
        let c = compile("pipeline_test.c", src).unwrap();
        let errs: Vec<_> = c
            .diags
            .iter()
            .filter(|d| d.severity == minic::Severity::Error)
            .collect();
        assert!(errs.is_empty(), "{}", c.render_diags());
        assert!(c.instr.n_locked_sites > 0);
    }
}
