//! Expression typing for MiniC with sharing-mode qualifiers.
//!
//! Computes a [`Type`] for every expression node in a function,
//! performing *shape* checking (pointer/struct/array well-formedness)
//! and the struct qualifier-polymorphism substitution: a field whose
//! outermost qualifier is `q` ([`Qual::Poly`]) takes the qualifier of
//! the structure instance it is accessed through, and `locked(f)`
//! paths declared on fields are re-rooted at the instance expression
//! (`sdata: locked(mut)` accessed as `S->sdata` becomes
//! `locked(S->mut)`).
//!
//! Both the sharing analysis (over qualifier variables) and the final
//! checker (over concrete qualifiers) use this module.

use minic::ast::*;
use minic::diag::Diagnostic;
use minic::env::StructTable;
use minic::pretty;
use minic::span::Span;
use std::collections::HashMap;

/// Program-wide typing environment.
#[derive(Debug)]
pub struct TypeEnv<'p> {
    pub program: &'p Program,
    pub structs: &'p StructTable,
    pub globals: HashMap<String, Type>,
    pub fn_sigs: HashMap<String, FnSig>,
}

impl<'p> TypeEnv<'p> {
    /// Builds the environment from an (elaborated) program.
    pub fn new(program: &'p Program, structs: &'p StructTable) -> Self {
        let globals = program
            .globals
            .iter()
            .map(|g| (g.name.clone(), g.ty.clone()))
            .collect();
        let fn_sigs = program
            .fns
            .iter()
            .map(|f| (f.name.clone(), f.sig()))
            .collect();
        TypeEnv {
            program,
            structs,
            globals,
            fn_sigs,
        }
    }
}

/// The per-function result: a type for every expression node, plus
/// local declaration types by node.
#[derive(Debug, Default)]
pub struct TypeTable {
    /// Type of each expression node.
    pub exprs: HashMap<NodeId, Type>,
    /// For `Decl` statements, the declared type (post-elaboration).
    pub decls: HashMap<NodeId, Type>,
    /// Whether each expression node is used as an l-value *storage*
    /// whose qualifier governs access checks. Field lookups record the
    /// containing instance's qualifier substitution already applied.
    pub errors: Vec<Diagnostic>,
}

/// Types every expression in `func`.
pub fn type_function(env: &TypeEnv<'_>, func: &FnDef) -> TypeTable {
    let mut t = FnTyper {
        env,
        table: TypeTable::default(),
        scopes: vec![HashMap::new()],
        ret: func.ret.clone(),
    };
    for p in &func.params {
        t.declare(&p.name, p.ty.clone());
    }
    t.block(&func.body);
    t.table
}

struct FnTyper<'e, 'p> {
    env: &'e TypeEnv<'p>,
    table: TypeTable,
    scopes: Vec<HashMap<String, Type>>,
    ret: Type,
}

/// A placeholder type recorded after a typing error, letting the walk
/// continue and report more problems.
fn error_type() -> Type {
    Type::int(Qual::Private)
}

impl<'e, 'p> FnTyper<'e, 'p> {
    fn declare(&mut self, name: &str, ty: Type) {
        self.scopes
            .last_mut()
            .expect("scope stack never empty")
            .insert(name.to_owned(), ty);
    }

    fn lookup(&self, name: &str) -> Option<&Type> {
        for scope in self.scopes.iter().rev() {
            if let Some(t) = scope.get(name) {
                return Some(t);
            }
        }
        self.env.globals.get(name)
    }

    fn error(&mut self, msg: impl Into<String>, span: Span) -> Type {
        self.table.errors.push(Diagnostic::error(msg, span));
        error_type()
    }

    fn block(&mut self, b: &Block) {
        self.scopes.push(HashMap::new());
        for s in &b.stmts {
            self.stmt(s);
        }
        self.scopes.pop();
    }

    fn stmt(&mut self, s: &Stmt) {
        match &s.kind {
            StmtKind::Decl { name, ty, init } => {
                if let Some(e) = init {
                    self.expr(e);
                }
                self.declare(name, ty.clone());
                self.table.decls.insert(s.id, ty.clone());
            }
            StmtKind::Assign { lhs, rhs } => {
                self.expr(lhs);
                self.expr(rhs);
                if !lhs.is_lvalue() {
                    self.error("left side of assignment is not an l-value", lhs.span);
                }
            }
            StmtKind::Expr(e) => {
                self.expr(e);
            }
            StmtKind::If {
                cond,
                then_blk,
                else_blk,
            } => {
                self.expr(cond);
                self.block(then_blk);
                if let Some(eb) = else_blk {
                    self.block(eb);
                }
            }
            StmtKind::While { cond, body } => {
                self.expr(cond);
                self.block(body);
            }
            StmtKind::For {
                init,
                cond,
                step,
                body,
            } => {
                self.scopes.push(HashMap::new());
                if let Some(i) = init {
                    self.stmt(i);
                }
                if let Some(c) = cond {
                    self.expr(c);
                }
                if let Some(st) = step {
                    self.stmt(st);
                }
                self.block(body);
                self.scopes.pop();
            }
            StmtKind::Return(value) => {
                if let Some(v) = value {
                    self.expr(v);
                } else if !self.ret.is_void() {
                    self.error("missing return value", s.span);
                }
            }
            StmtKind::Break | StmtKind::Continue => {}
            StmtKind::Block(b) => self.block(b),
        }
    }

    fn expr(&mut self, e: &Expr) -> Type {
        let ty = self.expr_inner(e);
        self.table.exprs.insert(e.id, ty.clone());
        ty
    }

    fn expr_inner(&mut self, e: &Expr) -> Type {
        match &e.kind {
            ExprKind::IntLit(_) => Type::int(Qual::Private),
            ExprKind::CharLit(_) => Type::new(TypeKind::Char, Qual::Private),
            ExprKind::BoolLit(_) => Type::new(TypeKind::Bool, Qual::Private),
            ExprKind::StrLit(_) => {
                Type::ptr(Type::new(TypeKind::Char, Qual::Readonly), Qual::Private)
            }
            // NULL is assignable to any pointer; `Ptr(Void)` is the
            // bottom pointer type, special-cased in compatibility.
            ExprKind::Null => Type::ptr(Type::new(TypeKind::Void, Qual::Private), Qual::Private),
            ExprKind::Ident(name) => match self.lookup(name) {
                Some(t) => t.clone(),
                None => {
                    if let Some(sig) = self.env.fn_sigs.get(name) {
                        // A function name used as a value: a pointer to fn.
                        Type::ptr(
                            Type::new(TypeKind::Fn(Box::new(sig.clone())), Qual::Private),
                            Qual::Private,
                        )
                    } else {
                        self.error(format!("unknown variable `{name}`"), e.span)
                    }
                }
            },
            ExprKind::Unary(UnOp::Deref, inner) => {
                let t = self.expr(inner);
                match t.kind {
                    TypeKind::Ptr(p) => *p,
                    TypeKind::Array(elem, _) => *elem,
                    _ => self.error("dereference of non-pointer", e.span),
                }
            }
            ExprKind::Unary(UnOp::AddrOf, inner) => {
                let t = self.expr(inner);
                if !inner.is_lvalue() {
                    return self.error("address of non-l-value", e.span);
                }
                Type::ptr(t, Qual::Private)
            }
            ExprKind::Unary(_, inner) => {
                let t = self.expr(inner);
                if t.is_integral() {
                    t
                } else {
                    self.error("arithmetic on non-integer", e.span)
                }
            }
            ExprKind::Binary(op, a, b) => {
                let ta = self.expr(a);
                let tb = self.expr(b);
                if op.is_comparison() {
                    return Type::new(TypeKind::Bool, Qual::Private);
                }
                if op.is_logical() {
                    return Type::new(TypeKind::Bool, Qual::Private);
                }
                // Pointer arithmetic: ptr + int yields the same pointer
                // type (used in the paper's `*(fdata + i)` idiom).
                match (&ta.kind, &tb.kind) {
                    (TypeKind::Ptr(_) | TypeKind::Array(..), _)
                        if matches!(op, BinOp::Add | BinOp::Sub) && tb.is_integral() =>
                    {
                        match &ta.kind {
                            TypeKind::Array(elem, _) => Type::ptr((**elem).clone(), Qual::Private),
                            _ => ta,
                        }
                    }
                    (_, TypeKind::Ptr(_)) if matches!(op, BinOp::Add) && ta.is_integral() => tb,
                    (TypeKind::Ptr(_), TypeKind::Ptr(_)) if matches!(op, BinOp::Sub) => {
                        Type::int(Qual::Private)
                    }
                    _ if ta.is_integral() && tb.is_integral() => ta,
                    _ => self.error(format!("invalid operands to `{op}`"), e.span),
                }
            }
            ExprKind::Index(base, idx) => {
                let tb = self.expr(base);
                let ti = self.expr(idx);
                if !ti.is_integral() {
                    self.error("array index must be an integer", idx.span);
                }
                match tb.kind {
                    TypeKind::Ptr(p) => *p,
                    TypeKind::Array(elem, _) => *elem,
                    _ => self.error("indexing a non-array", e.span),
                }
            }
            ExprKind::Field(base, fname, arrow) => {
                let tb = self.expr(base);
                let (struct_ty, inst_qual) = if *arrow {
                    match &tb.kind {
                        TypeKind::Ptr(p) => ((**p).clone(), p.qual.clone()),
                        _ => return self.error(format!("`->{fname}` on non-pointer"), e.span),
                    }
                } else {
                    (tb.clone(), tb.qual.clone())
                };
                let TypeKind::Named(sname) = &struct_ty.kind else {
                    return self.error(format!("`{fname}` on non-struct"), e.span);
                };
                let Some(sid) = self.env.structs.lookup(sname) else {
                    return self.error(format!("unknown struct `{sname}`"), e.span);
                };
                let def = self.env.structs.def(sid);
                let Some(field) = def.field(fname) else {
                    return self.error(format!("struct `{sname}` has no field `{fname}`"), e.span);
                };
                substitute_instance(&field.ty, &inst_qual, base)
            }
            ExprKind::Call(callee, args) => self.call(e, callee, args),
            ExprKind::Cast(ty, inner) => {
                self.expr(inner);
                ty.clone()
            }
            ExprKind::Scast(ty, inner) => {
                let t_in = self.expr(inner);
                if !inner.is_lvalue() {
                    self.error("SCAST source must be an l-value (it is nulled out)", e.span);
                }
                if !ty.is_ptr() || !t_in.is_ptr() && !matches!(t_in.kind, TypeKind::Array(..)) {
                    self.error("SCAST requires pointer types", e.span);
                }
                if let (Some(a), Some(b)) = (ty.pointee(), t_in.pointee()) {
                    if a.is_void() || b.is_void() {
                        self.error(
                            "sharing casts that change qualifiers of (void *) are forbidden; \
                             cast to a concrete type first",
                            e.span,
                        );
                    }
                }
                ty.clone()
            }
            ExprKind::New(ty) => Type::ptr(ty.clone(), Qual::Private),
            ExprKind::NewArray(ty, n) => {
                let tn = self.expr(n);
                if !tn.is_integral() {
                    self.error("newarray count must be an integer", n.span);
                }
                Type::ptr(ty.clone(), Qual::Private)
            }
            ExprKind::Sizeof(_) => Type::int(Qual::Private),
            ExprKind::Ternary(c, a, b) => {
                self.expr(c);
                let ta = self.expr(a);
                let tb = self.expr(b);
                if ta.same_shape(&tb) {
                    ta
                } else if matches!(tb.kind, TypeKind::Ptr(_)) && is_null_ptr(&ta) {
                    tb
                } else if matches!(ta.kind, TypeKind::Ptr(_)) && is_null_ptr(&tb) {
                    ta
                } else {
                    self.error("mismatched ternary branches", e.span)
                }
            }
        }
    }

    fn call(&mut self, e: &Expr, callee: &Expr, args: &[Expr]) -> Type {
        // Builtins.
        if let ExprKind::Ident(name) = &callee.kind {
            if is_builtin(name) {
                return self.builtin_call(e, name, args);
            }
        }
        let tc = self.expr(callee);
        let sig = match &tc.kind {
            TypeKind::Ptr(inner) => match &inner.kind {
                TypeKind::Fn(sig) => (**sig).clone(),
                _ => {
                    return self.error("call of non-function", e.span);
                }
            },
            TypeKind::Fn(sig) => (**sig).clone(),
            _ => {
                return self.error("call of non-function", e.span);
            }
        };
        if sig.params.len() != args.len() {
            return self.error(
                format!(
                    "call expects {} argument(s), got {}",
                    sig.params.len(),
                    args.len()
                ),
                e.span,
            );
        }
        for (arg, p) in args.iter().zip(&sig.params) {
            let ta = self.expr(arg);
            let null_ok = p.ty.is_ptr() && is_null_ptr(&ta);
            if !(ta.same_shape(&p.ty) || null_ok) {
                self.error(
                    format!(
                        "argument type `{}` does not match parameter type `{}`",
                        pretty::type_str(&ta),
                        pretty::type_str(&p.ty)
                    ),
                    arg.span,
                );
            }
        }
        sig.ret.clone()
    }

    fn builtin_call(&mut self, e: &Expr, name: &str, args: &[Expr]) -> Type {
        let arg_tys: Vec<Type> = args.iter().map(|a| self.expr(a)).collect();
        let void = Type::new(TypeKind::Void, Qual::Private);
        let int = Type::int(Qual::Private);
        let expect = |this: &mut Self, n: usize| {
            if args.len() != n {
                this.error(
                    format!("`{name}` expects {n} argument(s), got {}", args.len()),
                    e.span,
                );
            }
        };
        match name {
            "spawn" => {
                expect(self, 2);
                if let Some(t) = arg_tys.first() {
                    let is_fn = matches!(&t.kind, TypeKind::Ptr(p) if matches!(p.kind, TypeKind::Fn(_)))
                        || matches!(t.kind, TypeKind::Fn(_));
                    if !is_fn {
                        self.error("first argument of `spawn` must be a function", e.span);
                    }
                }
                int
            }
            "join" => {
                expect(self, 1);
                void
            }
            "join_all" | "yield_now" => {
                expect(self, 0);
                void
            }
            "mutex_lock" | "mutex_unlock" => {
                expect(self, 1);
                if let Some(t) = arg_tys.first() {
                    if !matches!(&t.kind, TypeKind::Ptr(p) if matches!(p.kind, TypeKind::Mutex)) {
                        self.error(format!("`{name}` expects a mutex pointer"), e.span);
                    }
                }
                void
            }
            "cond_wait" => {
                expect(self, 2);
                if let Some(t) = arg_tys.first() {
                    if !matches!(&t.kind, TypeKind::Ptr(p) if matches!(p.kind, TypeKind::Cond)) {
                        self.error("`cond_wait` expects a cond pointer", e.span);
                    }
                }
                if let Some(t) = arg_tys.get(1) {
                    if !matches!(&t.kind, TypeKind::Ptr(p) if matches!(p.kind, TypeKind::Mutex)) {
                        self.error("`cond_wait` expects a mutex pointer", e.span);
                    }
                }
                void
            }
            "cond_signal" | "cond_broadcast" => {
                expect(self, 1);
                if let Some(t) = arg_tys.first() {
                    if !matches!(&t.kind, TypeKind::Ptr(p) if matches!(p.kind, TypeKind::Cond)) {
                        self.error(format!("`{name}` expects a cond pointer"), e.span);
                    }
                }
                void
            }
            "free" => {
                expect(self, 1);
                if let Some(t) = arg_tys.first() {
                    if !t.is_ptr() {
                        self.error("`free` expects a pointer", e.span);
                    }
                }
                void
            }
            "print" | "assert" => {
                expect(self, 1);
                void
            }
            "print_str" => {
                expect(self, 1);
                void
            }
            "random" => {
                expect(self, 1);
                int
            }
            other => self.error(format!("unknown builtin `{other}`"), e.span),
        }
    }
}

fn is_null_ptr(t: &Type) -> bool {
    matches!(&t.kind, TypeKind::Ptr(p) if p.is_void())
}

/// Substitutes the struct instance qualifier into a field type:
/// `Poly` outer qualifiers become `inst_qual`, and `locked(f)` paths
/// whose base names a sibling field are re-rooted at the instance
/// expression (`locked(mut)` accessed via `S` becomes `locked(S->mut)`).
pub fn substitute_instance(field_ty: &Type, inst_qual: &Qual, base: &Expr) -> Type {
    let mut ty = field_ty.clone();
    let base_str = pretty::expr(base);
    subst(&mut ty, inst_qual, &base_str, true);
    ty
}

fn subst(ty: &mut Type, inst_qual: &Qual, base_str: &str, outermost: bool) {
    match &mut ty.qual {
        Qual::Poly if outermost => ty.qual = inst_qual.clone(),
        Qual::Poly => ty.qual = inst_qual.clone(),
        Qual::Locked(path)
            // Re-root sibling-relative lock paths at the instance.
            if !path.segs[0].contains("->") && !path.segs[0].contains('.') => {
                let mut segs = vec![base_str.to_owned()];
                segs.extend(path.segs.iter().cloned());
                *path = LockPath::new(segs, path.span);
            }
        _ => {}
    }
    match &mut ty.kind {
        TypeKind::Ptr(inner) | TypeKind::Array(inner, _) => {
            subst(inner, inst_qual, base_str, false)
        }
        TypeKind::Fn(sig) => {
            subst(&mut sig.ret, inst_qual, base_str, false);
            for p in &mut sig.params {
                subst(&mut p.ty, inst_qual, base_str, false);
            }
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minic::parse;

    fn type_first_fn(src: &str) -> (Program, TypeTable) {
        let p = parse(src).unwrap();
        let structs = StructTable::build(&p).unwrap();
        let env = TypeEnv::new(&p, &structs);
        let table = type_function(&env, &p.fns[0]);
        (p.clone(), table)
    }

    #[test]
    fn types_arithmetic() {
        let (_, t) = type_first_fn("void f() { int x; x = 1 + 2 * 3; }");
        assert!(t.errors.is_empty(), "{:?}", t.errors);
    }

    #[test]
    fn rejects_deref_of_int() {
        let (_, t) = type_first_fn("void f() { int x; x = *x; }");
        assert!(!t.errors.is_empty());
    }

    #[test]
    fn types_field_access_with_poly_subst() {
        let src = "struct s { int dynamic x; };\n\
                   void f(struct s dynamic * private p) { int y; y = p->x; }";
        let (prog, t) = type_first_fn(src);
        assert!(t.errors.is_empty(), "{:?}", t.errors);
        // Find the p->x expression and check its type.
        let f = &prog.fns[0];
        let mut found = false;
        if let StmtKind::Assign { rhs, .. } = &f.body.stmts[1].kind {
            let ty = &t.exprs[&rhs.id];
            assert_eq!(ty.qual, Qual::Dynamic);
            found = true;
        }
        assert!(found);
    }

    #[test]
    fn poly_field_inherits_instance_qual() {
        let src = "struct s { int x; };\n\
                   void f(struct s dynamic * private p) { int y; y = p->x; }";
        let p = parse(src).unwrap();
        // Simulate elaboration having set the field's qual to Poly.
        let mut p = p;
        p.structs[0].fields[0].ty.qual = Qual::Poly;
        let structs = StructTable::build(&p).unwrap();
        let env = TypeEnv::new(&p, &structs);
        let t = type_function(&env, &p.fns[0]);
        if let StmtKind::Assign { rhs, .. } = &p.fns[0].body.stmts[1].kind {
            assert_eq!(t.exprs[&rhs.id].qual, Qual::Dynamic);
        } else {
            panic!("expected assign");
        }
    }

    #[test]
    fn locked_path_rerooted_at_instance() {
        let src = "struct s { mutex racy * readonly mut; char locked(mut) *locked(mut) sdata; };\n\
                   void f(struct s dynamic * private S) { char * c; c = S->sdata; }";
        let (prog, t) = type_first_fn(src);
        let f = &prog.fns[0];
        if let StmtKind::Assign { rhs, .. } = &f.body.stmts[1].kind {
            match &t.exprs[&rhs.id].qual {
                Qual::Locked(path) => assert_eq!(path.to_string(), "S->mut"),
                other => panic!("expected locked, got {other:?}"),
            }
        } else {
            panic!("expected assign");
        }
    }

    #[test]
    fn pointer_arithmetic_keeps_type() {
        let (prog, t) = type_first_fn(
            "void f(char private * private fdata, int i) { char c; c = *(fdata + i); }",
        );
        assert!(t.errors.is_empty(), "{:?}", t.errors);
        let f = &prog.fns[0];
        if let StmtKind::Assign { rhs, .. } = &f.body.stmts[1].kind {
            assert_eq!(t.exprs[&rhs.id].qual, Qual::Private);
        }
    }

    #[test]
    fn builtin_spawn_types() {
        let src = "void worker(int dynamic * d) { }\n\
                   void f(int dynamic * p) { int t; t = spawn(worker, p); join(t); }";
        let p = parse(src).unwrap();
        let structs = StructTable::build(&p).unwrap();
        let env = TypeEnv::new(&p, &structs);
        let t = type_function(&env, &p.fns[1]);
        assert!(t.errors.is_empty(), "{:?}", t.errors);
    }

    #[test]
    fn wrong_arg_count_is_error() {
        let src = "void g(int x) { }\nvoid f() { g(1, 2); }";
        let p = parse(src).unwrap();
        let structs = StructTable::build(&p).unwrap();
        let env = TypeEnv::new(&p, &structs);
        let t = type_function(&env, &p.fns[1]);
        assert!(!t.errors.is_empty());
    }

    #[test]
    fn scast_on_void_ptr_rejected() {
        let (_, t) = type_first_fn("void f(void * v) { void * w; w = SCAST(void *, v); }");
        assert!(!t.errors.is_empty());
    }

    #[test]
    fn null_assignable_shapewise() {
        let (_, t) = type_first_fn("void f(char * p) { p = NULL; }");
        assert!(t.errors.is_empty(), "{:?}", t.errors);
    }
}
