//! Runs every Table 1 benchmark's MiniC port through the full SharC
//! pipeline *and the VM*: the declared sharing strategies must hold
//! at runtime (no conflict reports) across schedules, and the
//! programs must terminate.

use sharc_interp::{compile_and_run, ExitStatus, VmConfig};
use sharc_workloads::benchmarks::{aget, dillo, fftw, pbzip2, pfscan, stunnel};

fn run_clean(name: &str, src: &str) {
    for seed in [0u64, 1, 7, 42] {
        let out = compile_and_run(
            name,
            src,
            VmConfig {
                seed,
                ..VmConfig::default()
            },
        )
        .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(
            out.status,
            ExitStatus::Completed,
            "{name} seed {seed}: {:?}",
            out.status
        );
        assert!(
            out.reports.is_empty(),
            "{name} seed {seed} reported:\n{}",
            out.reports[0]
        );
    }
}

#[test]
fn pfscan_minic_runs_clean() {
    run_clean("pfscan.c", pfscan::minic_source());
}

#[test]
fn aget_minic_runs_clean() {
    run_clean("aget.c", aget::minic_source());
}

#[test]
fn pbzip2_minic_runs_clean() {
    run_clean("pbzip2.c", pbzip2::minic_source());
}

#[test]
fn dillo_minic_runs_clean() {
    run_clean("dillo.c", dillo::minic_source());
}

#[test]
fn fftw_minic_runs_clean() {
    run_clean("fftw.c", fftw::minic_source());
}

#[test]
fn stunnel_minic_runs_clean() {
    run_clean("stunnel.c", stunnel::minic_source());
}

#[test]
fn minic_ports_produce_output() {
    // Each port prints its summary statistic; sanity-check values.
    let out = compile_and_run("aget.c", aget::minic_source(), VmConfig::default()).unwrap();
    assert_eq!(out.output, vec!["4096"], "two 2048-byte segments");

    let out = compile_and_run("dillo.c", dillo::minic_source(), VmConfig::default()).unwrap();
    assert_eq!(out.output, vec!["96"], "96 requests resolved");

    let out = compile_and_run("stunnel.c", stunnel::minic_source(), VmConfig::default()).unwrap();
    assert_eq!(
        out.output,
        vec!["60", "3840"],
        "3 clients x 20 msgs x 64 bytes"
    );
}

#[test]
fn dynamic_fraction_ranks_like_the_paper() {
    // The VM's own %dynamic measurement must rank the MiniC ports the
    // way Table 1 ranks the C programs: pfscan high, pbzip2/fftw low.
    let frac = |name: &str, src: &str| {
        let out = compile_and_run(name, src, VmConfig::default()).unwrap();
        out.stats.dynamic_fraction()
    };
    let pfscan = frac("pfscan.c", pfscan::minic_source());
    let pbzip2 = frac("pbzip2.c", pbzip2::minic_source());
    let fftw = frac("fftw.c", fftw::minic_source());
    assert!(
        pfscan > pbzip2 && pfscan > fftw,
        "pfscan {pfscan:.2} should dominate pbzip2 {pbzip2:.2} and fftw {fftw:.2}"
    );
}
