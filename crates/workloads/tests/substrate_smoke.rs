//! Deterministic smoke tests for the workload substrates: fixed
//! seeds, tiny inputs, pinned output checksums. Guards against
//! accidental behavior drift in the substrates (e.g. a PRNG or
//! algorithm change silently altering every benchmark's workload).
//!
//! All checksums are FNV-1a over deterministic byte encodings. If a
//! substrate is changed *intentionally*, rerun with
//! `UPDATE=1 cargo test -p sharc-workloads --test substrate_smoke -- --nocapture`
//! and copy the printed values.

use sharc_workloads::substrates::cipher;
use sharc_workloads::substrates::compress;
use sharc_workloads::substrates::fft::{self, Complex};
use sharc_workloads::substrates::filesys::{FsConfig, SynthFs};
use sharc_workloads::substrates::net::{fnv, ChunkServer, DnsServer};
use std::time::Duration;

/// Folds a slice of u64s through FNV over their little-endian bytes.
fn fnv_u64s(vals: impl IntoIterator<Item = u64>) -> u64 {
    let bytes: Vec<u8> = vals.into_iter().flat_map(|v| v.to_le_bytes()).collect();
    fnv(&bytes)
}

/// Quantizes a complex signal for checksumming: nanounit fixed-point
/// so the checksum is stable against formatting, not arithmetic.
fn signal_checksum(sig: &[Complex]) -> u64 {
    fnv_u64s(sig.iter().flat_map(|c| {
        [
            (c.re * 1e9).round() as i64 as u64,
            (c.im * 1e9).round() as i64 as u64,
        ]
    }))
}

fn check(name: &str, expected: u64, actual: u64) {
    if std::env::var("UPDATE").is_ok() {
        println!("const {name}: u64 = 0x{actual:016X};");
        return;
    }
    assert_eq!(
        expected, actual,
        "{name}: pinned 0x{expected:016X}, computed 0x{actual:016X} — \
         substrate output drifted; if intentional, re-pin (see module docs)"
    );
}

const FFT_INPUT_SUM: u64 = 0x633872DD7E59832E;
const FFT_OUTPUT_SUM: u64 = 0x2D2AD010E51EE6B9;
const COMPRESS_SUM: u64 = 0x43FBEA39296B80B6;
const CIPHER_SUM: u64 = 0xEFCD4EDCA1F45395;
const NET_CHUNK_SUM: u64 = 0x9DF242C04C0EB3CE;
const NET_DNS_SUM: u64 = 0x3F6483C730CED4D2;
const FILESYS_SUM: u64 = 0x76F652E0010059D3;

#[test]
fn fft_signal_and_transform_are_pinned() {
    let sig = fft::random_signal(64, 0xF00D);
    check("FFT_INPUT_SUM", FFT_INPUT_SUM, signal_checksum(&sig));
    let mut freq = sig.clone();
    fft::fft(&mut freq);
    check("FFT_OUTPUT_SUM", FFT_OUTPUT_SUM, signal_checksum(&freq));
    // And the transform still inverts (semantic sanity next to the pin).
    fft::ifft(&mut freq);
    for (a, b) in freq.iter().zip(&sig) {
        assert!((a.re - b.re).abs() < 1e-6 && (a.im - b.im).abs() < 1e-6);
    }
}

#[test]
fn compress_output_is_pinned() {
    // A compressible input: repeated words with a deterministic tail.
    let mut input = b"sharc sharc sharc shared private dynamic ".repeat(8);
    input.extend((0u8..64).map(|i| i.wrapping_mul(37)));
    let packed = compress::compress_block(&input);
    check("COMPRESS_SUM", COMPRESS_SUM, fnv(&packed));
    assert_eq!(compress::decompress_block(&packed), input);
    assert!(packed.len() < input.len(), "input must actually compress");
}

#[test]
fn cipher_keystream_is_pinned() {
    let plain = b"the quick brown fox jumps over the lazy dog";
    let sealed = cipher::encrypt(0xC1F4E5, plain);
    check("CIPHER_SUM", CIPHER_SUM, fnv(&sealed));
    assert_eq!(cipher::decrypt(0xC1F4E5, &sealed), plain);
}

#[test]
fn net_servers_are_pinned() {
    let chunks = ChunkServer::new(4096, Duration::ZERO, 0xBEEF);
    check("NET_CHUNK_SUM", NET_CHUNK_SUM, chunks.checksum());

    let dns = DnsServer::new(16, Duration::ZERO, 0xD0D0);
    let resolved = (0..dns.len()).map(|i| {
        let host = dns.host(i).to_owned();
        dns.resolve(&host).expect("own host resolves") as u64
    });
    check("NET_DNS_SUM", NET_DNS_SUM, fnv_u64s(resolved));
}

#[test]
fn filesys_tree_is_pinned() {
    let cfg = FsConfig {
        n_dirs: 2,
        files_per_dir: 3,
        file_size: 512,
        needle_every: 128,
        seed: 0x5EED,
    };
    let fs = SynthFs::generate(cfg, "needle");
    let mut all = Vec::new();
    for p in fs.paths() {
        all.extend_from_slice(fs.read(&p).unwrap());
    }
    check("FILESYS_SUM", FILESYS_SUM, fnv(&all));
    assert!(fs.count_occurrences(b"needle") > 0, "needles planted");
}
