//! **dillo** — the web browser's DNS prefetch pipeline (Table 1
//! row 4).
//!
//! "The dillo benchmark uses threads to hide the latency of DNS
//! lookup. It keeps a shared queue of the outstanding requests. Four
//! worker threads read requests from the queue and initiate calls to
//! gethostbyname... The memory overhead for dillo is higher because
//! integers are cast to pointer type, and SharC infers they need to
//! be reference counted. These bogus pointers are never dereferenced,
//! but we incur minor pagefaults when their reference counts are
//! adjusted."
//!
//! Paper row: 4 threads, 49k lines, 8 annotations, 8 changes, 14%
//! time, **78.8% memory** (the bogus-pointer RC cost), 31.7% dynamic
//! accesses. The reproduction models the integer-cast-to-pointer
//! quirk with reference-counted slots holding request ids.

use crate::substrates::net::DnsServer;
use crate::table::{run_benchmark, BenchResult, NativeRun, Scale};
use sharc_checker::CheckEvent;
use sharc_runtime::{
    AccessPolicy, Arena, Checked, EventLog, EventSink, NaiveRc, ObjId, RcScheme, ThreadCtx,
    ThreadId, Unchecked,
};
use sharc_testkit::sync::Mutex;
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Duration;

/// Lock id of the request queue in the emitted trace.
const QUEUE_LOCK: usize = 0;

/// Workload parameters.
#[derive(Debug, Clone, Copy)]
pub struct Params {
    pub n_hosts: usize,
    pub n_requests: usize,
    pub workers: usize,
    pub latency: Duration,
}

impl Params {
    /// The default pipeline shape at the given scale.
    pub fn scaled(scale: Scale) -> Self {
        Params {
            n_hosts: 64,
            n_requests: if scale.quick { 64 } else { 512 },
            workers: 3,
            latency: if scale.quick {
                Duration::from_micros(10)
            } else {
                Duration::from_micros(30)
            },
        }
    }
}

/// Runs the DNS-prefetch pipeline.
pub fn run_native<P: AccessPolicy>(params: &Params) -> NativeRun {
    run_with_sink::<P>(params, None)
}

/// Runs the pipeline **checked and traced**, returning the run record
/// and the linearized native event trace for detector replay.
pub fn run_traced(params: &Params) -> (NativeRun, Vec<CheckEvent>) {
    let sink = Arc::new(EventLog::new());
    let run = run_with_events(params, sink.clone());
    (run, sink.take())
}

/// Runs the pipeline checked, recording into any [`EventSink`] — the
/// entry the online (`StreamingSink`) detector path uses.
pub fn run_with_events(params: &Params, sink: Arc<dyn EventSink>) -> NativeRun {
    run_with_sink::<Checked>(params, Some(sink))
}

fn run_with_sink<P: AccessPolicy>(params: &Params, sink: Option<Arc<dyn EventSink>>) -> NativeRun {
    let dns = Arc::new(DnsServer::new(params.n_hosts, params.latency, 0xD111));
    // The shared result cache: one granule (16 bytes) per request,
    // matching dillo's 16-byte-aligned request allocations (§4.5's
    // alignment requirement avoids false sharing).
    let arena: Arc<Arena> = Arc::new(Arena::new(2 * params.n_requests));
    let queue: Arc<Mutex<VecDeque<usize>>> = Arc::new(Mutex::new((0..params.n_requests).collect()));
    // The dillo quirk: request ids are "cast to pointer type" and so
    // get reference-counted — one RC slot per request whose updates
    // touch count memory (the paper's bogus-pointer overhead).
    let bogus_rc = Arc::new(NaiveRc::new(params.n_requests, params.n_requests.max(1)));
    let is_checked = P::NAME == "sharc";

    let mut handles = Vec::new();
    for w in 0..params.workers {
        let tid = ThreadId(w as u8 + 2);
        if let Some(s) = &sink {
            s.record(CheckEvent::Fork {
                parent: 1,
                child: tid.0 as u32,
            });
        }
        let dns = Arc::clone(&dns);
        let arena = Arc::clone(&arena);
        let queue = Arc::clone(&queue);
        let bogus_rc = Arc::clone(&bogus_rc);
        let sink = sink.clone();
        handles.push(std::thread::spawn(move || {
            let mut ctx = match sink {
                Some(s) => ThreadCtx::with_sink(tid, s),
                None => ThreadCtx::new(tid),
            };
            loop {
                // Claim a request under the queue lock; the events
                // are recorded while the lock is held so the trace
                // linearizes through it.
                let req = {
                    let mut q = queue.lock();
                    if let Some(s) = &ctx.sink {
                        s.record(CheckEvent::Acquire {
                            tid: tid.0 as u32,
                            lock: QUEUE_LOCK,
                        });
                    }
                    let req = q.pop_front();
                    if let Some(s) = &ctx.sink {
                        s.record(CheckEvent::Release {
                            tid: tid.0 as u32,
                            lock: QUEUE_LOCK,
                        });
                    }
                    req
                };
                let Some(req) = req else { break };
                if is_checked {
                    // The request id travels in a pointer-typed field:
                    // SharC adjusts its "reference count".
                    bogus_rc.store(0, req, Some(ObjId((req % u32::MAX as usize) as u32)));
                }
                let host = dns.host(req).to_owned();
                let ip = dns.resolve(&host).expect("known host");
                // Publish into the shared cache (dynamic mode).
                P::write(&arena, &mut ctx, 2 * req, ip as u64);
                // Re-read to render the page element (dynamic mode).
                let _ = P::read(&arena, &mut ctx, 2 * req);
            }
            let rec = (ctx.checked_accesses, ctx.total_accesses, ctx.conflicts);
            arena.thread_exit(&mut ctx);
            rec
        }));
    }

    let mut checked = 0u64;
    let mut total = 0u64;
    let mut conflicts = 0usize;
    for (w, h) in handles.into_iter().enumerate() {
        let (c, t, cf) = h.join().expect("worker panicked");
        if let Some(s) = &sink {
            s.record(CheckEvent::Join {
                parent: 1,
                child: w as u32 + 2,
            });
        }
        checked += c;
        total += t;
        conflicts += cf;
    }

    // Main renders: one ranged sweep over the shared cache sums the
    // resolved addresses, then a completion touch-up re-writes the
    // first cell (same value — dillo stamps the page "rendered").
    // The workers' thread exits already cleared their shadow bits, so
    // SharC accepts main's reads; a lockset detector replaying the
    // same trace sees unlocked cross-thread read-then-write and
    // reports.
    let mut main_ctx = match &sink {
        Some(s) => ThreadCtx::with_sink(ThreadId(1), Arc::clone(s)),
        None => ThreadCtx::new(ThreadId(1)),
    };
    let mut checksum = 0u64;
    let mut first = 0u64;
    P::read_range(
        &arena,
        &mut main_ctx,
        0,
        2 * params.n_requests,
        &mut |i, v| {
            if i % 2 == 0 {
                checksum = checksum.wrapping_add(v);
            }
            if i == 0 {
                first = v;
            }
        },
    );
    P::write(&arena, &mut main_ctx, 0, first);
    checked += main_ctx.checked_accesses;
    conflicts += main_ctx.conflicts;
    total += main_ctx.total_accesses;
    arena.thread_exit(&mut main_ctx);

    // Memory: shadow plus the bogus-pointer RC metadata (slots and
    // counters), which dominates — the paper's 78.8% row.
    let rc_bytes = params.n_requests * (8 + 8);
    NativeRun {
        checksum,
        checked,
        total,
        conflicts,
        payload_bytes: arena.payload_bytes(),
        shadow_bytes: arena.shadow_bytes() + if is_checked { rc_bytes } else { 0 },
        threads: params.workers + 1,
    }
}

/// The MiniC port: a request queue drained by DNS worker threads that
/// publish into a shared cache.
pub fn minic_source() -> &'static str {
    r#"
// dillo.c — DNS prefetch pipeline (MiniC port).
struct dnsq {
    mutex m;
    cond cv;
    int locked(m) head;
    int locked(m) tail;
    int locked(m) reqs[128];
    int racy done;
};

int dynamic cache[256];
mutex statm;
int locked(statm) resolved;

int gethostbyname_sim(int req) {
    // Simulated lookup latency + deterministic "address".
    int spin;
    int acc;
    acc = req;
    for (spin = 0; spin < 20; spin++) {
        acc = acc * 31 + 7;
    }
    return acc;
}

void dns_worker(struct dnsq * q) {
    int req;
    int ip;
    while (1) {
        mutex_lock(&q->m);
        while (q->head == q->tail) {
            if (q->done) {
                mutex_unlock(&q->m);
                return;
            }
            cond_wait(&q->cv, &q->m);
        }
        req = q->reqs[q->head % 128];
        q->head = q->head + 1;
        mutex_unlock(&q->m);
        ip = gethostbyname_sim(req);
        cache[req * 2] = ip;
        mutex_lock(&statm);
        resolved = resolved + 1;
        mutex_unlock(&statm);
    }
}

void main() {
    struct dnsq * q = new(struct dnsq);
    int r;
    int t1;
    int t2;
    int t3;
    t1 = spawn(dns_worker, q);
    t2 = spawn(dns_worker, q);
    t3 = spawn(dns_worker, q);
    for (r = 0; r < 96; r++) {
        mutex_lock(&q->m);
        q->reqs[q->tail % 128] = r;
        q->tail = q->tail + 1;
        cond_signal(&q->cv);
        mutex_unlock(&q->m);
    }
    mutex_lock(&q->m);
    q->done = 1;
    cond_broadcast(&q->cv);
    mutex_unlock(&q->m);
    join(t1);
    join(t2);
    join(t3);
    mutex_lock(&statm);
    print(resolved);
    mutex_unlock(&statm);
}
"#
}

/// Full benchmark.
pub fn bench(scale: Scale) -> BenchResult {
    let params = Params::scaled(scale);
    run_benchmark("dillo", minic_source(), scale.reps, |checked| {
        if checked {
            run_native::<Checked>(&params)
        } else {
            run_native::<Unchecked>(&params)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sharc_checker::{replay, BitmapBackend};
    use sharc_detectors::{BaselineBackend, Eraser, VcDetector};

    #[test]
    fn traced_run_splits_sharc_from_eraser() {
        // One recorded execution, two verdicts (§6.2): the workers
        // publish cache cells with no lock held and exit; main then
        // reads and re-writes the cache. SharC accepts (thread exits
        // end the workers' claims), the happens-before detector
        // accepts (fork/join edges), but Eraser's locksets for the
        // cells are empty by the time main writes, so it reports.
        let params = Params {
            latency: Duration::ZERO,
            ..Params::scaled(Scale::quick())
        };
        let (run, trace) = run_traced(&params);
        assert_eq!(run.checksum, run_native::<Checked>(&params).checksum);
        let sharc = replay(&trace, &mut BitmapBackend::new());
        assert!(sharc.is_empty(), "SharC models the lifetimes: {sharc:?}");
        let vc = replay(&trace, &mut BaselineBackend::new(VcDetector::new()));
        assert!(vc.is_empty(), "HB sees the join edges: {vc:?}");
        let eraser = replay(&trace, &mut BaselineBackend::new(Eraser::new()));
        assert!(!eraser.is_empty(), "Eraser misses the lifetime hand-off");
    }

    #[test]
    fn resolves_deterministically() {
        let params = Params {
            latency: Duration::ZERO,
            ..Params::scaled(Scale::quick())
        };
        let a = run_native::<Unchecked>(&params);
        let b = run_native::<Checked>(&params);
        assert_eq!(a.checksum, b.checksum);
        assert_ne!(a.checksum, 0);
    }

    #[test]
    fn each_request_resolved_once_no_conflicts() {
        let params = Params {
            latency: Duration::ZERO,
            ..Params::scaled(Scale::quick())
        };
        let r = run_native::<Checked>(&params);
        assert_eq!(r.conflicts, 0, "per-request cache cells are disjoint");
    }

    #[test]
    fn bogus_pointer_rc_inflates_memory() {
        let params = Params {
            latency: Duration::ZERO,
            ..Params::scaled(Scale::quick())
        };
        let orig = run_native::<Unchecked>(&params);
        let sharc = run_native::<Checked>(&params);
        assert!(
            sharc.shadow_bytes > orig.shadow_bytes,
            "checked build pays RC metadata for bogus pointers"
        );
        let mem_pct = sharc.shadow_bytes as f64 / sharc.payload_bytes as f64 * 100.0;
        assert!(
            mem_pct > 30.0,
            "dillo's memory overhead is large (paper: 78.8%); got {mem_pct:.1}%"
        );
    }

    #[test]
    fn minic_version_compiles_clean() {
        let (lines, annots, _) = crate::table::minic_columns("dillo.c", minic_source());
        assert!(lines > 50);
        assert!(annots >= 5);
    }
}
