//! The six Table 1 benchmarks.
pub mod aget;
pub mod dillo;
pub mod fftw;
pub mod pbzip2;
pub mod pfscan;
pub mod stunnel;
