//! The six Table 1 benchmarks, plus the §2.1 ownership-transfer
//! workload that anchors the native event spine.
pub mod aget;
pub mod dillo;
pub mod fftw;
pub mod handoff;
pub mod pbzip2;
pub mod pfscan;
pub mod stunnel;
