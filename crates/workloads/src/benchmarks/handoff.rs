//! **handoff** — the ownership-transfer idiom of paper §2.1 as a
//! *native* workload, and the keystone of the event spine.
//!
//! A producer thread privately initializes a block of memory, then
//! transfers it to a consumer through a sharing cast: "the cast
//! changes the sharing mode of an object when there is exactly one
//! reference to it. … after the cast, the consumer is free to use
//! the object as if it had always been private." SharC accepts this
//! idiom; detectors with no ownership-transfer model (Eraser
//! locksets, vector clocks judging by pre-transfer history) flag it
//! as a race — the §6.2 comparison.
//!
//! Because [`run_traced`] emits the [`CheckEvent`] vocabulary from a
//! *real multithreaded execution*, the same run can be replayed
//! through every [`sharc_checker::CheckBackend`]: SharC stays silent,
//! the baselines false-positive, and stripping the `SharingCast`
//! events from the trace makes SharC report too — the cast is
//! exactly the information the others are missing.

use crate::table::NativeRun;
use sharc_checker::CheckEvent;
use sharc_runtime::{
    AccessPolicy, Arena, Checked, EventLog, EventSink, ThreadCtx, ThreadId, GRANULE_WORDS,
};
use sharc_testkit::sync::Mutex;
use std::collections::VecDeque;
use std::sync::Arc;

/// Sentinel job telling a consumer to exit.
const DONE: usize = usize::MAX;

/// Lock id used for the job queue in the emitted trace.
const QUEUE_LOCK: usize = 0;

/// Workload parameters.
#[derive(Debug, Clone, Copy)]
pub struct Params {
    /// Number of blocks produced and handed off.
    pub blocks: usize,
    /// Payload words per block (rounded up to whole granules so a
    /// transfer never splits a granule between owners).
    pub block_words: usize,
    /// Consumer thread count (tids 2..2+consumers).
    pub consumers: usize,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            blocks: 32,
            block_words: 16,
            consumers: 2,
        }
    }
}

impl Params {
    /// Words per block after granule alignment.
    fn aligned_words(&self) -> usize {
        self.block_words
            .next_multiple_of(GRANULE_WORDS)
            .max(GRANULE_WORDS)
    }
}

/// Runs the handoff workload with access policy `P`.
pub fn run_native<P: AccessPolicy>(params: &Params) -> NativeRun {
    run_with_sink::<P>(params, None)
}

/// Runs the workload **checked and traced**, returning the run record
/// and the linearized native event trace for detector replay.
pub fn run_traced(params: &Params) -> (NativeRun, Vec<CheckEvent>) {
    let sink = Arc::new(EventLog::new());
    let run = run_with_events(params, sink.clone());
    (run, sink.take())
}

/// Runs the handoff checked, recording into any [`EventSink`] — the
/// entry the online (`StreamingSink`) detector path uses.
pub fn run_with_events(params: &Params, sink: Arc<dyn EventSink>) -> NativeRun {
    run_with_sink::<Checked>(params, Some(sink))
}

fn run_with_sink<P: AccessPolicy>(params: &Params, sink: Option<Arc<dyn EventSink>>) -> NativeRun {
    let words = params.aligned_words();
    let arena: Arc<Arena> = Arc::new(Arena::new(params.blocks * words));
    let queue: Arc<Mutex<VecDeque<usize>>> = Arc::new(Mutex::new(VecDeque::new()));

    // --- Consumers (tids 2..) start first and run *concurrently*
    // with production: they claim blocks off the queue and use them
    // as if they had always been private — reads *and* writes, no
    // lock held over the payload. An empty pop yields and retries.
    let mut handles = Vec::new();
    for c in 0..params.consumers {
        let tid = ThreadId(c as u8 + 2);
        if let Some(s) = &sink {
            s.record(CheckEvent::Fork {
                parent: 1,
                child: tid.0 as u32,
            });
        }
        let arena = Arc::clone(&arena);
        let queue = Arc::clone(&queue);
        let sink = sink.clone();
        handles.push(std::thread::spawn(move || {
            let mut ctx = match sink {
                Some(s) => ThreadCtx::with_sink(tid, s),
                None => ThreadCtx::new(tid),
            };
            let mut sum = 0u64;
            let mut vals: Vec<u64> = Vec::new();
            loop {
                let job = {
                    let mut q = queue.lock();
                    if let Some(s) = &ctx.sink {
                        s.record(CheckEvent::Acquire {
                            tid: tid.0 as u32,
                            lock: QUEUE_LOCK,
                        });
                    }
                    let job = q.pop_front();
                    if let Some(s) = &ctx.sink {
                        s.record(CheckEvent::Release {
                            tid: tid.0 as u32,
                            lock: QUEUE_LOCK,
                        });
                    }
                    job
                };
                match job {
                    Some(DONE) => break,
                    None => std::thread::yield_now(),
                    Some(b) => {
                        // The bulk inner loop, ranged: one chkread
                        // sweep over the block, then one chkwrite
                        // sweep — the access kinds locksets judge
                        // most harshly, at two checks per block.
                        let start = b * words;
                        vals.clear();
                        P::read_range(&arena, &mut ctx, start, words, &mut |_, v| {
                            sum = sum.wrapping_add(v);
                            vals.push(v);
                        });
                        P::write_range(&arena, &mut ctx, start, words, &mut |i| {
                            vals[i - start].wrapping_add(1)
                        });
                    }
                }
            }
            let record = (sum, ctx.checked_accesses, ctx.total_accesses, ctx.conflicts);
            arena.thread_exit(&mut ctx);
            record
        }));
    }

    // --- Producer (tid 1): initialize each block privately, then
    // transfer it. The writes go through `P` (checked in the SharC
    // build), so before the cast the shadow records tid 1 as the
    // block's writer — exactly the state a detector would hold
    // against the consumer if the transfer were invisible.
    let mut producer = match &sink {
        Some(s) => ThreadCtx::with_sink(ThreadId(1), Arc::clone(s)),
        None => ThreadCtx::new(ThreadId(1)),
    };
    for b in 0..params.blocks {
        let start = b * words;
        // Private initialization, ranged: one chkwrite for the whole
        // block instead of one per word.
        P::write_range(&arena, &mut producer, start, words, &mut |i| {
            (b as u64) << 8 | (i - start) as u64
        });
        // The sharing cast: one reference, ownership moves. The whole
        // block hands off as ONE ranged event — clearing the shadow
        // range is the runtime effect; the event records it for
        // replay.
        let g0 = start / GRANULE_WORDS;
        let g1 = (start + words - 1) / GRANULE_WORDS;
        if let Some(s) = &sink {
            s.record(CheckEvent::RangeCast {
                tid: 1,
                granule: g0,
                len: g1 - g0 + 1,
                refs: 1,
            });
        }
        arena.clear_range(start, words);
        // Publish the block index. The queue itself is lock-protected;
        // the lock events are recorded while the lock is held so the
        // linearized trace preserves acquisition order.
        let mut q = queue.lock();
        if let Some(s) = &sink {
            s.record(CheckEvent::Acquire {
                tid: 1,
                lock: QUEUE_LOCK,
            });
        }
        q.push_back(b);
        if let Some(s) = &sink {
            s.record(CheckEvent::Release {
                tid: 1,
                lock: QUEUE_LOCK,
            });
        }
    }
    {
        let mut q = queue.lock();
        for _ in 0..params.consumers {
            q.push_back(DONE);
        }
    }

    let mut checksum = 0u64;
    let mut checked = producer.checked_accesses;
    let mut total = producer.total_accesses;
    let mut conflicts = producer.conflicts;
    for h in handles {
        let (s, c, t, cf) = h.join().expect("consumer panicked");
        checksum = checksum.wrapping_add(s);
        checked += c;
        total += t;
        conflicts += cf;
    }
    arena.thread_exit(&mut producer);

    NativeRun {
        checksum,
        checked,
        total,
        conflicts,
        payload_bytes: arena.payload_bytes(),
        shadow_bytes: arena.shadow_bytes(),
        threads: params.consumers + 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sharc_checker::{replay, BitmapBackend};
    use sharc_detectors::{BaselineBackend, Eraser, VcDetector};
    use sharc_runtime::Unchecked;

    #[test]
    fn checksum_agrees_between_policies_and_no_conflicts() {
        let p = Params::default();
        let orig = run_native::<Unchecked>(&p);
        let sharc = run_native::<Checked>(&p);
        assert_eq!(orig.checksum, sharc.checksum);
        assert_eq!(sharc.conflicts, 0, "transfer makes the idiom clean");
        assert!(sharc.checked > 0);
    }

    #[test]
    fn traced_run_matches_untraced() {
        let p = Params::default();
        let (run, trace) = run_traced(&p);
        assert_eq!(run.checksum, run_native::<Checked>(&p).checksum);
        // Checked accesses are covered by ranged events now — one
        // RangeRead/RangeWrite per block sweep, each spanning
        // `len * GRANULE_WORDS` word accesses.
        let covered: u64 = trace
            .iter()
            .map(|e| match e {
                CheckEvent::Read { .. } | CheckEvent::Write { .. } => 1,
                CheckEvent::RangeRead { len, .. } | CheckEvent::RangeWrite { len, .. } => {
                    (len * GRANULE_WORDS) as u64
                }
                _ => 0,
            })
            .sum();
        assert!(
            covered >= run.checked,
            "every checked access is covered: {covered} vs {}",
            run.checked
        );
    }

    #[test]
    fn sharc_is_silent_on_the_native_trace() {
        let (_, trace) = run_traced(&Params::default());
        let conflicts = replay(&trace, &mut BitmapBackend::new());
        assert!(
            conflicts.is_empty(),
            "SharC models the transfer: {conflicts:?}"
        );
    }

    #[test]
    fn eraser_false_positives_on_the_same_execution() {
        // §6.2: the *same* native execution, judged through the same
        // interface. The payload accesses happen outside the queue
        // lock (the whole point of the transfer), so Eraser's lockset
        // for the blocks goes empty and it reports — while the
        // happens-before detector accepts the run because the queue's
        // release/acquire pair orders producer before consumer.
        let (_, trace) = run_traced(&Params::default());
        let eraser = replay(&trace, &mut BaselineBackend::new(Eraser::new()));
        let vc = replay(&trace, &mut BaselineBackend::new(VcDetector::new()));
        assert!(!eraser.is_empty(), "Eraser misses the ownership transfer");
        assert!(vc.is_empty(), "HB sees the lock edge: {vc:?}");
    }

    #[test]
    fn without_lock_edges_even_happens_before_false_positives() {
        // Strip the queue's lock events so the only justification for
        // the transfer is the sharing cast itself. SharC still
        // accepts (the cast is its evidence); the happens-before
        // detector now has no edge and flags the consumer.
        let (_, trace) = run_traced(&Params::default());
        let cast_only: Vec<CheckEvent> = trace
            .into_iter()
            .filter(|e| !matches!(e, CheckEvent::Acquire { .. } | CheckEvent::Release { .. }))
            .collect();
        let sharc = replay(&cast_only, &mut BitmapBackend::new());
        assert!(
            sharc.is_empty(),
            "the cast alone satisfies SharC: {sharc:?}"
        );
        let vc = replay(&cast_only, &mut BaselineBackend::new(VcDetector::new()));
        assert!(!vc.is_empty(), "the cast is invisible to vector clocks");
    }

    #[test]
    fn stripping_the_casts_makes_sharc_report_too() {
        // The cast is the load-bearing event: without it, tid 1's
        // writer state survives and the consumer's first access is a
        // genuine sharing violation.
        let (_, trace) = run_traced(&Params::default());
        let stripped: Vec<CheckEvent> = trace
            .into_iter()
            .filter(|e| {
                !matches!(
                    e,
                    CheckEvent::SharingCast { .. } | CheckEvent::RangeCast { .. }
                )
            })
            .collect();
        let conflicts = replay(&stripped, &mut BitmapBackend::new());
        assert!(!conflicts.is_empty(), "no cast, no transfer, real conflict");
    }

    #[test]
    fn trace_carries_the_full_event_vocabulary() {
        let (_, trace) = run_traced(&Params::default());
        let has = |f: fn(&CheckEvent) -> bool| trace.iter().any(f);
        assert!(has(|e| matches!(e, CheckEvent::Fork { .. })));
        assert!(has(|e| matches!(e, CheckEvent::RangeRead { .. })));
        assert!(has(|e| matches!(e, CheckEvent::RangeWrite { .. })));
        assert!(has(|e| matches!(e, CheckEvent::RangeCast { .. })));
        assert!(has(|e| matches!(e, CheckEvent::Acquire { .. })));
        assert!(has(|e| matches!(e, CheckEvent::Release { .. })));
        assert!(has(|e| matches!(e, CheckEvent::ThreadExit { .. })));
    }
}
