//! **aget** — the download accelerator (Table 1 row 2).
//!
//! "It spawns several threads that each download pieces of a file...
//! The program was network bound, and so the overhead created by
//! SharC was not measurable."
//!
//! Paper row: 3 threads, 1.1k lines, 7 annotations, 7 changes, time
//! overhead n/a (network bound), 30.8% memory, 8.7% dynamic accesses.
//! The reproduction uses a latency-simulated chunk server; with real
//! latency dominating, the checked build's overhead drowns in wait
//! time — the row's "n/a" shape.

use crate::substrates::net::{fnv, ChunkServer};
use crate::table::{run_benchmark, BenchResult, NativeRun, Scale};
use sharc_checker::CheckEvent;
use sharc_runtime::{
    AccessPolicy, Arena, Checked, EventLog, EventSink, ThreadCtx, ThreadId, Unchecked,
};
use std::sync::Arc;
use std::time::Duration;

/// Workload parameters.
#[derive(Debug, Clone, Copy)]
pub struct Params {
    pub file_size: usize,
    pub chunk: usize,
    pub latency: Duration,
    pub workers: usize,
}

impl Params {
    /// Parameters for a given benchmark scale (also used by the
    /// `sharc native` facade).
    pub fn scaled(scale: Scale) -> Self {
        Params {
            file_size: if scale.quick { 32 * 1024 } else { 256 * 1024 },
            chunk: 4096,
            latency: if scale.quick {
                Duration::from_micros(20)
            } else {
                Duration::from_micros(60)
            },
            workers: 2,
        }
    }
}

/// Downloads the file with `workers` threads writing into a shared
/// output buffer; each worker owns a disjoint range but the buffer is
/// a single dynamic-mode object (as in aget's shared output file).
pub fn run_native<P: AccessPolicy>(params: &Params) -> NativeRun {
    run_with_sink::<P>(params, None)
}

/// Runs the download **checked and traced**: every fetched chunk's
/// store is one ranged write event, the workers' exits clear their
/// shadow footprint, and main's verification sweep is one ranged read
/// — so the exact native execution replays through any
/// [`sharc_checker::CheckBackend`] (`sharc native aget --detector …`).
/// SharC is clean (the exits end the workers' lifetimes before main
/// reads); Eraser's lockset for the buffer is empty — the whole point
/// of segment ownership is downloading without a lock held — so it
/// false-positives on the same execution.
pub fn run_traced(params: &Params) -> (NativeRun, Vec<CheckEvent>) {
    let sink = Arc::new(EventLog::new());
    let run = run_with_events(params, sink.clone());
    (run, sink.take())
}

/// Runs the download checked, recording into any [`EventSink`] — the
/// entry the online (`StreamingSink`) detector path uses.
pub fn run_with_events(params: &Params, sink: Arc<dyn EventSink>) -> NativeRun {
    run_with_sink::<Checked>(params, Some(sink))
}

fn run_with_sink<P: AccessPolicy>(params: &Params, sink: Option<Arc<dyn EventSink>>) -> NativeRun {
    let server = Arc::new(ChunkServer::new(params.file_size, params.latency, 0xA6E7));
    // The output buffer packs 8 bytes per word, as C memory does.
    let arena: Arc<Arena> = Arc::new(Arena::new(params.file_size.div_ceil(8) + 1));

    let per_worker = params.file_size.div_ceil(params.workers);
    let mut handles = Vec::new();
    for w in 0..params.workers {
        let server = Arc::clone(&server);
        let arena = Arc::clone(&arena);
        let chunk = params.chunk;
        let start = w * per_worker;
        let end = ((w + 1) * per_worker).min(params.file_size);
        let tid = ThreadId(w as u8 + 2);
        if let Some(s) = &sink {
            // Fork is recorded by the parent *before* the child can
            // emit, so the linearized trace orders it first.
            s.record(CheckEvent::Fork {
                parent: 1,
                child: tid.0 as u32,
            });
        }
        let sink = sink.clone();
        handles.push(std::thread::spawn(move || {
            let mut ctx = match sink {
                Some(s) => ThreadCtx::with_sink(tid, s),
                None => ThreadCtx::new(tid),
            };
            let mut off = start;
            let mut words: Vec<u64> = Vec::new();
            while off < end {
                let len = chunk.min(end - off);
                let bytes = server.fetch(off, len);
                // Pack the fetched bytes into words, then store the
                // whole chunk with ONE ranged chkwrite — the bulk
                // inner loop on the ranged path.
                words.clear();
                for chnk in bytes.chunks(8) {
                    let mut v = 0u64;
                    for (k, &b) in chnk.iter().enumerate() {
                        v |= (b as u64) << (k * 8);
                    }
                    words.push(v);
                }
                let wstart = off / 8; // chunks are word-aligned
                P::write_range(&arena, &mut ctx, wstart, words.len(), &mut |i| {
                    words[i - wstart]
                });
                off += len;
            }
            let rec = (ctx.checked_accesses, ctx.total_accesses, ctx.conflicts);
            arena.thread_exit(&mut ctx);
            rec
        }));
    }

    let mut checked = 0u64;
    let mut total = 0u64;
    let mut conflicts = 0usize;
    for h in handles {
        let (c, t, cf) = h.join().expect("worker panicked");
        checked += c;
        total += t;
        conflicts += cf;
    }
    if let Some(s) = &sink {
        for w in 0..params.workers {
            s.record(CheckEvent::Join {
                parent: 1,
                child: w as u32 + 2,
            });
        }
    }

    // Main verifies the download — one ranged sweep over the whole
    // buffer through the policy. The workers' exits cleared their
    // shadow bits (non-overlapping lifetimes are not races), so the
    // sweep is clean under SharC.
    let mut main_ctx = match &sink {
        Some(s) => ThreadCtx::with_sink(ThreadId(1), Arc::clone(s)),
        None => ThreadCtx::new(ThreadId(1)),
    };
    let n_words = params.file_size.div_ceil(8);
    let mut assembled = Vec::with_capacity(params.file_size);
    let mut word0 = 0u64;
    P::read_range(&arena, &mut main_ctx, 0, n_words, &mut |i, w| {
        if i == 0 {
            word0 = w;
        }
        for k in 0..8 {
            if assembled.len() < params.file_size {
                assembled.push((w >> (k * 8)) as u8);
            }
        }
    });
    // aget's completion touch-up: main re-stamps the file header in
    // place (same bytes, so the checksum is untouched). Under SharC
    // this is a legal single-reader upgrade; under Eraser it is the
    // Shared-Modified transition with an empty lockset — the false
    // positive the §6.2 comparison is about.
    P::write(&arena, &mut main_ctx, 0, word0);
    checked += main_ctx.checked_accesses;
    total += main_ctx.total_accesses;
    conflicts += main_ctx.conflicts;
    arena.thread_exit(&mut main_ctx);

    NativeRun {
        checksum: fnv(&assembled),
        checked,
        total,
        conflicts,
        payload_bytes: arena.payload_bytes(),
        shadow_bytes: arena.shadow_bytes(),
        threads: params.workers + 1,
    }
}

/// The MiniC port: workers download disjoint segments of a shared
/// buffer; head offsets are coordinated under a lock.
pub fn minic_source() -> &'static str {
    r#"
// aget.c — download accelerator (MiniC port).
struct dl {
    mutex m;
    int locked(m) bytes_done;
    int racy nworkers;
};

int dynamic outbuf[8192];
int readonly segment_size = 2048;

void downloader_body(struct dl * d, int seg) {
    int base;
    int i;
    int v;
    base = seg * segment_size;
    for (i = 0; i < segment_size; i++) {
        // "network fetch" of one byte
        v = random(256);
        outbuf[base + i] = v;
    }
    mutex_lock(&d->m);
    d->bytes_done = d->bytes_done + segment_size;
    mutex_unlock(&d->m);
}

void downloader0(struct dl * d) { downloader_body(d, 0); }
void downloader1(struct dl * d) { downloader_body(d, 1); }

void main() {
    struct dl * d = new(struct dl);
    int t0;
    int t1;
    t0 = spawn(downloader0, d);
    t1 = spawn(downloader1, d);
    join(t0);
    join(t1);
    mutex_lock(&d->m);
    print(d->bytes_done);
    mutex_unlock(&d->m);
}
"#
}

/// Full benchmark.
pub fn bench(scale: Scale) -> BenchResult {
    let params = Params::scaled(scale);
    run_benchmark("aget", minic_source(), scale.reps, |checked| {
        if checked {
            run_native::<Checked>(&params)
        } else {
            run_native::<Unchecked>(&params)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn download_matches_server_checksum() {
        let params = Params {
            latency: Duration::ZERO,
            ..Params::scaled(Scale::quick())
        };
        let server = ChunkServer::new(params.file_size, Duration::ZERO, 0xA6E7);
        let orig = run_native::<Unchecked>(&params);
        let sharc = run_native::<Checked>(&params);
        assert_eq!(orig.checksum, server.checksum());
        assert_eq!(sharc.checksum, server.checksum());
    }

    #[test]
    fn disjoint_ranges_do_not_conflict_in_byte_space() {
        // Workers write disjoint, granule-aligned ranges: no false
        // sharing at the boundary because per-worker ranges are
        // chunk-aligned and chunk >> granule.
        let params = Params {
            latency: Duration::ZERO,
            ..Params::scaled(Scale::quick())
        };
        let r = run_native::<Checked>(&params);
        assert_eq!(r.conflicts, 0);
    }

    #[test]
    fn network_bound_overhead_is_negligible() {
        // With per-chunk latency the checked and unchecked builds run
        // in nearly the same time (the paper's "n/a" row).
        let params = Params::scaled(Scale::quick());
        let (t_orig, _) = crate::table::time_mean(1, || run_native::<Unchecked>(&params));
        let (t_sharc, _) = crate::table::time_mean(1, || run_native::<Checked>(&params));
        let ratio = t_sharc.as_secs_f64() / t_orig.as_secs_f64();
        assert!(
            ratio < 1.6,
            "network-bound: overhead should drown in latency (ratio {ratio:.2})"
        );
    }

    #[test]
    fn traced_run_splits_sharc_from_eraser() {
        // §6.2 through the native event spine: the SAME download
        // execution is clean under SharC (segment ownership ends at
        // thread exit, before main's verification sweep) and a false
        // positive under Eraser (no lock ever protects the buffer).
        use sharc_checker::{replay, BitmapBackend};
        use sharc_detectors::{BaselineBackend, Eraser};
        let params = Params {
            latency: Duration::ZERO,
            ..Params::scaled(Scale::quick())
        };
        let (run, trace) = run_traced(&params);
        assert_eq!(run.conflicts, 0, "the native run itself is clean");
        assert!(
            trace
                .iter()
                .any(|e| matches!(e, CheckEvent::RangeWrite { .. })),
            "chunk stores are ranged events"
        );
        assert!(
            trace
                .iter()
                .any(|e| matches!(e, CheckEvent::RangeRead { .. })),
            "the verification sweep is a ranged event"
        );
        let sharc = replay(&trace, &mut BitmapBackend::new());
        assert!(sharc.is_empty(), "SharC models the lifetimes: {sharc:?}");
        let eraser = replay(&trace, &mut BaselineBackend::new(Eraser::new()));
        assert!(!eraser.is_empty(), "Eraser has no lifetime model");
    }

    #[test]
    fn minic_version_compiles_clean() {
        let (lines, annots, _) = crate::table::minic_columns("aget.c", minic_source());
        assert!(lines > 30);
        assert!(annots >= 3);
    }
}
