//! **aget** — the download accelerator (Table 1 row 2).
//!
//! "It spawns several threads that each download pieces of a file...
//! The program was network bound, and so the overhead created by
//! SharC was not measurable."
//!
//! Paper row: 3 threads, 1.1k lines, 7 annotations, 7 changes, time
//! overhead n/a (network bound), 30.8% memory, 8.7% dynamic accesses.
//! The reproduction uses a latency-simulated chunk server; with real
//! latency dominating, the checked build's overhead drowns in wait
//! time — the row's "n/a" shape.

use crate::substrates::net::{fnv, ChunkServer};
use crate::table::{run_benchmark, BenchResult, NativeRun, Scale};
use sharc_runtime::{AccessPolicy, Arena, Checked, ThreadCtx, ThreadId, Unchecked};
use std::sync::Arc;
use std::time::Duration;

/// Workload parameters.
#[derive(Debug, Clone, Copy)]
pub struct Params {
    pub file_size: usize,
    pub chunk: usize,
    pub latency: Duration,
    pub workers: usize,
}

impl Params {
    fn scaled(scale: Scale) -> Self {
        Params {
            file_size: if scale.quick { 32 * 1024 } else { 256 * 1024 },
            chunk: 4096,
            latency: if scale.quick {
                Duration::from_micros(20)
            } else {
                Duration::from_micros(60)
            },
            workers: 2,
        }
    }
}

/// Downloads the file with `workers` threads writing into a shared
/// output buffer; each worker owns a disjoint range but the buffer is
/// a single dynamic-mode object (as in aget's shared output file).
pub fn run_native<P: AccessPolicy>(params: &Params) -> NativeRun {
    let server = Arc::new(ChunkServer::new(params.file_size, params.latency, 0xA6E7));
    // The output buffer packs 8 bytes per word, as C memory does.
    let arena: Arc<Arena> = Arc::new(Arena::new(params.file_size.div_ceil(8) + 1));

    let per_worker = params.file_size.div_ceil(params.workers);
    let mut handles = Vec::new();
    for w in 0..params.workers {
        let server = Arc::clone(&server);
        let arena = Arc::clone(&arena);
        let chunk = params.chunk;
        let start = w * per_worker;
        let end = ((w + 1) * per_worker).min(params.file_size);
        handles.push(std::thread::spawn(move || {
            let mut ctx = ThreadCtx::new(ThreadId(w as u8 + 2));
            let mut off = start;
            while off < end {
                let len = chunk.min(end - off);
                let bytes = server.fetch(off, len);
                for (i, chnk) in bytes.chunks(8).enumerate() {
                    let mut w = 0u64;
                    for (k, &b) in chnk.iter().enumerate() {
                        w |= (b as u64) << (k * 8);
                    }
                    P::write(&arena, &mut ctx, off / 8 + i, w);
                }
                off += len;
            }
            let rec = (ctx.checked_accesses, ctx.total_accesses, ctx.conflicts);
            arena.thread_exit(&mut ctx);
            rec
        }));
    }

    let mut checked = 0u64;
    let mut total = 0u64;
    let mut conflicts = 0usize;
    for h in handles {
        let (c, t, cf) = h.join().expect("worker panicked");
        checked += c;
        total += t;
        conflicts += cf;
    }

    // Main verifies the download (reads are main-private afterwards).
    let mut main_ctx = ThreadCtx::new(ThreadId(1));
    let mut assembled = Vec::with_capacity(params.file_size);
    for i in 0..params.file_size {
        let w = Unchecked::read(&arena, &mut main_ctx, i / 8);
        assembled.push((w >> ((i % 8) * 8)) as u8);
    }
    total += main_ctx.total_accesses;

    NativeRun {
        checksum: fnv(&assembled),
        checked,
        total,
        conflicts,
        payload_bytes: arena.payload_bytes(),
        shadow_bytes: arena.shadow_bytes(),
        threads: params.workers + 1,
    }
}

/// The MiniC port: workers download disjoint segments of a shared
/// buffer; head offsets are coordinated under a lock.
pub fn minic_source() -> &'static str {
    r#"
// aget.c — download accelerator (MiniC port).
struct dl {
    mutex m;
    int locked(m) bytes_done;
    int racy nworkers;
};

int dynamic outbuf[8192];
int readonly segment_size = 2048;

void downloader_body(struct dl * d, int seg) {
    int base;
    int i;
    int v;
    base = seg * segment_size;
    for (i = 0; i < segment_size; i++) {
        // "network fetch" of one byte
        v = random(256);
        outbuf[base + i] = v;
    }
    mutex_lock(&d->m);
    d->bytes_done = d->bytes_done + segment_size;
    mutex_unlock(&d->m);
}

void downloader0(struct dl * d) { downloader_body(d, 0); }
void downloader1(struct dl * d) { downloader_body(d, 1); }

void main() {
    struct dl * d = new(struct dl);
    int t0;
    int t1;
    t0 = spawn(downloader0, d);
    t1 = spawn(downloader1, d);
    join(t0);
    join(t1);
    mutex_lock(&d->m);
    print(d->bytes_done);
    mutex_unlock(&d->m);
}
"#
}

/// Full benchmark.
pub fn bench(scale: Scale) -> BenchResult {
    let params = Params::scaled(scale);
    run_benchmark("aget", minic_source(), scale.reps, |checked| {
        if checked {
            run_native::<Checked>(&params)
        } else {
            run_native::<Unchecked>(&params)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn download_matches_server_checksum() {
        let params = Params {
            latency: Duration::ZERO,
            ..Params::scaled(Scale::quick())
        };
        let server = ChunkServer::new(params.file_size, Duration::ZERO, 0xA6E7);
        let orig = run_native::<Unchecked>(&params);
        let sharc = run_native::<Checked>(&params);
        assert_eq!(orig.checksum, server.checksum());
        assert_eq!(sharc.checksum, server.checksum());
    }

    #[test]
    fn disjoint_ranges_do_not_conflict_in_byte_space() {
        // Workers write disjoint, granule-aligned ranges: no false
        // sharing at the boundary because per-worker ranges are
        // chunk-aligned and chunk >> granule.
        let params = Params {
            latency: Duration::ZERO,
            ..Params::scaled(Scale::quick())
        };
        let r = run_native::<Checked>(&params);
        assert_eq!(r.conflicts, 0);
    }

    #[test]
    fn network_bound_overhead_is_negligible() {
        // With per-chunk latency the checked and unchecked builds run
        // in nearly the same time (the paper's "n/a" row).
        let params = Params::scaled(Scale::quick());
        let (t_orig, _) = crate::table::time_mean(1, || run_native::<Unchecked>(&params));
        let (t_sharc, _) = crate::table::time_mean(1, || run_native::<Checked>(&params));
        let ratio = t_sharc.as_secs_f64() / t_orig.as_secs_f64();
        assert!(
            ratio < 1.6,
            "network-bound: overhead should drown in latency (ratio {ratio:.2})"
        );
    }

    #[test]
    fn minic_version_compiles_clean() {
        let (lines, annots, _) = crate::table::minic_columns("aget.c", minic_source());
        assert!(lines > 30);
        assert!(annots >= 3);
    }
}
