//! **stunnel** — the TLS tunnel (Table 1 row 6), run as a *wide-tid
//! server fleet* on the `CheckEvent` spine.
//!
//! "It creates a thread for each client that it serves. The main
//! thread initializes data for each client thread before spawning
//! them. There are also global flags and counters, which are
//! protected by locks... Our experiments with stunnel involved
//! encrypting three simultaneous connections to a simple echo server
//! with each client sending and receiving 500 messages."
//!
//! The paper ran three connections; this port runs the production
//! shape instead: 100–300 real worker threads (one per simulated
//! client) on the sharded wide geometry, so checked tids span 2–5
//! shards and every check exercises [`sharc_runtime::ShardedShadow`]'s
//! cached paths under real contention. Per connection:
//!
//! - the **acceptor** (tid 1) fills the client's handshake buffer
//!   with one ranged checked write, *sharing-casts* it to the worker
//!   (`SharingCast` + shadow clear, the `dynamic` hand-off of §2.1),
//!   and publishes the session slot under the session-table lock —
//!   so the hand-off linearizes through the lock-held [`EventLog`];
//! - the **worker** (tids 2..) confirms the slot under the same lock
//!   (`locked(l)` check), sweeps the handshake with a ranged cached
//!   read, stamps a session nonce back into it, then encrypts and
//!   echoes its messages through a per-connection buffer with one
//!   ranged `chkwrite` + one ranged `chkread` per message;
//! - global message/byte counters are `locked(l)`: lock-held checks
//!   and raw accesses under the counter lock, never bitmap traffic.
//!
//! Replayed from the recorded trace, the same execution splits the
//! detectors exactly as §6.2 predicts: SharC is clean (the casts and
//! thread exits model the transfers), Eraser false-positives on every
//! handshake hand-off (no lock covers the buffer), and vector clocks
//! stay clean only while the session lock's release/acquire edge is
//! in the trace.

use crate::substrates::cipher::{decrypt, encrypt};
use crate::table::{run_benchmark, BenchResult, NativeRun, Scale};
use sharc_checker::CheckEvent;
use sharc_runtime::{
    EventLog, EventSink, LockId, WideArena, WideChecked, WideLockRegistry, WidePolicy,
    WideThreadCtx, WideThreadId, WideUnchecked, GRANULE_WORDS,
};
use std::sync::Arc;

/// Lock id of the session table (publishes handshake hand-offs).
const SESSION_LOCK: LockId = LockId(0);
/// Lock id protecting the global message/byte counters.
const COUNTER_LOCK: LockId = LockId(1);

/// Handshake buffer words per client (whole granules).
const HS_WORDS: usize = 4 * GRANULE_WORDS;

/// Workload parameters.
#[derive(Debug, Clone, Copy)]
pub struct Params {
    /// Simulated client connections.
    pub clients: usize,
    /// Real worker threads (client `c` is served by `c % workers`).
    pub workers: usize,
    /// Messages each client sends and receives.
    pub messages: usize,
    /// Message length in bytes (a multiple of 8).
    pub msg_len: usize,
}

impl Params {
    /// The default fleet: one worker per client, wide enough that
    /// checked tids span multiple shards of the exact shadow.
    pub fn scaled(scale: Scale) -> Self {
        if scale.quick {
            // ~10^5 checked accesses: 128 * 12 * 64 sweep words.
            Params {
                clients: 128,
                workers: 128,
                messages: 12,
                msg_len: 256,
            }
        } else {
            // ~10^6 checked accesses across 4 shards of tids.
            Params {
                clients: 240,
                workers: 240,
                messages: 60,
                msg_len: 256,
            }
        }
    }

    /// Message buffer words per client.
    fn msg_words(&self) -> usize {
        (self.msg_len / 8).max(GRANULE_WORDS)
    }

    /// Word index of client `c`'s handshake buffer.
    fn hs(&self, c: usize) -> usize {
        c * HS_WORDS
    }

    /// Word index of client `c`'s message buffer.
    fn msg(&self, c: usize) -> usize {
        self.clients * HS_WORDS + c * self.msg_words()
    }

    /// Word index of client `c`'s session-table slot.
    fn slot(&self, c: usize) -> usize {
        self.clients * (HS_WORDS + self.msg_words()) + c
    }

    /// Word index of the global counters (messages, then bytes one
    /// granule over, as in the three-thread original).
    fn counters(&self) -> usize {
        // Granule-aligned so the two counters sit in distinct
        // granules.
        self.slot(self.clients).next_multiple_of(GRANULE_WORDS)
    }

    /// Total arena words.
    fn arena_words(&self) -> usize {
        self.counters() + 2 * GRANULE_WORDS
    }
}

/// The in-process echo server: decrypt, flip, re-encrypt.
fn echo_server(key: u64, wire: &[u8]) -> Vec<u8> {
    let plain = decrypt(key, wire);
    encrypt(key, &plain)
}

/// Packs `bytes[8 * i ..]` into the word the arena sweeps carry.
fn pack_word(bytes: &[u8], i: usize) -> u64 {
    u64::from_le_bytes(bytes[8 * i..8 * i + 8].try_into().expect("8-byte chunk"))
}

/// Runs the tunnel fleet with access policy `P` (no trace).
pub fn run_native<P: WidePolicy>(params: &Params) -> NativeRun {
    run_with_sink::<P>(params, None)
}

/// Runs the fleet **checked and traced**, returning the run record
/// and the linearized native event trace for detector replay.
pub fn run_traced(params: &Params) -> (NativeRun, Vec<CheckEvent>) {
    let sink = Arc::new(EventLog::new());
    let run = run_with_events(params, sink.clone());
    (run, sink.take())
}

/// Runs the fleet checked, recording into any [`EventSink`] — the
/// entry the online (`StreamingSink`) detector path uses.
pub fn run_with_events(params: &Params, sink: Arc<dyn EventSink>) -> NativeRun {
    run_with_sink::<WideChecked>(params, Some(sink))
}

fn run_with_sink<P: WidePolicy>(params: &Params, sink: Option<Arc<dyn EventSink>>) -> NativeRun {
    let is_checked = P::NAME == "sharc";
    // Exact identities for the acceptor plus every worker tid.
    let arena = Arc::new(WideArena::for_threads(
        params.arena_words(),
        params.workers + 2,
    ));
    let locks = Arc::new(WideLockRegistry::new(2));

    let mut acceptor = match &sink {
        Some(s) => WideThreadCtx::with_sink(WideThreadId(1), Arc::clone(s)),
        None => WideThreadCtx::new(WideThreadId(1)),
    };

    let mut handles = Vec::new();
    for w in 0..params.workers {
        let tid = WideThreadId(w as u32 + 2);
        if let Some(s) = &acceptor.sink {
            s.record(CheckEvent::Fork {
                parent: 1,
                child: tid.0,
            });
        }
        let arena = Arc::clone(&arena);
        let locks = Arc::clone(&locks);
        let sink = sink.clone();
        let params = *params;
        handles.push(std::thread::spawn(move || {
            worker_thread::<P>(&params, &arena, &locks, tid, sink, w)
        }));
    }

    // The acceptor "accepts" each connection with the workers already
    // live: handshake buffer filled (ranged chkwrite), ownership cast
    // to the worker, session slot published under the session lock.
    for c in 0..params.clients {
        let key = 0x57A7_0000 + c as u64;
        P::write_range(&arena, &mut acceptor, params.hs(c), HS_WORDS, &mut |i| {
            key.wrapping_add((i - params.hs(c)) as u64)
        });
        if is_checked {
            // The dynamic hand-off: ONE ranged `oneref` cast for the
            // whole handshake buffer, then the shadow forgets the
            // acceptor ever owned it.
            let g0 = params.hs(c) / GRANULE_WORDS;
            let g1 = (params.hs(c) + HS_WORDS - 1) / GRANULE_WORDS;
            if let Some(s) = &acceptor.sink {
                s.record(CheckEvent::RangeCast {
                    tid: 1,
                    granule: g0,
                    len: g1 - g0 + 1,
                    refs: 1,
                });
            }
            arena.clear_range(params.hs(c), HS_WORDS);
        }
        locks.lock(&mut acceptor, SESSION_LOCK);
        if is_checked {
            acceptor.assert_held(SESSION_LOCK).expect("session lock");
        }
        if let Some(s) = &acceptor.sink {
            s.record(CheckEvent::LockedAccess {
                tid: 1,
                lock: SESSION_LOCK.0,
            });
        }
        arena.write_unchecked(params.slot(c), 1);
        acceptor.total_accesses += 1;
        locks.unlock(&mut acceptor, SESSION_LOCK);
    }

    let mut checksum = 0u64;
    let mut checked = 0u64;
    let mut total = 0u64;
    let mut conflicts = 0usize;
    for (w, h) in handles.into_iter().enumerate() {
        let (ok, ch, tt, cf) = h.join().expect("worker panicked");
        if let Some(s) = &acceptor.sink {
            s.record(CheckEvent::Join {
                parent: 1,
                child: w as u32 + 2,
            });
        }
        checksum += ok;
        checked += ch;
        total += tt;
        conflicts += cf;
    }

    // Final tally under the counter lock (`locked(l)` read).
    locks.lock(&mut acceptor, COUNTER_LOCK);
    if is_checked {
        acceptor.assert_held(COUNTER_LOCK).expect("counter lock");
        checked += 1;
    }
    if let Some(s) = &acceptor.sink {
        s.record(CheckEvent::LockedAccess {
            tid: 1,
            lock: COUNTER_LOCK.0,
        });
    }
    let msgs = arena.read_unchecked(params.counters());
    acceptor.total_accesses += 1;
    locks.unlock(&mut acceptor, COUNTER_LOCK);
    arena.thread_exit(&mut acceptor);

    checksum = checksum.wrapping_mul(1000).wrapping_add(msgs);
    checked += acceptor.checked_accesses;
    total +=
        acceptor.total_accesses + (params.clients * params.messages * params.msg_len * 4) as u64;

    NativeRun {
        checksum,
        checked,
        total,
        conflicts: conflicts + acceptor.conflicts,
        payload_bytes: arena.payload_bytes() + params.clients * params.msg_len,
        shadow_bytes: if is_checked { arena.shadow_bytes() } else { 0 },
        threads: params.workers + 1,
    }
}

/// One worker thread: serves every client `c` with `c % workers ==
/// w`, in ascending order. Returns `(ok, checked, total, conflicts)`.
fn worker_thread<P: WidePolicy>(
    params: &Params,
    arena: &WideArena,
    locks: &WideLockRegistry,
    tid: WideThreadId,
    sink: Option<Arc<dyn EventSink>>,
    w: usize,
) -> (u64, u64, u64, usize) {
    let is_checked = P::NAME == "sharc";
    let mut ctx = match sink {
        Some(s) => WideThreadCtx::with_sink(tid, s),
        None => WideThreadCtx::new(tid),
    };
    let mut ok = 0u64;
    let mut lock_checks = 0u64;
    let msg_words = params.msg_words();

    for c in (w..params.clients).step_by(params.workers) {
        // Wait for the acceptor to publish this session. The relaxed
        // poll is only a hint; the *confirming* read below happens
        // under the session lock, so the worker's acquire lands after
        // the acceptor's publishing release in the linearized trace —
        // the happens-before edge vector clocks need.
        while arena.read_unchecked(params.slot(c)) == 0 {
            std::thread::yield_now();
        }
        locks.lock(&mut ctx, SESSION_LOCK);
        if is_checked {
            ctx.assert_held(SESSION_LOCK).expect("session lock");
            lock_checks += 1;
        }
        if let Some(s) = &ctx.sink {
            s.record(CheckEvent::LockedAccess {
                tid: tid.0,
                lock: SESSION_LOCK.0,
            });
        }
        let ready = arena.read_unchecked(params.slot(c));
        ctx.total_accesses += 2;
        locks.unlock(&mut ctx, SESSION_LOCK);
        assert_eq!(ready, 1, "slot published before hand-off");

        // The handshake arrived by sharing cast: sweep it (ranged
        // chkread), derive the session key, and stamp a nonce back
        // into the buffer — the worker *writes* memory the acceptor
        // wrote outside any lock, which is exactly what Eraser's
        // lockset cannot justify.
        let mut key = 0u64;
        P::read_range(arena, &mut ctx, params.hs(c), HS_WORDS, &mut |i, v| {
            if i == params.hs(c) {
                key = v;
            }
        });
        P::write(arena, &mut ctx, params.hs(c) + 1, key ^ 0x5E55_1011);

        for m in 0..params.messages {
            // Build and encrypt the message (private buffer), then
            // push the ciphertext through the connection buffer with
            // one ranged chkwrite and read it back with one ranged
            // chkread — the per-connection sweep of PR 5.
            let plain: Vec<u8> = (0..params.msg_len).map(|i| (m + i + c) as u8).collect();
            let wire = encrypt(key, &plain);
            P::write_range(arena, &mut ctx, params.msg(c), msg_words, &mut |i| {
                pack_word(&wire, i - params.msg(c))
            });
            let mut echoed = vec![0u8; params.msg_len];
            P::read_range(arena, &mut ctx, params.msg(c), msg_words, &mut |i, v| {
                echoed[8 * (i - params.msg(c))..8 * (i - params.msg(c)) + 8]
                    .copy_from_slice(&v.to_le_bytes());
            });
            let reply = echo_server(key, &echoed);
            if decrypt(key, &reply) == plain {
                ok += 1;
            }

            // Locked global counters: held-lock checks plus raw
            // accesses, the `locked(l)` mode of the original port.
            locks.lock(&mut ctx, COUNTER_LOCK);
            if is_checked {
                ctx.assert_held(COUNTER_LOCK).expect("counter lock");
                lock_checks += 2;
            }
            if let Some(s) = &ctx.sink {
                s.record(CheckEvent::LockedAccess {
                    tid: tid.0,
                    lock: COUNTER_LOCK.0,
                });
                s.record(CheckEvent::LockedAccess {
                    tid: tid.0,
                    lock: COUNTER_LOCK.0,
                });
            }
            let msgs = arena.read_unchecked(params.counters());
            arena.write_unchecked(params.counters(), msgs + 1);
            let bytes = arena.read_unchecked(params.counters() + GRANULE_WORDS);
            arena.write_unchecked(
                params.counters() + GRANULE_WORDS,
                bytes + params.msg_len as u64,
            );
            ctx.total_accesses += 4;
            locks.unlock(&mut ctx, COUNTER_LOCK);
        }
    }

    arena.thread_exit(&mut ctx);
    (
        ok,
        ctx.checked_accesses + lock_checks,
        ctx.total_accesses,
        ctx.conflicts,
    )
}

/// The MiniC port: per-client threads, private message buffers
/// initialized before spawn, and locked global counters.
pub fn minic_source() -> &'static str {
    r#"
// stunnel.c — encrypting tunnel (MiniC port).
struct client {
    int readonly id;
    int readonly key;
    int nmsgs;
};

mutex gm;
int locked(gm) total_msgs;
int locked(gm) total_bytes;
int racy active_clients;

int crypt_step(int state) {
    return state * 1103515245 + 12345;
}

void client_thread(struct client * c) {
    char private * buf;
    int m;
    int i;
    int state;
    int n;
    n = c->nmsgs;
    for (m = 0; m < n; m++) {
        buf = newarray(char private, 64);
        // Fill and "encrypt" the private buffer.
        state = c->key + m;
        for (i = 0; i < 64; i++) {
            state = crypt_step(state);
            buf[i] = state % 256;
        }
        // "Echo" round-trip: decrypt in place.
        state = c->key + m;
        for (i = 0; i < 64; i++) {
            state = crypt_step(state);
            buf[i] = buf[i] - state % 256;
        }
        free(buf);
        mutex_lock(&gm);
        total_msgs = total_msgs + 1;
        total_bytes = total_bytes + 64;
        mutex_unlock(&gm);
    }
    active_clients = active_clients - 1;
}

void main() {
    struct client private * c1;
    struct client private * c2;
    struct client private * c3;
    c1 = new(struct client private);
    c2 = new(struct client private);
    c3 = new(struct client private);
    // The main thread initializes client data before spawning
    // (readonly fields are writable while the struct is private).
    c1->id = 1; c1->key = 101; c1->nmsgs = 20;
    c2->id = 2; c2->key = 202; c2->nmsgs = 20;
    c3->id = 3; c3->key = 303; c3->nmsgs = 20;
    active_clients = 3;
    spawn(client_thread, SCAST(struct client dynamic *, c1));
    spawn(client_thread, SCAST(struct client dynamic *, c2));
    spawn(client_thread, SCAST(struct client dynamic *, c3));
    join_all();
    mutex_lock(&gm);
    print(total_msgs);
    print(total_bytes);
    mutex_unlock(&gm);
}
"#
}

/// Full benchmark.
pub fn bench(scale: Scale) -> BenchResult {
    let params = Params::scaled(scale);
    run_benchmark("stunnel", minic_source(), scale.reps, |checked| {
        if checked {
            run_native::<WideChecked>(&params)
        } else {
            run_native::<WideUnchecked>(&params)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sharc_checker::{replay, BitmapBackend, ShadowGeometry};
    use sharc_detectors::{BaselineBackend, Eraser, VcDetector};

    /// A smaller fleet for the per-test runs (still wide: tids reach
    /// past the first two shadow shards).
    fn test_params() -> Params {
        Params {
            clients: 130,
            workers: 130,
            messages: 2,
            msg_len: 64,
        }
    }

    fn wide_bitmap(p: &Params) -> BitmapBackend {
        BitmapBackend::with_geometry(ShadowGeometry::for_threads(p.workers + 2))
    }

    #[test]
    fn all_messages_roundtrip() {
        let params = Params {
            clients: 100,
            workers: 100,
            messages: 3,
            msg_len: 64,
        };
        let a = run_native::<WideUnchecked>(&params);
        let b = run_native::<WideChecked>(&params);
        assert_eq!(a.checksum, b.checksum);
        // checksum encodes ok-count * 1000 + message counter.
        let expect = (params.clients * params.messages) as u64;
        assert_eq!(a.checksum, expect * 1000 + expect);
        assert_eq!(b.conflicts, 0, "casts + locks make the fleet clean");
    }

    #[test]
    fn overhead_is_small() {
        // Paper: 2% — encryption and thread management dominate; the
        // checks ride on ranged sweeps and the owned-run cache.
        let params = Params {
            clients: 64,
            workers: 64,
            messages: 8,
            msg_len: 256,
        };
        let (t_orig, _) = crate::table::time_mean(2, || run_native::<WideUnchecked>(&params));
        let (t_sharc, _) = crate::table::time_mean(2, || run_native::<WideChecked>(&params));
        let ratio = t_sharc.as_secs_f64() / t_orig.as_secs_f64();
        assert!(
            ratio < 1.5,
            "ranged cached checks are cheap (ratio {ratio:.2})"
        );
    }

    #[test]
    fn sharc_is_silent_on_the_native_trace() {
        let p = test_params();
        let (run, trace) = run_traced(&p);
        assert_eq!(run.conflicts, 0);
        let conflicts = replay(&trace, &mut wide_bitmap(&p));
        assert!(
            conflicts.is_empty(),
            "SharC models the wide hand-offs: {conflicts:?}"
        );
    }

    #[test]
    fn eraser_false_positives_on_the_same_execution() {
        // §6.2 at fleet width: the identical recorded execution. The
        // handshake buffers are written by the acceptor and then
        // read *and written* by the workers with no common lock, so
        // Eraser's per-granule lockset empties and it reports; the
        // vector-clock detector accepts because every hand-off
        // linearizes through the session lock's release/acquire.
        let p = test_params();
        let (_, trace) = run_traced(&p);
        let eraser = replay(&trace, &mut BaselineBackend::new(Eraser::new()));
        let vc = replay(&trace, &mut BaselineBackend::new(VcDetector::new()));
        assert!(!eraser.is_empty(), "Eraser misses the ownership transfer");
        assert!(vc.is_empty(), "HB sees the session-lock edge: {vc:?}");
    }

    #[test]
    fn without_lock_edges_even_happens_before_false_positives() {
        let p = test_params();
        let (_, trace) = run_traced(&p);
        let cast_only: Vec<CheckEvent> = trace
            .into_iter()
            .filter(|e| {
                !matches!(
                    e,
                    CheckEvent::Acquire { .. }
                        | CheckEvent::Release { .. }
                        | CheckEvent::LockedAccess { .. }
                )
            })
            .collect();
        let sharc = replay(&cast_only, &mut wide_bitmap(&p));
        assert!(sharc.is_empty(), "the casts alone satisfy SharC: {sharc:?}");
        let vc = replay(&cast_only, &mut BaselineBackend::new(VcDetector::new()));
        assert!(!vc.is_empty(), "the cast is invisible to vector clocks");
    }

    #[test]
    fn stripping_the_casts_makes_sharc_report_too() {
        let p = test_params();
        let (_, trace) = run_traced(&p);
        let stripped: Vec<CheckEvent> = trace
            .into_iter()
            .filter(|e| {
                !matches!(
                    e,
                    CheckEvent::SharingCast { .. } | CheckEvent::RangeCast { .. }
                )
            })
            .collect();
        let conflicts = replay(&stripped, &mut wide_bitmap(&p));
        assert!(!conflicts.is_empty(), "no cast, no transfer, real conflict");
    }

    #[test]
    fn trace_carries_wide_tids_and_the_full_vocabulary() {
        let p = test_params();
        let (_, trace) = run_traced(&p);
        let has = |f: fn(&CheckEvent) -> bool| trace.iter().any(f);
        assert!(has(|e| matches!(e, CheckEvent::Fork { .. })));
        assert!(has(|e| matches!(e, CheckEvent::RangeRead { .. })));
        assert!(has(|e| matches!(e, CheckEvent::RangeWrite { .. })));
        assert!(has(|e| matches!(e, CheckEvent::RangeCast { .. })));
        // One-operation hand-off: exactly one ranged cast per client,
        // never the O(granules) per-granule expansion.
        let rcasts = trace
            .iter()
            .filter(|e| matches!(e, CheckEvent::RangeCast { .. }))
            .count();
        assert_eq!(rcasts, p.clients, "one RangeCast per handshake hand-off");
        assert!(has(|e| matches!(e, CheckEvent::LockedAccess { .. })));
        assert!(has(|e| matches!(e, CheckEvent::Acquire { .. })));
        assert!(has(|e| matches!(e, CheckEvent::Release { .. })));
        assert!(has(|e| matches!(e, CheckEvent::ThreadExit { .. })));
        assert!(has(|e| matches!(e, CheckEvent::Join { .. })));
        // Past the 63-tid shard boundary and into the third shard.
        assert!(
            has(|e| matches!(e, CheckEvent::RangeWrite { tid, .. } if *tid > 126)),
            "worker tids must reach past two shards"
        );
    }

    #[test]
    fn minic_version_compiles_clean() {
        let (lines, annots, casts) = crate::table::minic_columns("stunnel.c", minic_source());
        assert!(lines > 40);
        assert!(
            annots >= 8,
            "stunnel has the most annotations; got {annots}"
        );
        assert_eq!(casts, 3, "one ownership transfer per spawned client");
    }
}
