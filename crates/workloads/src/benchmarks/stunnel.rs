//! **stunnel** — the TLS tunnel (Table 1 row 6).
//!
//! "It creates a thread for each client that it serves. The main
//! thread initializes data for each client thread before spawning
//! them. There are also global flags and counters, which are
//! protected by locks... Our experiments with stunnel involved
//! encrypting three simultaneous connections to a simple echo server
//! with each client sending and receiving 500 messages."
//!
//! Paper row: 3 threads, 361k lines, 20 annotations, 22 changes, 2%
//! time, 0.5k pagefaults, ~0.0% dynamic accesses. Encryption runs on
//! per-client private buffers; the checked cost is the locked global
//! counters.

use crate::substrates::cipher::{decrypt, encrypt};
use crate::table::{run_benchmark, BenchResult, NativeRun, Scale};
use sharc_runtime::{
    AccessPolicy, Arena, Checked, LockId, LockRegistry, ThreadCtx, ThreadId, Unchecked,
};
use std::sync::Arc;

/// Workload parameters.
#[derive(Debug, Clone, Copy)]
pub struct Params {
    pub clients: usize,
    pub messages: usize,
    pub msg_len: usize,
}

impl Params {
    fn scaled(scale: Scale) -> Self {
        Params {
            clients: 3,
            messages: if scale.quick { 100 } else { 500 },
            msg_len: 256,
        }
    }
}

/// The in-process echo server: decrypt, flip, re-encrypt.
fn echo_server(key: u64, wire: &[u8]) -> Vec<u8> {
    let plain = decrypt(key, wire);
    encrypt(key, &plain)
}

/// Runs the tunnel. Global counters live in the shared arena under a
/// lock; in the checked build each counter access also performs the
/// `locked(l)` held-lock check.
pub fn run_native<P: AccessPolicy>(params: &Params) -> NativeRun {
    // Word 0: messages counter; word 2: bytes counter (separate
    // granules to avoid irrelevant false sharing).
    let arena: Arc<Arena> = Arc::new(Arena::new(4));
    let locks = Arc::new(LockRegistry::new(1));
    let counter_lock = LockId(0);
    let is_checked = P::NAME == "sharc";

    let mut handles = Vec::new();
    for c in 0..params.clients {
        let arena = Arc::clone(&arena);
        let locks = Arc::clone(&locks);
        let params = *params;
        handles.push(std::thread::spawn(move || {
            let mut ctx = ThreadCtx::new(ThreadId(c as u8 + 2));
            let key = 0x57A7_0000 + c as u64;
            let mut ok = 0u64;
            let mut lock_checks = 0u64;
            for m in 0..params.messages {
                // Build and encrypt the message (private buffer).
                let plain: Vec<u8> = (0..params.msg_len).map(|i| (m + i + c) as u8).collect();
                let wire = encrypt(key, &plain);
                let reply = echo_server(key, &wire);
                let back = decrypt(key, &reply);
                if back == plain {
                    ok += 1;
                }
                // Update the locked global counters.
                locks.lock(&mut ctx, counter_lock);
                if is_checked {
                    // The locked(l) runtime check consults the log.
                    ctx.assert_held(counter_lock).expect("lock held");
                    lock_checks += 2;
                }
                let msgs = arena.read_unchecked(0);
                arena.write_unchecked(0, msgs + 1);
                let bytes = arena.read_unchecked(2);
                arena.write_unchecked(2, bytes + params.msg_len as u64);
                ctx.total_accesses += 4;
                locks.unlock(&mut ctx, counter_lock);
            }
            (ok, ctx.total_accesses, lock_checks, ctx.conflicts)
        }));
    }

    let mut checksum = 0u64;
    let mut total = 0u64;
    let mut lock_checks = 0u64;
    let mut conflicts = 0usize;
    for h in handles {
        let (ok, t, lc, cf) = h.join().expect("client panicked");
        checksum += ok;
        total += t;
        lock_checks += lc;
        conflicts += cf;
    }
    checksum = checksum
        .wrapping_mul(1000)
        .wrapping_add(arena.read_unchecked(0));

    NativeRun {
        checksum,
        checked: lock_checks,
        total: total + (params.clients * params.messages * params.msg_len * 4) as u64,
        conflicts,
        payload_bytes: params.clients * params.messages * params.msg_len,
        shadow_bytes: if is_checked { 64 } else { 0 },
        threads: params.clients + 1,
    }
}

/// The MiniC port: per-client threads, private message buffers
/// initialized before spawn, and locked global counters.
pub fn minic_source() -> &'static str {
    r#"
// stunnel.c — encrypting tunnel (MiniC port).
struct client {
    int readonly id;
    int readonly key;
    int nmsgs;
};

mutex gm;
int locked(gm) total_msgs;
int locked(gm) total_bytes;
int racy active_clients;

int crypt_step(int state) {
    return state * 1103515245 + 12345;
}

void client_thread(struct client * c) {
    char private * buf;
    int m;
    int i;
    int state;
    int n;
    n = c->nmsgs;
    for (m = 0; m < n; m++) {
        buf = newarray(char private, 64);
        // Fill and "encrypt" the private buffer.
        state = c->key + m;
        for (i = 0; i < 64; i++) {
            state = crypt_step(state);
            buf[i] = state % 256;
        }
        // "Echo" round-trip: decrypt in place.
        state = c->key + m;
        for (i = 0; i < 64; i++) {
            state = crypt_step(state);
            buf[i] = buf[i] - state % 256;
        }
        free(buf);
        mutex_lock(&gm);
        total_msgs = total_msgs + 1;
        total_bytes = total_bytes + 64;
        mutex_unlock(&gm);
    }
    active_clients = active_clients - 1;
}

void main() {
    struct client private * c1;
    struct client private * c2;
    struct client private * c3;
    c1 = new(struct client private);
    c2 = new(struct client private);
    c3 = new(struct client private);
    // The main thread initializes client data before spawning
    // (readonly fields are writable while the struct is private).
    c1->id = 1; c1->key = 101; c1->nmsgs = 20;
    c2->id = 2; c2->key = 202; c2->nmsgs = 20;
    c3->id = 3; c3->key = 303; c3->nmsgs = 20;
    active_clients = 3;
    spawn(client_thread, SCAST(struct client dynamic *, c1));
    spawn(client_thread, SCAST(struct client dynamic *, c2));
    spawn(client_thread, SCAST(struct client dynamic *, c3));
    join_all();
    mutex_lock(&gm);
    print(total_msgs);
    print(total_bytes);
    mutex_unlock(&gm);
}
"#
}

/// Full benchmark.
pub fn bench(scale: Scale) -> BenchResult {
    let params = Params::scaled(scale);
    run_benchmark("stunnel", minic_source(), scale.reps, |checked| {
        if checked {
            run_native::<Checked>(&params)
        } else {
            run_native::<Unchecked>(&params)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_messages_roundtrip() {
        let params = Params::scaled(Scale::quick());
        let a = run_native::<Unchecked>(&params);
        let b = run_native::<Checked>(&params);
        assert_eq!(a.checksum, b.checksum);
        // checksum encodes ok-count * 1000 + message counter.
        let expect = (params.clients * params.messages) as u64;
        assert_eq!(a.checksum, expect * 1000 + expect);
    }

    #[test]
    fn overhead_is_small() {
        // Paper: 2% — encryption dominates; checks touch only the
        // counter updates.
        let params = Params::scaled(Scale::quick());
        let (t_orig, _) = crate::table::time_mean(2, || run_native::<Unchecked>(&params));
        let (t_sharc, _) = crate::table::time_mean(2, || run_native::<Checked>(&params));
        let ratio = t_sharc.as_secs_f64() / t_orig.as_secs_f64();
        assert!(ratio < 1.5, "locked counters are cheap (ratio {ratio:.2})");
    }

    #[test]
    fn minic_version_compiles_clean() {
        let (lines, annots, casts) = crate::table::minic_columns("stunnel.c", minic_source());
        assert!(lines > 40);
        assert!(
            annots >= 8,
            "stunnel has the most annotations; got {annots}"
        );
        assert_eq!(casts, 3, "one ownership transfer per spawned client");
    }
}
