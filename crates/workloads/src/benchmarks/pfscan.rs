//! **pfscan** — the parallel file scanner (Table 1 row 1).
//!
//! "A tool that spawns multiple threads for searching through files.
//! One thread finds all the paths that must be searched, and an
//! arbitrary number of threads take paths off of a shared queue
//! protected with a mutex and search files at those paths."
//!
//! Paper row: 3 threads, 1.1k lines, 8 annotations, 11 changes, 12%
//! time overhead, 0.8% memory, **80.0% dynamic accesses** — the file
//! buffers themselves are dynamic-mode, so almost every access is
//! checked.

use crate::substrates::filesys::{FsConfig, SynthFs};
use crate::table::{run_benchmark, BenchResult, NativeRun, Scale};
use sharc_checker::CheckEvent;
use sharc_runtime::{
    AccessPolicy, Arena, Checked, EventLog, EventSink, ThreadCtx, ThreadId, Unchecked,
};
use sharc_testkit::sync::Mutex;
use std::collections::VecDeque;
use std::sync::Arc;

const NEEDLE: &[u8] = b"needle";

/// Workload parameters.
#[derive(Debug, Clone, Copy)]
pub struct Params {
    pub fs: FsConfig,
    pub workers: usize,
}

impl Params {
    /// Parameters for a given benchmark scale (also used by the
    /// `sharc native` facade).
    pub fn scaled(scale: Scale) -> Self {
        Params {
            fs: FsConfig {
                n_dirs: if scale.quick { 2 } else { 8 },
                files_per_dir: if scale.quick { 4 } else { 12 },
                file_size: if scale.quick { 2048 } else { 8192 },
                // Plant needles densely enough that every scale finds
                // matches in every file it sweeps.
                needle_every: 256,
                ..FsConfig::default()
            },
            workers: 2,
        }
    }
}

/// A file-scan job: where the file's bytes start in the shared arena
/// (byte offsets; bytes are packed 8 per word as in C memory).
#[derive(Debug, Clone, Copy)]
struct Job {
    offset: usize,
    len: usize,
}

/// Byte `pos` out of a word buffer previously swept out of the arena
/// (words are packed 8 bytes each, little-endian, as C memory).
#[inline]
fn byte_of(words: &[u64], pos: usize) -> u8 {
    (words[pos / 8] >> ((pos % 8) * 8)) as u8
}

/// Runs the scan with access policy `P`, returning the run record.
pub fn run_native<P: AccessPolicy>(params: &Params) -> NativeRun {
    run_with_sink::<P>(params, None)
}

/// Runs the scan **checked and traced**: every checked access, lock
/// operation, fork and thread exit is mirrored into an [`EventLog`],
/// so the exact native execution can be replayed through any
/// [`sharc_checker::CheckBackend`] — this is the native end of the
/// event spine (`sharc native pfscan --detector ...`).
pub fn run_traced(params: &Params) -> (NativeRun, Vec<CheckEvent>) {
    let sink = Arc::new(EventLog::new());
    let run = run_with_events(params, sink.clone());
    (run, sink.take())
}

/// Runs the scan checked, recording into any [`EventSink`] — the
/// entry the online (`StreamingSink`) detector path uses.
pub fn run_with_events(params: &Params, sink: Arc<dyn EventSink>) -> NativeRun {
    run_with_sink::<Checked>(params, Some(sink))
}

fn run_with_sink<P: AccessPolicy>(params: &Params, sink: Option<Arc<dyn EventSink>>) -> NativeRun {
    let fs = SynthFs::generate(params.fs, "needle");
    let total_bytes = fs.total_bytes();

    // The "path producer" loads every file into the shared arena,
    // bytes packed 8 per word as in C memory (so each 16-byte shadow
    // granule covers 16 characters, exactly the paper's layout).
    let arena: Arc<Arena> = Arc::new(Arena::new(total_bytes.div_ceil(8) + 1));
    let queue: Arc<Mutex<VecDeque<Job>>> = Arc::new(Mutex::new(VecDeque::new()));
    let mut producer_ctx = ThreadCtx::new(ThreadId(1));
    {
        let mut off = 0usize;
        let mut q = queue.lock();
        for path in fs.paths() {
            let content = fs.read(&path).expect("generated path exists");
            for (i, chunk) in content.chunks(8).enumerate() {
                let mut w = 0u64;
                for (k, &b) in chunk.iter().enumerate() {
                    w |= (b as u64) << (k * 8);
                }
                // The producer owns the buffer while filling it
                // (private mode): unchecked in both builds, but still
                // counted toward the total-access denominator.
                Unchecked::write(&arena, &mut producer_ctx, off / 8 + i, w);
            }
            q.push_back(Job {
                offset: off,
                len: content.len(),
            });
            // Keep every file word-aligned.
            off += content.len().next_multiple_of(8);
        }
    }

    // Worker threads scan files taken from the queue; buffers are
    // dynamic-mode (accessible by any worker), so scans go through P.
    let mut handles = Vec::new();
    for w in 0..params.workers {
        let arena = Arc::clone(&arena);
        let queue = Arc::clone(&queue);
        let sink = sink.clone();
        if let Some(sink) = &sink {
            // Fork is recorded by the parent *before* the child can
            // emit, so the linearized trace orders it first.
            sink.record(CheckEvent::Fork {
                parent: 1,
                child: w as u32 + 2,
            });
        }
        handles.push(std::thread::spawn(move || {
            let tid = ThreadId(w as u8 + 2);
            let mut ctx = match sink {
                Some(sink) => ThreadCtx::with_sink(tid, sink),
                None => ThreadCtx::new(tid),
            };
            let mut matches = 0u64;
            let mut buf: Vec<u64> = Vec::new();
            loop {
                let job = queue.lock().pop_front();
                let Some(job) = job else { break };
                // The bulk inner loop: ONE ranged `chkread` sweeps the
                // whole file buffer out of the arena (one check per
                // sweep instead of one per word), then the scan runs
                // on the local copy.
                let wstart = job.offset / 8; // files are word-aligned
                let wlen = job.len.div_ceil(8);
                buf.clear();
                P::read_range(&arena, &mut ctx, wstart, wlen, &mut |_, v| buf.push(v));
                let n = NEEDLE.len();
                if job.len >= n {
                    for i in 0..=job.len - n {
                        let hit = NEEDLE
                            .iter()
                            .enumerate()
                            .all(|(k, &nb)| byte_of(&buf, i + k) == nb);
                        if hit {
                            matches += 1;
                        }
                    }
                }
            }
            let record = (
                matches,
                ctx.checked_accesses,
                ctx.total_accesses,
                ctx.conflicts,
            );
            arena.thread_exit(&mut ctx);
            record
        }));
    }

    let mut checksum = 0u64;
    let mut checked = 0u64;
    let mut total = producer_ctx.total_accesses;
    let mut conflicts = 0usize;
    for h in handles {
        let (m, c, t, cf) = h.join().expect("worker panicked");
        checksum += m;
        checked += c;
        total += t;
        conflicts += cf;
    }

    NativeRun {
        checksum,
        checked,
        total,
        conflicts,
        payload_bytes: arena.payload_bytes(),
        shadow_bytes: arena.shadow_bytes(),
        threads: params.workers + 1,
    }
}

/// The MiniC port: same structure (producer + queue + scanning
/// workers), with the paper's annotation style.
pub fn minic_source() -> &'static str {
    r#"
// pfscan.c — parallel file scanner (MiniC port).
// One producer enqueues file ids; scanner threads claim a file,
// load it into their region of the shared buffer, and scan it.
struct queue {
    mutex m;
    cond cv;
    int locked(m) head;
    int locked(m) tail;
    int locked(m) jobs[64];
    int racy done;
};

int dynamic filedata[4096];
mutex mlock;
int locked(mlock) matches;

void scanner(struct queue * q) {
    int job;
    int base;
    int len;
    int i;
    int hits;
    hits = 0;
    while (1) {
        mutex_lock(&q->m);
        while (q->head == q->tail) {
            if (q->done) {
                mutex_unlock(&q->m);
                mutex_lock(&mlock);
                matches = matches + hits;
                mutex_unlock(&mlock);
                return;
            }
            cond_wait(&q->cv, &q->m);
        }
        job = q->jobs[q->head % 64];
        q->head = q->head + 1;
        mutex_unlock(&q->m);
        // Load the "file" into this worker's region, then scan it.
        base = job * 256;
        len = 200;
        for (i = 0; i < len; i++) {
            filedata[base + i] = random(256);
        }
        for (i = 0; i < len - 1; i++) {
            if (filedata[base + i] == 110) {
                if (filedata[base + i + 1] == 101) {
                    hits = hits + 1;
                }
            }
        }
    }
}

void main() {
    struct queue * q = new(struct queue);
    int f;
    int t1;
    int t2;
    t1 = spawn(scanner, q);
    t2 = spawn(scanner, q);
    for (f = 0; f < 16; f++) {
        mutex_lock(&q->m);
        q->jobs[q->tail % 64] = f;
        q->tail = q->tail + 1;
        cond_signal(&q->cv);
        mutex_unlock(&q->m);
    }
    mutex_lock(&q->m);
    q->done = 1;
    cond_broadcast(&q->cv);
    mutex_unlock(&q->m);
    join(t1);
    join(t2);
    mutex_lock(&mlock);
    print(matches);
    mutex_unlock(&mlock);
}
"#
}

/// Full benchmark: MiniC columns + timed native runs.
pub fn bench(scale: Scale) -> BenchResult {
    let params = Params::scaled(scale);
    run_benchmark("pfscan", minic_source(), scale.reps, |checked| {
        if checked {
            run_native::<Checked>(&params)
        } else {
            run_native::<Unchecked>(&params)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn native_matches_oracle() {
        let params = Params::scaled(Scale::quick());
        let fs = SynthFs::generate(params.fs, "needle");
        let expect = fs.count_occurrences(NEEDLE) as u64;
        let orig = run_native::<Unchecked>(&params);
        let sharc = run_native::<Checked>(&params);
        assert_eq!(orig.checksum, expect);
        assert_eq!(sharc.checksum, expect);
    }

    #[test]
    fn dynamic_fraction_is_high() {
        // The paper reports 80% dynamic accesses for pfscan: the scan
        // itself is checked. Our split: scans checked, produce phase
        // unchecked.
        let params = Params::scaled(Scale::quick());
        let r = run_native::<Checked>(&params);
        // The ranged sweep reads each word exactly once, so the split
        // is exactly produce-unchecked / scan-checked: half of all
        // accesses are dynamic-mode.
        assert!(
            r.checked as f64 / r.total as f64 >= 0.5,
            "scan accesses are checked: {}/{}",
            r.checked,
            r.total
        );
    }

    #[test]
    fn no_conflicts_reading_shared_files() {
        let params = Params::scaled(Scale::quick());
        let r = run_native::<Checked>(&params);
        assert_eq!(r.conflicts, 0, "read-sharing is legal in dynamic mode");
    }

    #[test]
    fn traced_run_replays_silently_through_sharc() {
        // Read-sharing the file buffers is legal in dynamic mode, so
        // the native trace replays clean through SharC's own backend.
        let params = Params::scaled(Scale::quick());
        let fs = SynthFs::generate(params.fs, "needle");
        let (run, trace) = run_traced(&params);
        assert_eq!(run.checksum, fs.count_occurrences(NEEDLE) as u64);
        // Every checked access is covered by the trace — now mostly
        // as ranged events, one per buffer sweep (a RangeRead of
        // `len` granules covers up to `len * GRANULE_WORDS` word
        // accesses).
        let covered: u64 = trace
            .iter()
            .map(|e| match e {
                CheckEvent::Read { .. } | CheckEvent::Write { .. } => 1,
                CheckEvent::RangeRead { len, .. } | CheckEvent::RangeWrite { len, .. } => {
                    (len * sharc_runtime::GRANULE_WORDS) as u64
                }
                _ => 0,
            })
            .sum();
        assert!(
            covered >= run.checked,
            "all checked accesses covered: {covered} covered, {} checked",
            run.checked
        );
        assert!(
            trace
                .iter()
                .any(|e| matches!(e, CheckEvent::RangeRead { .. })),
            "file sweeps are ranged events"
        );
        let conflicts = sharc_checker::replay(&trace, &mut sharc_checker::BitmapBackend::new());
        assert!(conflicts.is_empty(), "{conflicts:?}");
    }

    #[test]
    fn minic_version_compiles_clean() {
        let (lines, annots, casts) = crate::table::minic_columns("pfscan.c", minic_source());
        assert!(lines > 40);
        assert!(
            annots >= 5,
            "pfscan paper row lists 8 annotations; got {annots}"
        );
        let _ = casts;
    }
}
