//! **pbzip2** — parallel block compression (Table 1 row 3).
//!
//! "The pbzip2 benchmark has threads for file I/O, and an arbitrary
//! number of threads for (de)compressing data blocks, which the
//! file-reader thread arranges into a shared queue. The functions
//! that perform the (de)compression assume they have ownership of the
//! blocks, and so we annotate their arguments as private. One benign
//! race was found in a flag used to signal that reading from the
//! input file has finished."
//!
//! Paper row: 5 threads, 10k lines, 10 annotations, 36 changes, 11%
//! time, 1.6% memory, ~0.0% dynamic accesses. The blocks are
//! privately owned (unchecked); SharC's cost is the per-block
//! ownership transfer: a reference-counted slot update plus a
//! `oneref` sharing cast, which this workload performs with the
//! Levanoni–Petrank counter.

use crate::substrates::compress::compress_block;
use crate::substrates::net::fnv;
use crate::table::{run_benchmark, BenchResult, NativeRun, Scale};
use sharc_checker::CheckEvent;
use sharc_runtime::{sharing_cast, EventLog, EventSink, LpRc, RcScheme};
use sharc_testkit::sync::{Condvar, Mutex};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Workload parameters.
#[derive(Debug, Clone, Copy)]
pub struct Params {
    pub input_size: usize,
    pub block: usize,
    pub workers: usize,
}

impl Params {
    /// Parameters for a given benchmark scale (also used by the
    /// `sharc native` facade).
    pub fn scaled(scale: Scale) -> Self {
        Params {
            input_size: if scale.quick { 64 * 1024 } else { 512 * 1024 },
            block: 16 * 1024,
            workers: 3,
        }
    }
}

/// Symbolic shadow granules per block in the emitted trace: blocks
/// are 16 KiB, so their footprint spans many granules; the trace
/// models that with [`BLOCK_GRANULES`] granules per block, swept by
/// ONE `RangeRead`/`RangeWrite` event per (de)compression pass — the
/// bulk inner loop on the ranged path. Replay lowers each range to
/// per-granule checks, so verdicts match the per-granule spelling.
pub const BLOCK_GRANULES: usize = 4;

/// First symbolic granule of block `idx`.
#[inline]
fn block_granule(idx: usize) -> usize {
    idx * BLOCK_GRANULES
}

/// A block exchanged through the pipeline. The payload vector is the
/// privately-owned buffer; `slot` is the reference-counted cell that
/// models the pointer hand-off the paper instruments.
#[derive(Debug)]
struct Slot {
    buf: Mutex<Option<Vec<u8>>>,
    cv: Condvar,
}

impl Slot {
    fn new() -> Self {
        Slot {
            buf: Mutex::new(None),
            cv: Condvar::new(),
        }
    }

    /// Publishes a block. When tracing, the lock events are recorded
    /// *while the slot mutex is held* (after the wait loop settles),
    /// so the linearized trace orders this release before the
    /// consumer's acquire — the edge a happens-before replay needs.
    fn put(&self, v: Vec<u8>, trace: Option<(&dyn EventSink, u32, usize)>) {
        let mut b = self.buf.lock();
        while b.is_some() {
            self.cv.wait(&mut b);
        }
        if let Some((s, tid, lock)) = trace {
            s.record(CheckEvent::Acquire { tid, lock });
            s.record(CheckEvent::Release { tid, lock });
        }
        *b = Some(v);
        self.cv.notify_all();
    }
}

/// Deterministic compressible input (text-like).
pub fn make_input(size: usize) -> Vec<u8> {
    let phrase = b"the quick brown fox jumps over the lazy dog; pack my box; ";
    phrase.iter().cycle().take(size).copied().collect()
}

/// Runs the compression pipeline. When `checked` is true, every block
/// hand-off performs the SharC instrumentation: an RC write barrier
/// on the slot plus a `oneref` sharing cast (the paper's `SCAST`).
pub fn run_native(params: &Params, checked: bool) -> NativeRun {
    run_with_sink(params, checked, None)
}

/// Runs the pipeline **checked and traced**: each block's lifecycle —
/// the reader's private fill, the `oneref` cast into the hand-off
/// slot, the worker's private (de)compression, and the second cast to
/// the writer — is mirrored into an [`EventLog`] as [`CheckEvent`]s,
/// so this exact native execution can be replayed through any
/// [`sharc_checker::CheckBackend`] (`sharc native pbzip2
/// --detector …`). [`BLOCK_GRANULES`] granules per block, swept by
/// one ranged event per (de)compression pass; the benign racy
/// "reading finished" flag is annotated `racy` in the paper and is
/// deliberately *not* traced — racy-mode accesses are unchecked.
pub fn run_traced(params: &Params) -> (NativeRun, Vec<CheckEvent>) {
    let sink = Arc::new(EventLog::new());
    let run = run_with_events(params, sink.clone());
    (run, sink.take())
}

/// Runs the pipeline checked, recording into any [`EventSink`] — the
/// entry the online (`StreamingSink`) detector path uses.
pub fn run_with_events(params: &Params, sink: Arc<dyn EventSink>) -> NativeRun {
    run_with_sink(params, true, Some(sink))
}

/// Trace tids: the reader/writer main thread is 1, workers are
/// `2..2 + workers`. Lock ids: slot `w` is `w`, the results vector is
/// `workers`.
fn run_with_sink(params: &Params, checked: bool, sink: Option<Arc<dyn EventSink>>) -> NativeRun {
    let input = make_input(params.input_size);
    let n_blocks = input.len().div_ceil(params.block);

    // One RC slot per in-flight hand-off (reader->worker and
    // worker->writer), as the instrumented pointer cells.
    let rc = Arc::new(LpRc::new(
        2 * n_blocks.max(1),
        n_blocks.max(1),
        params.workers + 2,
    ));
    let scast_failures = Arc::new(AtomicU64::new(0));

    type Results = Arc<Mutex<Vec<(usize, Vec<u8>)>>>;
    let work_slots: Arc<Vec<Slot>> = Arc::new((0..params.workers).map(|_| Slot::new()).collect());
    let done_flag = Arc::new(AtomicBool::new(false));
    let results: Results = Arc::new(Mutex::new(Vec::new()));

    let results_lock = params.workers;
    std::thread::scope(|scope| {
        // Worker threads: take a block, compress privately, hand off.
        for w in 0..params.workers {
            let work_slots = Arc::clone(&work_slots);
            let results = Arc::clone(&results);
            let rc = Arc::clone(&rc);
            let scast_failures = Arc::clone(&scast_failures);
            let done = Arc::clone(&done_flag);
            let tid = w as u32 + 2;
            if let Some(s) = &sink {
                // Fork is recorded by the parent *before* the child
                // can emit, so the linearized trace orders it first.
                s.record(CheckEvent::Fork {
                    parent: 1,
                    child: tid,
                });
            }
            let sink = sink.clone();
            scope.spawn(move || {
                let mutator = w + 1;
                loop {
                    // The benign racy "reading finished" flag —
                    // `racy`-annotated in the paper, so unchecked and
                    // untraced.
                    if done.load(Ordering::Relaxed) {
                        let empty = work_slots[w].buf.lock().is_none();
                        if empty {
                            break;
                        }
                    }
                    let mut guard = work_slots[w].buf.lock();
                    let taken = guard.take();
                    if taken.is_some() {
                        if let Some(s) = &sink {
                            // Recorded while the slot mutex is held:
                            // the trace orders the reader's release
                            // of this lock before this acquire.
                            s.record(CheckEvent::Acquire { tid, lock: w });
                            s.record(CheckEvent::Release { tid, lock: w });
                        }
                    }
                    drop(guard);
                    let Some(block) = taken else {
                        std::thread::yield_now();
                        continue;
                    };
                    work_slots[w].cv.notify_all();
                    let (idx, data) = decode_block(block);
                    if checked {
                        // Consume the hand-off slot: SCAST to private.
                        if sharing_cast(&*rc, mutator, 2 * idx).is_err() {
                            scast_failures.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    if let Some(s) = &sink {
                        let base = block_granule(idx);
                        // One-operation hand-off: a single ranged
                        // cast covers the whole block.
                        s.record(CheckEvent::RangeCast {
                            tid,
                            granule: base,
                            len: BLOCK_GRANULES,
                            refs: 1,
                        });
                        // The block is private again: the compression
                        // loop reads the input and writes the output
                        // in place, lock-free — the access pattern
                        // locksets judge most harshly. One ranged
                        // sweep per pass over the block's granules.
                        s.record(CheckEvent::RangeRead {
                            tid,
                            granule: base,
                            len: BLOCK_GRANULES,
                        });
                        s.record(CheckEvent::RangeWrite {
                            tid,
                            granule: base,
                            len: BLOCK_GRANULES,
                        });
                    }
                    // Compression on the privately-owned buffer:
                    // unchecked in both builds (annotated private).
                    let compressed = compress_block(&data);
                    if checked {
                        rc.store(mutator, 2 * idx + 1, Some(sharc_runtime::ObjId(idx as u32)));
                    }
                    let mut r = results.lock();
                    if let Some(s) = &sink {
                        s.record(CheckEvent::Acquire {
                            tid,
                            lock: results_lock,
                        });
                        s.record(CheckEvent::Release {
                            tid,
                            lock: results_lock,
                        });
                    }
                    r.push((idx, compressed));
                }
                if let Some(s) = &sink {
                    s.record(CheckEvent::ThreadExit { tid });
                }
            });
        }

        // The reader thread (here: main) splits input into blocks and
        // distributes them round-robin.
        for (idx, chunk) in input.chunks(params.block).enumerate() {
            if let Some(s) = &sink {
                // A fresh block, filled privately by the reader (one
                // ranged write over its whole footprint), then cast
                // into the hand-off slot (the RC write barrier below
                // is the runtime effect the events record).
                let base = block_granule(idx);
                s.record(CheckEvent::RangeFree {
                    granule: base,
                    len: BLOCK_GRANULES,
                });
                s.record(CheckEvent::RangeWrite {
                    tid: 1,
                    granule: base,
                    len: BLOCK_GRANULES,
                });
                s.record(CheckEvent::RangeCast {
                    tid: 1,
                    granule: base,
                    len: BLOCK_GRANULES,
                    refs: 1,
                });
            }
            if checked {
                // Publish the block pointer into the hand-off slot,
                // with the RC write barrier.
                rc.store(0, 2 * idx, Some(sharc_runtime::ObjId(idx as u32)));
            }
            let w = idx % params.workers;
            work_slots[w].put(
                encode_block(idx, chunk),
                sink.as_deref().map(|s| (s, 1u32, w)),
            );
        }
        done_flag.store(true, Ordering::Relaxed);
    });

    // Writer phase: collect in order, verify, and checksum. In the
    // trace this runs as tid 1 again (it *is* the main thread), after
    // the joins that scope exit performed.
    if let Some(s) = &sink {
        for w in 0..params.workers {
            s.record(CheckEvent::Join {
                parent: 1,
                child: w as u32 + 2,
            });
        }
    }
    let mut results = Arc::try_unwrap(results)
        .expect("all threads joined")
        .into_inner();
    results.sort_by_key(|&(i, _)| i);
    let writer_mutator = params.workers + 1;
    let mut checksum = 0u64;
    let mut compressed_total = 0usize;
    for (idx, c) in &results {
        if checked && sharing_cast(&*rc, writer_mutator, 2 * idx + 1).is_err() {
            scast_failures.fetch_add(1, Ordering::Relaxed);
        }
        if let Some(s) = &sink {
            // The worker-to-writer hand-off: the second `oneref`
            // cast, then the writer's ordered ranged read of the
            // whole block.
            let base = block_granule(*idx);
            s.record(CheckEvent::RangeCast {
                tid: 1,
                granule: base,
                len: BLOCK_GRANULES,
                refs: 1,
            });
            s.record(CheckEvent::RangeRead {
                tid: 1,
                granule: base,
                len: BLOCK_GRANULES,
            });
        }
        checksum = checksum.wrapping_add(fnv(c).wrapping_mul(*idx as u64 + 1));
        compressed_total += c.len();
    }

    NativeRun {
        checksum,
        // Dynamic-mode data is only the hand-off bookkeeping: the
        // paper reports ~0.0% dynamic accesses for pbzip2.
        checked: if checked { 2 * n_blocks as u64 } else { 0 },
        total: (params.input_size + compressed_total) as u64,
        conflicts: scast_failures.load(Ordering::Relaxed) as usize,
        payload_bytes: params.input_size,
        // SharC's extra memory: RC slots, dirty bits, and logs.
        shadow_bytes: 2 * n_blocks * (8 + 2) + params.input_size / 16,
        threads: params.workers + 2,
    }
}

fn encode_block(idx: usize, data: &[u8]) -> Vec<u8> {
    let mut v = Vec::with_capacity(data.len() + 8);
    v.extend_from_slice(&(idx as u64).to_le_bytes());
    v.extend_from_slice(data);
    v
}

fn decode_block(v: Vec<u8>) -> (usize, Vec<u8>) {
    let idx = u64::from_le_bytes(v[..8].try_into().expect("block header")) as usize;
    (idx, v[8..].to_vec())
}

/// The MiniC port: reader -> queue -> compressors, with private block
/// ownership transferred by sharing casts and a benign racy flag.
pub fn minic_source() -> &'static str {
    r#"
// pbzip2.c — parallel block compressor (MiniC port).
struct pipe {
    mutex m;
    cond cv;
    char *locked(m) slot;
    int racy reading_done;
    int locked(m) produced;
    int locked(m) consumed;
};

mutex outm;
int locked(outm) out_bytes;

void compressor(struct pipe * p) {
    char private * block;
    int i;
    int run;
    int outlen;
    while (1) {
        mutex_lock(&p->m);
        while (p->slot == NULL) {
            if (p->reading_done) {
                if (p->consumed == p->produced) {
                    mutex_unlock(&p->m);
                    return;
                }
            }
            cond_wait(&p->cv, &p->m);
        }
        block = SCAST(char private *, p->slot);
        p->consumed = p->consumed + 1;
        cond_signal(&p->cv);
        mutex_unlock(&p->m);
        // "Compress" the privately-owned block: run-length encode.
        outlen = 0;
        run = 1;
        for (i = 1; i < 64; i++) {
            if (block[i] == block[i - 1]) {
                run = run + 1;
            } else {
                outlen = outlen + 2;
                run = 1;
            }
        }
        free(block);
        mutex_lock(&outm);
        out_bytes = out_bytes + outlen;
        mutex_unlock(&outm);
    }
}

void main() {
    struct pipe * p = new(struct pipe);
    char private * block;
    int b;
    int i;
    int t1;
    int t2;
    int t3;
    t1 = spawn(compressor, p);
    t2 = spawn(compressor, p);
    t3 = spawn(compressor, p);
    for (b = 0; b < 12; b++) {
        block = newarray(char private, 64);
        for (i = 0; i < 64; i++) {
            block[i] = random(4);
        }
        mutex_lock(&p->m);
        while (p->slot)
            cond_wait(&p->cv, &p->m);
        p->slot = SCAST(char locked(p->m) *, block);
        p->produced = p->produced + 1;
        cond_signal(&p->cv);
        mutex_unlock(&p->m);
    }
    p->reading_done = 1;
    mutex_lock(&p->m);
    cond_broadcast(&p->cv);
    mutex_unlock(&p->m);
    join(t1);
    join(t2);
    join(t3);
    mutex_lock(&outm);
    print(out_bytes);
    mutex_unlock(&outm);
}
"#
}

/// Full benchmark.
pub fn bench(scale: Scale) -> BenchResult {
    let params = Params::scaled(scale);
    run_benchmark("pbzip2", minic_source(), scale.reps, |checked| {
        run_native(&params, checked)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipeline_compresses_correctly() {
        let params = Params::scaled(Scale::quick());
        let orig = run_native(&params, false);
        let sharc = run_native(&params, true);
        assert_eq!(orig.checksum, sharc.checksum, "same compressed output");
        assert_eq!(sharc.conflicts, 0, "all sharing casts succeed");
    }

    #[test]
    fn compression_roundtrip_through_pipeline_blocks() {
        use crate::substrates::compress::decompress_block;
        let input = make_input(48 * 1024);
        for chunk in input.chunks(16 * 1024) {
            let c = compress_block(chunk);
            assert_eq!(decompress_block(&c), chunk);
            assert!(c.len() < chunk.len(), "text input compresses");
        }
    }

    #[test]
    fn dynamic_fraction_is_tiny() {
        let params = Params::scaled(Scale::quick());
        let r = run_native(&params, true);
        assert!(
            (r.checked as f64 / r.total as f64) < 0.01,
            "paper reports ~0.0% dynamic for pbzip2"
        );
    }

    #[test]
    fn traced_run_matches_untraced() {
        let params = Params::scaled(Scale::quick());
        let (run, trace) = run_traced(&params);
        assert_eq!(run.checksum, run_native(&params, true).checksum);
        assert_eq!(run.conflicts, 0);
        assert!(!trace.is_empty());
    }

    #[test]
    fn sharc_is_clean_and_eraser_false_positives_on_the_same_execution() {
        // Table 1 row 3 through the event spine: the per-block
        // ownership transfers (reader -> worker -> writer) are clean
        // under SharC — each cast is the evidence — while Eraser's
        // lockset for the block payload goes empty (the whole point
        // of private annotation is compressing without a lock held).
        use sharc_checker::{replay, BitmapBackend};
        use sharc_detectors::{BaselineBackend, Eraser};
        let (_, trace) = run_traced(&Params::scaled(Scale::quick()));
        let sharc = replay(&trace, &mut BitmapBackend::new());
        assert!(sharc.is_empty(), "SharC models the transfers: {sharc:?}");
        let eraser = replay(&trace, &mut BaselineBackend::new(Eraser::new()));
        assert!(!eraser.is_empty(), "Eraser misses the ownership transfer");
    }

    #[test]
    fn stripping_the_casts_makes_sharc_report_too() {
        // The casts are load-bearing: without them the reader's
        // writer-state survives into the worker's accesses.
        use sharc_checker::{replay, BitmapBackend};
        let (_, trace) = run_traced(&Params::scaled(Scale::quick()));
        let stripped: Vec<CheckEvent> = trace
            .into_iter()
            .filter(|e| {
                !matches!(
                    e,
                    CheckEvent::SharingCast { .. } | CheckEvent::RangeCast { .. }
                )
            })
            .collect();
        let conflicts = replay(&stripped, &mut BitmapBackend::new());
        assert!(!conflicts.is_empty(), "no cast, no transfer, real conflict");
    }

    #[test]
    fn every_block_hand_off_is_one_ranged_operation() {
        // The acceptance bar for the ranged spine: each reader ->
        // worker -> writer transfer is ONE RangeCast (three per
        // block), each block birth is ONE RangeFree — never the
        // O(granules) per-granule expansion.
        let params = Params::scaled(Scale::quick());
        let blocks = params.input_size.div_ceil(params.block);
        let (_, trace) = run_traced(&params);
        let count = |f: fn(&CheckEvent) -> bool| trace.iter().filter(|e| f(e)).count();
        assert_eq!(
            count(|e| matches!(e, CheckEvent::RangeCast { .. })),
            3 * blocks
        );
        assert_eq!(count(|e| matches!(e, CheckEvent::RangeFree { .. })), blocks);
        assert_eq!(count(|e| matches!(e, CheckEvent::SharingCast { .. })), 0);
    }

    #[test]
    fn minic_version_compiles_clean() {
        let (lines, annots, casts) = crate::table::minic_columns("pbzip2.c", minic_source());
        assert!(lines > 50);
        assert!(annots >= 5);
        assert_eq!(casts, 2, "one cast per hand-off direction");
    }
}
