//! **fftw** — the FFT benchmark (Table 1 row 5).
//!
//! "The fftw benchmark performs 32 random FFTs... computes by
//! dividing arrays among a fixed number of worker threads. Ownership
//! of arrays is transferred to each thread, and then reclaimed when
//! the threads are finished. The functions that compute over the
//! partial arrays assume that they own that memory, so it was only
//! necessary to annotate those arguments as private."
//!
//! Paper row: 3 threads, 197k lines, 7 annotations, 39 changes, 7%
//! time, 1.2% memory, 0.2% dynamic accesses. The kernel runs on
//! privately-owned arrays (unchecked); SharC's cost is the per-array
//! ownership transfer (RC barrier + `oneref` cast) and a few checked
//! coordination words.

use crate::substrates::fft::{fft, random_signal, Complex};
use crate::table::{run_benchmark, BenchResult, NativeRun, Scale};
use sharc_checker::CheckEvent;
use sharc_runtime::{
    sharing_cast, Arena, EventLog, EventSink, LpRc, ObjId, RcScheme, ThreadCtx, ThreadId,
    GRANULE_WORDS,
};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Workload parameters.
#[derive(Debug, Clone, Copy)]
pub struct Params {
    pub n_transforms: usize,
    pub size: usize,
    pub workers: usize,
}

impl Params {
    /// The paper's batch shape at the given scale.
    pub fn scaled(scale: Scale) -> Self {
        Params {
            // The paper runs 32 random FFTs.
            n_transforms: 32,
            size: if scale.quick { 512 } else { 4096 },
            workers: 2,
        }
    }
}

/// Runs the batch of transforms. When `checked`, each array hand-off
/// performs the RC store + sharing cast that SharC instruments.
pub fn run_native(params: &Params, checked: bool) -> NativeRun {
    // One RC slot per transform (the pointer cell its ownership
    // moves through), plus one per reclaim direction.
    let rc = Arc::new(LpRc::new(
        2 * params.n_transforms,
        params.n_transforms,
        params.workers + 1,
    ));
    let scast_failures = Arc::new(AtomicU64::new(0));

    // Pre-generate the signals (main owns them privately).
    let signals: Vec<Vec<Complex>> = (0..params.n_transforms)
        .map(|i| random_signal(params.size, i as u64))
        .collect();

    let checksum = Arc::new(AtomicU64::new(0));
    let per_worker = params.n_transforms.div_ceil(params.workers);

    // Main hands out ownership of each array before the workers
    // start (the arrays exist before the threads are spawned).
    if checked {
        for idx in 0..params.n_transforms {
            rc.store(0, 2 * idx, Some(ObjId(idx as u32)));
        }
    }

    std::thread::scope(|scope| {
        for (w, chunk) in signals.chunks(per_worker).enumerate() {
            let rc = Arc::clone(&rc);
            let scast_failures = Arc::clone(&scast_failures);
            let checksum = Arc::clone(&checksum);
            let base = w * per_worker;
            let chunk: Vec<Vec<Complex>> = chunk.to_vec();
            scope.spawn(move || {
                let mutator = w + 1;
                for (k, sig) in chunk.into_iter().enumerate() {
                    let idx = base + k;
                    if checked {
                        // Take ownership: SCAST the array to private.
                        if sharing_cast(&*rc, mutator, 2 * idx).is_err() {
                            scast_failures.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    // The transform runs on privately-owned memory:
                    // unchecked in both builds.
                    let mut work = sig;
                    fft(&mut work);
                    let local: u64 = work
                        .iter()
                        .map(|c| (c.abs() * 1e6) as u64)
                        .fold(0, u64::wrapping_add);
                    checksum.fetch_add(local, Ordering::Relaxed);
                    if checked {
                        // Reclaim: publish the array back.
                        rc.store(mutator, 2 * idx + 1, Some(ObjId(idx as u32)));
                    }
                }
            });
        }
    });

    // Main reclaims the arrays (casts them back to private).
    if checked {
        for idx in 0..params.n_transforms {
            // The worker may not have stored yet only if it panicked;
            // scope join guarantees completion.
            if rc.read_slot(2 * idx + 1).is_some() && sharing_cast(&*rc, 0, 2 * idx + 1).is_err() {
                scast_failures.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    let data_bytes = params.n_transforms * params.size * 16;
    NativeRun {
        checksum: checksum.load(Ordering::Relaxed),
        // Only the hand-off words are dynamic (paper: 0.2%).
        checked: if checked {
            4 * params.n_transforms as u64
        } else {
            0
        },
        total: (params.n_transforms * params.size * 4) as u64,
        conflicts: scast_failures.load(Ordering::Relaxed) as usize,
        payload_bytes: data_bytes,
        shadow_bytes: if checked {
            data_bytes / 16 + 2 * params.n_transforms * 10
        } else {
            0
        },
        threads: params.workers + 1,
    }
}

/// Runs the batch **checked and traced** on the `CheckEvent` spine,
/// returning the run record and the linearized native event trace.
///
/// The ownership transfers run through a shadowed arena here: one
/// granule per transform holds the descriptor (the signal seed) and
/// the result slot. Main fills each descriptor with a checked write,
/// *sharing-casts* the granule to whichever worker claims it, and the
/// worker writes its result back into the same granule — the array
/// hand-off of the paper's fftw, made visible to every detector.
pub fn run_traced(params: &Params) -> (NativeRun, Vec<CheckEvent>) {
    let sink = Arc::new(EventLog::new());
    let run = run_with_events(params, sink.clone());
    (run, sink.take())
}

/// Runs the batch checked, recording into any [`EventSink`] — the
/// entry the online (`StreamingSink`) detector path uses. Same
/// execution shape as [`run_traced`], which is this plus an
/// [`EventLog`] to keep the trace.
pub fn run_with_events(params: &Params, sink: Arc<dyn EventSink>) -> NativeRun {
    let arena: Arc<Arena> = Arc::new(Arena::new(params.n_transforms * GRANULE_WORDS));
    let mut main_ctx = ThreadCtx::with_sink(ThreadId(1), Arc::clone(&sink));
    let per_worker = params.n_transforms.div_ceil(params.workers);

    // Main hands out ownership of each descriptor before the workers
    // start (the arrays exist before the threads are spawned): fill
    // every descriptor with a checked write, then hand the whole
    // batch off as ONE ranged cast with one ranged shadow clear.
    for idx in 0..params.n_transforms {
        arena.write_checked(&mut main_ctx, idx * GRANULE_WORDS, idx as u64);
    }
    sink.record(CheckEvent::RangeCast {
        tid: 1,
        granule: 0,
        len: params.n_transforms,
        refs: 1,
    });
    arena.clear_range(0, params.n_transforms * GRANULE_WORDS);

    let mut handles = Vec::new();
    for w in 0..params.workers {
        let tid = ThreadId(w as u8 + 2);
        sink.record(CheckEvent::Fork {
            parent: 1,
            child: tid.0 as u32,
        });
        let arena = Arc::clone(&arena);
        let sink = Arc::clone(&sink);
        let params = *params;
        handles.push(std::thread::spawn(move || {
            let mut ctx = ThreadCtx::with_sink(tid, sink);
            let base = w * per_worker;
            let end = (base + per_worker).min(params.n_transforms);
            for idx in base..end {
                // Take ownership: the cast already cleared the
                // granule, so this checked read claims it.
                let seed = arena.read_checked(&mut ctx, idx * GRANULE_WORDS);
                let mut work = random_signal(params.size, seed);
                fft(&mut work);
                let local: u64 = work
                    .iter()
                    .map(|c| (c.abs() * 1e6) as u64)
                    .fold(0, u64::wrapping_add);
                // Reclaim: publish the result back into the granule.
                arena.write_checked(&mut ctx, idx * GRANULE_WORDS + 1, local);
            }
            let rec = (ctx.checked_accesses, ctx.total_accesses, ctx.conflicts);
            arena.thread_exit(&mut ctx);
            rec
        }));
    }

    let mut checked = 0u64;
    let mut total = 0u64;
    let mut conflicts = 0usize;
    for (w, h) in handles.into_iter().enumerate() {
        let (c, t, cf) = h.join().expect("worker panicked");
        sink.record(CheckEvent::Join {
            parent: 1,
            child: w as u32 + 2,
        });
        checked += c;
        total += t;
        conflicts += cf;
    }

    // Main reclaims the results with one ranged sweep (the workers'
    // exits ended their claims).
    let mut checksum = 0u64;
    arena.read_range_checked(
        &mut main_ctx,
        0,
        params.n_transforms * GRANULE_WORDS,
        |i, v| {
            if i % GRANULE_WORDS == 1 {
                checksum = checksum.wrapping_add(v);
            }
        },
    );
    checked += main_ctx.checked_accesses;
    conflicts += main_ctx.conflicts;
    total += main_ctx.total_accesses;
    arena.thread_exit(&mut main_ctx);

    let data_bytes = params.n_transforms * params.size * 16;
    NativeRun {
        checksum,
        checked,
        total: total + (params.n_transforms * params.size * 4) as u64,
        conflicts,
        payload_bytes: data_bytes,
        shadow_bytes: arena.shadow_bytes(),
        threads: params.workers + 1,
    }
}

/// The MiniC port: arrays transferred to workers by sharing casts,
/// computed on privately, and reclaimed.
pub fn minic_source() -> &'static str {
    r#"
// fftw.c — array-partitioned transform (MiniC port).
struct work {
    mutex m;
    cond cv;
    int *locked(m) slot;
    int racy served;
    int racy quota;
};

mutex summ;
int locked(summ) total_energy;

void transform(int private * data) {
    // An in-place butterfly-flavoured pass over the private array.
    int i;
    int a;
    int b;
    for (i = 0; i < 32; i = i + 2) {
        a = data[i];
        b = data[i + 1];
        data[i] = a + b;
        data[i + 1] = a - b;
    }
}

void worker(struct work * w) {
    int private * arr;
    int i;
    int energy;
    int got;
    got = 0;
    while (1) {
        mutex_lock(&w->m);
        while (w->slot == NULL) {
            if (w->served >= w->quota) {
                mutex_unlock(&w->m);
                return;
            }
            cond_wait(&w->cv, &w->m);
        }
        arr = SCAST(int private *, w->slot);
        w->served = w->served + 1;
        cond_signal(&w->cv);
        mutex_unlock(&w->m);
        transform(arr);
        energy = 0;
        for (i = 0; i < 32; i++) {
            energy = energy + arr[i] * arr[i];
        }
        free(arr);
        mutex_lock(&summ);
        total_energy = total_energy + energy;
        mutex_unlock(&summ);
        got = got + 1;
    }
}

void main() {
    struct work * w = new(struct work);
    int private * arr;
    int n;
    int i;
    int t1;
    int t2;
    w->quota = 8;
    t1 = spawn(worker, w);
    t2 = spawn(worker, w);
    for (n = 0; n < 8; n++) {
        arr = newarray(int private, 32);
        for (i = 0; i < 32; i++) {
            arr[i] = random(100);
        }
        mutex_lock(&w->m);
        while (w->slot)
            cond_wait(&w->cv, &w->m);
        w->slot = SCAST(int locked(w->m) *, arr);
        cond_signal(&w->cv);
        mutex_unlock(&w->m);
    }
    join(t1);
    join(t2);
    mutex_lock(&summ);
    print(total_energy);
    mutex_unlock(&summ);
}
"#
}

/// Full benchmark.
pub fn bench(scale: Scale) -> BenchResult {
    let params = Params::scaled(scale);
    run_benchmark("fftw", minic_source(), scale.reps, |checked| {
        run_native(&params, checked)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sharc_checker::{replay, BitmapBackend};
    use sharc_detectors::{BaselineBackend, Eraser, VcDetector};

    #[test]
    fn traced_run_splits_sharc_from_eraser() {
        // One recorded execution, two verdicts (§6.2): main writes
        // each descriptor, casts the granule away, and a worker
        // writes its result back with no lock ever held. SharC and
        // the happens-before detector accept; Eraser's lockset for
        // every descriptor granule is empty at the worker's write.
        let params = Params::scaled(Scale::quick());
        let (run, trace) = run_traced(&params);
        assert_eq!(run.checksum, run_native(&params, true).checksum);
        assert_eq!(run.conflicts, 0);
        let sharc = replay(&trace, &mut BitmapBackend::new());
        assert!(sharc.is_empty(), "SharC models the transfers: {sharc:?}");
        let vc = replay(&trace, &mut BaselineBackend::new(VcDetector::new()));
        assert!(vc.is_empty(), "HB sees the fork/join edges: {vc:?}");
        let eraser = replay(&trace, &mut BaselineBackend::new(Eraser::new()));
        assert!(!eraser.is_empty(), "Eraser misses the ownership transfer");
    }

    #[test]
    fn both_builds_compute_identical_transforms() {
        let params = Params::scaled(Scale::quick());
        let a = run_native(&params, false);
        let b = run_native(&params, true);
        assert_eq!(a.checksum, b.checksum);
        assert_eq!(b.conflicts, 0, "all ownership transfers are unique");
    }

    #[test]
    fn dynamic_fraction_is_tiny() {
        let params = Params::scaled(Scale::quick());
        let r = run_native(&params, true);
        assert!(
            (r.checked as f64 / r.total as f64) < 0.01,
            "paper reports 0.2% dynamic for fftw"
        );
    }

    #[test]
    fn minic_version_compiles_clean() {
        let (lines, annots, casts) = crate::table::minic_columns("fftw.c", minic_source());
        assert!(lines > 50);
        assert!(annots >= 5, "got {annots}");
        assert_eq!(casts, 2);
    }
}
