//! # sharc-workloads
//!
//! The six benchmarks of the SharC paper's Table 1, each in two
//! forms:
//!
//! 1. a **MiniC program** with the same threading structure and the
//!    paper's annotations, run through the full SharC pipeline and VM
//!    (annotation counts, conflict-freedom, dynamic-access fraction);
//! 2. a **native Rust workload** doing real work (scanning, block
//!    compression, FFT, encryption, simulated downloads and DNS),
//!    generic over [`sharc_runtime::AccessPolicy`] so the identical
//!    code runs uninstrumented ("orig") and checked ("SharC") — the
//!    source of the overhead columns.

pub mod benchmarks;
pub mod substrates;
pub mod table;

pub use table::{run_all, BenchResult, TableRow};
