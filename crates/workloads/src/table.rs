//! The Table 1 harness: runs each benchmark's native workload twice
//! (uninstrumented and checked), compiles its MiniC version for the
//! annotation columns, and renders rows in the paper's format.

use crate::benchmarks;
use sharc_runtime::{Checked, Unchecked};
use std::time::{Duration, Instant};

/// What one native run reports back.
#[derive(Debug, Clone, Copy, Default)]
pub struct NativeRun {
    /// A result checksum; must be identical across policies.
    pub checksum: u64,
    /// Dynamic-mode (checked) accesses.
    pub checked: u64,
    /// All instrumentable accesses.
    pub total: u64,
    /// Conflicts observed (benign races included).
    pub conflicts: usize,
    /// Payload bytes the workload touches.
    pub payload_bytes: usize,
    /// Shadow + bookkeeping bytes the SharC build adds.
    pub shadow_bytes: usize,
    /// Threads running concurrently (including main).
    pub threads: usize,
}

/// One row of the reproduced Table 1.
#[derive(Debug, Clone)]
pub struct BenchResult {
    pub name: &'static str,
    pub threads: usize,
    /// Lines in the MiniC version (the paper's 600k-line C programs
    /// are replaced by structurally-faithful MiniC ports; see
    /// DESIGN.md).
    pub lines: usize,
    /// User-written sharing annotations in the MiniC version.
    pub annotations: usize,
    /// Other changes: sharing casts in the MiniC version.
    pub changes: usize,
    pub time_orig: Duration,
    pub time_sharc: Duration,
    pub mem_overhead_pct: f64,
    pub dynamic_fraction: f64,
    pub conflicts: usize,
    pub checksum_match: bool,
}

impl BenchResult {
    /// Time overhead percentage (SharC vs original).
    pub fn time_overhead_pct(&self) -> f64 {
        if self.time_orig.as_nanos() == 0 {
            return 0.0;
        }
        (self.time_sharc.as_secs_f64() / self.time_orig.as_secs_f64() - 1.0) * 100.0
    }
}

/// A rendered table row.
#[derive(Debug, Clone)]
pub struct TableRow(pub String);

/// Times `f` over `reps` runs, returning the mean.
pub fn time_mean<R>(reps: usize, mut f: impl FnMut() -> R) -> (Duration, R) {
    let mut total = Duration::ZERO;
    let mut last = None;
    for _ in 0..reps {
        let t = Instant::now();
        let r = f();
        total += t.elapsed();
        last = Some(r);
    }
    (
        total / reps as u32,
        last.expect("reps must be at least one"),
    )
}

/// Times the orig/sharc pair *interleaved* (o,s,o,s,...) and takes
/// medians, which resists the scheduling drift that plagues
/// multithreaded wall-clock measurement on small hosts.
pub fn time_pair_interleaved<R>(
    reps: usize,
    mut f: impl FnMut(bool) -> R,
) -> (Duration, Duration, R, R) {
    let mut orig_times = Vec::with_capacity(reps);
    let mut sharc_times = Vec::with_capacity(reps);
    // Warm-up round, untimed.
    let _ = f(false);
    let _ = f(true);
    let mut orig_r = None;
    let mut sharc_r = None;
    for _ in 0..reps {
        let t = Instant::now();
        orig_r = Some(f(false));
        orig_times.push(t.elapsed());
        let t = Instant::now();
        sharc_r = Some(f(true));
        sharc_times.push(t.elapsed());
    }
    orig_times.sort();
    sharc_times.sort();
    (
        orig_times[reps / 2],
        sharc_times[reps / 2],
        orig_r.expect("at least one rep"),
        sharc_r.expect("at least one rep"),
    )
}

/// Counts SCAST occurrences in a MiniC source (Table 1's "Changes"
/// proxy: the paper counts casts and small code edits).
pub fn count_scasts(src: &str) -> usize {
    src.matches("SCAST(").count()
}

/// Counts non-empty, non-comment lines.
pub fn count_lines(src: &str) -> usize {
    src.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with("//"))
        .count()
}

/// Compiles a benchmark's MiniC version and returns
/// `(lines, annotations, scasts)`.
///
/// # Panics
///
/// Panics if the MiniC version no longer checks cleanly — the MiniC
/// ports are fixtures that must stay error-free.
pub fn minic_columns(name: &str, src: &str) -> (usize, usize, usize) {
    let checked = sharc_core::compile(name, src)
        .unwrap_or_else(|e| panic!("{name} MiniC version failed to parse: {e}"));
    let errors: Vec<_> = checked
        .diags
        .iter()
        .filter(|d| d.severity == minic::Severity::Error)
        .collect();
    assert!(
        errors.is_empty(),
        "{name} MiniC version has check errors:\n{}",
        checked.render_diags()
    );
    (
        count_lines(src),
        checked.annotation_count,
        count_scasts(src),
    )
}

/// Runs one benchmark end to end.
pub fn run_benchmark<PRun>(
    name: &'static str,
    minic_src: &str,
    reps: usize,
    run: PRun,
) -> BenchResult
where
    PRun: Fn(bool) -> NativeRun,
{
    let (lines, annotations, changes) = minic_columns(name, minic_src);
    let (time_orig, time_sharc, orig, sharc) = time_pair_interleaved(reps, &run);
    BenchResult {
        name,
        threads: sharc.threads,
        lines,
        annotations,
        changes,
        time_orig,
        time_sharc,
        mem_overhead_pct: if sharc.payload_bytes == 0 {
            0.0
        } else {
            sharc.shadow_bytes as f64 / sharc.payload_bytes as f64 * 100.0
        },
        dynamic_fraction: if sharc.total == 0 {
            0.0
        } else {
            sharc.checked as f64 / sharc.total as f64
        },
        conflicts: sharc.conflicts,
        checksum_match: orig.checksum == sharc.checksum,
    }
}

/// Scale knob: `quick` shrinks workloads for tests; the full scale is
/// used by the `table1` binary.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    pub quick: bool,
    pub reps: usize,
}

impl Scale {
    /// Quick scale for tests.
    pub fn quick() -> Self {
        Scale {
            quick: true,
            reps: 1,
        }
    }

    /// Full scale for the Table 1 harness (the paper averaged 50
    /// runs; we default to fewer but configurable).
    pub fn full(reps: usize) -> Self {
        Scale { quick: false, reps }
    }
}

/// Runs all six benchmarks.
pub fn run_all(scale: Scale) -> Vec<BenchResult> {
    vec![
        benchmarks::pfscan::bench(scale),
        benchmarks::aget::bench(scale),
        benchmarks::pbzip2::bench(scale),
        benchmarks::dillo::bench(scale),
        benchmarks::fftw::bench(scale),
        benchmarks::stunnel::bench(scale),
    ]
}

/// Renders results in the paper's Table 1 layout.
pub fn render_table(results: &[BenchResult]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<8} {:>7} {:>6} {:>7} {:>8} {:>11} {:>9} {:>8} {:>10} {:>6}\n",
        "Name",
        "Threads",
        "Lines",
        "Annots.",
        "Changes",
        "Time Orig.",
        "SharC",
        "Mem +%",
        "% dynamic",
        "OK"
    ));
    for r in results {
        out.push_str(&format!(
            "{:<8} {:>7} {:>6} {:>7} {:>8} {:>10.2?} {:>+8.1}% {:>7.1}% {:>9.1}% {:>6}\n",
            r.name,
            r.threads,
            r.lines,
            r.annotations,
            r.changes,
            r.time_orig,
            r.time_overhead_pct(),
            r.mem_overhead_pct,
            r.dynamic_fraction * 100.0,
            if r.checksum_match { "yes" } else { "NO" }
        ));
    }
    let avg_time: f64 =
        results.iter().map(|r| r.time_overhead_pct()).sum::<f64>() / results.len() as f64;
    let avg_mem: f64 =
        results.iter().map(|r| r.mem_overhead_pct).sum::<f64>() / results.len() as f64;
    out.push_str(&format!(
        "average time overhead {avg_time:.1}%  (paper: 9.2%), average memory overhead \
         {avg_mem:.1}% (paper: 26.1%)\n"
    ));
    out
}

/// Dispatches a policy-generic closure on the orig/sharc flag. This
/// keeps each benchmark's `run` monomorphized per policy.
#[macro_export]
macro_rules! with_policy {
    ($checked:expr, $p:ident => $body:expr) => {
        if $checked {
            type $p = $crate::table::SharcPolicy;
            $body
        } else {
            type $p = $crate::table::OrigPolicy;
            $body
        }
    };
}

/// Re-exports used by [`with_policy!`].
pub type OrigPolicy = Unchecked;
/// Re-exports used by [`with_policy!`].
pub type SharcPolicy = Checked;
