//! A toy stream cipher for the stunnel benchmark: an xorshift
//! keystream XORed over the plaintext. Stand-in for OpenSSL's record
//! encryption — CPU work proportional to bytes, symmetric, and
//! verifiable by round-trip, which is all the benchmark needs.

/// A keyed stream cipher.
#[derive(Debug, Clone)]
pub struct StreamCipher {
    state: u64,
}

impl StreamCipher {
    /// Creates a cipher from a key. Encryption and decryption must
    /// use fresh instances with the same key.
    pub fn new(key: u64) -> Self {
        StreamCipher {
            state: key ^ 0xA5A5_5A5A_DEAD_BEEF | 1,
        }
    }

    fn next(&mut self) -> u8 {
        self.state ^= self.state << 13;
        self.state ^= self.state >> 7;
        self.state ^= self.state << 17;
        (self.state >> 32) as u8
    }

    /// Encrypts (or decrypts) `data` in place.
    pub fn apply(&mut self, data: &mut [u8]) {
        for b in data.iter_mut() {
            *b ^= self.next();
        }
    }
}

/// Convenience: encrypts a copy.
pub fn encrypt(key: u64, data: &[u8]) -> Vec<u8> {
    let mut out = data.to_vec();
    StreamCipher::new(key).apply(&mut out);
    out
}

/// Convenience: decrypts a copy.
pub fn decrypt(key: u64, data: &[u8]) -> Vec<u8> {
    encrypt(key, data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sharc_testkit::{forall, gen, prop_assert, prop_assert_eq};

    #[test]
    fn roundtrip() {
        let msg = b"secret tunnel message";
        let c = encrypt(42, msg);
        assert_ne!(&c, msg);
        assert_eq!(decrypt(42, &c), msg);
    }

    #[test]
    fn wrong_key_fails() {
        let msg = b"secret";
        let c = encrypt(1, msg);
        assert_ne!(decrypt(2, &c), msg);
    }

    #[test]
    fn keystream_is_reproducible() {
        assert_eq!(encrypt(7, b"abc"), encrypt(7, b"abc"));
    }

    #[test]
    fn prop_roundtrip() {
        let inputs = gen::pair(gen::u64_any(), gen::byte_vec(0..512));
        forall!("cipher_roundtrip", inputs, |&(key, ref data)| {
            prop_assert_eq!(decrypt(key, &encrypt(key, data)), *data);
        });
    }

    #[test]
    fn prop_ciphertext_differs_for_nonempty_input() {
        let inputs = gen::pair(gen::u64_any(), gen::byte_vec(8..128));
        forall!("cipher_diffuses", inputs, |&(key, ref data)| {
            prop_assert!(encrypt(key, data) != *data, "keystream must change bytes");
        });
    }
}
