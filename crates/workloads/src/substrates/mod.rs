//! Synthetic substrates standing in for resources the paper's
//! evaluation used but that are not available here (real files, the
//! network, OpenSSL, DNS); see DESIGN.md §2 for the substitution
//! rationale.

pub mod cipher;
pub mod compress;
pub mod fft;
pub mod filesys;
pub mod net;
