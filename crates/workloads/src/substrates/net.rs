//! Simulated network substrates: a chunk server for the aget download
//! accelerator and a DNS resolver for the dillo browser benchmark.
//!
//! The paper's aget "was network bound, and so the overhead created
//! by SharC was not measurable"; dillo "uses threads to hide the
//! latency of DNS lookup". Both properties come from *latency*, which
//! we reproduce with calibrated busy-wait delays (sleep granularity
//! is too coarse and would deschedule workers).

use sharc_testkit::rng::{Rng, Xoshiro256pp};
use std::time::{Duration, Instant};

/// Busy-waits for `d` (simulated I/O latency).
pub fn simulate_latency(d: Duration) {
    let start = Instant::now();
    while start.elapsed() < d {
        std::hint::spin_loop();
    }
}

/// A remote file served in chunks with per-request latency — the
/// aget benchmark's "Linux kernel tarball" stand-in.
#[derive(Debug)]
pub struct ChunkServer {
    data: Vec<u8>,
    latency: Duration,
}

impl ChunkServer {
    /// Creates a server holding `size` deterministic bytes.
    pub fn new(size: usize, latency: Duration, seed: u64) -> Self {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let data = (0..size).map(|_| rng.gen()).collect();
        ChunkServer { data, latency }
    }

    /// Total file size.
    pub fn size(&self) -> usize {
        self.data.len()
    }

    /// Fetches `[offset, offset+len)`, paying the request latency.
    pub fn fetch(&self, offset: usize, len: usize) -> &[u8] {
        simulate_latency(self.latency);
        let end = (offset + len).min(self.data.len());
        &self.data[offset..end]
    }

    /// Checksum oracle for verifying the downloaded file.
    pub fn checksum(&self) -> u64 {
        fnv(&self.data)
    }
}

/// FNV-1a, the repository's standard small checksum.
pub fn fnv(data: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// An in-memory DNS with lookup latency — dillo's `gethostbyname`.
#[derive(Debug)]
pub struct DnsServer {
    entries: Vec<(String, u32)>,
    latency: Duration,
}

impl DnsServer {
    /// Creates a server with `n` deterministic host entries.
    pub fn new(n: usize, latency: Duration, seed: u64) -> Self {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let entries = (0..n)
            .map(|i| (format!("host{i}.example.org"), rng.gen()))
            .collect();
        DnsServer { entries, latency }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the server has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The `i`-th hostname (request generator helper).
    pub fn host(&self, i: usize) -> &str {
        &self.entries[i % self.entries.len()].0
    }

    /// Resolves a hostname, paying the lookup latency.
    pub fn resolve(&self, host: &str) -> Option<u32> {
        simulate_latency(self.latency);
        self.entries
            .iter()
            .find(|(h, _)| h == host)
            .map(|&(_, ip)| ip)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_server_serves_ranges() {
        let s = ChunkServer::new(1000, Duration::ZERO, 1);
        assert_eq!(s.fetch(0, 100).len(), 100);
        assert_eq!(s.fetch(950, 100).len(), 50);
        assert_eq!(s.size(), 1000);
    }

    #[test]
    fn chunks_reassemble_to_whole() {
        let s = ChunkServer::new(777, Duration::ZERO, 2);
        let mut whole = Vec::new();
        let mut off = 0;
        while off < s.size() {
            let chunk = s.fetch(off, 100);
            whole.extend_from_slice(chunk);
            off += 100;
        }
        assert_eq!(fnv(&whole), s.checksum());
    }

    #[test]
    fn latency_is_paid() {
        let s = ChunkServer::new(10, Duration::from_micros(200), 3);
        let t = Instant::now();
        let _ = s.fetch(0, 10);
        assert!(t.elapsed() >= Duration::from_micros(200));
    }

    #[test]
    fn dns_resolves_known_hosts() {
        let d = DnsServer::new(16, Duration::ZERO, 4);
        let h = d.host(3).to_owned();
        assert!(d.resolve(&h).is_some());
        assert!(d.resolve("unknown.example").is_none());
    }

    #[test]
    fn dns_deterministic() {
        let a = DnsServer::new(8, Duration::ZERO, 5);
        let b = DnsServer::new(8, Duration::ZERO, 5);
        for i in 0..8 {
            let h = a.host(i).to_owned();
            assert_eq!(a.resolve(&h), b.resolve(&h));
        }
    }
}
