//! A block compressor in the bzip2 family, built from scratch for the
//! pbzip2 benchmark: Burrows–Wheeler transform, move-to-front,
//! run-length encoding, and a canonical Huffman entropy coder.
//!
//! The paper's pbzip2 compresses independent blocks on worker
//! threads; what matters for the reproduction is that the kernel is
//! CPU-bound, block-oriented, and operates on privately-owned
//! buffers. The pipeline here is a faithful (if simpler) member of
//! the same algorithm family, with full round-trip decompression.

/// Compresses one block: BWT -> MTF -> RLE -> Huffman.
pub fn compress_block(input: &[u8]) -> Vec<u8> {
    if input.is_empty() {
        return vec![0; 8];
    }
    let (bwt, primary) = bwt_forward(input);
    let mtf = mtf_encode(&bwt);
    let rle = rle_encode(&mtf);
    let huff = huffman_encode(&rle);
    // Header: primary index (u32), original length (u32).
    let mut out = Vec::with_capacity(huff.len() + 8);
    out.extend_from_slice(&(primary as u32).to_le_bytes());
    out.extend_from_slice(&(input.len() as u32).to_le_bytes());
    out.extend_from_slice(&huff);
    out
}

/// Decompresses a block produced by [`compress_block`].
///
/// # Panics
///
/// Panics on malformed input (this is a benchmark kernel, not a
/// hardened decoder).
pub fn decompress_block(data: &[u8]) -> Vec<u8> {
    let primary = u32::from_le_bytes(data[0..4].try_into().unwrap()) as usize;
    let orig_len = u32::from_le_bytes(data[4..8].try_into().unwrap()) as usize;
    if orig_len == 0 {
        return Vec::new();
    }
    let rle = huffman_decode(&data[8..]);
    let mtf = rle_decode(&rle);
    let bwt = mtf_decode(&mtf);
    bwt_inverse(&bwt, primary)
}

// ----- Burrows-Wheeler transform -----

/// Returns the BWT of `input` and the primary index.
pub fn bwt_forward(input: &[u8]) -> (Vec<u8>, usize) {
    let n = input.len();
    // Sort rotation indices by comparing doubled text.
    let doubled: Vec<u8> = input.iter().chain(input.iter()).copied().collect();
    let mut idx: Vec<usize> = (0..n).collect();
    idx.sort_by(|&a, &b| doubled[a..a + n].cmp(&doubled[b..b + n]));
    let mut out = Vec::with_capacity(n);
    let mut primary = 0;
    for (rank, &i) in idx.iter().enumerate() {
        out.push(doubled[i + n - 1]);
        if i == 0 {
            primary = rank;
        }
    }
    (out, primary)
}

/// Inverts the BWT.
pub fn bwt_inverse(bwt: &[u8], primary: usize) -> Vec<u8> {
    let n = bwt.len();
    // Counting sort to build the LF mapping.
    let mut counts = [0usize; 256];
    for &b in bwt {
        counts[b as usize] += 1;
    }
    let mut starts = [0usize; 256];
    let mut acc = 0;
    for c in 0..256 {
        starts[c] = acc;
        acc += counts[c];
    }
    let mut next = vec![0usize; n];
    let mut seen = [0usize; 256];
    for (i, &b) in bwt.iter().enumerate() {
        next[starts[b as usize] + seen[b as usize]] = i;
        seen[b as usize] += 1;
    }
    let mut out = Vec::with_capacity(n);
    let mut p = next[primary];
    for _ in 0..n {
        out.push(bwt[p]);
        p = next[p];
    }
    out
}

// ----- move-to-front -----

/// MTF-encodes `data`.
pub fn mtf_encode(data: &[u8]) -> Vec<u8> {
    let mut table: Vec<u8> = (0..=255).collect();
    data.iter()
        .map(|&b| {
            let pos = table.iter().position(|&x| x == b).expect("byte in table") as u8;
            table.remove(pos as usize);
            table.insert(0, b);
            pos
        })
        .collect()
}

/// Inverts [`mtf_encode`].
pub fn mtf_decode(data: &[u8]) -> Vec<u8> {
    let mut table: Vec<u8> = (0..=255).collect();
    data.iter()
        .map(|&pos| {
            let b = table.remove(pos as usize);
            table.insert(0, b);
            b
        })
        .collect()
}

// ----- run-length encoding -----

/// RLE with escape: `(byte, byte, count)` for runs of 3+.
pub fn rle_encode(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len());
    let mut i = 0;
    while i < data.len() {
        let b = data[i];
        let mut run = 1usize;
        while i + run < data.len() && data[i + run] == b && run < 255 + 2 {
            run += 1;
        }
        if run >= 3 {
            out.push(b);
            out.push(b);
            out.push((run - 2) as u8);
            i += run;
        } else {
            for _ in 0..run {
                out.push(b);
            }
            if run == 2 {
                // Two equal bytes would look like a run marker.
                out.push(0);
            }
            i += run;
        }
    }
    out
}

/// Inverts [`rle_encode`].
pub fn rle_decode(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() * 2);
    let mut i = 0;
    while i < data.len() {
        let b = data[i];
        if i + 1 < data.len() && data[i + 1] == b {
            let count = data[i + 2] as usize;
            for _ in 0..count + 2 {
                out.push(b);
            }
            i += 3;
        } else {
            out.push(b);
            i += 1;
        }
    }
    out
}

// ----- canonical Huffman -----

#[derive(Debug, Clone)]
struct Node {
    freq: u64,
    sym: Option<u16>,
    left: usize,
    right: usize,
}

/// Computes canonical Huffman code lengths (≤ 15 bits via frequency
/// damping on pathological inputs).
fn code_lengths(freqs: &[u64; 257]) -> [u8; 257] {
    let mut nodes: Vec<Node> = Vec::new();
    let mut heap: Vec<usize> = Vec::new();
    for (s, &f) in freqs.iter().enumerate() {
        if f > 0 {
            nodes.push(Node {
                freq: f,
                sym: Some(s as u16),
                left: usize::MAX,
                right: usize::MAX,
            });
            heap.push(nodes.len() - 1);
        }
    }
    if heap.len() == 1 {
        let mut lens = [0u8; 257];
        lens[nodes[heap[0]].sym.unwrap() as usize] = 1;
        return lens;
    }
    while heap.len() > 1 {
        heap.sort_by(|&a, &b| nodes[b].freq.cmp(&nodes[a].freq));
        let x = heap.pop().unwrap();
        let y = heap.pop().unwrap();
        nodes.push(Node {
            freq: nodes[x].freq + nodes[y].freq,
            sym: None,
            left: x,
            right: y,
        });
        heap.push(nodes.len() - 1);
    }
    let root = heap[0];
    let mut lens = [0u8; 257];
    let mut stack = vec![(root, 0u8)];
    while let Some((n, depth)) = stack.pop() {
        let node = &nodes[n];
        if let Some(s) = node.sym {
            lens[s as usize] = depth.max(1);
        } else {
            stack.push((node.left, depth + 1));
            stack.push((node.right, depth + 1));
        }
    }
    lens
}

/// Builds canonical codes from lengths.
fn canonical_codes(lens: &[u8; 257]) -> [(u32, u8); 257] {
    let mut syms: Vec<u16> = (0..257u16).filter(|&s| lens[s as usize] > 0).collect();
    syms.sort_by_key(|&s| (lens[s as usize], s));
    let mut codes = [(0u32, 0u8); 257];
    let mut code = 0u32;
    let mut prev_len = 0u8;
    for &s in &syms {
        let l = lens[s as usize];
        code <<= l - prev_len;
        codes[s as usize] = (code, l);
        code += 1;
        prev_len = l;
    }
    codes
}

const EOB: usize = 256;

/// Huffman-encodes `data` with an embedded code-length table.
pub fn huffman_encode(data: &[u8]) -> Vec<u8> {
    let mut freqs = [0u64; 257];
    for &b in data {
        freqs[b as usize] += 1;
    }
    freqs[EOB] = 1;
    let lens = code_lengths(&freqs);
    let codes = canonical_codes(&lens);
    let mut out = Vec::with_capacity(data.len() / 2 + 300);
    out.extend_from_slice(&lens.map(|l| l)[..]);
    let mut acc = 0u64;
    let mut nbits = 0u8;
    let emit = |out: &mut Vec<u8>, acc: &mut u64, nbits: &mut u8, code: u32, len: u8| {
        *acc = (*acc << len) | code as u64;
        *nbits += len;
        while *nbits >= 8 {
            *nbits -= 8;
            out.push((*acc >> *nbits) as u8);
        }
    };
    for &b in data {
        let (c, l) = codes[b as usize];
        emit(&mut out, &mut acc, &mut nbits, c, l);
    }
    let (c, l) = codes[EOB];
    emit(&mut out, &mut acc, &mut nbits, c, l);
    if nbits > 0 {
        out.push((acc << (8 - nbits)) as u8);
    }
    out
}

/// Decodes a [`huffman_encode`] stream.
pub fn huffman_decode(data: &[u8]) -> Vec<u8> {
    let mut lens = [0u8; 257];
    lens.copy_from_slice(&data[..257]);
    let codes = canonical_codes(&lens);
    // Build a (length, code) -> symbol map.
    let mut by_len: Vec<Vec<(u32, u16)>> = vec![Vec::new(); 33];
    for s in 0..257usize {
        if lens[s] > 0 {
            by_len[lens[s] as usize].push((codes[s].0, s as u16));
        }
    }
    for v in &mut by_len {
        v.sort();
    }
    let mut out = Vec::new();
    let mut acc = 0u32;
    let mut len = 0u8;
    for &byte in &data[257..] {
        for bit in (0..8).rev() {
            acc = (acc << 1) | ((byte >> bit) & 1) as u32;
            len += 1;
            if let Ok(pos) = by_len[len as usize].binary_search_by_key(&acc, |&(c, _)| c) {
                let sym = by_len[len as usize][pos].1;
                if sym as usize == EOB {
                    return out;
                }
                out.push(sym as u8);
                acc = 0;
                len = 0;
            }
            if len > 32 {
                panic!("malformed huffman stream");
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sharc_testkit::{forall, gen, prop_assert_eq};

    #[test]
    fn bwt_roundtrip_banana() {
        let (b, p) = bwt_forward(b"banana");
        assert_eq!(bwt_inverse(&b, p), b"banana");
    }

    #[test]
    fn mtf_roundtrip() {
        let data = b"abracadabra";
        assert_eq!(mtf_decode(&mtf_encode(data)), data);
    }

    #[test]
    fn rle_roundtrip_runs() {
        let data = b"aaaaaabbbcdddddddddddddd";
        assert_eq!(rle_decode(&rle_encode(data)), data);
    }

    #[test]
    fn rle_handles_pairs() {
        let data = b"aabbccdd";
        assert_eq!(rle_decode(&rle_encode(data)), data);
    }

    #[test]
    fn huffman_roundtrip() {
        let data = b"the quick brown fox jumps over the lazy dog";
        assert_eq!(huffman_decode(&huffman_encode(data)), data);
    }

    #[test]
    fn block_roundtrip() {
        let data = b"compress me please, compress me please, again and again and again";
        let c = compress_block(data);
        assert_eq!(decompress_block(&c), data);
    }

    #[test]
    fn empty_block() {
        assert_eq!(decompress_block(&compress_block(b"")), b"");
    }

    #[test]
    fn single_byte_block() {
        assert_eq!(decompress_block(&compress_block(b"x")), b"x");
    }

    #[test]
    fn compressible_text_shrinks() {
        let data: Vec<u8> = b"abcabcabc".iter().cycle().take(4096).copied().collect();
        let c = compress_block(&data);
        assert!(c.len() < data.len() / 2, "{} vs {}", c.len(), data.len());
    }

    #[test]
    fn prop_block_roundtrip() {
        forall!("block_roundtrip", gen::byte_vec(0..2048), |data| {
            let c = compress_block(data);
            prop_assert_eq!(decompress_block(&c), *data);
        });
    }

    #[test]
    fn prop_bwt_roundtrip() {
        forall!("bwt_roundtrip", gen::byte_vec(1..512), |data| {
            let (b, p) = bwt_forward(data);
            prop_assert_eq!(bwt_inverse(&b, p), *data);
        });
    }

    #[test]
    fn prop_rle_roundtrip() {
        forall!("rle_roundtrip", gen::byte_vec(0..1024), |data| {
            prop_assert_eq!(rle_decode(&rle_encode(data)), *data);
        });
    }

    #[test]
    fn prop_huffman_roundtrip() {
        forall!("huffman_roundtrip", gen::byte_vec(0..1024), |data| {
            prop_assert_eq!(huffman_decode(&huffman_encode(data)), *data);
        });
    }
}
