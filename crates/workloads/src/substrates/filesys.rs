//! A synthetic in-memory file tree for the pfscan benchmark.
//!
//! The paper measured pfscan over a home directory held entirely in
//! the OS buffer cache ("we were able to eliminate file system
//! effects"); an in-memory tree reproduces exactly that setup.

use sharc_testkit::rng::{Rng, Xoshiro256pp};

/// One synthetic file.
#[derive(Debug, Clone)]
pub struct File {
    pub path: String,
    pub content: Vec<u8>,
}

/// A deterministic synthetic file tree.
#[derive(Debug, Clone)]
pub struct SynthFs {
    files: Vec<File>,
}

/// Configuration for tree generation.
#[derive(Debug, Clone, Copy)]
pub struct FsConfig {
    pub n_dirs: usize,
    pub files_per_dir: usize,
    pub file_size: usize,
    /// The needle is planted roughly once per this many bytes.
    pub needle_every: usize,
    pub seed: u64,
}

impl Default for FsConfig {
    fn default() -> Self {
        FsConfig {
            n_dirs: 8,
            files_per_dir: 12,
            file_size: 8 * 1024,
            needle_every: 4096,
            seed: 0xF5,
        }
    }
}

const WORDS: &[&str] = &[
    "the", "quick", "brown", "fox", "lazy", "dog", "lorem", "ipsum", "data", "race", "thread",
    "lock", "shared", "private", "cast", "mode",
];

impl SynthFs {
    /// Generates a tree; occurrences of `needle` are planted at a
    /// known rate so scans have a verifiable answer.
    pub fn generate(cfg: FsConfig, needle: &str) -> SynthFs {
        let mut rng = Xoshiro256pp::seed_from_u64(cfg.seed);
        let mut files = Vec::new();
        for d in 0..cfg.n_dirs {
            for f in 0..cfg.files_per_dir {
                let path = format!("/home/user/dir{d}/file{f}.txt");
                let mut content = Vec::with_capacity(cfg.file_size);
                while content.len() < cfg.file_size {
                    if cfg.needle_every > 0 && rng.gen_range(0..cfg.needle_every) < WORDS[0].len() {
                        content.extend_from_slice(needle.as_bytes());
                    } else {
                        let w = WORDS[rng.gen_range(0..WORDS.len())];
                        content.extend_from_slice(w.as_bytes());
                    }
                    content.push(b' ');
                }
                content.truncate(cfg.file_size);
                files.push(File { path, content });
            }
        }
        SynthFs { files }
    }

    /// All file paths (the path-producer thread's work list).
    pub fn paths(&self) -> Vec<String> {
        self.files.iter().map(|f| f.path.clone()).collect()
    }

    /// Looks up a file's content by path.
    pub fn read(&self, path: &str) -> Option<&[u8]> {
        self.files
            .iter()
            .find(|f| f.path == path)
            .map(|f| f.content.as_slice())
    }

    /// File count.
    pub fn len(&self) -> usize {
        self.files.len()
    }

    /// True if the tree has no files.
    pub fn is_empty(&self) -> bool {
        self.files.is_empty()
    }

    /// Total bytes across all files.
    pub fn total_bytes(&self) -> usize {
        self.files.iter().map(|f| f.content.len()).sum()
    }

    /// Reference scan: total needle occurrences (test oracle).
    pub fn count_occurrences(&self, needle: &[u8]) -> usize {
        self.files
            .iter()
            .map(|f| count_in(&f.content, needle))
            .sum()
    }
}

/// Counts (possibly overlapping) occurrences of `needle` in `hay`.
pub fn count_in(hay: &[u8], needle: &[u8]) -> usize {
    if needle.is_empty() || hay.len() < needle.len() {
        return 0;
    }
    let mut count = 0;
    for i in 0..=hay.len() - needle.len() {
        if &hay[i..i + needle.len()] == needle {
            count += 1;
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = SynthFs::generate(FsConfig::default(), "needle");
        let b = SynthFs::generate(FsConfig::default(), "needle");
        assert_eq!(a.paths(), b.paths());
        assert_eq!(a.total_bytes(), b.total_bytes());
        assert_eq!(
            a.count_occurrences(b"needle"),
            b.count_occurrences(b"needle")
        );
    }

    #[test]
    fn needles_are_planted() {
        let fs = SynthFs::generate(FsConfig::default(), "needle");
        assert!(fs.count_occurrences(b"needle") > 0);
    }

    #[test]
    fn read_by_path() {
        let fs = SynthFs::generate(FsConfig::default(), "x");
        let p = fs.paths()[0].clone();
        assert!(fs.read(&p).is_some());
        assert!(fs.read("/nonexistent").is_none());
    }

    #[test]
    fn count_in_overlapping() {
        assert_eq!(count_in(b"aaaa", b"aa"), 3);
        assert_eq!(count_in(b"abc", b""), 0);
        assert_eq!(count_in(b"ab", b"abc"), 0);
    }

    #[test]
    fn sizes_match_config() {
        let cfg = FsConfig {
            n_dirs: 2,
            files_per_dir: 3,
            file_size: 100,
            ..FsConfig::default()
        };
        let fs = SynthFs::generate(cfg, "n");
        assert_eq!(fs.len(), 6);
        assert_eq!(fs.total_bytes(), 600);
    }
}
