//! A from-scratch radix-2 FFT for the fftw benchmark: iterative
//! Cooley–Tukey with bit-reversal permutation, plus the inverse
//! transform and a naive DFT used as a test oracle.
//!
//! The paper's fftw benchmark "computes by dividing arrays among a
//! fixed number of worker threads; ownership of arrays is transferred
//! to each thread, and then reclaimed" — the kernel itself runs on
//! privately-owned data, which is why its dynamic-access fraction is
//! tiny (1.2%).

/// A complex number.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    pub re: f64,
    pub im: f64,
}

impl Complex {
    /// Creates `re + im·i`.
    pub fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    fn mul(self, o: Complex) -> Complex {
        Complex {
            re: self.re * o.re - self.im * o.im,
            im: self.re * o.im + self.im * o.re,
        }
    }

    fn add(self, o: Complex) -> Complex {
        Complex {
            re: self.re + o.re,
            im: self.im + o.im,
        }
    }

    fn sub(self, o: Complex) -> Complex {
        Complex {
            re: self.re - o.re,
            im: self.im - o.im,
        }
    }

    /// Magnitude.
    pub fn abs(self) -> f64 {
        (self.re * self.re + self.im * self.im).sqrt()
    }
}

/// In-place forward FFT.
///
/// # Panics
///
/// Panics unless `data.len()` is a power of two.
pub fn fft(data: &mut [Complex]) {
    transform(data, false);
}

/// In-place inverse FFT (normalized).
///
/// # Panics
///
/// Panics unless `data.len()` is a power of two.
pub fn ifft(data: &mut [Complex]) {
    transform(data, true);
    let n = data.len() as f64;
    for c in data.iter_mut() {
        c.re /= n;
        c.im /= n;
    }
}

fn transform(data: &mut [Complex], inverse: bool) {
    let n = data.len();
    assert!(n.is_power_of_two(), "FFT length must be a power of two");
    if n <= 1 {
        return;
    }
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = i.reverse_bits() >> (usize::BITS - bits);
        if j > i {
            data.swap(i, j);
        }
    }
    // Butterflies.
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        let wlen = Complex::new(ang.cos(), ang.sin());
        for start in (0..n).step_by(len) {
            let mut w = Complex::new(1.0, 0.0);
            for k in 0..len / 2 {
                let u = data[start + k];
                let v = data[start + k + len / 2].mul(w);
                data[start + k] = u.add(v);
                data[start + k + len / 2] = u.sub(v);
                w = w.mul(wlen);
            }
        }
        len <<= 1;
    }
}

/// Naive O(n²) DFT (test oracle).
pub fn dft_naive(data: &[Complex]) -> Vec<Complex> {
    let n = data.len();
    (0..n)
        .map(|k| {
            let mut acc = Complex::default();
            for (j, &x) in data.iter().enumerate() {
                let ang = -2.0 * std::f64::consts::PI * (k * j) as f64 / n as f64;
                acc = acc.add(x.mul(Complex::new(ang.cos(), ang.sin())));
            }
            acc
        })
        .collect()
}

/// A deterministic pseudo-random signal for benchmarking, mirroring
/// fftw's `benchmark tool`-generated random transforms.
pub fn random_signal(n: usize, seed: u64) -> Vec<Complex> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
    };
    (0..n).map(|_| Complex::new(next(), next())).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sharc_testkit::{forall, gen, prop_assert};

    fn close(a: Complex, b: Complex) -> bool {
        (a.re - b.re).abs() < 1e-6 && (a.im - b.im).abs() < 1e-6
    }

    #[test]
    fn matches_naive_dft() {
        let sig = random_signal(64, 7);
        let mut fast = sig.clone();
        fft(&mut fast);
        let slow = dft_naive(&sig);
        for (a, b) in fast.iter().zip(&slow) {
            assert!(close(*a, *b), "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn impulse_transforms_to_ones() {
        let mut data = vec![Complex::default(); 8];
        data[0] = Complex::new(1.0, 0.0);
        fft(&mut data);
        for c in &data {
            assert!(close(*c, Complex::new(1.0, 0.0)));
        }
    }

    #[test]
    fn parseval_energy_preserved() {
        let sig = random_signal(256, 3);
        let time_energy: f64 = sig.iter().map(|c| c.abs() * c.abs()).sum();
        let mut freq = sig.clone();
        fft(&mut freq);
        let freq_energy: f64 = freq.iter().map(|c| c.abs() * c.abs()).sum::<f64>() / 256.0;
        assert!((time_energy - freq_energy).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_panics() {
        let mut data = vec![Complex::default(); 6];
        fft(&mut data);
    }

    #[test]
    fn prop_fft_ifft_roundtrip() {
        let inputs = gen::pair(gen::u64_range(0..1000), gen::u32_range(1..10));
        forall!("fft_ifft_roundtrip", inputs, |&(seed, pow)| {
            let n = 1usize << pow;
            let sig = random_signal(n, seed);
            let mut work = sig.clone();
            fft(&mut work);
            ifft(&mut work);
            for (a, b) in work.iter().zip(&sig) {
                prop_assert!(close(*a, *b), "{a:?} vs {b:?} (n={n}, seed={seed})");
            }
        });
    }

    #[test]
    fn prop_linearity() {
        forall!("fft_linearity", gen::u64_range(0..1000), |&seed| {
            let a = random_signal(32, seed);
            let b = random_signal(32, seed + 1);
            let sum: Vec<Complex> = a.iter().zip(&b).map(|(x, y)| x.add(*y)).collect();
            let mut fa = a.clone();
            let mut fb = b.clone();
            let mut fsum = sum.clone();
            fft(&mut fa);
            fft(&mut fb);
            fft(&mut fsum);
            for i in 0..32 {
                prop_assert!(
                    close(fsum[i], fa[i].add(fb[i])),
                    "component {i} (seed={seed})"
                );
            }
        });
    }
}
