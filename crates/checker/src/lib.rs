//! # sharc-checker
//!
//! The single implementation of the paper's §4.2 runtime-check state
//! machine, shared by every layer of the workspace:
//!
//! * [`step`] — the pure, atomics-free granule transition functions
//!   for both shadow-word encodings (the paper's reader/writer
//!   bitmap and the scalable adaptive encoding). `sharc-runtime`
//!   wraps them in compare-exchange retry loops for real threads;
//!   `sharc-interp`'s VM applies them directly under its scheduler
//!   lock. One state machine, one set of verdicts.
//! * [`backend`] — the [`CheckBackend`] trait covering the four
//!   runtime checks (`chkread`, `chkwrite`, `lock_held`, `oneref`)
//!   plus the synchronization/lifecycle events they depend on, a
//!   [`CheckEvent`] trace vocabulary, and a [`replay`] driver so one
//!   seeded execution can be cross-validated through any engine
//!   (SharC's own bitmap, Eraser locksets, vector clocks).
//! * [`cache`] — the owned-granule epoch cache: a per-thread
//!   set-associative table that skips the CAS entirely on repeated
//!   private accesses (the common case in pfscan/pbzip2-style
//!   workloads). See the module docs for the soundness invariants.
//! * [`geometry`] — [`ShadowGeometry`]: how many 63-thread bitmap
//!   shards back each granule ([`step::sharded`] is the matching
//!   transition function). This is what lifts the paper's 63-thread
//!   cap without forgetting reader identities.
//! * [`epoch`] — [`EpochTable`]: per-region epoch counters so a
//!   `free`/cast/clear invalidates only the cache entries whose
//!   region actually changed, instead of flushing every thread's
//!   whole cache. `R = 1` degenerates to the old global epoch.
//! * [`sink`] — the [`EventSink`] consumer interface native
//!   workloads emit into, with [`EventLog`] (record-then-replay,
//!   with append/contention counters) as the compat sink.
//! * [`stream`] — [`StreamingSink`]: per-thread bounded event rings
//!   drained under a Levanoni–Petrank epoch flip, feeding any
//!   [`CheckBackend`] *during* the run inside a fixed memory budget.
//!   Streaming verdicts are bit-identical to [`replay`]'s because
//!   both folds run [`apply_event`] over the same linearization.
//! * [`trace`] — the offline text format for [`CheckEvent`] traces
//!   (`sharc native --trace-out` / `sharc replay`): an exact,
//!   line-oriented round-trip so one recorded execution can be
//!   re-judged by any backend in a later process.
//! * [`btrace`] — the binary trace format v4 (`.sbt`): per-thread
//!   blocks, one opcode byte per event, zigzag-LEB128 granule
//!   deltas, a block index footer, and a zero-copy
//!   [`BinaryTraceReader`] — the archive format that makes
//!   10⁷–10⁸-event runs practical to keep and re-judge.
//! * [`parallel`] — [`ParallelReplay`]: region-sharded parallel
//!   replay over N worker threads, each running [`apply_event`]
//!   against its own backend on a disjoint set of
//!   [`EpochTable::region_of`] granule regions, with sync events
//!   broadcast; merged conflicts are bit-identical to [`replay`].
//!
//! ## The granule constant
//!
//! The paper tracks reader/writer sets "for every 16 bytes of
//! memory". [`GRANULE_BYTES`] is the one definition of that number;
//! `sharc-runtime`'s word granularity and the VM's cell granularity
//! are both derived from it (with compile-time assertions), fixing
//! the drift that used to exist between `VmConfig::granule` and
//! `runtime::GRANULE_WORDS`.

pub mod backend;
pub mod btrace;
pub mod cache;
pub mod epoch;
pub mod geometry;
pub mod parallel;
pub mod sink;
pub mod step;
pub mod stream;
pub mod trace;

pub use backend::{
    apply_event, geometry_for_trace, lower_ranges, max_trace_tid, replay, trace_granule_span,
    BitmapBackend, CheckBackend, CheckEvent, CheckKind, Conflict, Verdict,
};
pub use btrace::{is_binary as is_binary_trace, parse_binary, to_binary, BinaryTraceReader};
pub use cache::{OwnedCache, RUN_SLOTS};
pub use epoch::{EpochTable, DEFAULT_REGIONS};
pub use geometry::{ShadowGeometry, THREADS_PER_SHARD};
pub use parallel::ParallelReplay;
pub use sink::{recording_tid, EventLog, EventSink};
pub use step::range::RangeStep;
pub use step::{Access, Transition};
pub use stream::{StreamStats, StreamingSink};
pub use trace::{keyword as event_keyword, parse_text as parse_trace, to_text as trace_to_text};

/// Bytes of payload memory covered by one shadow granule (§4.2.1:
/// "for every 16 bytes of memory, SharC maintains n additional
/// bytes").
pub const GRANULE_BYTES: usize = 16;

/// Payload 8-byte words per granule (`sharc-runtime`'s unit).
pub const GRANULE_WORDS: usize = GRANULE_BYTES / 8;

/// VM memory cells per granule (one VM cell models one 8-byte word).
pub const GRANULE_CELLS: u32 = (GRANULE_BYTES / 8) as u32;

/// The largest checked-thread id representable by an `n`-byte bitmap
/// shadow word (the paper's `8n − 1`; bit 0 is the writer flag).
pub const fn max_bitmap_tid(shadow_bytes: usize) -> u32 {
    (shadow_bytes * 8 - 1) as u32
}

/// Exact thread capacity of **one** 8-byte bitmap shard word (the
/// paper's `8n − 1`). This constant is deliberately *not*
/// load-bearing outside this crate any more: layers that need a
/// thread bound derive it from a [`ShadowGeometry`]
/// (`geometry.exact_threads()`), which stacks shards of this size —
/// so the runtime and VM scale past 63 threads while each shard word
/// still obeys the paper's encoding.
pub const MAX_CHECKED_THREADS: usize = max_bitmap_tid(8) as usize;

// The granule must be a whole number of 8-byte words and cells, and
// the thread-capacity rule must agree with the bitmap encoding.
const _: () = assert!(GRANULE_BYTES.is_multiple_of(8));
const _: () = assert!(GRANULE_WORDS * 8 == GRANULE_BYTES);
const _: () = assert!(GRANULE_CELLS as usize == GRANULE_WORDS);
const _: () = assert!(MAX_CHECKED_THREADS == 63);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn granule_constants_agree() {
        assert_eq!(GRANULE_BYTES, 16);
        assert_eq!(GRANULE_WORDS, 2);
        assert_eq!(GRANULE_CELLS, 2);
    }

    #[test]
    fn bitmap_capacity_is_8n_minus_1() {
        assert_eq!(max_bitmap_tid(1), 7);
        assert_eq!(max_bitmap_tid(2), 15);
        assert_eq!(max_bitmap_tid(4), 31);
        assert_eq!(max_bitmap_tid(8), 63);
        assert_eq!(MAX_CHECKED_THREADS, 63);
    }
}
