//! Event sinks: where a traced execution's [`CheckEvent`]s go.
//!
//! Native workloads emit the same [`CheckEvent`] vocabulary the VM's
//! tracer produces; an [`EventSink`] is the consumer on the other end
//! of that emission. Two implementations cover the two detection
//! modes:
//!
//! * [`EventLog`] (here) — the record-then-replay sink: a
//!   mutex-serialized append-only buffer that accumulates the whole
//!   run, to be replayed through any
//!   [`CheckBackend`](crate::CheckBackend) afterwards. Unbounded
//!   memory, but the trace is a first-class artifact (it can be
//!   written to disk and re-judged by a later process).
//! * [`crate::stream::StreamingSink`] — the online sink: per-thread
//!   bounded rings drained under an epoch flip, feeding a backend
//!   *during* the run inside a fixed memory budget.
//!
//! Access events are emitted *by the arena* whenever a checked
//! access runs with a sink attached to the thread context; lifecycle
//! events — fork/join, sharing casts, frees — are recorded by the
//! workload code at the point it performs them.

use crate::backend::CheckEvent;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, TryLockError};

/// A consumer of native-execution [`CheckEvent`]s. Shared (`Arc`)
/// between a workload's threads; every method takes `&self`.
pub trait EventSink: Send + Sync + std::fmt::Debug {
    /// Accepts one event.
    fn record(&self, e: CheckEvent);

    /// Convenience for the arena's access hook.
    #[inline]
    fn record_access(&self, tid: u32, granule: usize, is_write: bool) {
        self.record(if is_write {
            CheckEvent::Write { tid, granule }
        } else {
            CheckEvent::Read { tid, granule }
        });
    }

    /// Convenience for the arena's ranged-access hook: one event per
    /// buffer sweep (`len` granules starting at `granule`). Replay
    /// lowers it to per-granule checks, so the recorded trace spells
    /// the same verdicts as `len` individual access events.
    #[inline]
    fn record_range(&self, tid: u32, granule: usize, len: usize, is_write: bool) {
        self.record(if is_write {
            CheckEvent::RangeWrite { tid, granule, len }
        } else {
            CheckEvent::RangeRead { tid, granule, len }
        });
    }

    /// Convenience for a whole-block sharing cast: ONE
    /// [`CheckEvent::RangeCast`] covering `len` granules, instead of
    /// `len` per-granule cast events.
    #[inline]
    fn record_range_cast(&self, tid: u32, granule: usize, len: usize, refs: u64) {
        self.record(CheckEvent::RangeCast {
            tid,
            granule,
            len,
            refs,
        });
    }

    /// Convenience for a whole-block free: ONE
    /// [`CheckEvent::RangeFree`] covering `len` granules.
    #[inline]
    fn record_range_free(&self, granule: usize, len: usize) {
        self.record(CheckEvent::RangeFree { granule, len });
    }
}

/// The thread *performing* the recording of `e` — the event's tid,
/// the parent for fork/join (the parent records both, per the
/// workload convention), and 0 for `Alloc` (recorded by whoever
/// (re)allocates). Sinks that maintain per-thread state (append
/// counters, rings) key it off this.
pub fn recording_tid(e: &CheckEvent) -> u32 {
    match *e {
        CheckEvent::Read { tid, .. }
        | CheckEvent::Write { tid, .. }
        | CheckEvent::RangeRead { tid, .. }
        | CheckEvent::RangeWrite { tid, .. }
        | CheckEvent::LockedAccess { tid, .. }
        | CheckEvent::SharingCast { tid, .. }
        | CheckEvent::RangeCast { tid, .. }
        | CheckEvent::Acquire { tid, .. }
        | CheckEvent::Release { tid, .. }
        | CheckEvent::ThreadExit { tid } => tid,
        CheckEvent::Fork { parent, .. } | CheckEvent::Join { parent, .. } => parent,
        CheckEvent::Alloc { .. } | CheckEvent::RangeFree { .. } => 0,
    }
}

#[derive(Debug, Default)]
struct LogInner {
    events: Vec<CheckEvent>,
    /// Events appended per recording thread.
    appends: HashMap<u32, u64>,
}

/// A thread-safe, append-only `CheckEvent` buffer — the
/// record-then-replay sink.
///
/// Appending under one lock gives the multi-threaded execution a
/// linearization; for the workloads that use it, every cross-thread
/// hand-off happens under a real lock or a sharing cast, so the
/// linearized trace preserves the synchronization order the
/// detectors reason about.
///
/// The log also counts its own bottleneck: per-thread append totals
/// and the number of appends that found the lock already held
/// ([`EventLog::contended_appends`]) quantify the serialization the
/// streaming sink removes.
#[derive(Debug, Default)]
pub struct EventLog {
    inner: Mutex<LogInner>,
    /// Appends whose `try_lock` lost to another thread.
    contended: AtomicU64,
}

impl EventLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Locks the buffer, counting contention on the way in.
    fn guard(&self) -> MutexGuard<'_, LogInner> {
        match self.inner.try_lock() {
            Ok(g) => g,
            Err(TryLockError::WouldBlock) => {
                self.contended.fetch_add(1, Ordering::Relaxed);
                self.inner.lock().expect("event log poisoned")
            }
            Err(TryLockError::Poisoned(_)) => panic!("event log poisoned"),
        }
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.guard().events.len()
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Clones the events out (the log keeps them).
    pub fn snapshot(&self) -> Vec<CheckEvent> {
        self.guard().events.clone()
    }

    /// Drains the events out, leaving the log empty (the counters
    /// keep their totals).
    pub fn take(&self) -> Vec<CheckEvent> {
        std::mem::take(&mut self.guard().events)
    }

    /// `(tid, appends)` per recording thread, sorted by tid.
    pub fn append_counts(&self) -> Vec<(u32, u64)> {
        let mut counts: Vec<(u32, u64)> =
            self.guard().appends.iter().map(|(&t, &n)| (t, n)).collect();
        counts.sort_unstable();
        counts
    }

    /// Appends that hit the serialized log's lock while another
    /// thread held it — the contention the streaming sink's
    /// per-thread rings are built to remove.
    pub fn contended_appends(&self) -> u64 {
        self.contended.load(Ordering::Relaxed)
    }
}

impl EventSink for EventLog {
    /// Appends one event (linearized under the log's lock).
    #[inline]
    fn record(&self, e: CheckEvent) {
        let mut g = self.guard();
        *g.appends.entry(recording_tid(&e)).or_insert(0) += 1;
        g.events.push(e);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn records_in_order_single_thread() {
        let log = EventLog::new();
        log.record(CheckEvent::Fork {
            parent: 1,
            child: 2,
        });
        log.record_access(2, 7, true);
        log.record_access(2, 7, false);
        assert_eq!(log.len(), 3);
        let evs = log.snapshot();
        assert_eq!(evs[1], CheckEvent::Write { tid: 2, granule: 7 });
        assert_eq!(evs[2], CheckEvent::Read { tid: 2, granule: 7 });
        assert_eq!(log.take().len(), 3);
        assert!(log.is_empty());
    }

    #[test]
    fn concurrent_appends_all_land() {
        let log = Arc::new(EventLog::new());
        let mut handles = Vec::new();
        for t in 1..=4u32 {
            let log = Arc::clone(&log);
            handles.push(std::thread::spawn(move || {
                for g in 0..100 {
                    log.record_access(t, g, g % 2 == 0);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(log.len(), 400);
    }

    #[test]
    fn native_trace_replays_through_a_backend() {
        use crate::{replay, BitmapBackend};
        let log = EventLog::new();
        log.record_access(1, 0, true);
        log.record(CheckEvent::SharingCast {
            tid: 1,
            granule: 0,
            refs: 1,
        });
        log.record_access(2, 0, true);
        let mut b = BitmapBackend::new();
        assert!(replay(&log.snapshot(), &mut b).is_empty(), "hand-off ok");
    }

    #[test]
    fn append_counters_attribute_by_recording_thread() {
        let log = EventLog::new();
        // tid 1 records its own access, a fork, and a join; tid 2
        // records two accesses. Alloc is charged to thread 0.
        log.record_access(1, 0, true);
        log.record(CheckEvent::Fork {
            parent: 1,
            child: 2,
        });
        log.record_access(2, 1, false);
        log.record_access(2, 2, false);
        log.record(CheckEvent::Join {
            parent: 1,
            child: 2,
        });
        log.record(CheckEvent::Alloc { granule: 9 });
        assert_eq!(log.append_counts(), vec![(0, 1), (1, 3), (2, 2)]);
        // Single-threaded appends never contend.
        assert_eq!(log.contended_appends(), 0);
    }
}
