//! Binary [`CheckEvent`](crate::CheckEvent) traces — format **v4**,
//! the archive format for full-scale runs (`.sbt`, "sharc binary
//! trace").
//!
//! The text formats v1–v3 ([`crate::trace`]) spend ~14 bytes per
//! event; at the 10⁷–10⁸ events of a stunnel-fleet run that is
//! gigabytes of decimal digits, most of them repeating the same tid
//! and nearly the same granule line after line. v4 stores the same
//! linearization bit-exactly in a fraction of the space:
//!
//! ```text
//! offset  size  field
//! 0       4     magic  b"SBT4"
//! 4       1     version (4)
//! 5       3     reserved (zero)
//! 8       4     max tid              (little-endian u32)
//! 12      4     shard count          (ShadowGeometry::for_threads)
//! 16      8     event count          (little-endian u64)
//! 24      8     granule span         (little-endian u64)
//! 32      …     per-thread blocks
//! …       …     block index footer
//! end-12  8     footer offset        (little-endian u64)
//! end-4   4     end magic  b"4TBS"
//! ```
//!
//! **Per-thread blocks.** The event stream is cut into maximal runs
//! of events with the same [`recording_tid`] — the bursts a real
//! workload emits — so the tid is paid once per run, not once per
//! event. A block is `uleb(tid) uleb(count)` followed by `count`
//! events; blocks in file order concatenate to exactly the recorded
//! linearization, which is what keeps replay verdicts bit-identical
//! to the text file (no per-event sequence numbers, no reordering).
//!
//! **Per-event encoding.** One opcode byte, then LEB128 varint
//! operands. Granules are delta-encoded: each block carries a granule
//! register (starting at 0) and every granule operand is the
//! zigzag-LEB128 difference from the previous granule in the same
//! block — a thread sweeping a buffer pays one byte per event.
//! Lengths, refcounts, lock ids, and fork/join child tids are plain
//! LEB128 (they are small in practice). `exit` is the opcode alone
//! and `fork`/`join` spell only the child: the block tid already
//! names the event's own tid, exactly as [`recording_tid`] defines
//! it.
//!
//! **Block index footer.** `uleb(n)` then one `uleb(offset-delta)
//! uleb(tid) uleb(count)` triple per block, offsets relative to the
//! previous block's start (the first is absolute). A reader can jump
//! to any block without decoding its predecessors — the hook for
//! mmap-style random access and region-sharded decoding — and the
//! trailer locates the footer from the end of the file alone.
//!
//! [`BinaryTraceReader`] is zero-copy: it borrows the byte slice
//! (read, mapped, or in memory), validates the framing once, and
//! decodes events on demand with [`BinaryTraceReader::events`].
//! Round-tripping is exact in both directions and pinned by the
//! property tests below: `parse_binary ∘ to_binary` is the identity
//! on any event vector, and text→binary→text reproduces the v3 file
//! byte-for-byte.
//!
//! [`recording_tid`]: crate::sink::recording_tid

use crate::backend::{max_trace_tid, trace_granule_span, CheckEvent};
use crate::geometry::ShadowGeometry;
use crate::sink::recording_tid;

/// Leading magic of a v4 binary trace (`sharc trace` and `sharc
/// replay` sniff this to tell binary from text).
pub const BTRACE_MAGIC: [u8; 4] = *b"SBT4";
/// Trailing magic, after the footer-offset word.
pub const BTRACE_END_MAGIC: [u8; 4] = *b"4TBS";
/// The format version this module reads and writes.
pub const BTRACE_VERSION: u8 = 4;
/// Fixed header size in bytes.
pub const HEADER_LEN: usize = 32;
/// Fixed trailer size in bytes (footer offset + end magic).
pub const TRAILER_LEN: usize = 12;

// Opcodes, one byte per event. The numbering is part of the on-disk
// format: append only, never renumber.
const OP_READ: u8 = 0;
const OP_WRITE: u8 = 1;
const OP_RANGE_READ: u8 = 2;
const OP_RANGE_WRITE: u8 = 3;
const OP_LOCKED: u8 = 4;
const OP_CAST: u8 = 5;
const OP_RANGE_CAST: u8 = 6;
const OP_RANGE_FREE: u8 = 7;
const OP_ACQUIRE: u8 = 8;
const OP_RELEASE: u8 = 9;
const OP_FORK: u8 = 10;
const OP_JOIN: u8 = 11;
const OP_EXIT: u8 = 12;
const OP_ALLOC: u8 = 13;

/// True if `bytes` starts like a v4 binary trace. A text trace can
/// never collide: its first byte is `#`, a keyword letter, or
/// whitespace, none of which is `S` followed by `BT4`… within the
/// trace vocabulary.
pub fn is_binary(bytes: &[u8]) -> bool {
    bytes.len() >= 4 && bytes[..4] == BTRACE_MAGIC
}

fn write_uleb(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn write_granule_delta(out: &mut Vec<u8>, prev: &mut i64, granule: usize) {
    let g = granule as i64;
    let delta = g.wrapping_sub(*prev);
    *prev = g;
    // Zigzag: small negative deltas stay one byte.
    write_uleb(out, ((delta << 1) ^ (delta >> 63)) as u64);
}

fn read_uleb(bytes: &[u8], pos: &mut usize) -> Result<u64, String> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let byte = *bytes
            .get(*pos)
            .ok_or_else(|| format!("truncated varint at byte {}", *pos))?;
        *pos += 1;
        if shift >= 63 && byte > 1 {
            return Err(format!("varint overflow at byte {}", *pos - 1));
        }
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

fn read_granule_delta(bytes: &[u8], pos: &mut usize, prev: &mut i64) -> Result<usize, String> {
    let z = read_uleb(bytes, pos)?;
    let delta = ((z >> 1) as i64) ^ -((z & 1) as i64);
    let g = prev.wrapping_add(delta);
    if g < 0 {
        return Err(format!("granule delta underflows below zero at byte {pos}"));
    }
    *prev = g;
    Ok(g as usize)
}

/// Encodes `events` in the v4 binary framing. Deterministic: the
/// same event vector always produces the same bytes, so
/// binary→text→binary round trips are byte-identical (`cmp`-clean),
/// not merely event-identical.
pub fn to_binary(events: &[CheckEvent]) -> Vec<u8> {
    // ~2.5 bytes/event is the steady state for access-dominated
    // traces; headroom avoids one realloc on the tail.
    let mut out = Vec::with_capacity(HEADER_LEN + TRAILER_LEN + events.len() * 3 + 64);
    let max_tid = max_trace_tid(events);
    let shards = ShadowGeometry::for_threads((max_tid as usize).max(1)).shards();
    out.extend_from_slice(&BTRACE_MAGIC);
    out.push(BTRACE_VERSION);
    out.extend_from_slice(&[0u8; 3]);
    out.extend_from_slice(&max_tid.to_le_bytes());
    out.extend_from_slice(&(shards as u32).to_le_bytes());
    out.extend_from_slice(&(events.len() as u64).to_le_bytes());
    out.extend_from_slice(&(trace_granule_span(events) as u64).to_le_bytes());

    // (absolute offset, tid, event count) per block, for the footer.
    let mut index: Vec<(u64, u32, u64)> = Vec::new();
    let mut i = 0;
    while i < events.len() {
        let tid = recording_tid(&events[i]);
        let mut end = i + 1;
        while end < events.len() && recording_tid(&events[end]) == tid {
            end += 1;
        }
        index.push((out.len() as u64, tid, (end - i) as u64));
        write_uleb(&mut out, u64::from(tid));
        write_uleb(&mut out, (end - i) as u64);
        let mut prev: i64 = 0;
        for e in &events[i..end] {
            match *e {
                CheckEvent::Read { granule, .. } => {
                    out.push(OP_READ);
                    write_granule_delta(&mut out, &mut prev, granule);
                }
                CheckEvent::Write { granule, .. } => {
                    out.push(OP_WRITE);
                    write_granule_delta(&mut out, &mut prev, granule);
                }
                CheckEvent::RangeRead { granule, len, .. } => {
                    out.push(OP_RANGE_READ);
                    write_granule_delta(&mut out, &mut prev, granule);
                    write_uleb(&mut out, len as u64);
                }
                CheckEvent::RangeWrite { granule, len, .. } => {
                    out.push(OP_RANGE_WRITE);
                    write_granule_delta(&mut out, &mut prev, granule);
                    write_uleb(&mut out, len as u64);
                }
                CheckEvent::LockedAccess { lock, .. } => {
                    out.push(OP_LOCKED);
                    write_uleb(&mut out, lock as u64);
                }
                CheckEvent::SharingCast { granule, refs, .. } => {
                    out.push(OP_CAST);
                    write_granule_delta(&mut out, &mut prev, granule);
                    write_uleb(&mut out, refs);
                }
                CheckEvent::RangeCast {
                    granule, len, refs, ..
                } => {
                    out.push(OP_RANGE_CAST);
                    write_granule_delta(&mut out, &mut prev, granule);
                    write_uleb(&mut out, len as u64);
                    write_uleb(&mut out, refs);
                }
                CheckEvent::RangeFree { granule, len } => {
                    out.push(OP_RANGE_FREE);
                    write_granule_delta(&mut out, &mut prev, granule);
                    write_uleb(&mut out, len as u64);
                }
                CheckEvent::Acquire { lock, .. } => {
                    out.push(OP_ACQUIRE);
                    write_uleb(&mut out, lock as u64);
                }
                CheckEvent::Release { lock, .. } => {
                    out.push(OP_RELEASE);
                    write_uleb(&mut out, lock as u64);
                }
                CheckEvent::Fork { child, .. } => {
                    out.push(OP_FORK);
                    write_uleb(&mut out, u64::from(child));
                }
                CheckEvent::Join { child, .. } => {
                    out.push(OP_JOIN);
                    write_uleb(&mut out, u64::from(child));
                }
                CheckEvent::ThreadExit { .. } => out.push(OP_EXIT),
                CheckEvent::Alloc { granule } => {
                    out.push(OP_ALLOC);
                    write_granule_delta(&mut out, &mut prev, granule);
                }
            }
        }
        i = end;
    }

    let footer_off = out.len() as u64;
    write_uleb(&mut out, index.len() as u64);
    let mut prev_off = 0u64;
    for &(off, tid, count) in &index {
        write_uleb(&mut out, off - prev_off);
        prev_off = off;
        write_uleb(&mut out, u64::from(tid));
        write_uleb(&mut out, count);
    }
    out.extend_from_slice(&footer_off.to_le_bytes());
    out.extend_from_slice(&BTRACE_END_MAGIC);
    out
}

/// One entry of the block index footer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockEntry {
    /// Absolute byte offset of the block's `uleb(tid)`.
    pub offset: usize,
    /// The block's recording tid.
    pub tid: u32,
    /// Events in the block.
    pub events: u64,
}

/// A validated, zero-copy view of a v4 binary trace: borrows the
/// byte slice (heap buffer or memory-mapped file alike), checks the
/// framing once in [`BinaryTraceReader::new`], and decodes events
/// lazily. Nothing is copied until an event is materialized.
#[derive(Debug, Clone, Copy)]
pub struct BinaryTraceReader<'a> {
    data: &'a [u8],
    max_tid: u32,
    shards: u32,
    event_count: u64,
    granule_span: u64,
    footer_off: usize,
}

impl<'a> BinaryTraceReader<'a> {
    /// Validates the header and trailer of `data` and returns the
    /// reader. Block payloads are *not* decoded here — corruption
    /// inside a block surfaces from [`BinaryTraceReader::events`].
    pub fn new(data: &'a [u8]) -> Result<Self, String> {
        if !is_binary(data) {
            return Err("not a binary trace (missing SBT4 magic)".to_string());
        }
        if data.len() < HEADER_LEN + TRAILER_LEN {
            return Err(format!(
                "binary trace truncated: {} bytes is shorter than header + trailer",
                data.len()
            ));
        }
        if data[4] != BTRACE_VERSION {
            return Err(format!(
                "unsupported binary trace version {} (this reader speaks v{BTRACE_VERSION})",
                data[4]
            ));
        }
        let end = data.len();
        if data[end - 4..] != BTRACE_END_MAGIC {
            return Err("binary trace truncated: end magic missing".to_string());
        }
        let fixed = |at: usize| -> [u8; 8] { data[at..at + 8].try_into().expect("8 bytes") };
        let footer_off = u64::from_le_bytes(fixed(end - TRAILER_LEN)) as usize;
        if footer_off < HEADER_LEN || footer_off > end - TRAILER_LEN {
            return Err(format!(
                "binary trace footer offset {footer_off} out of bounds"
            ));
        }
        Ok(BinaryTraceReader {
            data,
            max_tid: u32::from_le_bytes(data[8..12].try_into().expect("4 bytes")),
            shards: u32::from_le_bytes(data[12..16].try_into().expect("4 bytes")),
            event_count: u64::from_le_bytes(fixed(16)),
            granule_span: u64::from_le_bytes(fixed(24)),
            footer_off,
        })
    }

    /// The format version (always [`BTRACE_VERSION`] once validated).
    pub fn version(&self) -> u8 {
        BTRACE_VERSION
    }

    /// The largest tid the trace names, from the header.
    pub fn max_tid(&self) -> u32 {
        self.max_tid
    }

    /// The recorded shard geometry (what
    /// [`ShadowGeometry::for_threads`] derived from the max tid at
    /// encode time) — a replayer can size its backend before
    /// decoding a single event.
    pub fn geometry(&self) -> ShadowGeometry {
        ShadowGeometry::with_shards(self.shards as usize)
    }

    /// Total events, from the header.
    pub fn event_count(&self) -> u64 {
        self.event_count
    }

    /// One past the largest granule any event touches, from the
    /// header.
    pub fn granule_span(&self) -> u64 {
        self.granule_span
    }

    /// Total size in bytes of the framed trace.
    pub fn len_bytes(&self) -> usize {
        self.data.len()
    }

    /// Parses the block index footer: one entry per per-thread block,
    /// in file (= linearization) order.
    pub fn blocks(&self) -> Result<Vec<BlockEntry>, String> {
        let bytes = &self.data[..self.data.len() - TRAILER_LEN];
        let mut pos = self.footer_off;
        let n = read_uleb(bytes, &mut pos)?;
        let mut entries = Vec::with_capacity(n.min(1 << 20) as usize);
        let mut prev_off = 0u64;
        for _ in 0..n {
            let off = prev_off + read_uleb(bytes, &mut pos)?;
            prev_off = off;
            let tid = read_uleb(bytes, &mut pos)?;
            let events = read_uleb(bytes, &mut pos)?;
            if off as usize >= self.footer_off {
                return Err(format!("block offset {off} points past the footer"));
            }
            entries.push(BlockEntry {
                offset: off as usize,
                tid: u32::try_from(tid).map_err(|_| format!("block tid {tid} overflows u32"))?,
                events,
            });
        }
        if pos != bytes.len() {
            return Err(format!(
                "binary trace footer has {} trailing bytes",
                bytes.len() - pos
            ));
        }
        Ok(entries)
    }

    /// A streaming decoder over every event, in linearization order.
    /// Each item is `Ok(event)` or the first framing error.
    pub fn events(&self) -> EventIter<'a> {
        EventIter {
            data: self.data,
            pos: HEADER_LEN,
            end: self.footer_off,
            block_tid: 0,
            left_in_block: 0,
            prev_granule: 0,
            failed: false,
        }
    }

    /// Decodes the whole trace, verifying the header's event count.
    pub fn decode(&self) -> Result<Vec<CheckEvent>, String> {
        let mut out = Vec::with_capacity(self.event_count.min(1 << 28) as usize);
        for e in self.events() {
            out.push(e?);
        }
        if out.len() as u64 != self.event_count {
            return Err(format!(
                "binary trace decoded {} events but the header promises {}",
                out.len(),
                self.event_count
            ));
        }
        Ok(out)
    }
}

/// Streaming event decoder; see [`BinaryTraceReader::events`].
#[derive(Debug)]
pub struct EventIter<'a> {
    data: &'a [u8],
    pos: usize,
    end: usize,
    block_tid: u32,
    left_in_block: u64,
    prev_granule: i64,
    failed: bool,
}

impl EventIter<'_> {
    fn decode_next(&mut self) -> Result<Option<CheckEvent>, String> {
        use CheckEvent as E;
        if self.left_in_block == 0 {
            // Block boundary (or clean end of the block region).
            if self.pos == self.end {
                return Ok(None);
            }
            let bytes = &self.data[..self.end];
            let tid = read_uleb(bytes, &mut self.pos)?;
            self.block_tid =
                u32::try_from(tid).map_err(|_| format!("block tid {tid} overflows u32"))?;
            self.left_in_block = read_uleb(bytes, &mut self.pos)?;
            self.prev_granule = 0;
            if self.left_in_block == 0 {
                return Err("empty block in binary trace".to_string());
            }
        }
        let bytes = &self.data[..self.end];
        let op = *bytes
            .get(self.pos)
            .ok_or_else(|| "truncated block: opcode missing".to_string())?;
        self.pos += 1;
        let tid = self.block_tid;
        let e = match op {
            OP_READ => E::Read {
                tid,
                granule: read_granule_delta(bytes, &mut self.pos, &mut self.prev_granule)?,
            },
            OP_WRITE => E::Write {
                tid,
                granule: read_granule_delta(bytes, &mut self.pos, &mut self.prev_granule)?,
            },
            OP_RANGE_READ => E::RangeRead {
                tid,
                granule: read_granule_delta(bytes, &mut self.pos, &mut self.prev_granule)?,
                len: read_uleb(bytes, &mut self.pos)? as usize,
            },
            OP_RANGE_WRITE => E::RangeWrite {
                tid,
                granule: read_granule_delta(bytes, &mut self.pos, &mut self.prev_granule)?,
                len: read_uleb(bytes, &mut self.pos)? as usize,
            },
            OP_LOCKED => E::LockedAccess {
                tid,
                lock: read_uleb(bytes, &mut self.pos)? as usize,
            },
            OP_CAST => E::SharingCast {
                tid,
                granule: read_granule_delta(bytes, &mut self.pos, &mut self.prev_granule)?,
                refs: read_uleb(bytes, &mut self.pos)?,
            },
            OP_RANGE_CAST => E::RangeCast {
                tid,
                granule: read_granule_delta(bytes, &mut self.pos, &mut self.prev_granule)?,
                len: read_uleb(bytes, &mut self.pos)? as usize,
                refs: read_uleb(bytes, &mut self.pos)?,
            },
            OP_RANGE_FREE => E::RangeFree {
                granule: read_granule_delta(bytes, &mut self.pos, &mut self.prev_granule)?,
                len: read_uleb(bytes, &mut self.pos)? as usize,
            },
            OP_ACQUIRE => E::Acquire {
                tid,
                lock: read_uleb(bytes, &mut self.pos)? as usize,
            },
            OP_RELEASE => E::Release {
                tid,
                lock: read_uleb(bytes, &mut self.pos)? as usize,
            },
            OP_FORK => E::Fork {
                parent: tid,
                child: u32::try_from(read_uleb(bytes, &mut self.pos)?)
                    .map_err(|_| "fork child overflows u32".to_string())?,
            },
            OP_JOIN => E::Join {
                parent: tid,
                child: u32::try_from(read_uleb(bytes, &mut self.pos)?)
                    .map_err(|_| "join child overflows u32".to_string())?,
            },
            OP_EXIT => E::ThreadExit { tid },
            OP_ALLOC => E::Alloc {
                granule: read_granule_delta(bytes, &mut self.pos, &mut self.prev_granule)?,
            },
            other => return Err(format!("unknown opcode {other} at byte {}", self.pos - 1)),
        };
        self.left_in_block -= 1;
        Ok(Some(e))
    }
}

impl Iterator for EventIter<'_> {
    type Item = Result<CheckEvent, String>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed {
            return None;
        }
        match self.decode_next() {
            Ok(Some(e)) => Some(Ok(e)),
            Ok(None) => None,
            Err(e) => {
                self.failed = true;
                Some(Err(e))
            }
        }
    }
}

/// Convenience: validate + decode in one call, the binary twin of
/// [`crate::trace::parse_text`].
pub fn parse_binary(bytes: &[u8]) -> Result<Vec<CheckEvent>, String> {
    BinaryTraceReader::new(bytes)?.decode()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{parse_text, to_text};
    use sharc_testkit::{forall, gen, prop_assert_eq, Gen};

    /// The full 14-variant vocabulary, wide tids included (the
    /// cross-shard boundary matters: the header records the shard
    /// geometry of the widest tid).
    fn event_gen() -> Gen<CheckEvent> {
        gen::pair(
            gen::u32_range(0..14),
            gen::triple(
                gen::u32_range(1..300),
                gen::usize_range(0..4096),
                gen::u64_range(1..5),
            ),
        )
        .map(|&(kind, (tid, granule, refs))| {
            let lock = granule % 8;
            let len = (granule % 7) + 1;
            match kind {
                0 => CheckEvent::Read { tid, granule },
                1 => CheckEvent::Write { tid, granule },
                2 => CheckEvent::LockedAccess { tid, lock },
                3 => CheckEvent::SharingCast { tid, granule, refs },
                4 => CheckEvent::Acquire { tid, lock },
                5 => CheckEvent::Release { tid, lock },
                6 => CheckEvent::Fork {
                    parent: tid,
                    child: tid + 1,
                },
                7 => CheckEvent::Join {
                    parent: tid,
                    child: tid + 1,
                },
                8 => CheckEvent::ThreadExit { tid },
                9 => CheckEvent::RangeRead { tid, granule, len },
                10 => CheckEvent::RangeWrite { tid, granule, len },
                11 => CheckEvent::RangeCast {
                    tid,
                    granule,
                    len,
                    refs,
                },
                12 => CheckEvent::RangeFree { granule, len },
                _ => CheckEvent::Alloc { granule },
            }
        })
    }

    #[test]
    fn round_trip_is_identity_over_the_whole_vocabulary() {
        forall!(
            "btrace_round_trip_is_identity",
            gen::vec_of(event_gen(), 0..96),
            |events| {
                let bytes = to_binary(events);
                let parsed = parse_binary(&bytes).expect("well-formed");
                prop_assert_eq!(&parsed, events);
            }
        );
    }

    #[test]
    fn text_to_binary_to_text_is_the_identity_on_the_file() {
        // The tentpole round trip at the *file* level: any v3 text
        // file survives text→binary→text byte-for-byte, so archiving
        // a text trace as .sbt and later exporting it back is
        // lossless on the artifact, not merely on the event vector.
        forall!(
            "btrace_text_binary_text_identity",
            gen::vec_of(event_gen(), 0..96),
            |events| {
                let text = to_text(events);
                let via_binary = to_text(
                    &parse_binary(&to_binary(&parse_text(&text).expect("v3 parses")))
                        .expect("v4 parses"),
                );
                prop_assert_eq!(&via_binary, &text);
            }
        );
    }

    #[test]
    fn binary_re_encode_is_byte_identical() {
        // Determinism at the byte level: decode→encode reproduces
        // the exact file (blocking is a pure function of the event
        // sequence), which is what `ci/check.sh` pins with `cmp` on
        // the CLI convert round trip.
        forall!(
            "btrace_re_encode_byte_identical",
            gen::vec_of(event_gen(), 0..96),
            |events| {
                let a = to_binary(events);
                let b = to_binary(&parse_binary(&a).expect("parses"));
                prop_assert_eq!(&a, &b);
            }
        );
    }

    #[test]
    fn header_records_geometry_and_counts() {
        let events = vec![
            CheckEvent::Fork {
                parent: 1,
                child: 200,
            },
            CheckEvent::Write {
                tid: 200,
                granule: 4095,
            },
            CheckEvent::RangeWrite {
                tid: 200,
                granule: 4096,
                len: 8,
            },
        ];
        let bytes = to_binary(&events);
        let r = BinaryTraceReader::new(&bytes).expect("valid");
        assert_eq!(r.version(), 4);
        assert_eq!(r.max_tid(), 200);
        assert_eq!(r.event_count(), 3);
        assert_eq!(r.granule_span(), 4104);
        assert_eq!(
            r.geometry(),
            ShadowGeometry::for_threads(200),
            "header geometry sizes the replay backend without decoding"
        );
        let blocks = r.blocks().expect("footer parses");
        assert_eq!(
            blocks.iter().map(|b| (b.tid, b.events)).collect::<Vec<_>>(),
            vec![(1, 1), (200, 2)],
            "blocks are maximal same-recording-tid runs"
        );
    }

    #[test]
    fn per_thread_blocks_preserve_the_interleaving() {
        // Alternating tids force one block per event; the decoded
        // order must still be the recorded linearization exactly.
        let mut events = Vec::new();
        for i in 0..10usize {
            let tid = 1 + (i % 2) as u32;
            events.push(CheckEvent::Write { tid, granule: i });
        }
        assert_eq!(parse_binary(&to_binary(&events)).unwrap(), events);
    }

    #[test]
    fn corrupt_framing_is_rejected_loudly() {
        let good = to_binary(&[CheckEvent::Read { tid: 1, granule: 7 }]);
        // Text input.
        assert!(BinaryTraceReader::new(b"# sharc-trace v3\n")
            .unwrap_err()
            .contains("magic"));
        // Truncation that loses the trailer.
        assert!(BinaryTraceReader::new(&good[..good.len() - 3])
            .unwrap_err()
            .contains("end magic"));
        // A version bump fails loudly instead of misparsing.
        let mut v5 = good.clone();
        v5[4] = 5;
        assert!(BinaryTraceReader::new(&v5)
            .unwrap_err()
            .contains("version 5"));
        // An unknown opcode inside a block surfaces from decode.
        let mut bad_op = good.clone();
        bad_op[HEADER_LEN + 2] = 0x7e; // the event's opcode byte
        assert!(parse_binary(&bad_op).unwrap_err().contains("opcode"));
        // A lying header count surfaces from decode.
        let mut short_count = good;
        short_count[16] = 2;
        assert!(parse_binary(&short_count)
            .unwrap_err()
            .contains("promises 2"));
    }

    #[test]
    fn empty_trace_round_trips() {
        let bytes = to_binary(&[]);
        let r = BinaryTraceReader::new(&bytes).expect("valid");
        assert_eq!(r.event_count(), 0);
        assert_eq!(r.blocks().unwrap(), vec![]);
        assert_eq!(r.decode().unwrap(), vec![]);
    }
}
