//! The owned-granule epoch cache: a per-thread, set-associative
//! table that lets repeated private accesses skip the shadow CAS
//! entirely.
//!
//! In the paper's workloads the overwhelmingly common case is a
//! thread re-touching dynamic-mode data it already owns (pfscan's
//! scan buffers, pbzip2's per-worker blocks). The slow path pays an
//! atomic load plus, on first contact, a compare-exchange. This
//! cache reduces the steady state to one relaxed epoch load and one
//! array probe.
//!
//! ## Associativity
//!
//! The table is `WAYS`-way set-associative with `WAYS` a const
//! generic defaulting to 1 (direct-mapped — the paper-era
//! configuration). `OwnedCache<2>` halves conflict misses on
//! workloads whose working set aliases in the low index bits, at the
//! cost of one extra compare per probe; the `cache_geometry` bench in
//! `crates/bench/benches/checker.rs` sweeps associativity ×
//! slot-count on the Table 1 access patterns and records both in
//! `BENCH_checker.json`. Direct-mapped stays the default: on the
//! streaming-scan patterns the second compare costs more than the
//! aliasing it saves (see EXPERIMENTS.md).
//!
//! ## Soundness invariants
//!
//! The cache is *only* a fast path for verdicts that are already
//! decided by the shadow word; it never changes which conflicts
//! exist, only who pays to discover them. It rests on three
//! invariants of the unified state machine ([`crate::step`]):
//!
//! 1. **Conflicts never install.** Once thread `t` is the exclusive
//!    owner of a granule (word = `WRITER_FLAG | bit(t)`), any other
//!    thread's access is a conflict that leaves the word unchanged —
//!    so `t`'s ownership is stable until an explicit clear, and
//!    `t`'s own accesses can never newly conflict. Caching "I own
//!    g, skip the check" is therefore verdict-preserving: the
//!    *other* thread still runs the full check and still observes
//!    its conflict.
//! 2. **Read bits are monotone between clears.** If `t`'s read bit
//!    is set, reads by `t` can never conflict (reads only conflict
//!    with *another* thread's write flag, and installing a write
//!    flag over `t`'s read bit is itself a conflict, which does not
//!    install). So a cached read entry is valid as long as no clear
//!    intervened.
//! 3. **Every clear bumps the shadow's epoch.** `clear`,
//!    `clear_range`, and `clear_thread` (free, sharing casts, thread
//!    exit) increment a shared epoch counter. A cache whose recorded
//!    epoch differs from the shadow's current epoch discards itself
//!    wholesale before answering. The epoch is read *before* the
//!    slow-path check that populates an entry, so an entry can never
//!    be newer than the epoch it is guarded by.
//!
//! These invariants are stated for one shadow word but hold verbatim
//! for the sharded hybrid ([`crate::step::sharded`]): a passing
//! write leaves every *other* word empty and a conflicting intruder
//! installs nothing anywhere, so "I own g" remains stable across all
//! of a granule's words until an epoch-bumping clear.
//!
//! The one imprecision this admits is the same one any shadow-memory
//! tool has at a free/cast boundary: an access racing with the clear
//! itself may be judged against either side of the clear. The paper
//! accepts exactly this at `free`/`SCAST` boundaries.

/// Default number of cache entries (must be a power of two).
pub const DEFAULT_SLOTS: usize = 256;

/// One entry, keyed by granule index + 1 (0 = empty). The two keys
/// make both probes a single integer compare — `write_key` is set
/// only when the cached ownership is exclusive (writable), and a
/// write entry always implies a read entry.
#[derive(Debug, Clone, Copy, Default)]
struct Slot {
    read_key: usize,
    write_key: usize,
}

/// A per-thread owned-granule cache, `WAYS`-way set-associative
/// (default direct-mapped). Not shared between threads; the owning
/// thread's `ThreadCtx` (runtime) holds it by value.
#[derive(Debug, Clone)]
pub struct OwnedCache<const WAYS: usize = 1> {
    epoch: u64,
    /// `sets × WAYS` entries; set `s`'s ways are contiguous at
    /// `s * WAYS`.
    slots: Box<[Slot]>,
    /// Round-robin eviction cursor per set (unused when `WAYS == 1`).
    victim: Box<[u8]>,
    /// Slow-path fills. Hits are *derived* (`accesses - misses`, the
    /// caller knows its access count): counting them directly would
    /// put a read-modify-write on the same word into every fast-path
    /// iteration — a loop-carried dependency through memory that
    /// costs more than the probe itself. Misses and flushes are
    /// updated only on the outlined cold paths, where they are free.
    pub misses: u64,
    /// Whole-cache flushes forced by an epoch change.
    pub flushes: u64,
}

impl<const WAYS: usize> Default for OwnedCache<WAYS> {
    fn default() -> Self {
        Self::new()
    }
}

impl<const WAYS: usize> OwnedCache<WAYS> {
    /// Creates a cache with [`DEFAULT_SLOTS`] entries.
    pub fn new() -> Self {
        Self::with_slots(DEFAULT_SLOTS)
    }

    /// Creates a cache with `slots` total entries, organised into
    /// `slots / WAYS` sets (set count rounded up to a power of two,
    /// minimum 1).
    pub fn with_slots(slots: usize) -> Self {
        const { assert!(WAYS >= 1, "a cache needs at least one way") };
        let sets = (slots / WAYS).max(1).next_power_of_two();
        OwnedCache {
            epoch: 0,
            slots: vec![Slot::default(); sets * WAYS].into_boxed_slice(),
            victim: vec![0u8; sets].into_boxed_slice(),
            misses: 0,
            flushes: 0,
        }
    }

    /// Number of sets (power of two).
    #[inline]
    fn sets(&self) -> usize {
        self.slots.len() / WAYS
    }

    /// First entry of `granule`'s set.
    #[inline]
    fn base(&self, granule: usize) -> usize {
        (granule & (self.sets() - 1)) * WAYS
    }

    /// Answers whether `granule` is cached with sufficient rights
    /// for the access, first discarding everything if the shadow's
    /// epoch moved. This is the entire fast path, and it is kept
    /// deliberately tiny — one epoch compare, one masked probe,
    /// `WAYS` key compares (the loop fully unrolls: `WAYS` is a
    /// const) — with the epoch-flush outlined ([`Self::reset`]) so
    /// the inlined hot loop stays small enough to register-allocate.
    #[inline]
    pub fn lookup(&mut self, shadow_epoch: u64, granule: usize, is_write: bool) -> bool {
        if self.epoch != shadow_epoch {
            self.reset(shadow_epoch);
            return false;
        }
        let base = self.base(granule);
        let key = granule + 1;
        // One compare per way either way (`is_write` is a constant at
        // every call site), and deliberately no hit counter: see the
        // `misses` field for why the fast path stays store-free.
        for w in 0..WAYS {
            let s = self.slots[base + w];
            let hit = if is_write {
                s.write_key == key
            } else {
                s.read_key == key
            };
            if hit {
                return true;
            }
        }
        false
    }

    /// The outlined epoch-change path: discard every entry and adopt
    /// the new epoch.
    #[cold]
    #[inline(never)]
    fn reset(&mut self, shadow_epoch: u64) {
        self.slots.iter_mut().for_each(|s| *s = Slot::default());
        self.epoch = shadow_epoch;
        self.flushes += 1;
    }

    /// Records that the owning thread holds `granule` (exclusively
    /// if `writable`). Call only after the slow-path check passed
    /// and only with the epoch that [`OwnedCache::lookup`] was
    /// given — the epoch must be read *before* the check.
    #[inline]
    pub fn insert(&mut self, granule: usize, writable: bool) {
        self.misses += 1;
        let base = self.base(granule);
        let key = granule + 1;
        // Upgrade in place if the granule already occupies a way;
        // a read never downgrades a write entry.
        for w in 0..WAYS {
            let s = &mut self.slots[base + w];
            if s.read_key == key {
                if writable {
                    s.write_key = key;
                }
                return;
            }
        }
        // Prefer an empty way, else evict round-robin within the set.
        let mut way = None;
        for w in 0..WAYS {
            if self.slots[base + w].read_key == 0 {
                way = Some(w);
                break;
            }
        }
        let way = way.unwrap_or_else(|| {
            let set = base / WAYS;
            let v = self.victim[set] as usize % WAYS;
            self.victim[set] = self.victim[set].wrapping_add(1);
            v
        });
        self.slots[base + way] = Slot {
            read_key: key,
            write_key: if writable { key } else { 0 },
        };
    }

    /// Drops every entry (e.g. at thread exit, before the shadow
    /// clears this thread's bits).
    pub fn invalidate_all(&mut self) {
        self.slots.iter_mut().for_each(|s| *s = Slot::default());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_insert_same_epoch() {
        let mut c = OwnedCache::<1>::with_slots(8);
        assert!(!c.lookup(0, 5, true));
        c.insert(5, true);
        assert!(c.lookup(0, 5, true));
        assert!(c.lookup(0, 5, false), "writable implies readable");
        assert_eq!(c.misses, 1, "hits never refill");
    }

    #[test]
    fn read_entry_does_not_authorize_writes() {
        let mut c = OwnedCache::<1>::with_slots(8);
        c.insert(3, false);
        assert!(c.lookup(0, 3, false));
        assert!(!c.lookup(0, 3, true));
    }

    #[test]
    fn write_entry_survives_read_insert() {
        let mut c = OwnedCache::<1>::with_slots(8);
        c.insert(3, true);
        c.insert(3, false);
        assert!(c.lookup(0, 3, true), "no downgrade");
    }

    #[test]
    fn epoch_change_flushes_everything() {
        let mut c = OwnedCache::<1>::with_slots(8);
        c.insert(1, true);
        c.insert(2, true);
        assert!(!c.lookup(7, 1, true), "stale epoch discards");
        assert!(!c.lookup(7, 2, true), "the flush removed all entries");
        assert_eq!(c.flushes, 1, "one flush for the whole epoch change");
    }

    #[test]
    fn direct_mapping_evicts_colliding_granules() {
        let mut c = OwnedCache::<1>::with_slots(4);
        c.insert(0, true);
        c.insert(4, true); // same set, one way
        assert!(!c.lookup(0, 0, true));
        assert!(c.lookup(0, 4, true));
    }

    #[test]
    fn two_way_keeps_both_aliasing_granules() {
        // The same trace that evicts under direct mapping keeps both
        // residents with two ways — the whole point of the sweep.
        let mut c = OwnedCache::<2>::with_slots(8); // 4 sets × 2 ways
        c.insert(0, true);
        c.insert(4, true); // same set, second way
        assert!(c.lookup(0, 0, true));
        assert!(c.lookup(0, 4, true));
        // A third alias evicts round-robin, not wholesale.
        c.insert(8, true);
        assert!(c.lookup(0, 8, true));
        assert!(
            c.lookup(0, 0, true) ^ c.lookup(0, 4, true),
            "exactly one earlier resident survives"
        );
    }

    #[test]
    fn two_way_upgrade_finds_entry_in_either_way() {
        let mut c = OwnedCache::<2>::with_slots(8);
        c.insert(0, false);
        c.insert(4, false);
        c.insert(4, true); // upgrade in place, second way
        assert!(c.lookup(0, 4, true));
        assert!(c.lookup(0, 0, false), "first way untouched");
        assert!(!c.lookup(0, 0, true));
    }

    #[test]
    fn two_way_epoch_flush_and_invalidate() {
        let mut c = OwnedCache::<2>::with_slots(8);
        c.insert(1, true);
        c.insert(5, true);
        assert!(!c.lookup(3, 1, true), "epoch moved");
        assert!(!c.lookup(3, 5, true));
        assert_eq!(c.flushes, 1);
        c.insert(1, true);
        c.invalidate_all();
        assert!(!c.lookup(3, 1, true));
    }
}
