//! The owned-granule epoch cache: a per-thread, set-associative
//! table that lets repeated private accesses skip the shadow CAS
//! entirely.
//!
//! In the paper's workloads the overwhelmingly common case is a
//! thread re-touching dynamic-mode data it already owns (pfscan's
//! scan buffers, pbzip2's per-worker blocks). The slow path pays an
//! atomic load plus, on first contact, a compare-exchange. This
//! cache reduces the steady state to one relaxed epoch load and one
//! array probe.
//!
//! ## Associativity
//!
//! The table is `WAYS`-way set-associative with `WAYS` a const
//! generic defaulting to 1 (direct-mapped — the paper-era
//! configuration). `OwnedCache<2>` halves conflict misses on
//! workloads whose working set aliases in the low index bits, at the
//! cost of one extra compare per probe; the `cache_geometry` bench in
//! `crates/bench/benches/checker.rs` sweeps associativity ×
//! slot-count on the Table 1 access patterns and records both in
//! `BENCH_checker.json`. Direct-mapped stays the default: on the
//! streaming-scan patterns the second compare costs more than the
//! aliasing it saves (see EXPERIMENTS.md).
//!
//! ## Soundness invariants
//!
//! The cache is *only* a fast path for verdicts that are already
//! decided by the shadow word; it never changes which conflicts
//! exist, only who pays to discover them. It rests on three
//! invariants of the unified state machine ([`crate::step`]):
//!
//! 1. **Conflicts never install.** Once thread `t` is the exclusive
//!    owner of a granule (word = `WRITER_FLAG | bit(t)`), any other
//!    thread's access is a conflict that leaves the word unchanged —
//!    so `t`'s ownership is stable until an explicit clear, and
//!    `t`'s own accesses can never newly conflict. Caching "I own
//!    g, skip the check" is therefore verdict-preserving: the
//!    *other* thread still runs the full check and still observes
//!    its conflict.
//! 2. **Read bits are monotone between clears.** If `t`'s read bit
//!    is set, reads by `t` can never conflict (reads only conflict
//!    with *another* thread's write flag, and installing a write
//!    flag over `t`'s read bit is itself a conflict, which does not
//!    install). So a cached read entry is valid as long as no clear
//!    intervened.
//! 3. **Every clear bumps the epoch of the granule's region.**
//!    `clear`, `clear_range`, and `clear_thread` (free, sharing
//!    casts, thread exit) increment the [`crate::EpochTable`]
//!    counter of the region(s) they touch. Each cache entry carries
//!    the region epoch it was filled under; an entry whose tag
//!    differs from the region's current epoch never answers. The
//!    region epoch is read *before* the slow-path check, so an entry
//!    can never be newer than the epoch guarding it — per region.
//!
//! Invariant 3 is the per-region refinement of PR 2's global rule.
//! Since the cache compares the caller-supplied region epoch against
//! the probed entry's own tag, entries in *other* regions are simply
//! never consulted by the comparison — they stay live across the
//! clear without any scan. The old whole-cache flush survives as the
//! `R = 1` degenerate [`crate::EpochTable::global`], where every
//! granule shares region 0 and one bump stales every entry at once.
//!
//! These invariants are stated for one shadow word but hold verbatim
//! for the sharded hybrid ([`crate::step::sharded`]): a passing
//! write leaves every *other* word empty and a conflicting intruder
//! installs nothing anywhere, so "I own g" remains stable across all
//! of a granule's words until an epoch-bumping clear.
//!
//! The one imprecision this admits is the same one any shadow-memory
//! tool has at a free/cast boundary: an access racing with the clear
//! itself may be judged against either side of the clear. The paper
//! accepts exactly this at `free`/`SCAST` boundaries.

/// Default number of cache entries (must be a power of two).
pub const DEFAULT_SLOTS: usize = 256;

/// Number of owned-*run* summary slots per cache (fully associative,
/// round-robin eviction). Each slot summarises one contiguous granule
/// run the thread swept with a passing ranged check, so a repeat
/// sweep over the same buffer is **one** stamp compare instead of
/// `len` probes. A handful of slots suffices: the target pattern is a
/// worker lapping the same few buffers (pfscan's scan window,
/// pbzip2's block, a VM bulk move), not a zoo of distinct ranges.
pub const RUN_SLOTS: usize = 4;

/// One owned-run summary: `key` packs the start granule and the
/// writable bit exactly like [`Slot::granule_key`] (`key == 0` =
/// empty), `len` is the run length in granules, and `stamp` is the
/// **covering constraint** — the sum of the epochs of every region
/// overlapping the run at fill time
/// ([`crate::EpochTable::epoch_sum_of_range`]). Epoch counters are
/// monotone, so the sums match iff *no* covered region was bumped
/// since the fill: a clear anywhere inside the run kills it, a clear
/// elsewhere leaves it live. Runs spanning several regions therefore
/// need no splitting — they store the constraint that covers them.
#[derive(Debug, Clone, Copy, Default)]
struct RunSlot {
    key: u64,
    len: u64,
    stamp: u64,
}

/// One 16-byte entry: `key` packs the granule and the cached right —
/// bit 0 is the *writable* flag, bits 1.. hold granule + 1 (`key ==
/// 0` = empty) — and `epoch` tags the entry with its region's epoch
/// at fill time. The packing keeps both probes a single integer
/// compare (a write probe matches `key` exactly; a read probe ORs in
/// bit 0 first, since a write entry always implies a read entry) and
/// keeps the slot at two words even with the per-region tag, so the
/// probe stride is what it was before regions existed. An entry
/// answers only when its `epoch` equals the region's current epoch.
#[derive(Debug, Clone, Copy, Default)]
struct Slot {
    key: u64,
    epoch: u64,
}

impl Slot {
    /// The granule part of a key (bit 0 masked off).
    #[inline]
    fn granule_key(granule: usize) -> u64 {
        (granule as u64 + 1) << 1
    }
}

/// A per-thread owned-granule cache, `WAYS`-way set-associative
/// (default direct-mapped). Not shared between threads; the owning
/// thread's `ThreadCtx` (runtime) holds it by value.
#[derive(Debug, Clone)]
pub struct OwnedCache<const WAYS: usize = 1> {
    /// `sets × WAYS` entries; set `s`'s ways are contiguous at
    /// `s * WAYS`.
    slots: Box<[Slot]>,
    /// Round-robin eviction cursor per set (unused when `WAYS == 1`).
    victim: Box<[u8]>,
    /// Owned-run summaries (see [`RunSlot`]), fully associative.
    runs: [RunSlot; RUN_SLOTS],
    /// Round-robin eviction cursor for the run slots.
    run_victim: u8,
    /// Slow-path fills. Hits are *derived* (`accesses - misses`, the
    /// caller knows its access count): counting them directly would
    /// put a read-modify-write on the same word into every fast-path
    /// iteration — a loop-carried dependency through memory that
    /// costs more than the probe itself. Misses and flushes are
    /// updated only on the outlined cold paths, where they are free.
    pub misses: u64,
    /// Entries discarded because their region's epoch moved. Under
    /// the `R = 1` degenerate table this counts one per *entry*
    /// (where PR 2 counted one per whole-cache reset); under a real
    /// region table it counts exactly the collateral damage of
    /// clears — the quantity per-region epochs exist to minimise.
    pub flushes: u64,
}

impl<const WAYS: usize> Default for OwnedCache<WAYS> {
    fn default() -> Self {
        Self::new()
    }
}

impl<const WAYS: usize> OwnedCache<WAYS> {
    /// Creates a cache with [`DEFAULT_SLOTS`] entries.
    pub fn new() -> Self {
        Self::with_slots(DEFAULT_SLOTS)
    }

    /// Creates a cache with `slots` total entries, organised into
    /// `slots / WAYS` sets (set count rounded up to a power of two,
    /// minimum 1).
    pub fn with_slots(slots: usize) -> Self {
        const { assert!(WAYS >= 1, "a cache needs at least one way") };
        let sets = (slots / WAYS).max(1).next_power_of_two();
        OwnedCache {
            slots: vec![Slot::default(); sets * WAYS].into_boxed_slice(),
            victim: vec![0u8; sets].into_boxed_slice(),
            runs: [RunSlot::default(); RUN_SLOTS],
            run_victim: 0,
            misses: 0,
            flushes: 0,
        }
    }

    /// Number of sets (power of two).
    #[inline]
    fn sets(&self) -> usize {
        self.slots.len() / WAYS
    }

    /// First entry of `granule`'s set.
    #[inline]
    fn base(&self, granule: usize) -> usize {
        (granule & (self.sets() - 1)) * WAYS
    }

    /// Answers whether `granule` is cached with sufficient rights for
    /// the access *under the current epoch of its region*. The caller
    /// reads `region_epoch` from the shadow's [`crate::EpochTable`]
    /// (a relaxed load) before probing; an entry filled under an
    /// older epoch of the same region fails the tag compare and is
    /// discarded on the outlined cold path — entries for granules in
    /// *other* regions are untouched, which is the whole point. The
    /// fast path stays tiny: one masked probe, `WAYS` key compares
    /// plus one epoch compare on the hit way (the loop fully
    /// unrolls: `WAYS` is a const), no stores.
    #[inline]
    pub fn lookup(&mut self, region_epoch: u64, granule: usize, is_write: bool) -> bool {
        let base = self.base(granule);
        let want = Slot::granule_key(granule) | 1;
        // One key compare per way either way (`is_write` is a
        // constant at every call site, and a read probe folds the
        // writable bit away with one OR), and deliberately no hit
        // counter: see the `misses` field for why the fast path
        // stays store-free.
        for w in 0..WAYS {
            let s = self.slots[base + w];
            let k = if is_write { s.key } else { s.key | 1 };
            if k == want {
                if s.epoch == region_epoch {
                    return true;
                }
                self.discard_stale(base + w);
                return false;
            }
        }
        false
    }

    /// The outlined stale-entry path: the probed entry's region moved
    /// on; drop it so a later fill re-checks against the new state.
    #[cold]
    #[inline(never)]
    fn discard_stale(&mut self, idx: usize) {
        self.slots[idx] = Slot::default();
        self.flushes += 1;
    }

    /// Records that the owning thread holds `granule` (exclusively if
    /// `writable`), tagged with `region_epoch`. Call only after the
    /// slow-path check passed and only with the epoch that
    /// [`OwnedCache::lookup`] was given — the region epoch must be
    /// read *before* the check, so the entry can never be newer than
    /// the epoch guarding it.
    #[inline]
    pub fn insert(&mut self, granule: usize, writable: bool, region_epoch: u64) {
        self.misses += 1;
        let base = self.base(granule);
        let gkey = Slot::granule_key(granule);
        let new_key = gkey | writable as u64;
        // Upgrade in place if the granule already occupies a way with
        // a current tag (a read never downgrades a write entry); a
        // stale resident for the same granule is replaced wholesale —
        // its old write right predates the region's clear.
        for w in 0..WAYS {
            let s = &mut self.slots[base + w];
            if (s.key | 1) == (gkey | 1) {
                if s.epoch == region_epoch {
                    s.key |= new_key & 1;
                } else {
                    *s = Slot {
                        key: new_key,
                        epoch: region_epoch,
                    };
                }
                return;
            }
        }
        // Prefer an empty way, else evict round-robin within the set.
        let mut way = None;
        for w in 0..WAYS {
            if self.slots[base + w].key == 0 {
                way = Some(w);
                break;
            }
        }
        let way = way.unwrap_or_else(|| {
            let set = base / WAYS;
            let v = self.victim[set] as usize % WAYS;
            self.victim[set] = self.victim[set].wrapping_add(1);
            v
        });
        self.slots[base + way] = Slot {
            key: new_key,
            epoch: region_epoch,
        };
    }

    /// Answers whether the exact run `start .. start + len` is cached
    /// with sufficient rights for the access, under the current
    /// covering epoch sum `stamp`. The caller computes `stamp` with
    /// [`crate::EpochTable::epoch_sum_of_range`] over the *same*
    /// granule range — and, as with [`OwnedCache::lookup`], reads it
    /// **before** any slow-path sweep whose result it might record.
    ///
    /// Matching is exact on `(start, len)`: the summary exists for
    /// the repeat-sweep pattern (the same buffer lapped again), and
    /// an exact match means the probe's stamp was computed over
    /// exactly the regions the entry's stamp covers, so one integer
    /// compare settles validity. A hit proves every granule in the
    /// run still records the access for the owning thread (cache
    /// invariants 1–2 per granule, the covering constraint for the
    /// clears), so the whole sweep can be skipped — no stores, no
    /// per-granule probes.
    #[inline]
    pub fn lookup_run(&mut self, stamp: u64, start: usize, len: usize, is_write: bool) -> bool {
        let want = (Slot::granule_key(start) | 1, len as u64);
        for i in 0..RUN_SLOTS {
            let r = self.runs[i];
            let k = if is_write { r.key } else { r.key | 1 };
            if (k, r.len) == want {
                if r.stamp == stamp {
                    return true;
                }
                self.discard_stale_run(i);
                return false;
            }
        }
        false
    }

    /// The outlined stale-run path: some region covered by the run
    /// was cleared since the fill; drop the summary so a later sweep
    /// re-checks against the new shadow state.
    #[cold]
    #[inline(never)]
    fn discard_stale_run(&mut self, idx: usize) {
        self.runs[idx] = RunSlot::default();
        self.flushes += 1;
    }

    /// Records that the owning thread holds the whole run
    /// `start .. start + len` (exclusively if `writable`), stamped
    /// with the covering epoch sum read *before* the sweep that
    /// proved it. Call only after a ranged slow path passed with
    /// **zero conflicts** — a run summary has no way to remember a
    /// conflicting granule inside it.
    #[inline]
    pub fn insert_run(&mut self, start: usize, len: usize, writable: bool, stamp: u64) {
        if len == 0 {
            return;
        }
        self.misses += 1;
        let gkey = Slot::granule_key(start);
        let new = RunSlot {
            key: gkey | writable as u64,
            len: len as u64,
            stamp,
        };
        // Upgrade / restamp in place when the same (start, len) run
        // is already resident; never downgrade a writable run with a
        // read-only refill under the same stamp.
        for i in 0..RUN_SLOTS {
            let r = &mut self.runs[i];
            if (r.key | 1) == (gkey | 1) && r.len == new.len {
                if r.stamp == stamp {
                    r.key |= new.key & 1;
                } else {
                    *r = new;
                }
                return;
            }
        }
        // Prefer an empty slot, else evict round-robin.
        let idx = (0..RUN_SLOTS)
            .find(|&i| self.runs[i].key == 0)
            .unwrap_or_else(|| {
                let v = self.run_victim as usize % RUN_SLOTS;
                self.run_victim = self.run_victim.wrapping_add(1);
                v
            });
        self.runs[idx] = new;
    }

    /// Drops every entry (e.g. at thread exit, before the shadow
    /// clears this thread's bits).
    pub fn invalidate_all(&mut self) {
        self.slots.iter_mut().for_each(|s| *s = Slot::default());
        self.runs = [RunSlot::default(); RUN_SLOTS];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_insert_same_epoch() {
        let mut c = OwnedCache::<1>::with_slots(8);
        assert!(!c.lookup(0, 5, true));
        c.insert(5, true, 0);
        assert!(c.lookup(0, 5, true));
        assert!(c.lookup(0, 5, false), "writable implies readable");
        assert_eq!(c.misses, 1, "hits never refill");
    }

    #[test]
    fn read_entry_does_not_authorize_writes() {
        let mut c = OwnedCache::<1>::with_slots(8);
        c.insert(3, false, 0);
        assert!(c.lookup(0, 3, false));
        assert!(!c.lookup(0, 3, true));
    }

    #[test]
    fn write_entry_survives_read_insert() {
        let mut c = OwnedCache::<1>::with_slots(8);
        c.insert(3, true, 0);
        c.insert(3, false, 0);
        assert!(c.lookup(0, 3, true), "no downgrade");
    }

    #[test]
    fn stale_region_epoch_discards_only_the_probed_entry() {
        let mut c = OwnedCache::<1>::with_slots(8);
        c.insert(1, true, 0);
        c.insert(2, true, 0);
        // Granule 1's region moved to epoch 7; granule 2's did not.
        assert!(!c.lookup(7, 1, true), "stale tag never answers");
        assert_eq!(c.flushes, 1, "one discard, not a whole-cache reset");
        assert!(
            c.lookup(0, 2, true),
            "entries in unaffected regions stay live — partial invalidation"
        );
        assert_eq!(c.flushes, 1);
    }

    #[test]
    fn r1_degeneracy_stales_every_entry() {
        // With a global (R = 1) table every granule shares one epoch,
        // so one bump makes every probe discard — the PR 2 behaviour,
        // now paid per entry instead of per reset.
        let mut c = OwnedCache::<1>::with_slots(8);
        c.insert(1, true, 0);
        c.insert(2, true, 0);
        assert!(!c.lookup(1, 1, true));
        assert!(!c.lookup(1, 2, true));
        assert_eq!(c.flushes, 2);
    }

    #[test]
    fn stale_entry_is_replaced_not_upgraded_by_insert() {
        let mut c = OwnedCache::<1>::with_slots(8);
        c.insert(3, true, 0);
        // Region cleared (epoch 1); the slow path re-ran and only a
        // read right survived. The old write tag must not resurface.
        c.insert(3, false, 1);
        assert!(c.lookup(1, 3, false));
        assert!(!c.lookup(1, 3, true), "pre-clear write right is dead");
    }

    #[test]
    fn direct_mapping_evicts_colliding_granules() {
        let mut c = OwnedCache::<1>::with_slots(4);
        c.insert(0, true, 0);
        c.insert(4, true, 0); // same set, one way
        assert!(!c.lookup(0, 0, true));
        assert!(c.lookup(0, 4, true));
    }

    #[test]
    fn two_way_keeps_both_aliasing_granules() {
        // The same trace that evicts under direct mapping keeps both
        // residents with two ways — the whole point of the sweep.
        let mut c = OwnedCache::<2>::with_slots(8); // 4 sets × 2 ways
        c.insert(0, true, 0);
        c.insert(4, true, 0); // same set, second way
        assert!(c.lookup(0, 0, true));
        assert!(c.lookup(0, 4, true));
        // A third alias evicts round-robin, not wholesale.
        c.insert(8, true, 0);
        assert!(c.lookup(0, 8, true));
        assert!(
            c.lookup(0, 0, true) ^ c.lookup(0, 4, true),
            "exactly one earlier resident survives"
        );
    }

    #[test]
    fn two_way_upgrade_finds_entry_in_either_way() {
        let mut c = OwnedCache::<2>::with_slots(8);
        c.insert(0, false, 0);
        c.insert(4, false, 0);
        c.insert(4, true, 0); // upgrade in place, second way
        assert!(c.lookup(0, 4, true));
        assert!(c.lookup(0, 0, false), "first way untouched");
        assert!(!c.lookup(0, 0, true));
    }

    #[test]
    fn run_hit_requires_exact_range_and_stamp() {
        let mut c = OwnedCache::<1>::with_slots(8);
        assert!(!c.lookup_run(7, 16, 64, true));
        c.insert_run(16, 64, true, 7);
        assert!(c.lookup_run(7, 16, 64, true));
        assert!(c.lookup_run(7, 16, 64, false), "writable implies readable");
        // Different start, different len, or moved stamp: no answer.
        assert!(!c.lookup_run(7, 17, 64, true));
        assert!(!c.lookup_run(7, 16, 63, true));
        assert!(!c.lookup_run(8, 16, 64, true), "covered region bumped");
        assert_eq!(c.flushes, 1, "the stale probe discarded the run");
        assert!(!c.lookup_run(8, 16, 64, true), "and it stays gone");
    }

    #[test]
    fn run_read_entry_does_not_authorize_writes() {
        let mut c = OwnedCache::<1>::with_slots(8);
        c.insert_run(0, 16, false, 0);
        assert!(c.lookup_run(0, 0, 16, false));
        assert!(!c.lookup_run(0, 0, 16, true));
        // Upgrading under the same stamp keeps one slot.
        c.insert_run(0, 16, true, 0);
        assert!(c.lookup_run(0, 0, 16, true));
        // A read refill never downgrades it.
        c.insert_run(0, 16, false, 0);
        assert!(c.lookup_run(0, 0, 16, true));
    }

    #[test]
    fn run_slots_evict_round_robin_and_invalidate() {
        let mut c = OwnedCache::<1>::with_slots(8);
        for i in 0..RUN_SLOTS {
            c.insert_run(i * 100, 10, true, 0);
        }
        for i in 0..RUN_SLOTS {
            assert!(c.lookup_run(0, i * 100, 10, true), "slot {i} resident");
        }
        c.insert_run(900, 10, true, 0); // evicts the round-robin victim
        assert!(c.lookup_run(0, 900, 10, true));
        let survivors = (0..RUN_SLOTS)
            .filter(|&i| c.lookup_run(0, i * 100, 10, true))
            .count();
        assert_eq!(survivors, RUN_SLOTS - 1, "exactly one eviction");
        c.invalidate_all();
        assert!(!c.lookup_run(0, 900, 10, true));
        // Zero-length runs are never recorded.
        c.insert_run(5, 0, true, 0);
        assert!(!c.lookup_run(0, 5, 0, true));
    }

    #[test]
    fn run_restamp_replaces_stale_rights() {
        let mut c = OwnedCache::<1>::with_slots(8);
        c.insert_run(4, 8, true, 0);
        // A covered region was cleared (stamp 1); the re-sweep only
        // proved read rights. The old write right must not resurface.
        c.insert_run(4, 8, false, 1);
        assert!(c.lookup_run(1, 4, 8, false));
        assert!(!c.lookup_run(1, 4, 8, true), "pre-clear right is dead");
    }

    #[test]
    fn two_way_stale_discard_and_invalidate() {
        let mut c = OwnedCache::<2>::with_slots(8);
        c.insert(1, true, 0);
        c.insert(5, true, 0);
        assert!(!c.lookup(3, 1, true), "epoch moved");
        assert!(!c.lookup(3, 5, true));
        assert_eq!(c.flushes, 2, "per-entry discards");
        c.insert(1, true, 3);
        c.invalidate_all();
        assert!(!c.lookup(3, 1, true));
    }
}
