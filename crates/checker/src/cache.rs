//! The owned-granule epoch cache: a per-thread, direct-mapped table
//! that lets repeated private accesses skip the shadow CAS entirely.
//!
//! In the paper's workloads the overwhelmingly common case is a
//! thread re-touching dynamic-mode data it already owns (pfscan's
//! scan buffers, pbzip2's per-worker blocks). The slow path pays an
//! atomic load plus, on first contact, a compare-exchange. This
//! cache reduces the steady state to one relaxed epoch load and one
//! array probe.
//!
//! ## Soundness invariants
//!
//! The cache is *only* a fast path for verdicts that are already
//! decided by the shadow word; it never changes which conflicts
//! exist, only who pays to discover them. It rests on three
//! invariants of the unified state machine ([`crate::step`]):
//!
//! 1. **Conflicts never install.** Once thread `t` is the exclusive
//!    owner of a granule (word = `WRITER_FLAG | bit(t)`), any other
//!    thread's access is a conflict that leaves the word unchanged —
//!    so `t`'s ownership is stable until an explicit clear, and
//!    `t`'s own accesses can never newly conflict. Caching "I own
//!    g, skip the check" is therefore verdict-preserving: the
//!    *other* thread still runs the full check and still observes
//!    its conflict.
//! 2. **Read bits are monotone between clears.** If `t`'s read bit
//!    is set, reads by `t` can never conflict (reads only conflict
//!    with *another* thread's write flag, and installing a write
//!    flag over `t`'s read bit is itself a conflict, which does not
//!    install). So a cached read entry is valid as long as no clear
//!    intervened.
//! 3. **Every clear bumps the shadow's epoch.** `clear`,
//!    `clear_range`, and `clear_thread` (free, sharing casts, thread
//!    exit) increment a shared epoch counter. A cache whose recorded
//!    epoch differs from the shadow's current epoch discards itself
//!    wholesale before answering. The epoch is read *before* the
//!    slow-path check that populates an entry, so an entry can never
//!    be newer than the epoch it is guarded by.
//!
//! The one imprecision this admits is the same one any shadow-memory
//! tool has at a free/cast boundary: an access racing with the clear
//! itself may be judged against either side of the clear. The paper
//! accepts exactly this at `free`/`SCAST` boundaries.

/// Default number of direct-mapped slots (must be a power of two).
pub const DEFAULT_SLOTS: usize = 256;

/// One slot, keyed by granule index + 1 (0 = empty). The two keys
/// make both probes a single integer compare — `write_key` is set
/// only when the cached ownership is exclusive (writable), and a
/// write entry always implies a read entry.
#[derive(Debug, Clone, Copy, Default)]
struct Slot {
    read_key: usize,
    write_key: usize,
}

/// A per-thread owned-granule cache. Not shared between threads;
/// the owning thread's `ThreadCtx` (runtime) holds it by value.
#[derive(Debug, Clone)]
pub struct OwnedCache {
    epoch: u64,
    slots: Box<[Slot]>,
    /// Slow-path fills. Hits are *derived* (`accesses - misses`, the
    /// caller knows its access count): counting them directly would
    /// put a read-modify-write on the same word into every fast-path
    /// iteration — a loop-carried dependency through memory that
    /// costs more than the probe itself. Misses and flushes are
    /// updated only on the outlined cold paths, where they are free.
    pub misses: u64,
    /// Whole-cache flushes forced by an epoch change.
    pub flushes: u64,
}

impl Default for OwnedCache {
    fn default() -> Self {
        Self::new()
    }
}

impl OwnedCache {
    /// Creates a cache with [`DEFAULT_SLOTS`] slots.
    pub fn new() -> Self {
        Self::with_slots(DEFAULT_SLOTS)
    }

    /// Creates a cache with `slots` slots (rounded up to a power of
    /// two, minimum 1).
    pub fn with_slots(slots: usize) -> Self {
        let n = slots.max(1).next_power_of_two();
        OwnedCache {
            epoch: 0,
            slots: vec![Slot::default(); n].into_boxed_slice(),
            misses: 0,
            flushes: 0,
        }
    }

    #[inline]
    fn index(&self, granule: usize) -> usize {
        granule & (self.slots.len() - 1)
    }

    /// Answers whether `granule` is cached with sufficient rights
    /// for the access, first discarding everything if the shadow's
    /// epoch moved. This is the entire fast path, and it is kept
    /// deliberately tiny — one epoch compare, one masked probe, one
    /// key compare — with the epoch-flush outlined ([`Self::reset`])
    /// so the inlined hot loop stays small enough to register-allocate.
    #[inline]
    pub fn lookup(&mut self, shadow_epoch: u64, granule: usize, is_write: bool) -> bool {
        if self.epoch != shadow_epoch {
            self.reset(shadow_epoch);
            return false;
        }
        let s = self.slots[self.index(granule)];
        // One compare either way (`is_write` is a constant at every
        // call site), and deliberately no hit counter: see the
        // `misses` field for why the fast path stays store-free.
        let key = granule + 1;
        if is_write {
            s.write_key == key
        } else {
            s.read_key == key
        }
    }

    /// The outlined epoch-change path: discard every entry and adopt
    /// the new epoch.
    #[cold]
    #[inline(never)]
    fn reset(&mut self, shadow_epoch: u64) {
        self.slots.iter_mut().for_each(|s| *s = Slot::default());
        self.epoch = shadow_epoch;
        self.flushes += 1;
    }

    /// Records that the owning thread holds `granule` (exclusively
    /// if `writable`). Call only after the slow-path check passed
    /// and only with the epoch that [`OwnedCache::lookup`] was
    /// given — the epoch must be read *before* the check.
    #[inline]
    pub fn insert(&mut self, granule: usize, writable: bool) {
        self.misses += 1;
        let i = self.index(granule);
        let s = &mut self.slots[i];
        let key = granule + 1;
        if s.read_key != key {
            // Empty or a colliding granule: take the slot over.
            *s = Slot {
                read_key: key,
                write_key: if writable { key } else { 0 },
            };
        } else if writable {
            // Upgrade in place; a read never downgrades a write entry.
            s.write_key = key;
        }
    }

    /// Drops every entry (e.g. at thread exit, before the shadow
    /// clears this thread's bits).
    pub fn invalidate_all(&mut self) {
        self.slots.iter_mut().for_each(|s| *s = Slot::default());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_insert_same_epoch() {
        let mut c = OwnedCache::with_slots(8);
        assert!(!c.lookup(0, 5, true));
        c.insert(5, true);
        assert!(c.lookup(0, 5, true));
        assert!(c.lookup(0, 5, false), "writable implies readable");
        assert_eq!(c.misses, 1, "hits never refill");
    }

    #[test]
    fn read_entry_does_not_authorize_writes() {
        let mut c = OwnedCache::with_slots(8);
        c.insert(3, false);
        assert!(c.lookup(0, 3, false));
        assert!(!c.lookup(0, 3, true));
    }

    #[test]
    fn write_entry_survives_read_insert() {
        let mut c = OwnedCache::with_slots(8);
        c.insert(3, true);
        c.insert(3, false);
        assert!(c.lookup(0, 3, true), "no downgrade");
    }

    #[test]
    fn epoch_change_flushes_everything() {
        let mut c = OwnedCache::with_slots(8);
        c.insert(1, true);
        c.insert(2, true);
        assert!(!c.lookup(7, 1, true), "stale epoch discards");
        assert!(!c.lookup(7, 2, true), "the flush removed all entries");
        assert_eq!(c.flushes, 1, "one flush for the whole epoch change");
    }

    #[test]
    fn direct_mapping_evicts_colliding_granules() {
        let mut c = OwnedCache::with_slots(4);
        c.insert(0, true);
        c.insert(4, true); // same slot
        assert!(!c.lookup(0, 0, true));
        assert!(c.lookup(0, 4, true));
    }
}
