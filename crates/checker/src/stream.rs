//! Streaming online detection: bounded-memory event rings drained
//! under a Levanoni–Petrank-style epoch flip.
//!
//! [`EventLog`](crate::EventLog) is record-then-replay: the whole
//! execution is buffered before any backend sees an event — O(run
//! length) memory, unusable for a long-running server fleet. A
//! [`StreamingSink`] replaces it with the same two-epoch collector
//! idiom `sharc-runtime`'s `LpRc` refcounter uses (§4.3): each
//! recording thread appends into a small per-ring buffer, and *any*
//! thread may take the collector role, flip the epoch, drain every
//! ring's now-closed buffer, and feed the events to a
//! [`CheckBackend`] — so verdicts are produced concurrently with the
//! run inside a fixed memory budget.
//!
//! ## The protocol
//!
//! One `AtomicU64` *stamp* packs the epoch parity (bit 63) over a
//! global sequence number (low 63 bits). A recorder, holding its
//! ring's lock, draws `stamp.fetch_add(1)` and pushes `(seq, event)`
//! into the ring buffer selected by the stamp's parity. The
//! collector, holding the collector lock, flips the parity with
//! `stamp.fetch_xor(1 << 63)` and only then acquires each ring's
//! lock in turn, draining the old-parity buffer.
//!
//! **Why a stale ring read is only a delayed drain, never a lost
//! event:** the stamp and the push happen under one ring-lock
//! critical section, and the flip precedes every ring-lock
//! acquisition the collector makes. So if a recorder stamped old
//! parity, either it held the ring lock before the collector — the
//! push completed, the drain sees it — or it acquires the ring lock
//! after the collector released it, in which case the flip
//! happens-before its stamp and the stamp reads the *new* parity.
//! There is no third interleaving; an old-parity event the current
//! collect misses cannot exist, and a new-parity event is simply
//! drained by the next collect.
//!
//! **Why the per-epoch batch is a linearization:** all stamps come
//! from one atomic's modification order, in which the low bits only
//! grow; sorting a drained epoch by sequence number therefore
//! reconstructs the exact global record order, and because the flip
//! lives in the same modification order, every event of epoch *k*
//! has a smaller sequence number than every event of epoch *k + 1*.
//! Concatenating per-epoch sorted batches replays the events in
//! precisely the order a serialized [`EventLog`] would have recorded
//! them — the streaming fold and the replay fold run the same
//! [`apply_event`] on the same sequence, so the verdicts are
//! bit-identical by construction.
//!
//! **The memory budget:** a recorder only pushes after verifying the
//! current-parity buffer holds fewer than `cap` events (still under
//! the ring lock); at `cap` it releases the lock, runs a collect
//! itself — or blocks on the collector lock until the in-flight
//! collect finishes — and retries. Each of a ring's two buffers is
//! therefore never longer than `cap`, so peak resident events are
//! bounded by `2 × cap × rings` ([`StreamingSink::ring_budget`])
//! regardless of run length.

use crate::backend::{apply_event, CheckBackend, CheckEvent, Conflict};
use crate::sink::{recording_tid, EventSink};
use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

/// Default stored-conflict saturation point: generous enough that no
/// realistic run saturates, small enough to bound a pathological racy
/// loop that would otherwise buffer one conflict per iteration.
pub const DEFAULT_CONFLICT_CAP: usize = 65_536;

/// Bit 63 of the stamp: the current epoch's parity.
const PARITY_BIT: u64 = 1 << 63;
/// Low 63 bits: the global sequence number.
const SEQ_MASK: u64 = PARITY_BIT - 1;

/// One recording thread's two-epoch buffer pair, guarded by the lock
/// whose critical section makes stamp-and-push atomic.
#[derive(Debug, Default)]
struct Ring {
    bufs: Mutex<[Vec<(u64, CheckEvent)>; 2]>,
}

/// The collector role's state: the backend being fed and the
/// conflicts it has produced so far. Owning it *inside* the collector
/// lock is what lets any thread play collector.
struct CollectorState {
    backend: Box<dyn CheckBackend + Send>,
    conflicts: Vec<Conflict>,
    /// Every (kind, tid, granule) key ever stored — the dedupe set
    /// consulted once `conflicts` saturates.
    seen: HashSet<Conflict>,
    /// Duplicate conflicts dropped after saturation.
    suppressed: u64,
    /// Completed collects.
    drains: u64,
    /// Events drained across all collects.
    drained: u64,
}

/// Counters reported by [`StreamingSink::finish`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamStats {
    /// Events recorded into the rings.
    pub recorded: u64,
    /// Events drained and applied to the backend.
    pub drained: u64,
    /// Collect (epoch-flip) passes.
    pub drains: u64,
    /// High-water mark of events resident in the rings.
    pub peak_resident: usize,
    /// The configured bound: `2 × cap × rings`.
    pub ring_budget: usize,
    /// Duplicate conflicts dropped after the stored list saturated at
    /// the conflict cap (a pathological racy loop would otherwise
    /// grow the verdict list without bound).
    pub conflicts_suppressed: u64,
}

/// The online sink: per-thread bounded rings plus an epoch-flip
/// collector feeding a [`CheckBackend`] incrementally.
pub struct StreamingSink {
    rings: Vec<Ring>,
    /// Per-buffer capacity before a recorder must collect.
    cap: usize,
    /// Stored-conflict saturation point: below it every conflict is
    /// kept verbatim (bit-identical to the replay fold); at or above
    /// it only conflicts with an unseen (kind, tid, granule) key are
    /// admitted and duplicates are counted instead of stored.
    conflict_cap: usize,
    /// Epoch parity (bit 63) packed over the global sequence.
    stamp: AtomicU64,
    collector: Mutex<CollectorState>,
    /// Events currently resident across all rings.
    resident: AtomicUsize,
    peak_resident: AtomicUsize,
    recorded: AtomicU64,
}

impl std::fmt::Debug for StreamingSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamingSink")
            .field("rings", &self.rings.len())
            .field("cap", &self.cap)
            .field("resident", &self.resident.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

fn unpoison<'a, T>(
    r: Result<MutexGuard<'a, T>, PoisonError<MutexGuard<'a, T>>>,
) -> MutexGuard<'a, T> {
    // A recorder that panicked mid-push poisons only its own ring;
    // the buffers are always structurally valid, so keep draining.
    r.unwrap_or_else(PoisonError::into_inner)
}

impl StreamingSink {
    /// A sink of `rings` per-thread buffers of `cap` events each,
    /// feeding `backend`. A recording tid maps to ring `tid % rings`
    /// — correctness never depends on the placement (the stamps carry
    /// the order), only the contention profile does.
    pub fn new(rings: usize, cap: usize, backend: Box<dyn CheckBackend + Send>) -> Self {
        StreamingSink {
            rings: (0..rings.max(1)).map(|_| Ring::default()).collect(),
            cap: cap.max(1),
            conflict_cap: DEFAULT_CONFLICT_CAP,
            stamp: AtomicU64::new(0),
            collector: Mutex::new(CollectorState {
                backend,
                conflicts: Vec::new(),
                seen: HashSet::new(),
                suppressed: 0,
                drains: 0,
                drained: 0,
            }),
            resident: AtomicUsize::new(0),
            peak_resident: AtomicUsize::new(0),
            recorded: AtomicU64::new(0),
        }
    }

    /// Overrides the stored-conflict saturation point (tests and
    /// tools that want tighter memory use a small cap).
    #[must_use]
    pub fn with_conflict_cap(mut self, n: usize) -> Self {
        self.conflict_cap = n.max(1);
        self
    }

    /// The fixed bound on resident events: each ring holds at most
    /// `cap` events per parity.
    pub fn ring_budget(&self) -> usize {
        2 * self.cap * self.rings.len()
    }

    /// Takes the collector role: flip the epoch, then drain every
    /// ring's old-parity buffer, sort the batch by sequence number,
    /// and feed it to the backend. Mirrors `LpRc::collect` — any
    /// thread may call this; concurrent callers serialize on the
    /// collector lock (which is the backpressure that keeps a
    /// saturated recorder inside the budget).
    pub fn collect(&self) {
        let mut state = unpoison(self.collector.lock());
        // Flip first: everything stamped after this point carries the
        // new parity and belongs to the next collect.
        let old = self.stamp.fetch_xor(PARITY_BIT, Ordering::SeqCst);
        let old_parity = (old >> 63) as usize;
        let mut batch: Vec<(u64, CheckEvent)> = Vec::new();
        for ring in &self.rings {
            let mut bufs = unpoison(ring.bufs.lock());
            batch.append(&mut bufs[old_parity]);
        }
        self.resident.fetch_sub(batch.len(), Ordering::Relaxed);
        // Per-epoch linearization: the stamps' modification order.
        batch.sort_unstable_by_key(|&(seq, _)| seq);
        state.drains += 1;
        state.drained += batch.len() as u64;
        let state = &mut *state;
        let mut fresh = Vec::new();
        for &(_, e) in &batch {
            apply_event(e, state.backend.as_mut(), &mut fresh);
        }
        for c in fresh {
            let unseen = state.seen.insert(c);
            if state.conflicts.len() < self.conflict_cap || unseen {
                state.conflicts.push(c);
            } else {
                state.suppressed += 1;
            }
        }
    }

    /// Drains both parities (two flips), then returns the verdicts
    /// and the run's counters. The backend stays in place, so a
    /// long-lived sink can be inspected mid-run by the same call.
    pub fn finish(&self) -> (Vec<Conflict>, StreamStats) {
        self.collect();
        self.collect();
        let mut state = unpoison(self.collector.lock());
        let conflicts = std::mem::take(&mut state.conflicts);
        let stats = StreamStats {
            recorded: self.recorded.load(Ordering::Relaxed),
            drained: state.drained,
            drains: state.drains,
            peak_resident: self.peak_resident.load(Ordering::Relaxed),
            ring_budget: self.ring_budget(),
            conflicts_suppressed: state.suppressed,
        };
        (conflicts, stats)
    }
}

impl EventSink for StreamingSink {
    fn record(&self, e: CheckEvent) {
        let ring = &self.rings[recording_tid(&e) as usize % self.rings.len()];
        loop {
            {
                let mut bufs = unpoison(ring.bufs.lock());
                // Check fullness against the *current* parity before
                // drawing a stamp. If the parity flips between this
                // load and the fetch_add below, the stamp's buffer is
                // the freshly-drained one — empty, because any event
                // bound for it needs this ring lock — so the push
                // stays under `cap` either way.
                let cur = (self.stamp.load(Ordering::SeqCst) >> 63) as usize;
                if bufs[cur].len() < self.cap {
                    let s = self.stamp.fetch_add(1, Ordering::SeqCst);
                    bufs[(s >> 63) as usize].push((s & SEQ_MASK, e));
                    drop(bufs);
                    self.recorded.fetch_add(1, Ordering::Relaxed);
                    let r = self.resident.fetch_add(1, Ordering::Relaxed) + 1;
                    self.peak_resident.fetch_max(r, Ordering::Relaxed);
                    return;
                }
            }
            // Buffer full: this recorder becomes (or waits for) the
            // collector, then retries into the drained buffer.
            self.collect();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{replay, BitmapBackend};
    use crate::geometry::ShadowGeometry;
    use std::sync::Arc;

    fn sample_trace() -> Vec<CheckEvent> {
        vec![
            CheckEvent::Write { tid: 1, granule: 0 },
            CheckEvent::Fork {
                parent: 1,
                child: 2,
            },
            CheckEvent::SharingCast {
                tid: 1,
                granule: 0,
                refs: 1,
            },
            CheckEvent::RangeWrite {
                tid: 2,
                granule: 0,
                len: 4,
            },
            CheckEvent::Acquire { tid: 2, lock: 3 },
            CheckEvent::LockedAccess { tid: 2, lock: 3 },
            CheckEvent::Release { tid: 2, lock: 3 },
            // An unlocked locked-access and a cross-thread write:
            // two real conflicts the stream must preserve in order.
            CheckEvent::LockedAccess { tid: 1, lock: 3 },
            CheckEvent::Write { tid: 1, granule: 2 },
            CheckEvent::ThreadExit { tid: 2 },
        ]
    }

    #[test]
    fn serial_feed_matches_replay_for_every_cap() {
        let trace = sample_trace();
        let expected = replay(&trace, &mut BitmapBackend::new());
        for cap in 1..=8 {
            let sink = StreamingSink::new(3, cap, Box::new(BitmapBackend::new()));
            for &e in &trace {
                sink.record(e);
            }
            let (got, stats) = sink.finish();
            assert_eq!(got, expected, "cap {cap}");
            assert_eq!(stats.recorded, trace.len() as u64);
            assert_eq!(stats.drained, stats.recorded);
            assert!(stats.peak_resident <= stats.ring_budget);
        }
    }

    #[test]
    fn interleaved_collects_do_not_change_the_verdict() {
        let trace = sample_trace();
        let expected = replay(&trace, &mut BitmapBackend::new());
        // Force a collect between every pair of events: every epoch
        // boundary position is exercised.
        let sink = StreamingSink::new(2, 64, Box::new(BitmapBackend::new()));
        for &e in &trace {
            sink.record(e);
            sink.collect();
        }
        let (got, stats) = sink.finish();
        assert_eq!(got, expected);
        assert!(stats.drains >= trace.len() as u64);
    }

    #[test]
    fn pathological_racy_loop_saturates_but_stays_inside_the_budget() {
        // Two threads alternate unsynchronized writes to one granule:
        // every write after the first pair is a conflict, so an
        // unbounded collector would buffer one conflict per iteration.
        // With a small conflict cap the stored list saturates, the
        // dedupe set admits nothing new (one distinct key per tid),
        // and the overflow is counted instead of stored.
        let cap = 8;
        let sink = StreamingSink::new(2, 16, Box::new(BitmapBackend::new())).with_conflict_cap(cap);
        for i in 0..5_000u64 {
            let tid = 1 + (i % 2) as u32;
            sink.record(CheckEvent::Write { tid, granule: 0 });
        }
        let (conflicts, stats) = sink.finish();
        assert!(!conflicts.is_empty());
        // Saturation: at most the cap plus the distinct keys that
        // arrived after it filled (two tids on one granule here).
        assert!(
            conflicts.len() <= cap + 2,
            "stored {} conflicts past the cap",
            conflicts.len()
        );
        // Accounting closes: stored + suppressed equals what the
        // serialized replay fold would have produced.
        let full: Vec<CheckEvent> = (0..5_000u64)
            .map(|i| CheckEvent::Write {
                tid: 1 + (i % 2) as u32,
                granule: 0,
            })
            .collect();
        let replayed = replay(&full, &mut BitmapBackend::new());
        assert_eq!(
            conflicts.len() as u64 + stats.conflicts_suppressed,
            replayed.len() as u64
        );
        assert!(stats.conflicts_suppressed > 0);
        assert_eq!(stats.drained, stats.recorded);
        assert!(
            stats.peak_resident <= stats.ring_budget,
            "peak {} over budget {}",
            stats.peak_resident,
            stats.ring_budget
        );
    }

    #[test]
    fn below_the_cap_the_stream_is_bit_identical_to_replay() {
        // The dedupe machinery must be invisible until saturation:
        // duplicate conflicts below the cap are stored verbatim, so
        // the stream still equals the serialized replay fold.
        let trace: Vec<CheckEvent> = (0..20u64)
            .map(|i| CheckEvent::Write {
                tid: 1 + (i % 2) as u32,
                granule: 0,
            })
            .collect();
        let expected = replay(&trace, &mut BitmapBackend::new());
        assert!(expected.len() > 2, "duplicates must exist for this test");
        let sink = StreamingSink::new(2, 4, Box::new(BitmapBackend::new()));
        for &e in &trace {
            sink.record(e);
        }
        let (got, stats) = sink.finish();
        assert_eq!(got, expected);
        assert_eq!(stats.conflicts_suppressed, 0);
    }

    #[test]
    fn concurrent_recorders_stay_inside_the_budget() {
        let sink = Arc::new(StreamingSink::new(
            4,
            16,
            Box::new(BitmapBackend::with_geometry(ShadowGeometry::for_threads(8))),
        ));
        let mut handles = Vec::new();
        for t in 1..=4u32 {
            let sink = Arc::clone(&sink);
            handles.push(std::thread::spawn(move || {
                // Disjoint granule ranges: a conflict-free run whose
                // only pressure is volume (4 × 500 events through a
                // 128-event budget).
                for i in 0..500usize {
                    sink.record_access(t, t as usize * 1000 + i, true);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let (conflicts, stats) = sink.finish();
        assert!(conflicts.is_empty(), "{conflicts:?}");
        assert_eq!(stats.recorded, 2000);
        assert_eq!(stats.drained, 2000);
        assert!(
            stats.peak_resident <= stats.ring_budget,
            "peak {} over budget {}",
            stats.peak_resident,
            stats.ring_budget
        );
        assert!(stats.drains >= 2000 / 128);
    }
}
