//! The pluggable check-engine interface.
//!
//! A [`CheckBackend`] is anything that can answer SharC's four
//! runtime checks — `chkread`, `chkwrite`, `lock_held`, `oneref` —
//! while being kept current with the synchronization and lifecycle
//! events those checks depend on. Three families implement it:
//!
//! * [`BitmapBackend`] (here) — the paper's own engine: the pure
//!   bitmap state machine from [`crate::step`] over a growable word
//!   store, with per-thread access logs and held-lock logs. The
//!   VM's verdicts coincide with this backend by construction.
//! * `sharc-detectors`' Eraser lockset and vector-clock engines,
//!   adapted through the same interface, so `sharc run --detector
//!   sharc|eraser|vc` can cross-validate *one* seeded execution
//!   through any engine.
//! * `sharc-detectors`' `Online<D>` sharded front-end, for real
//!   threads.
//!
//! [`replay`] drives a [`CheckEvent`] trace through a backend and
//! collects every conflict — the workhorse of the differential tests
//! and of the CLI's `--detector` switch.

use crate::geometry::ShadowGeometry;
use crate::step::{sharded, sharded::ShardStep, Access};
use std::collections::HashMap;

/// Which check a conflict came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CheckKind {
    /// A `chkread` that raced with another thread's write.
    Read,
    /// A `chkwrite` that raced with another thread's access.
    Write,
    /// A `locked(l)` access without `l` held.
    Lock,
    /// A sharing cast on an object with other live references.
    OneRef,
}

/// A failed runtime check.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Conflict {
    pub kind: CheckKind,
    /// The thread performing the failing access.
    pub tid: u32,
    /// The granule (or, for [`CheckKind::Lock`], the lock id).
    pub granule: usize,
}

impl std::fmt::Display for Conflict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.kind {
            CheckKind::Read => write!(
                f,
                "read conflict at granule {} (thread {})",
                self.granule, self.tid
            ),
            CheckKind::Write => write!(
                f,
                "write conflict at granule {} (thread {})",
                self.granule, self.tid
            ),
            CheckKind::Lock => write!(f, "lock {} not held (thread {})", self.granule, self.tid),
            CheckKind::OneRef => write!(
                f,
                "sharing cast failed at granule {} (thread {})",
                self.granule, self.tid
            ),
        }
    }
}

/// The outcome of one runtime check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    Pass,
    Fail(Conflict),
}

impl Verdict {
    /// True if the check failed.
    #[inline]
    pub fn is_conflict(self) -> bool {
        matches!(self, Verdict::Fail(_))
    }

    /// The conflict, if the check failed.
    #[inline]
    pub fn conflict(self) -> Option<Conflict> {
        match self {
            Verdict::Pass => None,
            Verdict::Fail(c) => Some(c),
        }
    }
}

/// One entry of an execution trace at check granularity — the
/// vocabulary shared by every engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckEvent {
    /// A dynamic-mode read of `granule` (`chkread`).
    Read {
        tid: u32,
        granule: usize,
    },
    /// A dynamic-mode write of `granule` (`chkwrite`).
    Write {
        tid: u32,
        granule: usize,
    },
    /// A ranged dynamic-mode read of `len` contiguous granules
    /// starting at `granule` — one event per buffer sweep. [`replay`]
    /// **lowers** it to `len` per-granule `chkread`s for *every*
    /// backend, so the fold contract holds by construction: a range
    /// event's verdicts (SharC, Eraser, VC alike) are bit-identical
    /// to the per-granule event sequence it abbreviates.
    RangeRead {
        tid: u32,
        granule: usize,
        len: usize,
    },
    /// The write analogue of [`CheckEvent::RangeRead`].
    RangeWrite {
        tid: u32,
        granule: usize,
        len: usize,
    },
    /// A `locked(l)`-mode access requiring `lock` held.
    LockedAccess {
        tid: u32,
        lock: usize,
    },
    /// A sharing cast of the object at `granule` observing `refs`
    /// live references (the cast itself included).
    SharingCast {
        tid: u32,
        granule: usize,
        refs: u64,
    },
    /// A ranged sharing cast: ONE event for a whole-block ownership
    /// transfer covering `len` contiguous granules starting at
    /// `granule`, each observing `refs` live references. [`replay`]
    /// lowers it to `len` per-granule [`CheckEvent::SharingCast`]s
    /// for every backend — same fold contract as
    /// [`CheckEvent::RangeRead`], so sharc/eraser/vc verdicts are
    /// bit-identical to the per-granule spelling by construction.
    RangeCast {
        tid: u32,
        granule: usize,
        len: usize,
        refs: u64,
    },
    /// A ranged free: `len` contiguous granules starting at `granule`
    /// are reset at once (one event per whole-block `free`). Lowers to
    /// `len` per-granule [`CheckEvent::Alloc`]s — the existing
    /// granule-reset event — on every backend.
    RangeFree {
        granule: usize,
        len: usize,
    },
    Acquire {
        tid: u32,
        lock: usize,
    },
    Release {
        tid: u32,
        lock: usize,
    },
    Fork {
        parent: u32,
        child: u32,
    },
    Join {
        parent: u32,
        child: u32,
    },
    /// `tid`'s lifetime ends; its shadow contribution is cleared.
    ThreadExit {
        tid: u32,
    },
    /// `granule` is freshly (re)allocated: all engines reset it.
    Alloc {
        granule: usize,
    },
}

/// A runtime-check engine: the four checks of §3/§4.2 plus the
/// events that keep the engine's state current.
pub trait CheckBackend {
    /// The engine's name, for reports and JSON.
    fn name(&self) -> &'static str;

    /// The `chkread` check-and-record for `tid` on `granule`.
    fn chkread(&mut self, tid: u32, granule: usize) -> Verdict;

    /// The `chkwrite` check-and-record for `tid` on `granule`.
    fn chkwrite(&mut self, tid: u32, granule: usize) -> Verdict;

    /// The `locked(l)` check: is `lock` in `tid`'s held-lock log?
    fn lock_held(&self, tid: u32, lock: usize) -> bool;

    /// The `oneref` check at a sharing cast. The default is the
    /// paper's rule: the reference being cast must be the only one.
    fn oneref(&mut self, tid: u32, granule: usize, refs: u64) -> Verdict {
        if refs <= 1 {
            Verdict::Pass
        } else {
            Verdict::Fail(Conflict {
                kind: CheckKind::OneRef,
                tid,
                granule,
            })
        }
    }

    /// `tid` acquired `lock`.
    fn on_acquire(&mut self, _tid: u32, _lock: usize) {}
    /// `tid` released `lock`.
    fn on_release(&mut self, _tid: u32, _lock: usize) {}
    /// `parent` spawned `child`.
    fn on_fork(&mut self, _parent: u32, _child: u32) {}
    /// `parent` joined `child`.
    fn on_join(&mut self, _parent: u32, _child: u32) {}
    /// `tid` exited; non-overlapping lifetimes are not races.
    fn on_thread_exit(&mut self, _tid: u32) {}
    /// `granule` was freshly (re)allocated.
    fn on_alloc(&mut self, _granule: usize) {}
    /// A *successful* sharing cast changed `granule`'s mode: SharC's
    /// engine forgets its history; engines with no ownership model
    /// (Eraser, vector clocks) ignore this — which is exactly why
    /// they false-positive on ownership-transfer idioms.
    fn on_cast_clear(&mut self, _granule: usize) {}
}

/// Applies one event to `backend`, pushing any conflict onto `out`.
///
/// This is the single lowering step shared by [`replay`] (the offline
/// fold) and the streaming collector (`crate::stream`): both verdict
/// paths run byte-for-byte the same code, which is what makes
/// streaming ≡ replay a structural property rather than a test-only
/// coincidence.
pub fn apply_event(e: CheckEvent, backend: &mut dyn CheckBackend, out: &mut Vec<Conflict>) {
    let verdict = match e {
        CheckEvent::Read { tid, granule } => backend.chkread(tid, granule),
        CheckEvent::Write { tid, granule } => backend.chkwrite(tid, granule),
        // Replay-lowering: a range event is *exactly* its
        // per-granule expansion, for every backend — each
        // granule's verdict is collected individually, so a
        // conflicting granule mid-range reports just like the
        // unabbreviated trace would.
        CheckEvent::RangeRead { tid, granule, len } => {
            for g in granule..granule + len {
                if let Verdict::Fail(c) = backend.chkread(tid, g) {
                    out.push(c);
                }
            }
            Verdict::Pass // per-granule failures already pushed
        }
        CheckEvent::RangeWrite { tid, granule, len } => {
            for g in granule..granule + len {
                if let Verdict::Fail(c) = backend.chkwrite(tid, g) {
                    out.push(c);
                }
            }
            Verdict::Pass
        }
        CheckEvent::LockedAccess { tid, lock } => {
            if backend.lock_held(tid, lock) {
                Verdict::Pass
            } else {
                Verdict::Fail(Conflict {
                    kind: CheckKind::Lock,
                    tid,
                    granule: lock,
                })
            }
        }
        CheckEvent::SharingCast { tid, granule, refs } => {
            let v = backend.oneref(tid, granule, refs);
            if !v.is_conflict() {
                backend.on_cast_clear(granule);
            }
            v
        }
        // A ranged cast is exactly its per-granule expansion: each
        // granule runs the full oneref-then-clear-on-pass step, so a
        // failing granule mid-range conflicts (and keeps its state)
        // just as the unabbreviated trace would.
        CheckEvent::RangeCast {
            tid,
            granule,
            len,
            refs,
        } => {
            for g in granule..granule + len {
                let v = backend.oneref(tid, g, refs);
                if let Verdict::Fail(c) = v {
                    out.push(c);
                } else {
                    backend.on_cast_clear(g);
                }
            }
            Verdict::Pass
        }
        CheckEvent::RangeFree { granule, len } => {
            for g in granule..granule + len {
                backend.on_alloc(g);
            }
            Verdict::Pass
        }
        CheckEvent::Acquire { tid, lock } => {
            backend.on_acquire(tid, lock);
            Verdict::Pass
        }
        CheckEvent::Release { tid, lock } => {
            backend.on_release(tid, lock);
            Verdict::Pass
        }
        CheckEvent::Fork { parent, child } => {
            backend.on_fork(parent, child);
            Verdict::Pass
        }
        CheckEvent::Join { parent, child } => {
            backend.on_join(parent, child);
            Verdict::Pass
        }
        CheckEvent::ThreadExit { tid } => {
            backend.on_thread_exit(tid);
            Verdict::Pass
        }
        CheckEvent::Alloc { granule } => {
            backend.on_alloc(granule);
            Verdict::Pass
        }
    };
    if let Verdict::Fail(c) = verdict {
        out.push(c);
    }
}

/// Drives a trace through `backend`, collecting every conflict. One
/// seeded execution replayed through several backends is the
/// workspace's cross-validation methodology (§6.2).
pub fn replay(events: &[CheckEvent], backend: &mut dyn CheckBackend) -> Vec<Conflict> {
    let mut out = Vec::new();
    for &e in events {
        apply_event(e, backend, &mut out);
    }
    out
}

/// The largest thread id a trace mentions (0 for an empty trace —
/// `Alloc` carries no tid).
pub fn max_trace_tid(events: &[CheckEvent]) -> u32 {
    events
        .iter()
        .map(|e| match *e {
            CheckEvent::Read { tid, .. }
            | CheckEvent::Write { tid, .. }
            | CheckEvent::RangeRead { tid, .. }
            | CheckEvent::RangeWrite { tid, .. }
            | CheckEvent::LockedAccess { tid, .. }
            | CheckEvent::SharingCast { tid, .. }
            | CheckEvent::RangeCast { tid, .. }
            | CheckEvent::Acquire { tid, .. }
            | CheckEvent::Release { tid, .. }
            | CheckEvent::ThreadExit { tid } => tid,
            CheckEvent::Fork { parent, child } | CheckEvent::Join { parent, child } => {
                parent.max(child)
            }
            CheckEvent::Alloc { .. } | CheckEvent::RangeFree { .. } => 0,
        })
        .max()
        .unwrap_or(0)
}

/// The shard geometry that keeps every tid in `events` exact: one
/// derivation of `ShadowGeometry` from a trace, shared by
/// `judge_trace`, the differential tests, and the bench harness
/// instead of each re-deriving it from a private max-tid scan.
pub fn geometry_for_trace(events: &[CheckEvent]) -> ShadowGeometry {
    ShadowGeometry::for_threads((max_trace_tid(events) as usize).max(1))
}

/// One past the largest granule any event in `events` touches (0 for
/// a trace with no granule-addressed events). Range events count
/// their whole extent. This is the granule-space twin of
/// [`max_trace_tid`]: the binary trace header records it, and the
/// parallel replay partition is sized from it.
pub fn trace_granule_span(events: &[CheckEvent]) -> usize {
    events
        .iter()
        .map(|e| match *e {
            CheckEvent::Read { granule, .. }
            | CheckEvent::Write { granule, .. }
            | CheckEvent::SharingCast { granule, .. }
            | CheckEvent::Alloc { granule } => granule + 1,
            CheckEvent::RangeRead { granule, len, .. }
            | CheckEvent::RangeWrite { granule, len, .. }
            | CheckEvent::RangeCast { granule, len, .. }
            | CheckEvent::RangeFree { granule, len } => granule + len.max(1),
            CheckEvent::LockedAccess { .. }
            | CheckEvent::Acquire { .. }
            | CheckEvent::Release { .. }
            | CheckEvent::Fork { .. }
            | CheckEvent::Join { .. }
            | CheckEvent::ThreadExit { .. } => 0,
        })
        .max()
        .unwrap_or(0)
}

/// Expands every range event into its per-granule events, leaving
/// everything else verbatim — the explicit form of the lowering
/// [`replay`] performs implicitly. `replay(events) ==
/// replay(lower_ranges(events))` for every backend (pinned by the
/// trace round-trip property and the engine differentials), which is
/// what makes a `v2` trace with ranges interchangeable with the `v1`
/// per-granule trace it abbreviates.
pub fn lower_ranges(events: &[CheckEvent]) -> Vec<CheckEvent> {
    let mut out = Vec::with_capacity(events.len());
    for &e in events {
        match e {
            CheckEvent::RangeRead { tid, granule, len } => {
                out.extend((granule..granule + len).map(|g| CheckEvent::Read { tid, granule: g }));
            }
            CheckEvent::RangeWrite { tid, granule, len } => {
                out.extend((granule..granule + len).map(|g| CheckEvent::Write { tid, granule: g }));
            }
            CheckEvent::RangeCast {
                tid,
                granule,
                len,
                refs,
            } => {
                out.extend((granule..granule + len).map(|g| CheckEvent::SharingCast {
                    tid,
                    granule: g,
                    refs,
                }));
            }
            CheckEvent::RangeFree { granule, len } => {
                out.extend((granule..granule + len).map(|g| CheckEvent::Alloc { granule: g }));
            }
            other => out.push(other),
        }
    }
    out
}

/// The reference engine: the sharded bitmap state machine over a
/// growable word store. Single-threaded (serialize externally — the
/// VM's scheduler does, `Online` uses sharded locks); the verdicts
/// are identical to `sharc-runtime`'s CAS wrappers because all of
/// them run [`sharded::step`].
///
/// The default geometry is one shard — the paper's 63-thread-exact
/// configuration. [`BitmapBackend::with_geometry`] scales the exact
/// range arbitrarily (e.g. `ShadowGeometry::for_threads(256)` for
/// the high-tid differential oracle).
#[derive(Debug)]
pub struct BitmapBackend {
    /// Flat store: granule `g`'s words live at
    /// `g * stride .. (g + 1) * stride`.
    words: Vec<u64>,
    geom: ShadowGeometry,
    /// Granules each thread installed bits into, for exit clearing.
    logs: HashMap<u32, Vec<usize>>,
    /// Held-lock log per thread (§4.2.2).
    held: HashMap<u32, Vec<usize>>,
}

impl Default for BitmapBackend {
    fn default() -> Self {
        Self::new()
    }
}

impl BitmapBackend {
    /// Creates an empty engine with the default one-shard geometry
    /// (exact up to 63 threads, adaptive overflow beyond).
    pub fn new() -> Self {
        Self::with_geometry(ShadowGeometry::default())
    }

    /// Creates an empty engine over `geom` — e.g.
    /// `ShadowGeometry::for_threads(256)` keeps exact reader
    /// identities for tids up to 315.
    pub fn with_geometry(geom: ShadowGeometry) -> Self {
        BitmapBackend {
            words: Vec::new(),
            geom,
            logs: HashMap::new(),
            held: HashMap::new(),
        }
    }

    /// The engine's shard layout.
    pub fn geometry(&self) -> ShadowGeometry {
        self.geom
    }

    fn ensure(&mut self, granule: usize) -> usize {
        let stride = self.geom.words_per_granule();
        let base = granule * stride;
        if base + stride > self.words.len() {
            self.words.resize(base + stride, 0);
        }
        base
    }

    fn access(&mut self, tid: u32, granule: usize, access: Access) -> Verdict {
        assert!(
            tid >= 1 && (tid as u64) <= crate::step::adaptive::TID_MASK,
            "thread id out of range"
        );
        let stride = self.geom.words_per_granule();
        let base = self.ensure(granule);
        let snapshot = &self.words[base..base + stride];
        match sharded::step(snapshot, self.geom, tid, access) {
            ShardStep::Unchanged => Verdict::Pass,
            ShardStep::Install { index, word } => {
                self.words[base + index] = word;
                self.logs.entry(tid).or_default().push(granule);
                Verdict::Pass
            }
            ShardStep::Conflict => Verdict::Fail(Conflict {
                kind: if access.is_write() {
                    CheckKind::Write
                } else {
                    CheckKind::Read
                },
                tid,
                granule,
            }),
        }
    }

    /// The raw shard-0 shadow word — for tids `1..=63` under any
    /// geometry this is bit-for-bit the paper's single-word encoding,
    /// which is what the differential tests compare against the
    /// native `Shadow`'s word.
    pub fn raw(&self, granule: usize) -> u64 {
        self.words
            .get(granule * self.geom.words_per_granule())
            .copied()
            .unwrap_or(0)
    }

    /// All of a granule's shadow words (shards then overflow), for
    /// tests.
    pub fn raw_words(&self, granule: usize) -> Vec<u64> {
        let stride = self.geom.words_per_granule();
        let base = granule * stride;
        (base..base + stride)
            .map(|i| self.words.get(i).copied().unwrap_or(0))
            .collect()
    }
}

impl CheckBackend for BitmapBackend {
    fn name(&self) -> &'static str {
        "sharc-bitmap"
    }

    fn chkread(&mut self, tid: u32, granule: usize) -> Verdict {
        self.access(tid, granule, Access::Read)
    }

    fn chkwrite(&mut self, tid: u32, granule: usize) -> Verdict {
        self.access(tid, granule, Access::Write)
    }

    fn lock_held(&self, tid: u32, lock: usize) -> bool {
        self.held.get(&tid).is_some_and(|h| h.contains(&lock))
    }

    fn on_acquire(&mut self, tid: u32, lock: usize) {
        self.held.entry(tid).or_default().push(lock);
    }

    fn on_release(&mut self, tid: u32, lock: usize) {
        if let Some(h) = self.held.get_mut(&tid) {
            if let Some(p) = h.iter().position(|&l| l == lock) {
                h.remove(p);
            }
        }
    }

    fn on_thread_exit(&mut self, tid: u32) {
        let stride = self.geom.words_per_granule();
        if let Some(log) = self.logs.remove(&tid) {
            for g in log {
                let base = g * stride;
                if base + stride <= self.words.len() {
                    let snapshot = &self.words[base..base + stride];
                    if let Some((index, word)) = sharded::clear_thread(snapshot, self.geom, tid) {
                        self.words[base + index] = word;
                    }
                }
            }
        }
        self.held.remove(&tid);
    }

    fn on_alloc(&mut self, granule: usize) {
        let stride = self.geom.words_per_granule();
        let base = granule * stride;
        let end = (base + stride).min(self.words.len());
        for w in &mut self.words[base.min(end)..end] {
            *w = 0;
        }
    }

    fn on_cast_clear(&mut self, granule: usize) {
        self.on_alloc(granule);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitmap_backend_basic_race() {
        let mut b = BitmapBackend::new();
        assert_eq!(b.chkwrite(1, 0), Verdict::Pass);
        let v = b.chkwrite(2, 0);
        assert_eq!(
            v.conflict().map(|c| c.kind),
            Some(CheckKind::Write),
            "{v:?}"
        );
    }

    #[test]
    fn exit_clears_and_reuses() {
        let mut b = BitmapBackend::new();
        b.chkwrite(1, 3);
        b.on_thread_exit(1);
        assert_eq!(b.chkwrite(2, 3), Verdict::Pass);
    }

    #[test]
    fn lock_log_tracks_held() {
        let mut b = BitmapBackend::new();
        assert!(!b.lock_held(1, 9));
        b.on_acquire(1, 9);
        assert!(b.lock_held(1, 9));
        assert!(!b.lock_held(2, 9));
        b.on_release(1, 9);
        assert!(!b.lock_held(1, 9));
    }

    #[test]
    fn high_tids_keep_exact_identities_under_a_wide_geometry() {
        let mut b = BitmapBackend::with_geometry(ShadowGeometry::for_threads(256));
        // Readers in three different shards...
        assert_eq!(b.chkread(10, 0), Verdict::Pass);
        assert_eq!(b.chkread(100, 0), Verdict::Pass);
        assert_eq!(b.chkread(250, 0), Verdict::Pass);
        // ...block any writer...
        assert!(b.chkwrite(10, 0).is_conflict());
        // ...until each reader's exit subtracts its exact bit —
        // something the adaptive encoding cannot do at SHARED_READ.
        b.on_thread_exit(100);
        assert!(b.chkwrite(10, 0).is_conflict(), "250 still reads");
        b.on_thread_exit(250);
        // tid 10 is the only reader left: its own upgrade succeeds.
        assert_eq!(b.chkwrite(10, 0), Verdict::Pass);
    }

    #[test]
    fn replay_collects_conflicts_and_casts_clear() {
        let mut b = BitmapBackend::new();
        let trace = [
            CheckEvent::Write { tid: 1, granule: 0 },
            // A successful cast transfers ownership...
            CheckEvent::SharingCast {
                tid: 1,
                granule: 0,
                refs: 1,
            },
            // ...so the new owner writes cleanly.
            CheckEvent::Write { tid: 2, granule: 0 },
            // A failing cast (two refs) conflicts and does NOT clear.
            CheckEvent::SharingCast {
                tid: 2,
                granule: 0,
                refs: 2,
            },
            CheckEvent::Write { tid: 3, granule: 0 },
        ];
        let conflicts = replay(&trace, &mut b);
        assert_eq!(conflicts.len(), 2);
        assert_eq!(conflicts[0].kind, CheckKind::OneRef);
        assert_eq!(conflicts[1].kind, CheckKind::Write);
    }

    #[test]
    fn replay_locked_access_checks_log() {
        let mut b = BitmapBackend::new();
        let trace = [
            CheckEvent::LockedAccess { tid: 1, lock: 4 },
            CheckEvent::Acquire { tid: 1, lock: 4 },
            CheckEvent::LockedAccess { tid: 1, lock: 4 },
            CheckEvent::Release { tid: 1, lock: 4 },
            CheckEvent::LockedAccess { tid: 1, lock: 4 },
        ];
        let conflicts = replay(&trace, &mut b);
        assert_eq!(conflicts.len(), 2);
        assert!(conflicts.iter().all(|c| c.kind == CheckKind::Lock));
    }
}
