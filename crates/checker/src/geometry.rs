//! Shadow geometry: how many 63-thread bitmap shards back each
//! granule, and how thread ids map onto them.
//!
//! The paper's §4.2.1 encoding packs reader/writer sets into a single
//! word, which caps *exact* tracking at `8n − 1 = 63` threads for an
//! 8-byte word. [`ShadowGeometry`] lifts that cap without giving up
//! exactness: a granule's shadow becomes `shards + 1` words —
//! one full bitmap word per 63-thread block, plus one adaptive-encoded
//! *overflow* word for thread ids beyond the exact range.
//!
//! ```text
//! words[0]        bitmap shard for tids  1 ..= 63
//! words[1]        bitmap shard for tids 64 ..= 126
//! ...
//! words[s-1]      bitmap shard for tids (s-1)*63+1 ..= s*63
//! words[s]        adaptive overflow (EMPTY/EXCL/READ1/SHARED_READ)
//! ```
//!
//! Thread id `t` (1-based) maps to shard `(t − 1) / 63` with local
//! bit `((t − 1) % 63) + 1` — *not* the ISSUE-simplified `t / 63` /
//! `t % 63`, which would put tid 63's local bit onto the writer flag.
//! The chosen mapping keeps tids `1..=63` in shard 0 with their
//! local id equal to their global id, so a one-shard geometry is
//! bit-for-bit the paper's original single-word encoding.
//!
//! The geometry is `const`-constructible so the VM can fix its shard
//! count at compile time, and cheap to copy so every shadow carries
//! its own.

/// The shard layout of one granule's shadow words.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ShadowGeometry {
    /// Number of 63-thread bitmap shards. Zero means "adaptive only":
    /// every thread id goes through the overflow word, which is
    /// exactly the pre-sharding `ScalableShadow` behaviour.
    shards: usize,
}

/// Exact thread capacity of one bitmap shard word (`8·8 − 1`).
pub const THREADS_PER_SHARD: usize = 63;

impl ShadowGeometry {
    /// A geometry with no bitmap shards: all thread ids take the
    /// adaptive overflow word. One word per granule; sound for any
    /// thread count, exact only up to one concurrent reader.
    pub const fn adaptive_only() -> Self {
        ShadowGeometry { shards: 0 }
    }

    /// The smallest geometry that tracks `threads` simultaneously
    /// live thread ids *exactly* (full reader identities). Ids past
    /// the exact range still work — they fall into the adaptive
    /// overflow word, soundly.
    pub const fn for_threads(threads: usize) -> Self {
        ShadowGeometry {
            shards: threads.div_ceil(THREADS_PER_SHARD),
        }
    }

    /// A geometry with exactly `shards` bitmap shards.
    pub const fn with_shards(shards: usize) -> Self {
        ShadowGeometry { shards }
    }

    /// Number of bitmap shards.
    pub const fn shards(&self) -> usize {
        self.shards
    }

    /// The largest thread id tracked with exact reader identity
    /// (`shards × 63`). Ids above this are sound-but-adaptive.
    pub const fn exact_threads(&self) -> usize {
        self.shards * THREADS_PER_SHARD
    }

    /// Shadow words per granule: one per shard plus the overflow.
    pub const fn words_per_granule(&self) -> usize {
        self.shards + 1
    }

    /// Index of the adaptive overflow word within a granule's words.
    pub const fn overflow_index(&self) -> usize {
        self.shards
    }

    /// The shard holding `tid`'s bit, or `None` if `tid` lands in the
    /// adaptive overflow word.
    #[inline]
    pub const fn shard_of(&self, tid: u32) -> Option<usize> {
        if tid == 0 {
            return None;
        }
        let s = (tid as usize - 1) / THREADS_PER_SHARD;
        if s < self.shards {
            Some(s)
        } else {
            None
        }
    }

    /// `tid`'s bit position within its shard word (`1..=63`; bit 0 is
    /// the per-shard writer flag). Meaningful only when
    /// [`ShadowGeometry::shard_of`] returns `Some`.
    #[inline]
    pub const fn local_bit(&self, tid: u32) -> u32 {
        ((tid - 1) % THREADS_PER_SHARD as u32) + 1
    }

    /// Shadow bytes per granule under this geometry.
    pub const fn bytes_per_granule(&self) -> usize {
        self.words_per_granule() * 8
    }
}

impl Default for ShadowGeometry {
    /// One shard: the paper's original 63-thread-exact configuration
    /// (plus the overflow word for ids beyond it).
    fn default() -> Self {
        ShadowGeometry::for_threads(THREADS_PER_SHARD)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn for_threads_rounds_up() {
        assert_eq!(ShadowGeometry::for_threads(1).shards(), 1);
        assert_eq!(ShadowGeometry::for_threads(63).shards(), 1);
        assert_eq!(ShadowGeometry::for_threads(64).shards(), 2);
        assert_eq!(ShadowGeometry::for_threads(126).shards(), 2);
        assert_eq!(ShadowGeometry::for_threads(127).shards(), 3);
        assert_eq!(ShadowGeometry::for_threads(256).shards(), 5);
        assert_eq!(ShadowGeometry::for_threads(512).shards(), 9);
    }

    #[test]
    fn exact_range_and_word_count() {
        let g = ShadowGeometry::for_threads(256);
        assert_eq!(g.exact_threads(), 315);
        assert_eq!(g.words_per_granule(), 6);
        assert_eq!(g.overflow_index(), 5);
        assert_eq!(g.bytes_per_granule(), 48);
    }

    #[test]
    fn shard_mapping_keeps_tid_63_off_the_writer_flag() {
        let g = ShadowGeometry::for_threads(256);
        // tids 1..=63 sit in shard 0 with local bit == global id:
        // a one-shard geometry is the paper's single-word encoding.
        assert_eq!(g.shard_of(1), Some(0));
        assert_eq!(g.local_bit(1), 1);
        assert_eq!(g.shard_of(63), Some(0));
        assert_eq!(g.local_bit(63), 63);
        // tid 64 starts shard 1 at bit 1 — never bit 0.
        assert_eq!(g.shard_of(64), Some(1));
        assert_eq!(g.local_bit(64), 1);
        assert_eq!(g.shard_of(126), Some(1));
        assert_eq!(g.local_bit(126), 63);
        assert_eq!(g.shard_of(127), Some(2));
        assert_eq!(g.local_bit(127), 1);
        // Every representable local bit avoids the writer flag.
        for t in 1..=g.exact_threads() as u32 {
            assert!((1..=63).contains(&g.local_bit(t)), "tid {t}");
        }
    }

    #[test]
    fn ids_beyond_exact_range_overflow() {
        let g = ShadowGeometry::for_threads(63);
        assert_eq!(g.shard_of(63), Some(0));
        assert_eq!(g.shard_of(64), None, "past the exact range");
        assert_eq!(g.shard_of(0), None, "zero is reserved");
        let a = ShadowGeometry::adaptive_only();
        assert_eq!(a.shard_of(1), None, "no shards: everything adapts");
        assert_eq!(a.words_per_granule(), 1);
        assert_eq!(a.overflow_index(), 0);
    }
}
