//! Offline [`CheckEvent`](crate::CheckEvent) traces: a line-oriented
//! text format so one recorded execution can leave the process and be
//! re-judged later (`sharc native --trace-out` writes it, `sharc
//! replay` reads it back into [`crate::replay`]).
//!
//! The format is deliberately boring — one event per line, lowercase
//! keyword plus decimal operands, `#` comments and blank lines
//! ignored:
//!
//! ```text
//! # sharc-trace v1
//! fork 1 2
//! write 1 17
//! cast 1 17 1
//! acquire 2 0
//! release 2 0
//! read 2 17
//! exit 2
//! ```
//!
//! Round-tripping is exact ([`parse_text`] ∘ [`to_text`] is the
//! identity on any event vector), which is what makes an offline
//! verdict trustworthy: the replayed trace *is* the recorded
//! execution, not a lossy summary of it. The property test below
//! pins this over the whole vocabulary.

use crate::backend::CheckEvent;
use std::fmt::Write as _;

/// The header written at the top of every trace file. Parsing does
/// not require it (it is a comment), but it lets a future format
/// bump fail loudly instead of misparsing.
pub const TRACE_HEADER: &str = "# sharc-trace v1";

/// Renders `events` in the line format, header included.
pub fn to_text(events: &[CheckEvent]) -> String {
    let mut out = String::with_capacity(events.len() * 12 + TRACE_HEADER.len() + 1);
    out.push_str(TRACE_HEADER);
    out.push('\n');
    for e in events {
        match *e {
            CheckEvent::Read { tid, granule } => writeln!(out, "read {tid} {granule}"),
            CheckEvent::Write { tid, granule } => writeln!(out, "write {tid} {granule}"),
            CheckEvent::LockedAccess { tid, lock } => writeln!(out, "locked {tid} {lock}"),
            CheckEvent::SharingCast { tid, granule, refs } => {
                writeln!(out, "cast {tid} {granule} {refs}")
            }
            CheckEvent::Acquire { tid, lock } => writeln!(out, "acquire {tid} {lock}"),
            CheckEvent::Release { tid, lock } => writeln!(out, "release {tid} {lock}"),
            CheckEvent::Fork { parent, child } => writeln!(out, "fork {parent} {child}"),
            CheckEvent::Join { parent, child } => writeln!(out, "join {parent} {child}"),
            CheckEvent::ThreadExit { tid } => writeln!(out, "exit {tid}"),
            CheckEvent::Alloc { granule } => writeln!(out, "alloc {granule}"),
        }
        .expect("writing to a String cannot fail");
    }
    out
}

/// Parses the line format back into events. Blank lines and `#`
/// comments are skipped; anything else that fails to parse reports
/// its 1-based line number.
pub fn parse_text(text: &str) -> Result<Vec<CheckEvent>, String> {
    let mut events = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        events.push(parse_line(line).map_err(|e| format!("trace line {}: {e}", i + 1))?);
    }
    Ok(events)
}

fn parse_line(line: &str) -> Result<CheckEvent, String> {
    let mut parts = line.split_ascii_whitespace();
    let kw = parts.next().expect("line is non-empty");
    let mut arg = |name: &str| -> Result<u64, String> {
        parts
            .next()
            .ok_or_else(|| format!("`{kw}` is missing its {name} operand"))?
            .parse::<u64>()
            .map_err(|_| format!("`{kw}`: {name} is not a number"))
    };
    let ev = match kw {
        "read" => CheckEvent::Read {
            tid: arg("tid")? as u32,
            granule: arg("granule")? as usize,
        },
        "write" => CheckEvent::Write {
            tid: arg("tid")? as u32,
            granule: arg("granule")? as usize,
        },
        "locked" => CheckEvent::LockedAccess {
            tid: arg("tid")? as u32,
            lock: arg("lock")? as usize,
        },
        "cast" => CheckEvent::SharingCast {
            tid: arg("tid")? as u32,
            granule: arg("granule")? as usize,
            refs: arg("refs")?,
        },
        "acquire" => CheckEvent::Acquire {
            tid: arg("tid")? as u32,
            lock: arg("lock")? as usize,
        },
        "release" => CheckEvent::Release {
            tid: arg("tid")? as u32,
            lock: arg("lock")? as usize,
        },
        "fork" => CheckEvent::Fork {
            parent: arg("parent")? as u32,
            child: arg("child")? as u32,
        },
        "join" => CheckEvent::Join {
            parent: arg("parent")? as u32,
            child: arg("child")? as u32,
        },
        "exit" => CheckEvent::ThreadExit {
            tid: arg("tid")? as u32,
        },
        "alloc" => CheckEvent::Alloc {
            granule: arg("granule")? as usize,
        },
        other => return Err(format!("unknown event `{other}`")),
    };
    if let Some(extra) = parts.next() {
        return Err(format!("`{kw}`: unexpected trailing operand `{extra}`"));
    }
    Ok(ev)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sharc_testkit::{forall, gen, prop_assert_eq, Gen};

    fn event_gen() -> Gen<CheckEvent> {
        gen::pair(
            gen::u32_range(0..10),
            gen::triple(
                gen::u32_range(1..300),
                gen::usize_range(0..4096),
                gen::u64_range(1..5),
            ),
        )
        .map(|&(kind, (tid, granule, refs))| {
            let lock = granule % 8;
            match kind {
                0 => CheckEvent::Read { tid, granule },
                1 => CheckEvent::Write { tid, granule },
                2 => CheckEvent::LockedAccess { tid, lock },
                3 => CheckEvent::SharingCast { tid, granule, refs },
                4 => CheckEvent::Acquire { tid, lock },
                5 => CheckEvent::Release { tid, lock },
                6 => CheckEvent::Fork {
                    parent: tid,
                    child: tid + 1,
                },
                7 => CheckEvent::Join {
                    parent: tid,
                    child: tid + 1,
                },
                8 => CheckEvent::ThreadExit { tid },
                _ => CheckEvent::Alloc { granule },
            }
        })
    }

    #[test]
    fn round_trip_is_identity_over_the_whole_vocabulary() {
        forall!(
            "trace_round_trip_is_identity",
            gen::vec_of(event_gen(), 0..64),
            |events| {
                let parsed = parse_text(&to_text(events)).expect("well-formed");
                prop_assert_eq!(&parsed, events);
            }
        );
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let parsed = parse_text("# hello\n\n  read 2 7  \n# bye\n").unwrap();
        assert_eq!(parsed, vec![CheckEvent::Read { tid: 2, granule: 7 }]);
    }

    #[test]
    fn malformed_lines_report_their_line_number() {
        let e = parse_text("read 2 7\nwobble 1\n").unwrap_err();
        assert!(e.contains("line 2"), "{e}");
        assert!(e.contains("wobble"), "{e}");
        let e = parse_text("cast 1 2\n").unwrap_err();
        assert!(e.contains("refs"), "{e}");
        let e = parse_text("exit 1 2\n").unwrap_err();
        assert!(e.contains("trailing"), "{e}");
    }
}
