//! Offline [`CheckEvent`](crate::CheckEvent) traces: a line-oriented
//! text format so one recorded execution can leave the process and be
//! re-judged later (`sharc native --trace-out` writes it, `sharc
//! replay` reads it back into [`crate::replay`]).
//!
//! The format is deliberately boring — one event per line, lowercase
//! keyword plus decimal operands, `#` comments and blank lines
//! ignored:
//!
//! ```text
//! # sharc-trace v3
//! fork 1 2
//! write 1 17
//! rwrite 1 18 4
//! cast 1 17 1
//! rcast 1 18 4 1
//! acquire 2 0
//! release 2 0
//! read 2 17
//! rread 2 18 4
//! rfree 18 4
//! exit 2
//! ```
//!
//! `v2` added the two ranged access lines: `rread tid granule len` /
//! `rwrite tid granule len`, one line per buffer sweep. `v3` adds the
//! ranged ownership-transfer lines: `rcast tid granule len refs`, one
//! line per whole-block sharing cast, and `rfree granule len`, one
//! line per whole-block free. Each format bump is backwards
//! compatible by construction — the header is a comment, and every
//! older keyword parses unchanged — so a `v1` or `v2` file written by
//! an older `--trace-out` replays bit-identically under this parser
//! (the compatibility tests below pin it). A `v3` trace is
//! interchangeable with its per-granule expansion: replay lowers each
//! range to per-granule checks
//! ([`crate::backend::lower_ranges`]), so both spell the same
//! verdicts.
//!
//! Round-tripping is exact ([`parse_text`] ∘ [`to_text`] is the
//! identity on any event vector), which is what makes an offline
//! verdict trustworthy: the replayed trace *is* the recorded
//! execution, not a lossy summary of it. The property test below
//! pins this over the whole vocabulary.

use crate::backend::CheckEvent;
use std::fmt::Write as _;

/// The header written at the top of every trace file. Parsing does
/// not require it (it is a comment), but it lets a future format
/// bump fail loudly instead of misparsing.
pub const TRACE_HEADER: &str = "# sharc-trace v3";

/// The `v1` header, still accepted (it is a comment): a `v1` file
/// contains only per-granule lines, all of which parse unchanged.
pub const TRACE_HEADER_V1: &str = "# sharc-trace v1";

/// The `v2` header, still accepted: a `v2` file contains per-granule
/// lines plus `rread`/`rwrite`, all of which parse unchanged.
pub const TRACE_HEADER_V2: &str = "# sharc-trace v2";

/// Renders `events` in the line format, header included.
pub fn to_text(events: &[CheckEvent]) -> String {
    let mut out = String::with_capacity(events.len() * 12 + TRACE_HEADER.len() + 1);
    out.push_str(TRACE_HEADER);
    out.push('\n');
    for e in events {
        match *e {
            CheckEvent::Read { tid, granule } => writeln!(out, "read {tid} {granule}"),
            CheckEvent::Write { tid, granule } => writeln!(out, "write {tid} {granule}"),
            CheckEvent::RangeRead { tid, granule, len } => {
                writeln!(out, "rread {tid} {granule} {len}")
            }
            CheckEvent::RangeWrite { tid, granule, len } => {
                writeln!(out, "rwrite {tid} {granule} {len}")
            }
            CheckEvent::LockedAccess { tid, lock } => writeln!(out, "locked {tid} {lock}"),
            CheckEvent::SharingCast { tid, granule, refs } => {
                writeln!(out, "cast {tid} {granule} {refs}")
            }
            CheckEvent::RangeCast {
                tid,
                granule,
                len,
                refs,
            } => {
                writeln!(out, "rcast {tid} {granule} {len} {refs}")
            }
            CheckEvent::RangeFree { granule, len } => writeln!(out, "rfree {granule} {len}"),
            CheckEvent::Acquire { tid, lock } => writeln!(out, "acquire {tid} {lock}"),
            CheckEvent::Release { tid, lock } => writeln!(out, "release {tid} {lock}"),
            CheckEvent::Fork { parent, child } => writeln!(out, "fork {parent} {child}"),
            CheckEvent::Join { parent, child } => writeln!(out, "join {parent} {child}"),
            CheckEvent::ThreadExit { tid } => writeln!(out, "exit {tid}"),
            CheckEvent::Alloc { granule } => writeln!(out, "alloc {granule}"),
        }
        .expect("writing to a String cannot fail");
    }
    out
}

/// The text-format keyword for `e` — the same vocabulary
/// [`to_text`]/[`parse_text`] speak, exposed so tooling (`sharc
/// trace info`) can bucket per-kind counts without re-matching the
/// enum.
pub fn keyword(e: &CheckEvent) -> &'static str {
    match e {
        CheckEvent::Read { .. } => "read",
        CheckEvent::Write { .. } => "write",
        CheckEvent::RangeRead { .. } => "rread",
        CheckEvent::RangeWrite { .. } => "rwrite",
        CheckEvent::LockedAccess { .. } => "locked",
        CheckEvent::SharingCast { .. } => "cast",
        CheckEvent::RangeCast { .. } => "rcast",
        CheckEvent::RangeFree { .. } => "rfree",
        CheckEvent::Acquire { .. } => "acquire",
        CheckEvent::Release { .. } => "release",
        CheckEvent::Fork { .. } => "fork",
        CheckEvent::Join { .. } => "join",
        CheckEvent::ThreadExit { .. } => "exit",
        CheckEvent::Alloc { .. } => "alloc",
    }
}

/// Renders a parse failure: the 1-based line number, a snippet of
/// the offending line (truncated, so a megabyte of garbage does not
/// become a megabyte of error), and the detail. Every error this
/// module produces goes through here — header lines included — so a
/// failure always says *where* and *what it saw*, not just why.
fn line_error(line_no: usize, raw: &str, detail: &str) -> String {
    const SNIPPET_MAX: usize = 48;
    let trimmed = raw.trim();
    let snippet: String = if trimmed.chars().count() > SNIPPET_MAX {
        trimmed
            .chars()
            .take(SNIPPET_MAX)
            .chain("...".chars())
            .collect()
    } else {
        trimmed.to_string()
    };
    format!("trace line {line_no}: `{snippet}`: {detail}")
}

/// Parses the line format back into events. Blank lines and `#`
/// comments are skipped; anything else that fails to parse reports
/// its 1-based line number plus a snippet of the offending line.
/// Header comments are the one kind of comment that is *not* waved
/// through blindly: a `# sharc-trace vN` line with an unknown
/// version fails loudly (with its line number like any other error)
/// instead of silently misparsing a future format.
pub fn parse_text(text: &str) -> Result<Vec<CheckEvent>, String> {
    let mut events = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# sharc-trace v") {
            match rest.trim().parse::<u32>() {
                Ok(v) if (1..=3).contains(&v) => continue,
                Ok(v) => {
                    return Err(line_error(
                        i + 1,
                        raw,
                        &format!(
                            "unsupported text trace version v{v} \
                             (this parser reads v1-v3; v4 is the binary `.sbt` format)"
                        ),
                    ))
                }
                Err(_) => {
                    return Err(line_error(i + 1, raw, "malformed trace version header"));
                }
            }
        }
        if line.starts_with('#') {
            continue;
        }
        events.push(parse_line(line).map_err(|e| line_error(i + 1, raw, &e))?);
    }
    Ok(events)
}

fn parse_line(line: &str) -> Result<CheckEvent, String> {
    let mut parts = line.split_ascii_whitespace();
    let kw = parts.next().expect("line is non-empty");
    let mut arg = |name: &str| -> Result<u64, String> {
        parts
            .next()
            .ok_or_else(|| format!("`{kw}` is missing its {name} operand"))?
            .parse::<u64>()
            .map_err(|_| format!("`{kw}`: {name} is not a number"))
    };
    let ev = match kw {
        "read" => CheckEvent::Read {
            tid: arg("tid")? as u32,
            granule: arg("granule")? as usize,
        },
        "write" => CheckEvent::Write {
            tid: arg("tid")? as u32,
            granule: arg("granule")? as usize,
        },
        "rread" => CheckEvent::RangeRead {
            tid: arg("tid")? as u32,
            granule: arg("granule")? as usize,
            len: arg("len")? as usize,
        },
        "rwrite" => CheckEvent::RangeWrite {
            tid: arg("tid")? as u32,
            granule: arg("granule")? as usize,
            len: arg("len")? as usize,
        },
        "locked" => CheckEvent::LockedAccess {
            tid: arg("tid")? as u32,
            lock: arg("lock")? as usize,
        },
        "cast" => CheckEvent::SharingCast {
            tid: arg("tid")? as u32,
            granule: arg("granule")? as usize,
            refs: arg("refs")?,
        },
        "rcast" => CheckEvent::RangeCast {
            tid: arg("tid")? as u32,
            granule: arg("granule")? as usize,
            len: arg("len")? as usize,
            refs: arg("refs")?,
        },
        "rfree" => CheckEvent::RangeFree {
            granule: arg("granule")? as usize,
            len: arg("len")? as usize,
        },
        "acquire" => CheckEvent::Acquire {
            tid: arg("tid")? as u32,
            lock: arg("lock")? as usize,
        },
        "release" => CheckEvent::Release {
            tid: arg("tid")? as u32,
            lock: arg("lock")? as usize,
        },
        "fork" => CheckEvent::Fork {
            parent: arg("parent")? as u32,
            child: arg("child")? as u32,
        },
        "join" => CheckEvent::Join {
            parent: arg("parent")? as u32,
            child: arg("child")? as u32,
        },
        "exit" => CheckEvent::ThreadExit {
            tid: arg("tid")? as u32,
        },
        "alloc" => CheckEvent::Alloc {
            granule: arg("granule")? as usize,
        },
        other => return Err(format!("unknown event `{other}`")),
    };
    if let Some(extra) = parts.next() {
        return Err(format!("`{kw}`: unexpected trailing operand `{extra}`"));
    }
    Ok(ev)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sharc_testkit::{forall, gen, prop_assert_eq, Gen};

    fn event_gen() -> Gen<CheckEvent> {
        gen::pair(
            gen::u32_range(0..14),
            gen::triple(
                gen::u32_range(1..300),
                gen::usize_range(0..4096),
                gen::u64_range(1..5),
            ),
        )
        .map(|&(kind, (tid, granule, refs))| {
            let lock = granule % 8;
            let len = (granule % 7) + 1;
            match kind {
                0 => CheckEvent::Read { tid, granule },
                1 => CheckEvent::Write { tid, granule },
                2 => CheckEvent::LockedAccess { tid, lock },
                3 => CheckEvent::SharingCast { tid, granule, refs },
                4 => CheckEvent::Acquire { tid, lock },
                5 => CheckEvent::Release { tid, lock },
                6 => CheckEvent::Fork {
                    parent: tid,
                    child: tid + 1,
                },
                7 => CheckEvent::Join {
                    parent: tid,
                    child: tid + 1,
                },
                8 => CheckEvent::ThreadExit { tid },
                9 => CheckEvent::RangeRead { tid, granule, len },
                10 => CheckEvent::RangeWrite { tid, granule, len },
                11 => CheckEvent::RangeCast {
                    tid,
                    granule,
                    len,
                    refs,
                },
                12 => CheckEvent::RangeFree { granule, len },
                _ => CheckEvent::Alloc { granule },
            }
        })
    }

    #[test]
    fn round_trip_is_identity_over_the_whole_vocabulary() {
        forall!(
            "trace_round_trip_is_identity",
            gen::vec_of(event_gen(), 0..64),
            |events| {
                let parsed = parse_text(&to_text(events)).expect("well-formed");
                prop_assert_eq!(&parsed, events);
            }
        );
    }

    #[test]
    fn wide_tids_round_trip_exactly_at_shard_boundaries() {
        // The fleet-width regression: tids straddling every 63-wide
        // shard boundary, spelled only in the vocabulary a wide
        // server run actually emits — ranged sweeps interleaved with
        // the sharing casts and thread exits that clear them. The
        // text format has no tid width anywhere, so the round trip
        // must be the identity with the boundary identities intact.
        const BOUNDARY_TIDS: [u32; 8] = [63, 64, 126, 127, 189, 252, 315, 316];
        let wide_event = gen::pair(
            gen::pair(
                gen::u32_range(0..5),
                gen::u32_range(0..BOUNDARY_TIDS.len() as u32),
            ),
            gen::pair(gen::usize_range(0..4096), gen::usize_range(1..9)),
        )
        .map(|&((kind, which), (granule, len))| {
            let tid = BOUNDARY_TIDS[which as usize];
            match kind {
                0 => CheckEvent::RangeRead { tid, granule, len },
                1 => CheckEvent::RangeWrite { tid, granule, len },
                2 => CheckEvent::SharingCast {
                    tid,
                    granule,
                    refs: 1 + (granule % 3) as u64,
                },
                3 => CheckEvent::RangeCast {
                    tid,
                    granule,
                    len,
                    refs: 1 + (granule % 3) as u64,
                },
                _ => CheckEvent::ThreadExit { tid },
            }
        });
        forall!(
            "trace_wide_tids_round_trip",
            gen::vec_of(wide_event, 0..96),
            |events| {
                let parsed = parse_text(&to_text(events)).expect("well-formed");
                prop_assert_eq!(&parsed, events);
                // Every tid survived verbatim — no narrowing through
                // any 63-entry shard encoding on the way to disk.
                for (e, p) in events.iter().zip(&parsed) {
                    let tid_of = |e: &CheckEvent| match *e {
                        CheckEvent::RangeRead { tid, .. }
                        | CheckEvent::RangeWrite { tid, .. }
                        | CheckEvent::SharingCast { tid, .. }
                        | CheckEvent::RangeCast { tid, .. }
                        | CheckEvent::ThreadExit { tid } => tid,
                        _ => unreachable!("not in the generated vocabulary"),
                    };
                    prop_assert_eq!(tid_of(e), tid_of(p));
                }
            }
        );
    }

    #[test]
    fn v1_files_still_parse_under_the_v2_parser() {
        // A file written by the v1 `--trace-out` (v1 header, only
        // per-granule lines) parses unchanged: the header is a
        // comment and every v1 keyword survived the format bump.
        let v1 = format!("{TRACE_HEADER_V1}\nfork 1 2\nwrite 1 17\nread 2 17\nexit 2\n");
        let parsed = parse_text(&v1).expect("v1 compatible");
        assert_eq!(
            parsed,
            vec![
                CheckEvent::Fork {
                    parent: 1,
                    child: 2
                },
                CheckEvent::Write {
                    tid: 1,
                    granule: 17
                },
                CheckEvent::Read {
                    tid: 2,
                    granule: 17
                },
                CheckEvent::ThreadExit { tid: 2 },
            ]
        );
    }

    #[test]
    fn v2_files_still_parse_under_the_v3_parser() {
        // A file written by the v2 `--trace-out` (v2 header, ranged
        // access lines but no ranged casts/frees) parses unchanged.
        let v2 = format!("{TRACE_HEADER_V2}\nfork 1 2\nrwrite 1 16 4\ncast 1 16 1\nexit 1\n");
        let parsed = parse_text(&v2).expect("v2 compatible");
        assert_eq!(
            parsed,
            vec![
                CheckEvent::Fork {
                    parent: 1,
                    child: 2
                },
                CheckEvent::RangeWrite {
                    tid: 1,
                    granule: 16,
                    len: 4
                },
                CheckEvent::SharingCast {
                    tid: 1,
                    granule: 16,
                    refs: 1
                },
                CheckEvent::ThreadExit { tid: 1 },
            ]
        );
    }

    #[test]
    fn v3_trace_and_its_v1_lowering_replay_identically() {
        // The v1 -> v3 round trip: any v3 trace (ranged accesses,
        // casts, and frees included) can be lowered to a pure-v1
        // vocabulary, serialized, re-parsed, and replayed — and the
        // verdicts are bit-identical to replaying the v3 file
        // directly.
        use crate::backend::{lower_ranges, replay, BitmapBackend};
        forall!(
            "trace_v3_lowering_preserves_verdicts",
            gen::vec_of(event_gen(), 0..48),
            |events| {
                let v3 = parse_text(&to_text(events)).expect("v3 parses");
                let lowered = lower_ranges(&v3);
                let v1_text = to_text(&lowered);
                assert!(
                    !v1_text.contains("\nrread ")
                        && !v1_text.contains("\nrwrite ")
                        && !v1_text.contains("\nrcast ")
                        && !v1_text.contains("\nrfree "),
                    "lowering leaves only the v1 vocabulary"
                );
                let v1 = parse_text(&v1_text).expect("lowered trace parses");
                let a = replay(&v3, &mut BitmapBackend::new());
                let b = replay(&v1, &mut BitmapBackend::new());
                prop_assert_eq!(&a, &b);
            }
        );
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let parsed = parse_text("# hello\n\n  read 2 7  \n# bye\n").unwrap();
        assert_eq!(parsed, vec![CheckEvent::Read { tid: 2, granule: 7 }]);
    }

    /// Every malformed form reports the 1-based line *and* a snippet
    /// of the offending line, so a failure deep in a 10⁷-line trace
    /// is locatable without opening the file. One case per form.
    #[test]
    fn every_malformed_form_reports_line_and_snippet() {
        // (input, expected line tag, expected detail fragment); each
        // input puts the bad line second so a correct line count is
        // actually exercised.
        let cases: &[(&str, &str, &str)] = &[
            // Unknown keyword.
            ("read 2 7\nwobble 1\n", "line 2", "unknown event"),
            // Missing operand, per operand-bearing event shape.
            ("read 2 7\nread 3\n", "line 2", "granule operand"),
            ("read 2 7\nwrite 3\n", "line 2", "granule operand"),
            ("read 2 7\nrread 1 2\n", "line 2", "len operand"),
            ("read 2 7\nrwrite 1 2\n", "line 2", "len operand"),
            ("read 2 7\nlocked 1\n", "line 2", "lock operand"),
            ("read 2 7\ncast 1 2\n", "line 2", "refs operand"),
            ("read 2 7\nrcast 1 2 3\n", "line 2", "refs operand"),
            ("read 2 7\nrfree 2\n", "line 2", "len operand"),
            ("read 2 7\nacquire 1\n", "line 2", "lock operand"),
            ("read 2 7\nrelease 1\n", "line 2", "lock operand"),
            ("read 2 7\nfork 1\n", "line 2", "child operand"),
            ("read 2 7\njoin 1\n", "line 2", "child operand"),
            ("read 2 7\nexit\n", "line 2", "tid operand"),
            ("read 2 7\nalloc\n", "line 2", "granule operand"),
            // Non-numeric operand.
            ("read 2 7\nread two 7\n", "line 2", "not a number"),
            // Trailing operand.
            ("read 2 7\nexit 1 2\n", "line 2", "trailing"),
            // Header lines fail with a line number too: an unknown
            // future version must not be skipped as a comment...
            (
                "# sharc-trace v9\nread 2 7\n",
                "line 1",
                "unsupported text trace version v9",
            ),
            // ...and a mangled version header is not a comment either.
            (
                "read 2 7\n# sharc-trace vX\n",
                "line 2",
                "malformed trace version header",
            ),
        ];
        for (input, line, detail) in cases {
            let e = parse_text(input).unwrap_err();
            assert!(e.contains(line), "{input:?}: expected {line:?} in {e:?}");
            assert!(
                e.contains(detail),
                "{input:?}: expected {detail:?} in {e:?}"
            );
            // The snippet: the offending line's text, backquoted.
            let bad = input
                .lines()
                .find(|l| e.contains(&format!("`{}`", l.trim())))
                .unwrap_or_else(|| panic!("{input:?}: no snippet in {e:?}"));
            assert!(!bad.is_empty());
        }
        // Long garbage is truncated in the snippet, not echoed whole.
        let long = format!("read 2 7\nwobble {}\n", "x".repeat(500));
        let e = parse_text(&long).unwrap_err();
        assert!(e.contains("..."), "{e}");
        assert!(e.len() < 160, "snippet not truncated: {e}");
    }

    #[test]
    fn v1_through_v3_headers_still_parse() {
        for h in [TRACE_HEADER_V1, TRACE_HEADER_V2, TRACE_HEADER] {
            let parsed = parse_text(&format!("{h}\nread 2 7\n")).expect("supported version");
            assert_eq!(parsed, vec![CheckEvent::Read { tid: 2, granule: 7 }]);
        }
    }
}
