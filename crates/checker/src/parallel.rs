//! [`ParallelReplay`]: region-sharded parallel trace replay whose
//! merged conflicts are **bit-identical** to the sequential
//! [`replay`](crate::replay) fold, for every [`CheckBackend`].
//!
//! ## Why granule regions partition cleanly
//!
//! A replay verdict is a fold of [`apply_event`] steps, and every
//! backend's state splits into two halves with disjoint write sets:
//!
//! * **per-granule state** (shadow words, locksets-of-record,
//!   read/write clocks), written only by events addressed to that
//!   granule, and
//! * **per-thread/per-lock sync state** (held-lock logs, thread and
//!   lock vector clocks, fork/join edges), written only by the
//!   synchronization events — which carry no granule and produce no
//!   conflict.
//!
//! So the trace lowers onto `N` workers like this (the "documented
//! lowering" of the region-sharded design):
//!
//! * **granule events** (`read`/`write`/`cast`/`alloc`) go to the one
//!   worker that owns the granule's region — the same
//!   [`EpochTable::region_of`] block map the owned-granule cache
//!   invalidates by, taken modulo the worker count;
//! * **range events** are split at region-block boundaries and each
//!   worker applies only the sub-ranges it owns ([`apply_event`]
//!   already defines a range as exactly its per-granule expansion,
//!   so splitting is verdict-invisible);
//! * **sync events** (`acquire`/`release`/`fork`/`join`/`exit`) are
//!   *broadcast*: every worker applies them to its own backend, so
//!   each partition sees the full synchronization order interleaved
//!   with its own granule events in trace position. `exit` clears a
//!   thread's installed bits — each worker's backend only ever
//!   installed bits for its own granules, so the broadcast clear is
//!   the disjoint union of the sequential one;
//! * **`locked` accesses** touch no granule state at all (they read
//!   the held-lock log, which every worker replicates); they are
//!   routed by their lock id through the same region map so exactly
//!   one worker emits the verdict.
//!
//! Each worker therefore computes, against its own backend, exactly
//! the conflicts the sequential fold computes for its granules — in
//! trace order, and within one range event in ascending-granule
//! order, which is also sequential replay's order. Tagging every
//! conflict with its event index and merging by `(event, granule)`
//! — a unique key, since no event checks one granule twice —
//! reproduces the sequential conflict *list*, not just the set. The
//! 256-tid `forall!` differential in `tests/checker_differential.rs`
//! pins this for the sharc bitmap, Eraser, and vector-clock backends
//! alike.

use crate::backend::{apply_event, replay, trace_granule_span, CheckBackend, CheckEvent, Conflict};
use crate::epoch::EpochTable;

/// The region→worker map: [`EpochTable`]'s block geometry over the
/// trace's granule span, taken modulo the worker count. Granules past
/// the span wrap like the epoch table wraps — still a pure function,
/// so the partition stays a partition.
struct Partition {
    regions: EpochTable,
    jobs: usize,
    /// Granules per region block (`1 << region_shift`), for walking
    /// range events one block at a time.
    block: usize,
}

impl Partition {
    fn new(span: usize, jobs: usize) -> Self {
        let regions = EpochTable::for_granules(span.max(1));
        let block = (span.max(1).div_ceil(regions.regions())).next_power_of_two();
        Partition {
            regions,
            jobs,
            block,
        }
    }

    #[inline]
    fn worker_of(&self, granule: usize) -> usize {
        self.regions.region_of(granule) % self.jobs
    }
}

/// A parallel, region-sharded replay engine: `jobs` worker threads,
/// each owning a disjoint set of granule regions and running the
/// shared [`apply_event`] step against its own backend instance.
#[derive(Debug, Clone, Copy)]
pub struct ParallelReplay {
    jobs: usize,
}

impl ParallelReplay {
    /// An engine with `jobs` workers (clamped to at least 1).
    pub fn new(jobs: usize) -> Self {
        ParallelReplay { jobs: jobs.max(1) }
    }

    /// The configured worker count.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Replays `events`, calling `make_backend` once per worker, and
    /// returns the merged conflict list — bit-identical (order
    /// included) to `replay(events, &mut *make_backend())`.
    pub fn replay<F>(&self, events: &[CheckEvent], make_backend: F) -> Vec<Conflict>
    where
        F: Fn() -> Box<dyn CheckBackend + Send> + Sync,
    {
        if self.jobs == 1 {
            return replay(events, &mut *make_backend());
        }
        let part = Partition::new(trace_granule_span(events), self.jobs);
        let mut tagged: Vec<(u64, Conflict)> = std::thread::scope(|s| {
            let part = &part;
            let make_backend = &make_backend;
            let handles: Vec<_> = (0..self.jobs)
                .map(|w| s.spawn(move || worker_fold(w, part, events, &mut *make_backend())))
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("replay worker panicked"))
                .collect()
        });
        // `(event index, conflicting granule)` is unique per conflict
        // — no event checks one granule twice — and sequential replay
        // emits conflicts exactly in that order (events in trace
        // order, range expansions in ascending-granule order).
        tagged.sort_unstable_by_key(|&(i, c)| (i, c.granule));
        tagged.into_iter().map(|(_, c)| c).collect()
    }
}

/// One worker's pass over the whole trace: apply what it owns, skip
/// the rest, tag every conflict with its event index.
fn worker_fold(
    w: usize,
    part: &Partition,
    events: &[CheckEvent],
    backend: &mut dyn CheckBackend,
) -> Vec<(u64, Conflict)> {
    use CheckEvent as E;
    let mut scratch: Vec<Conflict> = Vec::new();
    let mut tagged: Vec<(u64, Conflict)> = Vec::new();
    for (i, &e) in events.iter().enumerate() {
        match e {
            // Granule-addressed point events: one owner.
            E::Read { granule, .. }
            | E::Write { granule, .. }
            | E::SharingCast { granule, .. }
            | E::Alloc { granule } => {
                if part.worker_of(granule) == w {
                    apply_event(e, backend, &mut scratch);
                }
            }
            // `locked` reads only the replicated held-lock log; route
            // by lock id so exactly one worker emits its verdict.
            E::LockedAccess { lock, .. } => {
                if part.worker_of(lock) == w {
                    apply_event(e, backend, &mut scratch);
                }
            }
            // Range events: apply only the owned sub-ranges, split at
            // region-block boundaries. Adjacent owned blocks could be
            // merged, but applying them block-by-block is already the
            // per-granule expansion `apply_event` defines.
            E::RangeRead { tid, granule, len } => {
                for (g, l) in owned_runs(part, w, granule, len) {
                    apply_event(
                        E::RangeRead {
                            tid,
                            granule: g,
                            len: l,
                        },
                        backend,
                        &mut scratch,
                    );
                }
            }
            E::RangeWrite { tid, granule, len } => {
                for (g, l) in owned_runs(part, w, granule, len) {
                    apply_event(
                        E::RangeWrite {
                            tid,
                            granule: g,
                            len: l,
                        },
                        backend,
                        &mut scratch,
                    );
                }
            }
            E::RangeCast {
                tid,
                granule,
                len,
                refs,
            } => {
                for (g, l) in owned_runs(part, w, granule, len) {
                    apply_event(
                        E::RangeCast {
                            tid,
                            granule: g,
                            len: l,
                            refs,
                        },
                        backend,
                        &mut scratch,
                    );
                }
            }
            E::RangeFree { granule, len } => {
                for (g, l) in owned_runs(part, w, granule, len) {
                    apply_event(E::RangeFree { granule: g, len: l }, backend, &mut scratch);
                }
            }
            // Sync events: broadcast, so every partition holds the
            // full synchronization order. They never conflict, so the
            // replication adds no duplicate verdicts.
            E::Acquire { .. }
            | E::Release { .. }
            | E::Fork { .. }
            | E::Join { .. }
            | E::ThreadExit { .. } => {
                apply_event(e, backend, &mut scratch);
            }
        }
        if !scratch.is_empty() {
            let idx = i as u64;
            tagged.extend(scratch.drain(..).map(|c| (idx, c)));
        }
    }
    tagged
}

/// The maximal sub-runs of `granule .. granule + len` owned by worker
/// `w`, in ascending order, as `(start, len)` pairs.
fn owned_runs(
    part: &Partition,
    w: usize,
    granule: usize,
    len: usize,
) -> impl Iterator<Item = (usize, usize)> + '_ {
    let end = granule + len;
    let block = part.block;
    let mut g = granule;
    std::iter::from_fn(move || {
        while g < end {
            // Region blocks are `block`-aligned, so ownership is
            // constant up to the next block boundary.
            let run_end = end.min((g / block + 1) * block);
            let start = g;
            g = run_end;
            if part.worker_of(start) == w {
                return Some((start, run_end - start));
            }
        }
        None
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{geometry_for_trace, BitmapBackend};

    fn seq(events: &[CheckEvent]) -> Vec<Conflict> {
        replay(
            events,
            &mut BitmapBackend::with_geometry(geometry_for_trace(events)),
        )
    }

    fn par(events: &[CheckEvent], jobs: usize) -> Vec<Conflict> {
        let geom = geometry_for_trace(events);
        ParallelReplay::new(jobs)
            .replay(events, move || Box::new(BitmapBackend::with_geometry(geom)))
    }

    #[test]
    fn partition_covers_every_granule_exactly_once() {
        let part = Partition::new(1000, 3);
        for g in 0..4096 {
            let owner = part.worker_of(g);
            assert!(owner < 3);
            assert_eq!(owner, part.worker_of(g), "ownership is a pure function");
        }
        // A range split hands every granule to exactly one worker.
        let mut covered = vec![0u32; 950];
        for w in 0..3 {
            for (start, len) in owned_runs(&part, w, 13, 900) {
                for c in &mut covered[start..start + len] {
                    *c += 1;
                }
            }
        }
        assert!(covered[..13].iter().all(|&c| c == 0));
        assert!(covered[13..913].iter().all(|&c| c == 1));
        assert!(covered[913..].iter().all(|&c| c == 0));
    }

    #[test]
    fn conflicting_trace_merges_in_sequential_order() {
        use CheckEvent as E;
        // Two threads fight over granules in different regions, with
        // a cross-partition range in the middle; the merged conflict
        // list must equal the sequential one element-for-element.
        let events = vec![
            E::Fork {
                parent: 1,
                child: 2,
            },
            E::Write { tid: 1, granule: 0 },
            E::Write {
                tid: 1,
                granule: 900,
            },
            E::RangeWrite {
                tid: 2,
                granule: 0,
                len: 1000,
            },
            E::Read { tid: 2, granule: 0 },
            E::ThreadExit { tid: 1 },
            E::RangeRead {
                tid: 2,
                granule: 0,
                len: 1000,
            },
        ];
        let expect = seq(&events);
        assert!(!expect.is_empty(), "the fixture must actually conflict");
        for jobs in 1..6 {
            assert_eq!(par(&events, jobs), expect, "jobs = {jobs}");
        }
    }

    #[test]
    fn locked_access_verdicts_survive_partitioning() {
        use CheckEvent as E;
        let events = vec![
            E::Acquire { tid: 1, lock: 3 },
            E::LockedAccess { tid: 1, lock: 3 },
            E::Release { tid: 1, lock: 3 },
            E::LockedAccess { tid: 1, lock: 3 }, // fails: lock no longer held
            E::LockedAccess { tid: 1, lock: 9 }, // fails: never held
        ];
        let expect = seq(&events);
        assert_eq!(expect.len(), 2);
        for jobs in 1..5 {
            assert_eq!(par(&events, jobs), expect, "jobs = {jobs}");
        }
    }

    #[test]
    fn more_jobs_than_regions_is_safe() {
        use CheckEvent as E;
        // A 2-granule trace under 64 jobs: most workers own nothing
        // and the merge still reproduces the sequential verdicts.
        let events = vec![
            E::Write { tid: 1, granule: 0 },
            E::Write { tid: 2, granule: 0 },
            E::Write { tid: 2, granule: 1 },
        ];
        assert_eq!(par(&events, 64), seq(&events));
    }
}
