//! Per-region epoch tables: partial invalidation for the owned cache.
//!
//! PR 2 introduced the epoch protocol that makes [`crate::cache::OwnedCache`]
//! sound: every `clear`/`free`/`cast`/`thread_exit` bumps an epoch,
//! and cache entries recorded under an older epoch never answer. With
//! a *single global* epoch that protocol has a worst case the
//! `cached-epoch-thrash` bench row pins exactly: one `free` anywhere
//! invalidates every thread's *entire* cache, even though only a
//! handful of granules changed state.
//!
//! [`EpochTable`] fixes the granularity. The granule space is
//! partitioned into `R` fixed regions (both `R` and the granules-per-
//! region block size are powers of two, so the mapping is a shift and
//! a mask), each with its own epoch counter. A clear bumps only the
//! region(s) actually touched; cache entries are tagged with the
//! epoch of *their* region, so entries for unrelated regions stay
//! live across the clear. The whole-cache flush of PR 2 survives only
//! as the `R = 1` degenerate geometry ([`EpochTable::global`]), where
//! every granule maps to region 0 and one bump invalidates everything
//! — bit-for-bit the old behaviour.
//!
//! ## Region mapping
//!
//! `region_of(g) = (g >> region_shift) & (R − 1)`: contiguous blocks
//! of `2^region_shift` granules, wrapping modulo `R` once the granule
//! index exceeds `R · 2^region_shift`. The wrap matters for growable
//! granule spaces (the VM's heap, `ScalableShadow`'s lazy pages): a
//! granule past the sized range still gets *an* epoch — it merely
//! shares it with an earlier block, which is conservative (a bump
//! there invalidates slightly more than necessary), never unsound.
//!
//! ## The per-region invariant
//!
//! The PR 2 invariant survives verbatim, quantified per region:
//!
//! > **An entry can never be newer than the epoch guarding it.** The
//! > region epoch is read *before* the slow-path check that populates
//! > a cache entry, and every state-clearing operation on a granule
//! > bumps that granule's region epoch with `Release` ordering before
//! > (or atomically with) publishing the cleared shadow word. So if a
//! > cached entry's tag equals the current region epoch, no clear of
//! > that region has completed since the entry's slow-path check ran
//! > — and by cache invariants 1–2 (see [`crate::cache`]) the cached
//! > verdict is still the shadow's verdict.
//!
//! ## Memory ordering
//!
//! Epoch loads are `Relaxed` and bumps are `Release` `fetch_add`, the
//! same discipline the global epoch used. The load is `Relaxed`
//! because the epoch is a *guard*, not a synchronisation edge: the
//! caller reads the region epoch first, then (on a miss) performs the
//! slow-path check whose `Acquire`/`SeqCst` shadow-word access does
//! the real synchronising. A stale-epoch read can only make the cache
//! *miss* (re-running the full check), never hit on dead state: for
//! the cache to hit, the observed epoch must equal the entry's tag,
//! i.e. no bump was observed — and if a clear raced the original
//! fill, that is the same free/cast boundary race the paper accepts
//! (the access is judged against one side of the clear or the other).

use core::sync::atomic::{AtomicU64, Ordering};

/// Default number of epoch regions for sized shadows. 64 keeps the
/// table in one cache line and already makes a point `free`
/// invalidate 1/64th of a resident working set instead of all of it.
pub const DEFAULT_REGIONS: usize = 64;

/// A table of per-region epoch counters over a granule space.
///
/// `R = 1` ([`EpochTable::global`]) degenerates to the single global
/// epoch of PR 2/3: every granule maps to region 0.
#[derive(Debug)]
pub struct EpochTable {
    /// `R` counters, `R` a power of two. The region mask is derived
    /// as `epochs.len() - 1` at each use so the optimiser can prove
    /// the index in bounds and drop the bounds check from the
    /// per-access fast path.
    epochs: Box<[AtomicU64]>,
    /// log2 of the granules-per-region block size.
    region_shift: u32,
}

impl EpochTable {
    /// A table of `regions` epochs over blocks of
    /// `granules_per_region` granules. Both are rounded up to powers
    /// of two (minimum 1).
    pub fn new(regions: usize, granules_per_region: usize) -> Self {
        let regions = regions.max(1).next_power_of_two();
        let block = granules_per_region.max(1).next_power_of_two();
        EpochTable {
            epochs: (0..regions).map(|_| AtomicU64::new(0)).collect(),
            region_shift: block.trailing_zeros(),
        }
    }

    /// The `R = 1` degenerate geometry: one epoch guards every
    /// granule, reproducing the pre-region global-epoch behaviour
    /// (every bump invalidates every cached entry).
    pub fn global() -> Self {
        EpochTable::new(1, 1)
    }

    /// A table sized for a granule space of `granules`, using
    /// [`DEFAULT_REGIONS`] regions (fewer if the space is tiny, so a
    /// region never covers less than one granule by construction).
    pub fn for_granules(granules: usize) -> Self {
        let regions = DEFAULT_REGIONS.min(granules.max(1).next_power_of_two());
        EpochTable::new(regions, granules.max(1).div_ceil(regions))
    }

    /// A table sized for `granules` granules under `geom`: wider
    /// geometries pay more shadow words per slow-path refill, so they
    /// get proportionally more regions (up to the granule count) to
    /// keep refill storms after a clear small.
    pub fn for_geometry(geom: crate::ShadowGeometry, granules: usize) -> Self {
        let regions =
            (DEFAULT_REGIONS * geom.words_per_granule()).min(granules.max(1).next_power_of_two());
        EpochTable::new(regions, granules.max(1).div_ceil(regions))
    }

    /// Number of regions (power of two).
    #[inline]
    pub fn regions(&self) -> usize {
        self.epochs.len()
    }

    /// The region guarding `granule`.
    #[inline]
    pub fn region_of(&self, granule: usize) -> usize {
        (granule >> self.region_shift) & (self.epochs.len() - 1)
    }

    /// Current epoch of `granule`'s region (`Relaxed`; see the module
    /// docs for why the guard load needs no ordering of its own). The
    /// caller must read this *before* the slow-path check whose
    /// result it will tag a cache entry with.
    #[inline]
    pub fn epoch_of(&self, granule: usize) -> u64 {
        self.epochs[self.region_of(granule)].load(Ordering::Relaxed)
    }

    /// Current epoch of region `r` (for diagnostics and tests).
    #[inline]
    pub fn epoch_of_region(&self, r: usize) -> u64 {
        self.epochs[r & (self.epochs.len() - 1)].load(Ordering::Relaxed)
    }

    /// Bumps the epoch of `granule`'s region (`Release`): every cache
    /// entry tagged with an older epoch of this region is dead.
    #[inline]
    pub fn bump(&self, granule: usize) {
        self.epochs[self.region_of(granule)].fetch_add(1, Ordering::Release);
    }

    /// Bumps every region overlapping granules `start..end` (at most
    /// one bump per region even if the range revisits it after
    /// wrapping). An empty range bumps nothing.
    pub fn bump_granule_range(&self, start: usize, end: usize) {
        if start >= end {
            return;
        }
        let mask = self.epochs.len() - 1;
        let first = start >> self.region_shift;
        let last = (end - 1) >> self.region_shift;
        // `first..=last` in block space; if the span covers >= R
        // blocks every region is hit at least once.
        if last - first >= mask {
            self.bump_all();
            return;
        }
        for block in first..=last {
            self.epochs[block & mask].fetch_add(1, Ordering::Release);
        }
    }

    /// Bumps every region (thread exit, whole-shadow clear).
    pub fn bump_all(&self) {
        for e in self.epochs.iter() {
            e.fetch_add(1, Ordering::Release);
        }
    }

    /// Sum of the epochs of every region overlapping granules
    /// `start..end`, each region counted exactly once (wrap-aware: a
    /// span covering ≥ `R` blocks sums the whole table). An empty
    /// range sums nothing and returns 0.
    ///
    /// This is the **covering constraint** for owned-*run* cache
    /// entries (see `OwnedCache`'s run slots): a run spanning several
    /// regions is stamped with the sum of their epochs at fill time.
    /// Epoch counters are monotone non-decreasing, so the sums are
    /// equal **iff** every covered region's epoch is unchanged — any
    /// bump of any overlapped region strictly increases the sum and
    /// kills the run, while bumps of non-overlapping regions leave it
    /// live. (Strictly: a counter would have to wrap `u64` for a
    /// coincidental sum collision, i.e. 2⁶⁴ clears — out of scope by
    /// the same argument that lets the per-granule tag be a `u64`.)
    ///
    /// Loads are `Relaxed` like [`EpochTable::epoch_of`]: the sum is a
    /// guard read *before* the slow-path sweep that fills the run, and
    /// a stale read can only miss, never false-hit.
    #[inline]
    pub fn epoch_sum_of_range(&self, start: usize, end: usize) -> u64 {
        if start >= end {
            return 0;
        }
        let mask = self.epochs.len() - 1;
        let first = start >> self.region_shift;
        let last = (end - 1) >> self.region_shift;
        if last - first >= mask {
            // The run covers every region at least once; count each
            // exactly once.
            return self
                .epochs
                .iter()
                .fold(0u64, |s, e| s.wrapping_add(e.load(Ordering::Relaxed)));
        }
        let mut sum = 0u64;
        for block in first..=last {
            sum = sum.wrapping_add(self.epochs[block & mask].load(Ordering::Relaxed));
        }
        sum
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ShadowGeometry;

    #[test]
    fn global_is_the_r1_degeneracy() {
        let t = EpochTable::global();
        assert_eq!(t.regions(), 1);
        assert_eq!(t.region_of(0), 0);
        assert_eq!(t.region_of(usize::MAX >> 1), 0);
        t.bump(12345);
        assert_eq!(t.epoch_of(0), 1, "one bump invalidates everything");
        assert_eq!(t.epoch_of(999), 1);
    }

    #[test]
    fn regions_partition_contiguous_blocks() {
        // 4 regions x 8 granules each.
        let t = EpochTable::new(4, 8);
        assert_eq!(t.regions(), 4);
        assert_eq!(t.region_of(0), 0);
        assert_eq!(t.region_of(7), 0);
        assert_eq!(t.region_of(8), 1);
        assert_eq!(t.region_of(31), 3);
        // Past the sized range the mapping wraps, conservatively.
        assert_eq!(t.region_of(32), 0);
    }

    #[test]
    fn bump_is_local_to_one_region() {
        let t = EpochTable::new(4, 8);
        t.bump(9); // region 1
        assert_eq!(t.epoch_of(0), 0, "region 0 untouched");
        assert_eq!(t.epoch_of(8), 1);
        assert_eq!(t.epoch_of(15), 1, "whole block shares the bump");
        assert_eq!(t.epoch_of(16), 0);
    }

    #[test]
    fn range_bump_hits_each_overlapped_region_once() {
        let t = EpochTable::new(4, 8);
        t.bump_granule_range(6, 18); // blocks 0, 1, 2
        assert_eq!(t.epoch_of_region(0), 1);
        assert_eq!(t.epoch_of_region(1), 1);
        assert_eq!(t.epoch_of_region(2), 1);
        assert_eq!(t.epoch_of_region(3), 0);
        t.bump_granule_range(5, 5); // empty
        t.bump_granule_range(7, 5); // empty
        assert_eq!(t.epoch_of_region(0), 1);
        // A span covering >= R blocks bumps every region exactly once.
        t.bump_granule_range(0, 4 * 8 + 1);
        assert_eq!(t.epoch_of_region(0), 2);
        assert_eq!(t.epoch_of_region(3), 1);
    }

    #[test]
    fn for_granules_never_exceeds_granule_count() {
        let t = EpochTable::for_granules(8);
        assert_eq!(t.regions(), 8, "tiny space: one granule per region");
        assert_eq!(t.region_of(3), 3);
        let t = EpochTable::for_granules(4096);
        assert_eq!(t.regions(), DEFAULT_REGIONS);
        assert_eq!(t.region_of(0), 0);
        assert_eq!(t.region_of(4095), 63);
        let t = EpochTable::for_granules(0);
        assert_eq!(t.regions(), 1);
    }

    #[test]
    fn geometry_scales_region_count() {
        let narrow = EpochTable::for_geometry(ShadowGeometry::adaptive_only(), 1 << 20);
        let wide = EpochTable::for_geometry(ShadowGeometry::for_threads(256), 1 << 20);
        assert_eq!(narrow.regions(), DEFAULT_REGIONS);
        assert!(
            wide.regions() > narrow.regions(),
            "wider geometry, finer regions"
        );
        // Still capped by the granule count.
        let tiny = EpochTable::for_geometry(ShadowGeometry::for_threads(256), 8);
        assert_eq!(tiny.regions(), 8);
    }

    #[test]
    fn epoch_sum_tracks_exactly_the_covered_regions() {
        // 4 regions x 8 granules.
        let t = EpochTable::new(4, 8);
        let s0 = t.epoch_sum_of_range(4, 20); // blocks 0, 1, 2
        assert_eq!(s0, 0);
        t.bump(30); // region 3 — not covered
        assert_eq!(t.epoch_sum_of_range(4, 20), s0, "uncovered bump is free");
        t.bump(12); // region 1 — covered
        assert_eq!(t.epoch_sum_of_range(4, 20), s0 + 1, "covered bump kills");
        // A run covering >= R blocks sums every region exactly once,
        // even though block space revisits regions after wrapping.
        let full = t.epoch_sum_of_range(0, 4 * 8 * 3);
        assert_eq!(full, 2, "one bump in region 3 + one in region 1");
        // Empty ranges sum nothing.
        assert_eq!(t.epoch_sum_of_range(9, 9), 0);
        assert_eq!(t.epoch_sum_of_range(9, 5), 0);
    }

    #[test]
    fn bump_all_moves_every_region() {
        let t = EpochTable::new(8, 4);
        t.bump_all();
        for r in 0..8 {
            assert_eq!(t.epoch_of_region(r), 1);
        }
    }
}
