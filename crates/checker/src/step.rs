//! The pure granule state machine — the paper's §4.2.1 runtime
//! encoded **once**, as width-generic, atomics-free transition
//! functions.
//!
//! Every runtime-check engine in the workspace is a thin wrapper
//! over these functions:
//!
//! * `sharc-runtime`'s `Shadow` runs [`bitmap::step`] inside a
//!   compare-exchange retry loop (the portable `cmpxchg` of §4.2.1);
//! * `sharc-runtime`'s `ScalableShadow` does the same with
//!   [`adaptive::step`];
//! * `sharc-interp`'s VM applies [`bitmap::step`] directly — its
//!   scheduler serializes instructions, so no CAS is needed, and the
//!   verdicts are *identical by construction* to the real-thread
//!   runtime's (the differential property test in
//!   `tests/checker_differential.rs` pins this).
//!
//! The contract shared by both encodings: **a conflicting access
//! does not modify the shadow word.** This is what the paper's
//! runtime does (the check aborts/logs before the update), and it is
//! also the invariant the owned-granule epoch cache relies on (see
//! [`crate::cache`]).

/// Whether an access is a read or a write.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Access {
    Read,
    Write,
}

impl Access {
    /// True for [`Access::Write`].
    #[inline]
    pub fn is_write(self) -> bool {
        matches!(self, Access::Write)
    }
}

/// The outcome of applying one access to a shadow word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transition {
    /// The access is legal and the word already records it.
    Unchanged,
    /// The access is legal once the word is updated to this value.
    /// (Real-thread wrappers install it with a compare-exchange and
    /// retry the whole step on contention.)
    Install(u64),
    /// The access violates the n-readers-xor-1-writer rule.
    Conflict,
}

impl Transition {
    /// True if the access is a conflict.
    #[inline]
    pub fn is_conflict(self) -> bool {
        matches!(self, Transition::Conflict)
    }
}

/// The paper's exact reader/writer bitmap encoding (§4.2.1).
///
/// * bit 0 set — a *single* thread is reading **and writing** the
///   granule (the thread whose bit is also set);
/// * bit `k` (k ≥ 1) set — thread `k` is reading the granule, and
///   also writing it if bit 0 is set.
///
/// With `n` shadow bytes this supports `8n − 1` threads; the
/// functions are width-generic because they only ever set bits the
/// caller's thread id reaches (callers validate
/// `1 <= tid <= 8n − 1`).
pub mod bitmap {
    use super::{Access, Transition};

    /// The single-writer flag (bit 0 of every shadow word).
    pub const WRITER_FLAG: u64 = 1;

    /// Applies one access by thread `tid` to `word`.
    ///
    /// `tid` must be in `1 ..= 8n − 1` for the word's width `n`; the
    /// function itself only debug-asserts the lower bound, leaving
    /// width policing to the storage layer that knows `n`.
    #[inline]
    pub fn step(word: u64, tid: u32, access: Access) -> Transition {
        debug_assert!((1..=63).contains(&tid), "thread id out of range");
        let bit = 1u64 << tid;
        match access {
            Access::Write => {
                // Writing requires no *other* readers or writers.
                if word & !WRITER_FLAG & !bit != 0 {
                    return Transition::Conflict;
                }
                let new = WRITER_FLAG | bit;
                if word == new {
                    Transition::Unchanged
                } else {
                    Transition::Install(new)
                }
            }
            Access::Read => {
                // A writer exists iff bit 0 is set; the writer is the
                // thread whose bit accompanies it. Reading conflicts
                // unless that thread is us.
                if word & WRITER_FLAG != 0 && word & !WRITER_FLAG & !bit != 0 {
                    return Transition::Conflict;
                }
                if word & bit != 0 {
                    Transition::Unchanged
                } else {
                    Transition::Install(word | bit)
                }
            }
        }
    }

    /// Removes thread `tid`'s contribution on thread exit ("SharC
    /// does not consider it a race for two threads to access the
    /// same location if their execution does not overlap"). Clears
    /// the writer flag when no thread bits remain.
    #[inline]
    pub fn clear_thread(word: u64, tid: u32) -> u64 {
        debug_assert!((1..=63).contains(&tid), "thread id out of range");
        let w = word & !(1u64 << tid);
        if w & !WRITER_FLAG == 0 {
            0
        } else {
            w
        }
    }
}

/// The scalable adaptive encoding (§4.2.1 / §7 future work): one
/// 8-byte word per granule encodes an adaptive state instead of a
/// bitmap, supporting 2³⁰ thread ids at constant shadow cost.
///
/// ```text
/// EMPTY          nobody has touched the granule
/// EXCL(tid)      one thread reads and writes
/// READ1(tid)     one thread reads
/// SHARED_READ    many readers (identities not tracked)
/// ```
///
/// Sound for any number of threads; exact whenever a granule has at
/// most one concurrent reader (see `ScalableShadow`'s docs for the
/// documented imprecision at thread exit).
pub mod adaptive {
    use super::{Access, Transition};

    pub const TAG_EMPTY: u64 = 0;
    pub const TAG_EXCL: u64 = 1;
    pub const TAG_READ1: u64 = 2;
    pub const TAG_SHARED: u64 = 3;
    const TAG_SHIFT: u32 = 62;
    /// Thread ids fit in the low 30 bits.
    pub const TID_MASK: u64 = (1 << 30) - 1;

    /// Packs a tag and thread id into a shadow word.
    #[inline]
    pub fn pack(tag: u64, tid: u32) -> u64 {
        (tag << TAG_SHIFT) | tid as u64
    }

    /// The tag bits of a shadow word.
    #[inline]
    pub fn tag(word: u64) -> u64 {
        word >> TAG_SHIFT
    }

    /// The thread id bits of a shadow word.
    #[inline]
    pub fn tid_of(word: u64) -> u32 {
        (word & TID_MASK) as u32
    }

    /// Applies one access by thread `tid` (`1 ..= 2³⁰ − 1`).
    #[inline]
    pub fn step(word: u64, tid: u32, access: Access) -> Transition {
        debug_assert!(
            tid >= 1 && (tid as u64) <= TID_MASK,
            "thread id out of range"
        );
        match access {
            Access::Read => match tag(word) {
                TAG_EMPTY => Transition::Install(pack(TAG_READ1, tid)),
                TAG_READ1 | TAG_EXCL if tid_of(word) == tid => Transition::Unchanged,
                TAG_READ1 => Transition::Install(pack(TAG_SHARED, 0)),
                TAG_SHARED => Transition::Unchanged,
                TAG_EXCL => Transition::Conflict,
                _ => unreachable!("two-bit tag"),
            },
            Access::Write => match tag(word) {
                TAG_EMPTY => Transition::Install(pack(TAG_EXCL, tid)),
                TAG_EXCL if tid_of(word) == tid => Transition::Unchanged,
                TAG_READ1 if tid_of(word) == tid => Transition::Install(pack(TAG_EXCL, tid)),
                _ => Transition::Conflict,
            },
        }
    }

    /// Thread-exit clearing: exact for granules this thread holds in
    /// `EXCL`/`READ1`; `SHARED_READ` identities are not tracked, so
    /// the word is left intact (sound but imprecise).
    #[inline]
    pub fn clear_thread(word: u64, tid: u32) -> u64 {
        match tag(word) {
            TAG_EXCL | TAG_READ1 if tid_of(word) == tid => TAG_EMPTY,
            _ => word,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitmap_single_thread_lifecycle() {
        let mut w = 0u64;
        for &acc in &[Access::Read, Access::Read, Access::Write, Access::Read] {
            match bitmap::step(w, 1, acc) {
                Transition::Install(n) => w = n,
                Transition::Unchanged => {}
                Transition::Conflict => panic!("single thread never conflicts"),
            }
        }
        assert_eq!(w, bitmap::WRITER_FLAG | (1 << 1));
    }

    #[test]
    fn bitmap_readers_then_writer_conflicts() {
        let mut w = 0u64;
        for t in 1..=7 {
            if let Transition::Install(n) = bitmap::step(w, t, Access::Read) {
                w = n;
            }
        }
        assert!(bitmap::step(w, 1, Access::Write).is_conflict());
        assert!(!bitmap::step(w, 1, Access::Read).is_conflict());
    }

    #[test]
    fn bitmap_conflict_does_not_modify() {
        // The invariant the epoch cache depends on: a conflicting
        // access yields no Install, so an exclusive owner's word is
        // stable until an explicit clear.
        let Transition::Install(w) = bitmap::step(0, 1, Access::Write) else {
            panic!("first write installs");
        };
        assert_eq!(bitmap::step(w, 2, Access::Write), Transition::Conflict);
        assert_eq!(bitmap::step(w, 2, Access::Read), Transition::Conflict);
        assert_eq!(bitmap::step(w, 1, Access::Write), Transition::Unchanged);
    }

    #[test]
    fn bitmap_clear_thread_drops_writer_flag() {
        let Transition::Install(w) = bitmap::step(0, 3, Access::Write) else {
            panic!()
        };
        assert_eq!(bitmap::clear_thread(w, 3), 0);
        // A reader among readers only drops its own bit.
        let mut w = 0;
        for t in [1u32, 2] {
            if let Transition::Install(n) = bitmap::step(w, t, Access::Read) {
                w = n;
            }
        }
        assert_eq!(bitmap::clear_thread(w, 1), 1 << 2);
    }

    #[test]
    fn adaptive_mirrors_bitmap_on_exclusive_owner() {
        let Transition::Install(b) = bitmap::step(0, 5, Access::Write) else {
            panic!()
        };
        let Transition::Install(a) = adaptive::step(0, 5, Access::Write) else {
            panic!()
        };
        for t in [1u32, 6, 63] {
            for acc in [Access::Read, Access::Write] {
                assert_eq!(
                    bitmap::step(b, t, acc).is_conflict(),
                    adaptive::step(a, t, acc).is_conflict(),
                    "tid {t} {acc:?}"
                );
            }
        }
    }

    #[test]
    fn adaptive_shared_forgets_identities() {
        let Transition::Install(w) = adaptive::step(0, 1, Access::Read) else {
            panic!()
        };
        let Transition::Install(w) = adaptive::step(w, 2, Access::Read) else {
            panic!()
        };
        assert_eq!(adaptive::tag(w), adaptive::TAG_SHARED);
        // Exits cannot subtract from SHARED: sound but imprecise.
        assert_eq!(adaptive::clear_thread(w, 1), w);
        assert!(adaptive::step(w, 3, Access::Write).is_conflict());
    }

    #[test]
    fn adaptive_read_upgrade() {
        let Transition::Install(w) = adaptive::step(0, 9, Access::Read) else {
            panic!()
        };
        assert!(matches!(
            adaptive::step(w, 9, Access::Write),
            Transition::Install(_)
        ));
        assert_eq!(adaptive::clear_thread(w, 9), 0);
    }
}
