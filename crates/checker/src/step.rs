//! The pure granule state machine — the paper's §4.2.1 runtime
//! encoded **once**, as width-generic, atomics-free transition
//! functions.
//!
//! Every runtime-check engine in the workspace is a thin wrapper
//! over these functions:
//!
//! * `sharc-runtime`'s `Shadow` runs [`bitmap::step`] inside a
//!   compare-exchange retry loop (the portable `cmpxchg` of §4.2.1);
//! * `sharc-runtime`'s `ScalableShadow` does the same with
//!   [`adaptive::step`];
//! * `sharc-interp`'s VM applies [`bitmap::step`] directly — its
//!   scheduler serializes instructions, so no CAS is needed, and the
//!   verdicts are *identical by construction* to the real-thread
//!   runtime's (the differential property test in
//!   `tests/checker_differential.rs` pins this).
//!
//! The contract shared by both encodings: **a conflicting access
//! does not modify the shadow word.** This is what the paper's
//! runtime does (the check aborts/logs before the update), and it is
//! also the invariant the owned-granule epoch cache relies on (see
//! [`crate::cache`]).

/// Whether an access is a read or a write.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Access {
    Read,
    Write,
}

impl Access {
    /// True for [`Access::Write`].
    #[inline]
    pub fn is_write(self) -> bool {
        matches!(self, Access::Write)
    }
}

/// The outcome of applying one access to a shadow word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transition {
    /// The access is legal and the word already records it.
    Unchanged,
    /// The access is legal once the word is updated to this value.
    /// (Real-thread wrappers install it with a compare-exchange and
    /// retry the whole step on contention.)
    Install(u64),
    /// The access violates the n-readers-xor-1-writer rule.
    Conflict,
}

impl Transition {
    /// True if the access is a conflict.
    #[inline]
    pub fn is_conflict(self) -> bool {
        matches!(self, Transition::Conflict)
    }
}

/// The paper's exact reader/writer bitmap encoding (§4.2.1).
///
/// * bit 0 set — a *single* thread is reading **and writing** the
///   granule (the thread whose bit is also set);
/// * bit `k` (k ≥ 1) set — thread `k` is reading the granule, and
///   also writing it if bit 0 is set.
///
/// With `n` shadow bytes this supports `8n − 1` threads; the
/// functions are width-generic because they only ever set bits the
/// caller's thread id reaches (callers validate
/// `1 <= tid <= 8n − 1`).
pub mod bitmap {
    use super::{Access, Transition};

    /// The single-writer flag (bit 0 of every shadow word).
    pub const WRITER_FLAG: u64 = 1;

    /// Applies one access by thread `tid` to `word`.
    ///
    /// `tid` must be in `1 ..= 8n − 1` for the word's width `n`; the
    /// function itself only debug-asserts the lower bound, leaving
    /// width policing to the storage layer that knows `n`.
    #[inline]
    pub fn step(word: u64, tid: u32, access: Access) -> Transition {
        debug_assert!((1..=63).contains(&tid), "thread id out of range");
        let bit = 1u64 << tid;
        match access {
            Access::Write => {
                // Writing requires no *other* readers or writers.
                if word & !WRITER_FLAG & !bit != 0 {
                    return Transition::Conflict;
                }
                let new = WRITER_FLAG | bit;
                if word == new {
                    Transition::Unchanged
                } else {
                    Transition::Install(new)
                }
            }
            Access::Read => {
                // A writer exists iff bit 0 is set; the writer is the
                // thread whose bit accompanies it. Reading conflicts
                // unless that thread is us.
                if word & WRITER_FLAG != 0 && word & !WRITER_FLAG & !bit != 0 {
                    return Transition::Conflict;
                }
                if word & bit != 0 {
                    Transition::Unchanged
                } else {
                    Transition::Install(word | bit)
                }
            }
        }
    }

    /// Removes thread `tid`'s contribution on thread exit ("SharC
    /// does not consider it a race for two threads to access the
    /// same location if their execution does not overlap"). Clears
    /// the writer flag when no thread bits remain.
    #[inline]
    pub fn clear_thread(word: u64, tid: u32) -> u64 {
        debug_assert!((1..=63).contains(&tid), "thread id out of range");
        let w = word & !(1u64 << tid);
        if w & !WRITER_FLAG == 0 {
            0
        } else {
            w
        }
    }
}

/// The scalable adaptive encoding (§4.2.1 / §7 future work): one
/// 8-byte word per granule encodes an adaptive state instead of a
/// bitmap, supporting 2³⁰ thread ids at constant shadow cost.
///
/// ```text
/// EMPTY          nobody has touched the granule
/// EXCL(tid)      one thread reads and writes
/// READ1(tid)     one thread reads
/// SHARED_READ    many readers (identities not tracked)
/// ```
///
/// Sound for any number of threads; exact whenever a granule has at
/// most one concurrent reader (see `ScalableShadow`'s docs for the
/// documented imprecision at thread exit).
pub mod adaptive {
    use super::{Access, Transition};

    pub const TAG_EMPTY: u64 = 0;
    pub const TAG_EXCL: u64 = 1;
    pub const TAG_READ1: u64 = 2;
    pub const TAG_SHARED: u64 = 3;
    const TAG_SHIFT: u32 = 62;
    /// Thread ids fit in the low 30 bits.
    pub const TID_MASK: u64 = (1 << 30) - 1;

    /// Packs a tag and thread id into a shadow word.
    #[inline]
    pub fn pack(tag: u64, tid: u32) -> u64 {
        (tag << TAG_SHIFT) | tid as u64
    }

    /// The tag bits of a shadow word.
    #[inline]
    pub fn tag(word: u64) -> u64 {
        word >> TAG_SHIFT
    }

    /// The thread id bits of a shadow word.
    #[inline]
    pub fn tid_of(word: u64) -> u32 {
        (word & TID_MASK) as u32
    }

    /// Applies one access by thread `tid` (`1 ..= 2³⁰ − 1`).
    #[inline]
    pub fn step(word: u64, tid: u32, access: Access) -> Transition {
        debug_assert!(
            tid >= 1 && (tid as u64) <= TID_MASK,
            "thread id out of range"
        );
        match access {
            Access::Read => match tag(word) {
                TAG_EMPTY => Transition::Install(pack(TAG_READ1, tid)),
                TAG_READ1 | TAG_EXCL if tid_of(word) == tid => Transition::Unchanged,
                TAG_READ1 => Transition::Install(pack(TAG_SHARED, 0)),
                TAG_SHARED => Transition::Unchanged,
                TAG_EXCL => Transition::Conflict,
                _ => unreachable!("two-bit tag"),
            },
            Access::Write => match tag(word) {
                TAG_EMPTY => Transition::Install(pack(TAG_EXCL, tid)),
                TAG_EXCL if tid_of(word) == tid => Transition::Unchanged,
                TAG_READ1 if tid_of(word) == tid => Transition::Install(pack(TAG_EXCL, tid)),
                _ => Transition::Conflict,
            },
        }
    }

    /// Thread-exit clearing: exact for granules this thread holds in
    /// `EXCL`/`READ1`; `SHARED_READ` identities are not tracked, so
    /// the word is left intact (sound but imprecise).
    #[inline]
    pub fn clear_thread(word: u64, tid: u32) -> u64 {
        match tag(word) {
            TAG_EXCL | TAG_READ1 if tid_of(word) == tid => TAG_EMPTY,
            _ => word,
        }
    }
}

/// The sharded hybrid encoding: exact reader/writer bitmaps *beyond*
/// 63 threads.
///
/// A granule's shadow is a slice of `shards + 1` words laid out by a
/// [`ShadowGeometry`](crate::ShadowGeometry): one full
/// [`bitmap`]-encoded word per 63-thread block, plus one [`adaptive`]
/// *overflow* word for thread ids past the exact range. Thread `t`
/// maps to shard `(t − 1) / 63`, local bit `((t − 1) % 63) + 1`, so a
/// one-shard geometry is bit-for-bit the paper's original encoding.
///
/// The transition function stays pure and atomics-free: it reads a
/// *snapshot* of the granule's words and returns at most **one**
/// word to install ([`ShardStep::Install`]). That single-word
/// property is what lets the concurrent wrapper
/// (`sharc-runtime`'s `ShardedShadow`) stay a plain CAS loop: the
/// cross-word precondition ("no foreign state elsewhere") is checked
/// on the snapshot before the CAS and revalidated after it.
///
/// Why a single install always suffices:
///
/// * a passing **read** only sets the reader's own bit (or moves the
///   overflow word) — other words are untouched by definition;
/// * a passing **write** requires every *other* word to be empty, so
///   the only word that changes is the writer's own shard.
///
/// The shared contract holds: **a conflicting access installs
/// nothing.**
pub mod sharded {
    use super::{adaptive, bitmap, Access, Transition};
    use crate::geometry::ShadowGeometry;

    /// The outcome of applying one access to a granule's sharded
    /// shadow words.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum ShardStep {
        /// Legal, already recorded — nothing to write back.
        Unchanged,
        /// Legal once `words[index]` is updated to `word`. At most
        /// one word ever changes per access (see module docs).
        Install { index: usize, word: u64 },
        /// The access violates n-readers-xor-1-writer across shards.
        Conflict,
    }

    impl ShardStep {
        /// True if the access is a conflict.
        #[inline]
        pub fn is_conflict(self) -> bool {
            matches!(self, ShardStep::Conflict)
        }
    }

    /// Lifts a single-word [`Transition`] into a [`ShardStep`] at
    /// word `index`.
    #[inline]
    fn lift(t: Transition, index: usize) -> ShardStep {
        match t {
            Transition::Unchanged => ShardStep::Unchanged,
            Transition::Install(word) => ShardStep::Install { index, word },
            Transition::Conflict => ShardStep::Conflict,
        }
    }

    /// True if any word other than `index` holds state that excludes
    /// a *write* by a thread whose own word is `index`: any foreign
    /// shard bit, or any non-empty overflow state.
    #[inline]
    fn foreign_state(words: &[u64], geom: ShadowGeometry, index: usize) -> bool {
        let ov = geom.overflow_index();
        words.iter().enumerate().any(|(i, &w)| {
            i != index
                && if i == ov {
                    adaptive::tag(w) != adaptive::TAG_EMPTY
                } else {
                    w != 0
                }
        })
    }

    /// True if any word other than `index` holds a *writer*: a shard
    /// word with the writer flag, or an `EXCL` overflow word.
    #[inline]
    fn foreign_writer(words: &[u64], geom: ShadowGeometry, index: usize) -> bool {
        let ov = geom.overflow_index();
        words.iter().enumerate().any(|(i, &w)| {
            i != index
                && if i == ov {
                    adaptive::tag(w) == adaptive::TAG_EXCL
                } else {
                    w & bitmap::WRITER_FLAG != 0
                }
        })
    }

    /// Applies one access by thread `tid` to a granule's snapshot
    /// `words` (length [`ShadowGeometry::words_per_granule`]).
    ///
    /// `tid` must be `1 ..= 2³⁰ − 1`; ids within the geometry's exact
    /// range update their shard bitmap, ids beyond it go through the
    /// adaptive overflow word (sound, coarser at `SHARED_READ`).
    #[inline]
    pub fn step(words: &[u64], geom: ShadowGeometry, tid: u32, access: Access) -> ShardStep {
        debug_assert_eq!(words.len(), geom.words_per_granule(), "snapshot width");
        debug_assert!(
            tid >= 1 && (tid as u64) <= adaptive::TID_MASK,
            "thread id out of range"
        );
        match geom.shard_of(tid) {
            Some(s) => {
                let local = geom.local_bit(tid);
                let mine = bitmap::step(words[s], local, access);
                if mine.is_conflict() {
                    return ShardStep::Conflict;
                }
                let blocked = match access {
                    // Writing requires exclusivity across *all* words.
                    Access::Write => foreign_state(words, geom, s),
                    // Reading tolerates foreign readers, not writers.
                    Access::Read => foreign_writer(words, geom, s),
                };
                if blocked {
                    ShardStep::Conflict
                } else {
                    lift(mine, s)
                }
            }
            None => {
                let ov = geom.overflow_index();
                let mine = adaptive::step(words[ov], tid, access);
                if mine.is_conflict() {
                    return ShardStep::Conflict;
                }
                let blocked = match access {
                    Access::Write => foreign_state(words, geom, ov),
                    Access::Read => foreign_writer(words, geom, ov),
                };
                if blocked {
                    ShardStep::Conflict
                } else {
                    lift(mine, ov)
                }
            }
        }
    }

    /// Removes thread `tid`'s contribution on thread exit. Returns
    /// the (index, new word) to write back, or `None` if the words
    /// already record nothing for `tid` (including the documented
    /// `SHARED_READ` imprecision in the overflow word).
    #[inline]
    pub fn clear_thread(words: &[u64], geom: ShadowGeometry, tid: u32) -> Option<(usize, u64)> {
        debug_assert_eq!(words.len(), geom.words_per_granule(), "snapshot width");
        match geom.shard_of(tid) {
            Some(s) => {
                let new = bitmap::clear_thread(words[s], geom.local_bit(tid));
                (new != words[s]).then_some((s, new))
            }
            None => {
                let ov = geom.overflow_index();
                let new = adaptive::clear_thread(words[ov], tid);
                (new != words[ov]).then_some((ov, new))
            }
        }
    }
}

/// Ranged classification: one sweep over a contiguous granule run.
///
/// SharC's §4.2 checks are defined per 16-byte granule, and until PR 5
/// every bulk copy or scan paid the full snapshot→step→CAS pipeline
/// `len` times even when every granule was already recorded for the
/// accessing thread. This module is the pure half of the ranged fast
/// path: a per-word *recorded* predicate (true exactly when
/// [`bitmap::step`] / [`sharded::step`] would return `Unchanged`, i.e.
/// the access is legal **and** the shadow word needs no update) and a
/// run classifier that sweeps a snapshot slice word-at-a-time.
///
/// ## The fold contract
///
/// **A range verdict equals the fold of per-granule verdicts.** The
/// classifier never invents a verdict of its own: it either proves
/// every granule is `Unchanged` (so the per-granule loop would have
/// passed without installing anything) or it stops at the *first*
/// granule needing a state transition and reports its index, leaving
/// that granule — and everything after it — to the per-granule `step`
/// the runtime wrappers already run. Boundary granules, granules
/// still needing their first-contact install, and conflicts all take
/// the fallback; only the provably-silent prefix is skipped. The
/// tests in this module (and the engine differential in
/// `tests/checker_differential.rs`) pin the equivalence.
pub mod range {
    use super::{adaptive, bitmap, sharded, Access, Transition};
    use crate::geometry::ShadowGeometry;

    /// Classification of a contiguous granule run against a snapshot
    /// of its shadow words.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RangeStep {
        /// Every granule in the run already records the access for the
        /// thread: the whole-range verdict is pass, nothing to install.
        AllRecorded,
        /// Granules `0 .. first` (relative to the run) are recorded;
        /// granule `first` needs a per-granule transition (an install
        /// or a conflict — the classifier does not distinguish, the
        /// fallback `step` will).
        Partial { first: usize },
    }

    /// True iff `bitmap::step(word, tid, access)` would return
    /// [`Transition::Unchanged`]: the access is legal and already
    /// recorded, so a ranged sweep may skip the granule entirely.
    ///
    /// Specialized to branch-light forms — a write hit is a single
    /// compare against the exclusive-owner word, a read hit is the
    /// own-bit test plus the no-foreign-writer test — with the
    /// equivalence to `step` debug-asserted on every call.
    #[inline]
    pub fn recorded(word: u64, tid: u32, access: Access) -> bool {
        debug_assert!((1..=63).contains(&tid), "thread id out of range");
        let bit = 1u64 << tid;
        let hit = match access {
            // Exclusively owned by `tid`: the only word a write leaves
            // unchanged.
            Access::Write => word == bitmap::WRITER_FLAG | bit,
            // `tid`'s read bit is set and no *foreign* writer exists
            // (a writer is foreign when the writer flag is set along
            // with some other thread's bit).
            Access::Read => {
                word & bit != 0
                    && (word & bitmap::WRITER_FLAG == 0 || word & !bitmap::WRITER_FLAG & !bit == 0)
            }
        };
        debug_assert_eq!(
            hit,
            bitmap::step(word, tid, access) == Transition::Unchanged,
            "recorded() must equal step() == Unchanged (word {word:#x}, tid {tid}, {access:?})"
        );
        hit
    }

    /// The [`adaptive`] analogue of [`recorded`]: true iff
    /// `adaptive::step(word, tid, access)` is `Unchanged` (the granule
    /// is `EXCL(tid)` for writes; `EXCL(tid)`/`READ1(tid)`/
    /// `SHARED_READ` for reads).
    #[inline]
    pub fn recorded_adaptive(word: u64, tid: u32, access: Access) -> bool {
        adaptive::step(word, tid, access) == Transition::Unchanged
    }

    /// The [`sharded`] analogue of [`recorded`] over one granule's
    /// snapshot (`words.len() == geom.words_per_granule()`): true iff
    /// `sharded::step` is `Unchanged` — the thread's own word records
    /// the access and no foreign word blocks it.
    #[inline]
    pub fn recorded_sharded(words: &[u64], geom: ShadowGeometry, tid: u32, access: Access) -> bool {
        sharded::step(words, geom, tid, access) == sharded::ShardStep::Unchanged
    }

    /// Classifies a run of single-word granules in one sweep.
    /// `words[i]` is the snapshot of granule `start + i`'s shadow
    /// word; the result speaks in the same relative indices.
    #[inline]
    pub fn classify(words: &[u64], tid: u32, access: Access) -> RangeStep {
        match words.iter().position(|&w| !recorded(w, tid, access)) {
            None => RangeStep::AllRecorded,
            Some(first) => RangeStep::Partial { first },
        }
    }

    /// Classifies a run of sharded granules: `words` is the
    /// concatenation of per-granule snapshots, each
    /// `geom.words_per_granule()` wide.
    #[inline]
    pub fn classify_sharded(
        words: &[u64],
        geom: ShadowGeometry,
        tid: u32,
        access: Access,
    ) -> RangeStep {
        let stride = geom.words_per_granule();
        debug_assert_eq!(words.len() % stride, 0, "whole granule snapshots");
        match words
            .chunks_exact(stride)
            .position(|snap| !recorded_sharded(snap, geom, tid, access))
        {
            None => RangeStep::AllRecorded,
            Some(first) => RangeStep::Partial { first },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitmap_single_thread_lifecycle() {
        let mut w = 0u64;
        for &acc in &[Access::Read, Access::Read, Access::Write, Access::Read] {
            match bitmap::step(w, 1, acc) {
                Transition::Install(n) => w = n,
                Transition::Unchanged => {}
                Transition::Conflict => panic!("single thread never conflicts"),
            }
        }
        assert_eq!(w, bitmap::WRITER_FLAG | (1 << 1));
    }

    #[test]
    fn bitmap_readers_then_writer_conflicts() {
        let mut w = 0u64;
        for t in 1..=7 {
            if let Transition::Install(n) = bitmap::step(w, t, Access::Read) {
                w = n;
            }
        }
        assert!(bitmap::step(w, 1, Access::Write).is_conflict());
        assert!(!bitmap::step(w, 1, Access::Read).is_conflict());
    }

    #[test]
    fn bitmap_conflict_does_not_modify() {
        // The invariant the epoch cache depends on: a conflicting
        // access yields no Install, so an exclusive owner's word is
        // stable until an explicit clear.
        let Transition::Install(w) = bitmap::step(0, 1, Access::Write) else {
            panic!("first write installs");
        };
        assert_eq!(bitmap::step(w, 2, Access::Write), Transition::Conflict);
        assert_eq!(bitmap::step(w, 2, Access::Read), Transition::Conflict);
        assert_eq!(bitmap::step(w, 1, Access::Write), Transition::Unchanged);
    }

    #[test]
    fn bitmap_clear_thread_drops_writer_flag() {
        let Transition::Install(w) = bitmap::step(0, 3, Access::Write) else {
            panic!()
        };
        assert_eq!(bitmap::clear_thread(w, 3), 0);
        // A reader among readers only drops its own bit.
        let mut w = 0;
        for t in [1u32, 2] {
            if let Transition::Install(n) = bitmap::step(w, t, Access::Read) {
                w = n;
            }
        }
        assert_eq!(bitmap::clear_thread(w, 1), 1 << 2);
    }

    #[test]
    fn adaptive_mirrors_bitmap_on_exclusive_owner() {
        let Transition::Install(b) = bitmap::step(0, 5, Access::Write) else {
            panic!()
        };
        let Transition::Install(a) = adaptive::step(0, 5, Access::Write) else {
            panic!()
        };
        for t in [1u32, 6, 63] {
            for acc in [Access::Read, Access::Write] {
                assert_eq!(
                    bitmap::step(b, t, acc).is_conflict(),
                    adaptive::step(a, t, acc).is_conflict(),
                    "tid {t} {acc:?}"
                );
            }
        }
    }

    #[test]
    fn adaptive_shared_forgets_identities() {
        let Transition::Install(w) = adaptive::step(0, 1, Access::Read) else {
            panic!()
        };
        let Transition::Install(w) = adaptive::step(w, 2, Access::Read) else {
            panic!()
        };
        assert_eq!(adaptive::tag(w), adaptive::TAG_SHARED);
        // Exits cannot subtract from SHARED: sound but imprecise.
        assert_eq!(adaptive::clear_thread(w, 1), w);
        assert!(adaptive::step(w, 3, Access::Write).is_conflict());
    }

    // ----- sharded hybrid -----

    use crate::geometry::ShadowGeometry;
    use sharded::ShardStep;

    /// Applies a step to an owned snapshot, panicking on conflict.
    fn apply(words: &mut [u64], geom: ShadowGeometry, tid: u32, access: Access) {
        match sharded::step(words, geom, tid, access) {
            ShardStep::Install { index, word } => words[index] = word,
            ShardStep::Unchanged => {}
            ShardStep::Conflict => panic!("unexpected conflict for tid {tid} {access:?}"),
        }
    }

    #[test]
    fn sharded_one_shard_matches_plain_bitmap() {
        // With one shard and an empty overflow word, verdicts and
        // installed words must be bit-for-bit the paper's encoding.
        let geom = ShadowGeometry::for_threads(63);
        let mut words = vec![0u64; geom.words_per_granule()];
        let mut plain = 0u64;
        let script = [
            (1u32, Access::Read),
            (2, Access::Read),
            (1, Access::Read),
            (3, Access::Write), // conflict in both
            (2, Access::Read),
            (63, Access::Read),
        ];
        for &(tid, acc) in &script {
            let a = sharded::step(&words, geom, tid, acc);
            let b = bitmap::step(plain, tid, acc);
            assert_eq!(a.is_conflict(), b.is_conflict(), "tid {tid} {acc:?}");
            if let ShardStep::Install { index, word } = a {
                assert_eq!(index, 0, "one shard: installs stay in shard 0");
                words[index] = word;
            }
            if let Transition::Install(w) = b {
                plain = w;
            }
            assert_eq!(words[0], plain, "words agree after tid {tid}");
        }
    }

    #[test]
    fn sharded_readers_keep_identities_past_63() {
        // The whole point: readers 1, 64, and 127 live in three
        // different shards, each with an exact bit.
        let geom = ShadowGeometry::for_threads(256);
        let mut words = vec![0u64; geom.words_per_granule()];
        for tid in [1u32, 64, 127] {
            apply(&mut words, geom, tid, Access::Read);
        }
        assert_eq!(words[0], 1 << 1);
        assert_eq!(words[1], 1 << 1);
        assert_eq!(words[2], 1 << 1);
        // A writer in any shard conflicts with readers elsewhere...
        assert!(sharded::step(&words, geom, 200, Access::Write).is_conflict());
        // ...and exits subtract exactly, shard by shard.
        let (i, w) = sharded::clear_thread(&words, geom, 64).unwrap();
        words[i] = w;
        assert_eq!(words[1], 0);
        assert!(sharded::step(&words, geom, 1, Access::Read) == ShardStep::Unchanged);
    }

    #[test]
    fn sharded_writer_excludes_other_shards() {
        let geom = ShadowGeometry::for_threads(128);
        let mut words = vec![0u64; geom.words_per_granule()];
        apply(&mut words, geom, 100, Access::Write);
        let s = geom.shard_of(100).unwrap();
        assert_eq!(words[s], bitmap::WRITER_FLAG | (1 << geom.local_bit(100)));
        for intruder in [1u32, 63, 64, 126, 127] {
            assert!(
                sharded::step(&words, geom, intruder, Access::Read).is_conflict(),
                "tid {intruder} read vs cross-shard writer"
            );
            assert!(
                sharded::step(&words, geom, intruder, Access::Write).is_conflict(),
                "tid {intruder} write vs cross-shard writer"
            );
        }
        // The owner itself stays free, and conflicts installed nothing.
        assert_eq!(
            sharded::step(&words, geom, 100, Access::Write),
            ShardStep::Unchanged
        );
    }

    #[test]
    fn sharded_overflow_ids_are_sound() {
        let geom = ShadowGeometry::for_threads(63); // exact range 1..=63
        let mut words = vec![0u64; geom.words_per_granule()];
        // An id past the exact range reads through the overflow word.
        apply(&mut words, geom, 1000, Access::Read);
        assert_eq!(
            adaptive::tag(words[geom.overflow_index()]),
            adaptive::TAG_READ1
        );
        // A shard-resident writer must see it.
        assert!(sharded::step(&words, geom, 5, Access::Write).is_conflict());
        // And a shard-resident reader coexists with it.
        apply(&mut words, geom, 5, Access::Read);
        // Now an overflow writer conflicts with the shard reader.
        assert!(sharded::step(&words, geom, 2000, Access::Write).is_conflict());
    }

    #[test]
    fn sharded_adaptive_only_geometry_is_pure_adaptive() {
        let geom = ShadowGeometry::adaptive_only();
        let mut words = vec![0u64; 1];
        let mut plain = 0u64;
        for &(tid, acc) in &[
            (7u32, Access::Read),
            (9, Access::Read),
            (7, Access::Write), // conflict: SHARED_READ
            (9, Access::Read),
        ] {
            let a = sharded::step(&words, geom, tid, acc);
            let b = adaptive::step(plain, tid, acc);
            assert_eq!(a.is_conflict(), b.is_conflict(), "tid {tid} {acc:?}");
            if let ShardStep::Install { index, word } = a {
                assert_eq!(index, 0);
                words[index] = word;
            }
            if let Transition::Install(w) = b {
                plain = w;
            }
            assert_eq!(words[0], plain);
        }
    }

    #[test]
    fn sharded_conflict_installs_nothing() {
        let geom = ShadowGeometry::for_threads(128);
        let mut words = vec![0u64; geom.words_per_granule()];
        apply(&mut words, geom, 70, Access::Write);
        let snapshot = words.clone();
        assert!(sharded::step(&words, geom, 1, Access::Write).is_conflict());
        assert!(sharded::step(&words, geom, 1, Access::Read).is_conflict());
        assert!(sharded::step(&words, geom, 1000, Access::Write).is_conflict());
        assert_eq!(words, snapshot, "conflicts never install");
    }

    #[test]
    fn adaptive_read_upgrade() {
        let Transition::Install(w) = adaptive::step(0, 9, Access::Read) else {
            panic!()
        };
        assert!(matches!(
            adaptive::step(w, 9, Access::Write),
            Transition::Install(_)
        ));
        assert_eq!(adaptive::clear_thread(w, 9), 0);
    }

    // ----- ranged classification -----

    use range::RangeStep;

    /// Exhaustive-ish word soup: every interesting bitmap shape for
    /// tids 1..=3 (empty, sole reader, reader crowd, exclusive owner,
    /// foreign owner, owner-plus-stale-reader).
    fn word_zoo() -> Vec<u64> {
        let wf = bitmap::WRITER_FLAG;
        vec![
            0,
            1 << 1,
            1 << 2,
            (1 << 1) | (1 << 2),
            (1 << 1) | (1 << 2) | (1 << 3),
            wf | (1 << 1),
            wf | (1 << 2),
            wf | (1 << 1) | (1 << 2),
        ]
    }

    #[test]
    fn recorded_equals_step_unchanged_for_every_zoo_word() {
        for &w in &word_zoo() {
            for tid in 1..=4u32 {
                for acc in [Access::Read, Access::Write] {
                    assert_eq!(
                        range::recorded(w, tid, acc),
                        bitmap::step(w, tid, acc) == Transition::Unchanged,
                        "word {w:#x} tid {tid} {acc:?}"
                    );
                    assert_eq!(
                        range::recorded_adaptive(w & 0x7, tid, acc),
                        adaptive::step(w & 0x7, tid, acc) == Transition::Unchanged,
                    );
                }
            }
        }
    }

    #[test]
    fn classify_is_the_fold_of_per_granule_steps() {
        // Every 4-granule run drawn from the zoo: the classifier must
        // report AllRecorded exactly when every per-granule step is
        // Unchanged, and otherwise name the *first* non-Unchanged
        // granule — the fold contract.
        let zoo = word_zoo();
        for a in 0..zoo.len() {
            for b in 0..zoo.len() {
                for c in 0..zoo.len() {
                    let words = [zoo[a], zoo[b], zoo[c]];
                    for tid in 1..=3u32 {
                        for acc in [Access::Read, Access::Write] {
                            let fold = words
                                .iter()
                                .position(|&w| bitmap::step(w, tid, acc) != Transition::Unchanged);
                            let want = match fold {
                                None => RangeStep::AllRecorded,
                                Some(first) => RangeStep::Partial { first },
                            };
                            assert_eq!(range::classify(&words, tid, acc), want);
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn classify_sharded_walks_granule_snapshots() {
        let geom = ShadowGeometry::for_threads(128);
        let stride = geom.words_per_granule();
        // Three granules: owned by 70, owned by 70, owned by 1.
        let mut words = vec![0u64; 3 * stride];
        for g in 0..3 {
            let tid = if g == 2 { 1 } else { 70 };
            let snap = &mut words[g * stride..(g + 1) * stride];
            if let ShardStep::Install { index, word } =
                sharded::step(snap, geom, tid, Access::Write)
            {
                snap[index] = word;
            }
        }
        assert_eq!(
            range::classify_sharded(&words, geom, 70, Access::Write),
            RangeStep::Partial { first: 2 },
            "granule 2 belongs to tid 1"
        );
        assert_eq!(
            range::classify_sharded(&words[..2 * stride], geom, 70, Access::Write),
            RangeStep::AllRecorded
        );
        assert_eq!(
            range::classify_sharded(&words, geom, 1, Access::Read),
            RangeStep::Partial { first: 0 },
            "cross-shard writer blocks immediately"
        );
        // SHARED_READ in the overflow word: reads are recorded for any
        // overflow tid, writes are not.
        let mut ov = vec![0u64; stride];
        ov[geom.overflow_index()] = adaptive::pack(adaptive::TAG_SHARED, 0);
        assert_eq!(
            range::classify_sharded(&ov, geom, 5000, Access::Read),
            RangeStep::AllRecorded
        );
        assert_eq!(
            range::classify_sharded(&ov, geom, 5000, Access::Write),
            RangeStep::Partial { first: 0 }
        );
    }
}
