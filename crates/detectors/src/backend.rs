//! Adapting the baseline detectors to the unified
//! [`CheckBackend`] interface, so one seeded execution can be
//! replayed through SharC's own engine, Eraser's locksets, or the
//! vector-clock detector and the verdicts compared directly
//! (`sharc run --detector sharc|eraser|vc`).
//!
//! The adapter is deliberately lossy in one direction: baselines
//! have no notion of sharing casts, so [`CheckBackend::on_cast_clear`]
//! is ignored and `oneref` always passes. That is not a bug — it is
//! the paper's §6.2 observation reproduced as code: detectors without
//! an ownership-transfer model keep judging the object by its
//! pre-transfer history and false-positive on hand-off idioms that
//! SharC accepts.

use crate::trace::{Detector, Event, Race};
use sharc_checker::{CheckBackend, CheckKind, Conflict, Verdict};
use std::collections::HashMap;

/// Wraps any trace [`Detector`] (Eraser, `VcDetector`, …) as a
/// [`CheckBackend`]. Granules map to detector locations one-to-one;
/// the held-lock log needed by `lock_held` is maintained here, since
/// the baselines track locksets internally but do not expose them.
#[derive(Debug)]
pub struct BaselineBackend<D: Detector> {
    detector: D,
    name: &'static str,
    held: HashMap<u32, Vec<usize>>,
}

impl<D: Detector + Default> Default for BaselineBackend<D> {
    fn default() -> Self {
        Self::new(D::default())
    }
}

impl<D: Detector> BaselineBackend<D> {
    /// Wraps `detector`.
    pub fn new(detector: D) -> Self {
        let name = detector.name();
        BaselineBackend {
            detector,
            name,
            held: HashMap::new(),
        }
    }

    /// The wrapped detector, for inspecting its final state.
    pub fn into_inner(self) -> D {
        self.detector
    }

    fn verdict(&self, race: Option<Race>, kind: CheckKind, tid: u32, granule: usize) -> Verdict {
        match race {
            None => Verdict::Pass,
            Some(_) => Verdict::Fail(Conflict { kind, tid, granule }),
        }
    }
}

impl<D: Detector> CheckBackend for BaselineBackend<D> {
    fn name(&self) -> &'static str {
        self.name
    }

    fn chkread(&mut self, tid: u32, granule: usize) -> Verdict {
        let r = self.detector.on_event(Event::Read { tid, loc: granule });
        self.verdict(r, CheckKind::Read, tid, granule)
    }

    fn chkwrite(&mut self, tid: u32, granule: usize) -> Verdict {
        let r = self.detector.on_event(Event::Write { tid, loc: granule });
        self.verdict(r, CheckKind::Write, tid, granule)
    }

    fn lock_held(&self, tid: u32, lock: usize) -> bool {
        self.held.get(&tid).is_some_and(|h| h.contains(&lock))
    }

    /// Baselines cannot check sharing casts; the cast is invisible to
    /// them (see the module docs).
    fn oneref(&mut self, _tid: u32, _granule: usize, _refs: u64) -> Verdict {
        Verdict::Pass
    }

    fn on_acquire(&mut self, tid: u32, lock: usize) {
        self.held.entry(tid).or_default().push(lock);
        let _ = self.detector.on_event(Event::Acquire { tid, lock });
    }

    fn on_release(&mut self, tid: u32, lock: usize) {
        if let Some(h) = self.held.get_mut(&tid) {
            if let Some(p) = h.iter().position(|&l| l == lock) {
                h.remove(p);
            }
        }
        let _ = self.detector.on_event(Event::Release { tid, lock });
    }

    fn on_fork(&mut self, parent: u32, child: u32) {
        let _ = self.detector.on_event(Event::Fork { tid: parent, child });
    }

    fn on_join(&mut self, parent: u32, child: u32) {
        let _ = self.detector.on_event(Event::Join { tid: parent, child });
    }

    fn on_thread_exit(&mut self, tid: u32) {
        // Baselines have no lifetime-based clearing; only the log
        // kept for `lock_held` is dropped.
        self.held.remove(&tid);
    }

    fn on_alloc(&mut self, granule: usize) {
        let _ = self.detector.on_event(Event::Alloc { loc: granule });
    }

    // `on_cast_clear` intentionally keeps the default no-op: the
    // object's history survives the cast, which is exactly what
    // makes the baselines false-positive on ownership transfer.
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Eraser, VcDetector};
    use sharc_checker::{replay, BitmapBackend, CheckEvent};

    /// The ownership-transfer idiom at CheckEvent granularity:
    /// thread 1 initializes a buffer, transfers it with a sharing
    /// cast, thread 2 uses it.
    fn handoff_trace() -> Vec<CheckEvent> {
        vec![
            CheckEvent::Fork {
                parent: 1,
                child: 2,
            },
            CheckEvent::Write { tid: 1, granule: 0 },
            CheckEvent::SharingCast {
                tid: 1,
                granule: 0,
                refs: 1,
            },
            CheckEvent::Write { tid: 2, granule: 0 },
        ]
    }

    #[test]
    fn sharc_accepts_handoff_baselines_flag_it() {
        let trace = handoff_trace();
        let sharc = replay(&trace, &mut BitmapBackend::new());
        assert!(sharc.is_empty(), "SharC models the transfer: {sharc:?}");
        let eraser = replay(&trace, &mut BaselineBackend::new(Eraser::new()));
        let vc = replay(&trace, &mut BaselineBackend::new(VcDetector::new()));
        assert!(!eraser.is_empty(), "Eraser misses the cast");
        assert!(!vc.is_empty(), "vector clocks miss the cast");
    }

    #[test]
    fn honest_race_everyone_agrees() {
        let trace = vec![
            CheckEvent::Fork {
                parent: 1,
                child: 2,
            },
            CheckEvent::Write { tid: 1, granule: 0 },
            CheckEvent::Write { tid: 2, granule: 0 },
        ];
        for conflicts in [
            replay(&trace, &mut BitmapBackend::new()),
            replay(&trace, &mut BaselineBackend::new(Eraser::new())),
            replay(&trace, &mut BaselineBackend::new(VcDetector::new())),
        ] {
            assert_eq!(conflicts.len(), 1, "{conflicts:?}");
        }
    }

    #[test]
    fn lock_held_log_is_maintained_by_adapter() {
        let mut b = BaselineBackend::new(Eraser::new());
        assert!(!b.lock_held(1, 7));
        b.on_acquire(1, 7);
        assert!(b.lock_held(1, 7));
        assert!(!b.lock_held(2, 7));
        b.on_release(1, 7);
        assert!(!b.lock_held(1, 7));
    }
}
