//! A vector-clock happens-before race detector (DJIT+-style, the
//! basis of FastTrack), representing the "improvements to the lockset
//! algorithm \[that\] use Lamport's happens-before relation" discussed
//! in §6.2.
//!
//! Precise with respect to the observed trace: it reports a race iff
//! two accesses to the same location are unordered by program order,
//! lock release/acquire, or fork/join — so the hand-off idioms that
//! trip Eraser are accepted, at the price of heavier per-access
//! metadata.

use crate::trace::{Detector, Event, Loc, Lock, Race, Tid};
use std::collections::HashMap;

/// A vector clock: logical time per thread.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VectorClock {
    clocks: Vec<u64>,
}

impl VectorClock {
    /// The clock value for thread `t`.
    pub fn get(&self, t: Tid) -> u64 {
        self.clocks.get(t as usize).copied().unwrap_or(0)
    }

    /// Sets thread `t`'s component.
    pub fn set(&mut self, t: Tid, v: u64) {
        let i = t as usize;
        if self.clocks.len() <= i {
            self.clocks.resize(i + 1, 0);
        }
        self.clocks[i] = v;
    }

    /// Increments thread `t`'s component.
    pub fn tick(&mut self, t: Tid) {
        let v = self.get(t);
        self.set(t, v + 1);
    }

    /// Pointwise maximum (join).
    pub fn join(&mut self, other: &VectorClock) {
        if self.clocks.len() < other.clocks.len() {
            self.clocks.resize(other.clocks.len(), 0);
        }
        for (i, &v) in other.clocks.iter().enumerate() {
            if v > self.clocks[i] {
                self.clocks[i] = v;
            }
        }
    }

    /// True if `self <= other` pointwise (self happens-before other).
    pub fn le(&self, other: &VectorClock) -> bool {
        self.clocks
            .iter()
            .enumerate()
            .all(|(i, &v)| v <= other.clocks.get(i).copied().unwrap_or(0))
    }
}

#[derive(Debug, Clone, Default)]
struct LocMeta {
    /// Last-write clock per thread.
    writes: VectorClock,
    /// Last-read clock per thread.
    reads: VectorClock,
    reported: bool,
}

/// The happens-before detector.
#[derive(Debug, Default)]
pub struct VcDetector {
    threads: HashMap<Tid, VectorClock>,
    locks: HashMap<Lock, VectorClock>,
    locs: HashMap<Loc, LocMeta>,
}

impl VcDetector {
    /// Creates an empty detector.
    pub fn new() -> Self {
        Self::default()
    }

    fn thread(&mut self, t: Tid) -> &mut VectorClock {
        self.threads.entry(t).or_insert_with(|| {
            let mut vc = VectorClock::default();
            vc.set(t, 1);
            vc
        })
    }
}

impl Detector for VcDetector {
    fn on_event(&mut self, e: Event) -> Option<Race> {
        match e {
            Event::Read { tid, loc } => {
                let ct = self.thread(tid).clone();
                let m = self.locs.entry(loc).or_default();
                // A read races with any unordered write.
                if !m.writes.le(&ct) && !m.reported {
                    m.reported = true;
                    return Some(Race {
                        loc,
                        tid,
                        was_write: false,
                    });
                }
                m.reads.set(tid, ct.get(tid));
                None
            }
            Event::Write { tid, loc } => {
                let ct = self.thread(tid).clone();
                let m = self.locs.entry(loc).or_default();
                if (!m.writes.le(&ct) || !m.reads.le(&ct)) && !m.reported {
                    m.reported = true;
                    return Some(Race {
                        loc,
                        tid,
                        was_write: true,
                    });
                }
                m.writes.set(tid, ct.get(tid));
                None
            }
            Event::Acquire { tid, lock } => {
                let lv = self.locks.entry(lock).or_default().clone();
                self.thread(tid).join(&lv);
                None
            }
            Event::Release { tid, lock } => {
                let ct = self.thread(tid).clone();
                self.locks.insert(lock, ct);
                self.thread(tid).tick(tid);
                None
            }
            Event::Fork { tid, child } => {
                let ct = self.thread(tid).clone();
                let cv = self.thread(child);
                cv.join(&ct);
                self.thread(tid).tick(tid);
                None
            }
            Event::Join { tid, child } => {
                let cv = self.thread(child).clone();
                self.thread(tid).join(&cv);
                None
            }
            Event::Alloc { loc } => {
                self.locs.insert(loc, LocMeta::default());
                None
            }
        }
    }

    fn name(&self) -> &'static str {
        "vector-clock"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::fixtures;

    #[test]
    fn vc_ordering_ops() {
        let mut a = VectorClock::default();
        let mut b = VectorClock::default();
        a.set(1, 3);
        b.set(1, 5);
        assert!(a.le(&b));
        assert!(!b.le(&a));
        b.set(2, 1);
        a.join(&b);
        assert_eq!(a.get(1), 5);
        assert_eq!(a.get(2), 1);
    }

    #[test]
    fn detects_unsynchronized_race() {
        let races = VcDetector::new().run(&fixtures::unsynchronized_write_race());
        assert_eq!(races.len(), 1);
    }

    #[test]
    fn lock_protected_is_clean() {
        let races = VcDetector::new().run(&fixtures::lock_protected());
        assert!(races.is_empty(), "{races:?}");
    }

    #[test]
    fn init_then_read_sharing_is_clean() {
        let races = VcDetector::new().run(&fixtures::init_then_share_readonly());
        assert!(races.is_empty(), "{races:?}");
    }

    #[test]
    fn fork_join_handoff_is_clean() {
        // Unlike Eraser, happens-before tracks fork/join: no false
        // positive here.
        let races = VcDetector::new().run(&fixtures::fork_join_handoff());
        assert!(races.is_empty(), "{races:?}");
    }

    #[test]
    fn two_lock_handoff_still_false_positive() {
        // Different locks guard different phases with no common
        // synchronization edge between the release and the acquire,
        // so even happens-before reports this hand-off; only SharC's
        // explicit ownership transfer (sharing cast) accepts it.
        let races = VcDetector::new().run(&fixtures::lock_handoff_two_locks());
        assert_eq!(races.len(), 1);
    }

    #[test]
    fn same_lock_handoff_is_clean() {
        use crate::trace::Event;
        let trace = vec![
            Event::Fork { tid: 1, child: 2 },
            Event::Acquire { tid: 1, lock: 1 },
            Event::Write { tid: 1, loc: 0 },
            Event::Release { tid: 1, lock: 1 },
            Event::Acquire { tid: 2, lock: 1 },
            Event::Write { tid: 2, loc: 0 },
            Event::Release { tid: 2, lock: 1 },
        ];
        let races = VcDetector::new().run(&trace);
        assert!(races.is_empty(), "{races:?}");
    }

    #[test]
    fn alloc_resets() {
        let mut trace = fixtures::unsynchronized_write_race();
        trace.push(Event::Alloc { loc: 0 });
        trace.push(Event::Write { tid: 1, loc: 0 });
        let races = VcDetector::new().run(&trace);
        assert_eq!(races.len(), 1);
    }
}
