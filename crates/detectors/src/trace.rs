//! A shared event-trace abstraction for the baseline race detectors
//! (Eraser's lockset algorithm and vector-clock happens-before),
//! which the paper compares against in §6.

/// A memory location (word granularity).
pub type Loc = usize;

/// A lock identity.
pub type Lock = usize;

/// A thread identity.
pub type Tid = u32;

/// One event in a program trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    Read {
        tid: Tid,
        loc: Loc,
    },
    Write {
        tid: Tid,
        loc: Loc,
    },
    Acquire {
        tid: Tid,
        lock: Lock,
    },
    Release {
        tid: Tid,
        lock: Lock,
    },
    /// `tid` spawns `child`.
    Fork {
        tid: Tid,
        child: Tid,
    },
    /// `tid` joins `child`.
    Join {
        tid: Tid,
        child: Tid,
    },
    /// Memory is (re)allocated: detector state for the location resets.
    Alloc {
        loc: Loc,
    },
}

/// A race reported by a detector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Race {
    pub loc: Loc,
    pub tid: Tid,
    /// True if the racing access was a write.
    pub was_write: bool,
}

/// A dynamic race detector consuming a trace event-by-event.
pub trait Detector {
    /// Processes one event, returning a race if this event races.
    fn on_event(&mut self, e: Event) -> Option<Race>;

    /// The detector's name for reports.
    fn name(&self) -> &'static str;

    /// Convenience: run a whole trace, collecting all races.
    fn run(&mut self, trace: &[Event]) -> Vec<Race> {
        trace.iter().filter_map(|&e| self.on_event(e)).collect()
    }
}

/// Builds the classic test traces shared by the detector test suites.
#[cfg(test)]
pub mod fixtures {
    use super::*;

    /// Two threads write `loc` 0 with no synchronization.
    pub fn unsynchronized_write_race() -> Vec<Event> {
        vec![
            Event::Fork { tid: 1, child: 2 },
            Event::Write { tid: 1, loc: 0 },
            Event::Write { tid: 2, loc: 0 },
        ]
    }

    /// Two threads increment `loc` 0 under the same lock.
    pub fn lock_protected() -> Vec<Event> {
        vec![
            Event::Fork { tid: 1, child: 2 },
            Event::Acquire { tid: 1, lock: 9 },
            Event::Read { tid: 1, loc: 0 },
            Event::Write { tid: 1, loc: 0 },
            Event::Release { tid: 1, lock: 9 },
            Event::Acquire { tid: 2, lock: 9 },
            Event::Read { tid: 2, loc: 0 },
            Event::Write { tid: 2, loc: 0 },
            Event::Release { tid: 2, lock: 9 },
        ]
    }

    /// Parent initializes, forks a child that reads — no race.
    pub fn init_then_share_readonly() -> Vec<Event> {
        vec![
            Event::Write { tid: 1, loc: 0 },
            Event::Fork { tid: 1, child: 2 },
            Event::Read { tid: 2, loc: 0 },
            Event::Read { tid: 1, loc: 0 },
        ]
    }

    /// Ownership hand-off via fork/join, with accesses on both sides
    /// but never concurrently.
    pub fn fork_join_handoff() -> Vec<Event> {
        vec![
            Event::Write { tid: 1, loc: 0 },
            Event::Fork { tid: 1, child: 2 },
            Event::Write { tid: 2, loc: 0 },
            Event::Join { tid: 1, child: 2 },
            Event::Write { tid: 1, loc: 0 },
        ]
    }

    /// The producer/consumer idiom mediated by a condition-variable
    /// style lock hand-off, where *different* locks guard different
    /// phases — the pattern that makes pure lockset detectors report
    /// false positives while SharC's sharing casts accept it.
    pub fn lock_handoff_two_locks() -> Vec<Event> {
        vec![
            Event::Fork { tid: 1, child: 2 },
            // Producer writes under lock A, then hands off.
            Event::Acquire { tid: 1, lock: 1 },
            Event::Write { tid: 1, loc: 0 },
            Event::Release { tid: 1, lock: 1 },
            // Consumer accesses under lock B (it now owns the data).
            Event::Acquire { tid: 2, lock: 2 },
            Event::Write { tid: 2, loc: 0 },
            Event::Release { tid: 2, lock: 2 },
            // Producer refills the (returned) buffer under lock A:
            // the candidate lockset intersects to empty.
            Event::Acquire { tid: 1, lock: 1 },
            Event::Write { tid: 1, loc: 0 },
            Event::Release { tid: 1, lock: 1 },
        ]
    }
}
