//! Thread-safe online detector front-ends for overhead measurement.
//!
//! Tools like Eraser instrument *every* memory access and consult
//! shared per-location state; that is where their 10×–30× overhead
//! comes from. To measure the shape of that cost against SharC's
//! checks (which only touch a shadow byte for dynamic-mode data), we
//! wrap each detector's per-location state in a sharded mutex table
//! that real worker threads feed on every access.

use crate::trace::{Detector, Event, Loc, Race, Tid};
use sharc_checker::{CheckBackend, CheckKind, Conflict, Verdict};
use sharc_testkit::sync::Mutex;
use std::collections::HashMap;

/// Number of shards; accesses hash by location.
const SHARDS: usize = 64;

/// A sharded, thread-safe wrapper running one detector instance per
/// shard. Sound for detectors whose per-location state is
/// independent given per-thread context that is replicated into
/// every shard (locks/fork/join events are broadcast).
pub struct Online<D: Detector> {
    shards: Vec<Mutex<D>>,
    races: Mutex<Vec<Race>>,
    /// Held-lock log per thread, for the [`CheckBackend`] `locked(l)`
    /// check (the wrapped detectors keep locksets internally but do
    /// not expose them).
    held: Mutex<HashMap<Tid, Vec<usize>>>,
}

impl<D: Detector> std::fmt::Debug for Online<D> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Online").field("shards", &SHARDS).finish()
    }
}

impl<D: Detector + Default> Default for Online<D> {
    fn default() -> Self {
        Self::new()
    }
}

impl<D: Detector + Default> Online<D> {
    /// Creates the sharded detector.
    pub fn new() -> Self {
        let mut shards = Vec::with_capacity(SHARDS);
        shards.resize_with(SHARDS, || Mutex::new(D::default()));
        Online {
            shards,
            races: Mutex::new(Vec::new()),
            held: Mutex::new(HashMap::new()),
        }
    }
}

impl<D: Detector> Online<D> {
    fn shard(&self, loc: Loc) -> &Mutex<D> {
        &self.shards[loc % SHARDS]
    }

    /// Records a read access.
    pub fn read(&self, tid: Tid, loc: Loc) {
        if let Some(r) = self.shard(loc).lock().on_event(Event::Read { tid, loc }) {
            self.races.lock().push(r);
        }
    }

    /// Records a write access.
    pub fn write(&self, tid: Tid, loc: Loc) {
        if let Some(r) = self.shard(loc).lock().on_event(Event::Write { tid, loc }) {
            self.races.lock().push(r);
        }
    }

    /// Broadcasts a synchronization event to every shard (each shard
    /// needs the thread's lockset / clock context).
    pub fn sync(&self, e: Event) {
        debug_assert!(!matches!(e, Event::Read { .. } | Event::Write { .. }));
        for s in &self.shards {
            let _ = s.lock().on_event(e);
        }
    }

    /// All races recorded so far.
    pub fn races(&self) -> Vec<Race> {
        self.races.lock().clone()
    }

    /// Shared access path for the [`CheckBackend`] impl: runs the
    /// event on the right shard, records any race, returns a verdict.
    fn checked_access(&self, tid: Tid, loc: Loc, is_write: bool) -> Verdict {
        let e = if is_write {
            Event::Write { tid, loc }
        } else {
            Event::Read { tid, loc }
        };
        match self.shard(loc).lock().on_event(e) {
            None => Verdict::Pass,
            Some(r) => {
                self.races.lock().push(r);
                Verdict::Fail(Conflict {
                    kind: if is_write {
                        CheckKind::Write
                    } else {
                        CheckKind::Read
                    },
                    tid,
                    granule: loc,
                })
            }
        }
    }
}

/// The sharded front-end speaks the unified check interface too, so
/// real-thread harnesses can swap it in wherever a
/// [`sharc_checker::BitmapBackend`] or a
/// [`crate::BaselineBackend`] is expected. Like the baselines it
/// wraps, it ignores `on_cast_clear` and passes every `oneref`.
impl<D: Detector> CheckBackend for Online<D> {
    fn name(&self) -> &'static str {
        "online-baseline"
    }

    fn chkread(&mut self, tid: u32, granule: usize) -> Verdict {
        self.checked_access(tid, granule, false)
    }

    fn chkwrite(&mut self, tid: u32, granule: usize) -> Verdict {
        self.checked_access(tid, granule, true)
    }

    fn lock_held(&self, tid: u32, lock: usize) -> bool {
        self.held
            .lock()
            .get(&tid)
            .is_some_and(|h| h.contains(&lock))
    }

    fn oneref(&mut self, _tid: u32, _granule: usize, _refs: u64) -> Verdict {
        Verdict::Pass
    }

    fn on_acquire(&mut self, tid: u32, lock: usize) {
        self.held.lock().entry(tid).or_default().push(lock);
        self.sync(Event::Acquire { tid, lock });
    }

    fn on_release(&mut self, tid: u32, lock: usize) {
        if let Some(h) = self.held.lock().get_mut(&tid) {
            if let Some(p) = h.iter().position(|&l| l == lock) {
                h.remove(p);
            }
        }
        self.sync(Event::Release { tid, lock });
    }

    fn on_fork(&mut self, parent: u32, child: u32) {
        self.sync(Event::Fork { tid: parent, child });
    }

    fn on_join(&mut self, parent: u32, child: u32) {
        self.sync(Event::Join { tid: parent, child });
    }

    fn on_thread_exit(&mut self, tid: u32) {
        self.held.lock().remove(&tid);
    }

    fn on_alloc(&mut self, granule: usize) {
        let _ = self
            .shard(granule)
            .lock()
            .on_event(Event::Alloc { loc: granule });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eraser::Eraser;
    use crate::vectorclock::VcDetector;
    use std::sync::Arc;

    #[test]
    fn online_eraser_finds_cross_thread_race() {
        let d: Arc<Online<Eraser>> = Arc::new(Online::new());
        let a = Arc::clone(&d);
        let h1 = std::thread::spawn(move || {
            for i in 0..100 {
                a.write(1, i % 4);
            }
        });
        let b = Arc::clone(&d);
        let h2 = std::thread::spawn(move || {
            for i in 0..100 {
                b.write(2, i % 4);
            }
        });
        h1.join().unwrap();
        h2.join().unwrap();
        assert!(!d.races().is_empty());
    }

    #[test]
    fn online_vc_clean_on_disjoint_locations() {
        let d: Arc<Online<VcDetector>> = Arc::new(Online::new());
        d.sync(Event::Fork { tid: 1, child: 2 });
        let mut handles = Vec::new();
        for t in 1..=2u32 {
            let d = Arc::clone(&d);
            handles.push(std::thread::spawn(move || {
                for i in 0..100 {
                    d.write(t, (t as usize) * 1000 + i);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(d.races().is_empty(), "{:?}", d.races());
    }
}
