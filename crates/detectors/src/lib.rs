//! # sharc-detectors
//!
//! Baseline dynamic race detectors the SharC paper compares against
//! (§6): the Eraser lockset algorithm and a vector-clock
//! happens-before detector, over a shared event-trace abstraction,
//! plus thread-safe online front-ends for overhead measurement.
//!
//! The key qualitative reproduction: both baselines report *false
//! positives* on ownership-transfer idioms (see the test fixtures),
//! which SharC accepts by modelling the transfer directly with a
//! checked sharing cast.
//!
//! ## Example
//!
//! ```
//! use sharc_detectors::{Detector, Eraser, Event, VcDetector};
//!
//! let trace = vec![
//!     Event::Fork { tid: 1, child: 2 },
//!     Event::Write { tid: 1, loc: 0 },
//!     Event::Write { tid: 2, loc: 0 },
//! ];
//! assert_eq!(Eraser::new().run(&trace).len(), 1);
//! assert_eq!(VcDetector::new().run(&trace).len(), 1);
//! ```

pub mod backend;
pub mod eraser;
pub mod online;
pub mod trace;
pub mod vectorclock;

pub use backend::BaselineBackend;
pub use eraser::Eraser;
pub use online::Online;
pub use trace::{Detector, Event, Loc, Lock, Race, Tid};
pub use vectorclock::{VcDetector, VectorClock};
