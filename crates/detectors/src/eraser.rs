//! The Eraser lockset algorithm (Savage et al., SOSP '97), the
//! classic dynamic race detector the paper contrasts with (§6.2).
//!
//! Every shared location carries a *candidate lockset*: the set of
//! locks held on every access so far. The state machine per location
//! models the common idioms (initialization before sharing,
//! read-sharing, read-write locking):
//!
//! ```text
//! Virgin -> Exclusive(first thread) -> Shared (first other read)
//!                                   -> SharedModified (other write)
//! ```
//!
//! Lockset refinement starts once the location leaves Exclusive; a
//! race is reported when the candidate lockset becomes empty in
//! SharedModified. Eraser does not model ownership transfer, so
//! hand-off idioms produce false positives — exactly the weakness
//! SharC's sharing casts address.

use crate::trace::{Detector, Event, Loc, Race, Tid};
use std::collections::{HashMap, HashSet};

/// Per-location monitoring state.
#[derive(Debug, Clone, PartialEq, Eq)]
enum LocState {
    Virgin,
    Exclusive(Tid),
    Shared,
    SharedModified,
}

#[derive(Debug, Clone)]
struct LocInfo {
    state: LocState,
    /// Candidate lockset; `None` = "all locks" (not yet refined).
    candidates: Option<HashSet<usize>>,
    reported: bool,
}

impl Default for LocInfo {
    fn default() -> Self {
        LocInfo {
            state: LocState::Virgin,
            candidates: None,
            reported: false,
        }
    }
}

/// The Eraser lockset detector.
#[derive(Debug, Default)]
pub struct Eraser {
    locs: HashMap<Loc, LocInfo>,
    held: HashMap<Tid, HashSet<usize>>,
}

impl Eraser {
    /// Creates an empty detector.
    pub fn new() -> Self {
        Self::default()
    }

    fn refine(info: &mut LocInfo, held: &HashSet<usize>) {
        match &mut info.candidates {
            None => info.candidates = Some(held.clone()),
            Some(c) => {
                c.retain(|l| held.contains(l));
            }
        }
    }

    fn access(&mut self, tid: Tid, loc: Loc, is_write: bool) -> Option<Race> {
        let held = self.held.entry(tid).or_default().clone();
        let info = self.locs.entry(loc).or_default();
        match info.state.clone() {
            LocState::Virgin => {
                info.state = LocState::Exclusive(tid);
                None
            }
            LocState::Exclusive(owner) if owner == tid => None,
            LocState::Exclusive(_) => {
                // First access by a second thread.
                info.state = if is_write {
                    LocState::SharedModified
                } else {
                    LocState::Shared
                };
                Self::refine(info, &held);
                if info.state == LocState::SharedModified {
                    Self::maybe_report(info, tid, loc, is_write)
                } else {
                    None
                }
            }
            LocState::Shared => {
                if is_write {
                    info.state = LocState::SharedModified;
                }
                Self::refine(info, &held);
                if info.state == LocState::SharedModified {
                    Self::maybe_report(info, tid, loc, is_write)
                } else {
                    None
                }
            }
            LocState::SharedModified => {
                Self::refine(info, &held);
                Self::maybe_report(info, tid, loc, is_write)
            }
        }
    }

    fn maybe_report(info: &mut LocInfo, tid: Tid, loc: Loc, was_write: bool) -> Option<Race> {
        let empty = info
            .candidates
            .as_ref()
            .map(|c| c.is_empty())
            .unwrap_or(false);
        if empty && !info.reported {
            info.reported = true;
            Some(Race {
                loc,
                tid,
                was_write,
            })
        } else {
            None
        }
    }
}

impl Detector for Eraser {
    fn on_event(&mut self, e: Event) -> Option<Race> {
        match e {
            Event::Read { tid, loc } => self.access(tid, loc, false),
            Event::Write { tid, loc } => self.access(tid, loc, true),
            Event::Acquire { tid, lock } => {
                self.held.entry(tid).or_default().insert(lock);
                None
            }
            Event::Release { tid, lock } => {
                self.held.entry(tid).or_default().remove(&lock);
                None
            }
            // Eraser has no happens-before model: fork/join are
            // ignored (a known source of false positives).
            Event::Fork { .. } | Event::Join { .. } => None,
            Event::Alloc { loc } => {
                self.locs.insert(loc, LocInfo::default());
                None
            }
        }
    }

    fn name(&self) -> &'static str {
        "eraser-lockset"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::fixtures;

    #[test]
    fn detects_unsynchronized_race() {
        let races = Eraser::new().run(&fixtures::unsynchronized_write_race());
        assert_eq!(races.len(), 1);
        assert!(races[0].was_write);
    }

    #[test]
    fn lock_protected_is_clean() {
        let races = Eraser::new().run(&fixtures::lock_protected());
        assert!(races.is_empty(), "{races:?}");
    }

    #[test]
    fn initialization_then_read_sharing_is_clean() {
        // Exclusive -> Shared never reports without a write.
        let races = Eraser::new().run(&fixtures::init_then_share_readonly());
        assert!(races.is_empty(), "{races:?}");
    }

    #[test]
    fn fork_join_handoff_false_positive() {
        // Eraser ignores fork/join ordering, so the perfectly
        // synchronized hand-off is reported — a false positive that
        // SharC's model avoids.
        let races = Eraser::new().run(&fixtures::fork_join_handoff());
        assert_eq!(races.len(), 1, "Eraser's known false positive");
    }

    #[test]
    fn lock_handoff_two_locks_false_positive() {
        let races = Eraser::new().run(&fixtures::lock_handoff_two_locks());
        assert_eq!(races.len(), 1, "lockset refinement empties");
    }

    #[test]
    fn alloc_resets_state() {
        let mut d = Eraser::new();
        let mut trace = fixtures::unsynchronized_write_race();
        trace.push(Event::Alloc { loc: 0 });
        trace.push(Event::Write { tid: 3, loc: 0 });
        let races = d.run(&trace);
        assert_eq!(races.len(), 1, "reset location starts Virgin again");
    }

    #[test]
    fn one_report_per_location() {
        let mut trace = fixtures::unsynchronized_write_race();
        for _ in 0..5 {
            trace.push(Event::Write { tid: 1, loc: 0 });
            trace.push(Event::Write { tid: 2, loc: 0 });
        }
        let races = Eraser::new().run(&trace);
        assert_eq!(races.len(), 1);
    }
}
