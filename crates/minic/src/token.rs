//! Token definitions for the MiniC lexer.

use crate::span::Span;
use std::fmt;

/// A lexed token: its kind plus the span it covers.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub kind: TokenKind,
    pub span: Span,
}

/// All MiniC token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    // Literals and identifiers
    Ident(String),
    IntLit(i64),
    CharLit(u8),
    StrLit(String),

    // Base-type and declaration keywords
    KwInt,
    KwChar,
    KwBool,
    KwVoid,
    KwMutex,
    KwCond,
    KwStruct,
    KwTypedef,

    // Sharing-mode qualifier keywords (the SharC annotations)
    KwPrivate,
    KwReadonly,
    KwRacy,
    KwDynamic,
    KwLocked,

    // Control flow
    KwIf,
    KwElse,
    KwWhile,
    KwFor,
    KwReturn,
    KwBreak,
    KwContinue,

    // Built-in value keywords
    KwNull,
    KwTrue,
    KwFalse,

    // Allocation and sharing-cast keywords
    KwNew,
    KwNewArray,
    KwScast,
    KwSizeof,

    // Punctuation
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Semi,
    Comma,
    Dot,
    Arrow, // ->

    // Operators
    Assign,  // =
    PlusEq,  // +=
    MinusEq, // -=
    StarEq,  // *=
    SlashEq, // /=
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Amp,      // &
    AmpAmp,   // &&
    Pipe,     // |
    PipePipe, // ||
    Caret,    // ^
    Bang,     // !
    Tilde,    // ~
    Shl,      // <<
    Shr,      // >>
    EqEq,
    NotEq,
    Lt,
    Le,
    Gt,
    Ge,
    PlusPlus,   // ++
    MinusMinus, // --
    Question,
    Colon,

    /// End of input.
    Eof,
}

impl TokenKind {
    /// Keyword lookup for an identifier-shaped lexeme.
    pub fn keyword(s: &str) -> Option<TokenKind> {
        use TokenKind::*;
        Some(match s {
            "int" => KwInt,
            "char" => KwChar,
            "bool" => KwBool,
            "void" => KwVoid,
            "mutex" => KwMutex,
            "cond" => KwCond,
            "struct" => KwStruct,
            "typedef" => KwTypedef,
            "private" => KwPrivate,
            "readonly" => KwReadonly,
            "racy" => KwRacy,
            "dynamic" => KwDynamic,
            "locked" => KwLocked,
            "if" => KwIf,
            "else" => KwElse,
            "while" => KwWhile,
            "for" => KwFor,
            "return" => KwReturn,
            "break" => KwBreak,
            "continue" => KwContinue,
            "NULL" => KwNull,
            "true" => KwTrue,
            "false" => KwFalse,
            "new" => KwNew,
            "newarray" => KwNewArray,
            "SCAST" => KwScast,
            "sizeof" => KwSizeof,
            _ => return None,
        })
    }

    /// Returns true for tokens that can begin a type (used by the parser
    /// to distinguish declarations from expression statements).
    pub fn starts_type(&self) -> bool {
        use TokenKind::*;
        matches!(
            self,
            KwInt | KwChar | KwBool | KwVoid | KwMutex | KwCond | KwStruct
        )
    }

    /// Returns true for sharing-mode qualifier keywords.
    pub fn is_qualifier(&self) -> bool {
        use TokenKind::*;
        matches!(self, KwPrivate | KwReadonly | KwRacy | KwDynamic | KwLocked)
    }
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use TokenKind::*;
        let s: &str = match self {
            Ident(name) => return write!(f, "identifier `{name}`"),
            IntLit(v) => return write!(f, "integer `{v}`"),
            CharLit(c) => return write!(f, "char literal `{}`", *c as char),
            StrLit(s) => return write!(f, "string literal {s:?}"),
            KwInt => "int",
            KwChar => "char",
            KwBool => "bool",
            KwVoid => "void",
            KwMutex => "mutex",
            KwCond => "cond",
            KwStruct => "struct",
            KwTypedef => "typedef",
            KwPrivate => "private",
            KwReadonly => "readonly",
            KwRacy => "racy",
            KwDynamic => "dynamic",
            KwLocked => "locked",
            KwIf => "if",
            KwElse => "else",
            KwWhile => "while",
            KwFor => "for",
            KwReturn => "return",
            KwBreak => "break",
            KwContinue => "continue",
            KwNull => "NULL",
            KwTrue => "true",
            KwFalse => "false",
            KwNew => "new",
            KwNewArray => "newarray",
            KwScast => "SCAST",
            KwSizeof => "sizeof",
            LParen => "(",
            RParen => ")",
            LBrace => "{",
            RBrace => "}",
            LBracket => "[",
            RBracket => "]",
            Semi => ";",
            Comma => ",",
            Dot => ".",
            Arrow => "->",
            Assign => "=",
            PlusEq => "+=",
            MinusEq => "-=",
            StarEq => "*=",
            SlashEq => "/=",
            Plus => "+",
            Minus => "-",
            Star => "*",
            Slash => "/",
            Percent => "%",
            Amp => "&",
            AmpAmp => "&&",
            Pipe => "|",
            PipePipe => "||",
            Caret => "^",
            Bang => "!",
            Tilde => "~",
            Shl => "<<",
            Shr => ">>",
            EqEq => "==",
            NotEq => "!=",
            Lt => "<",
            Le => "<=",
            Gt => ">",
            Ge => ">=",
            PlusPlus => "++",
            MinusMinus => "--",
            Question => "?",
            Colon => ":",
            Eof => "end of input",
        };
        write!(f, "`{s}`")
    }
}
