//! Diagnostics: structured errors/warnings with source spans, rendered
//! against a [`SourceMap`].

use crate::span::{SourceMap, Span};
use std::fmt;

/// How serious a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// A hint, e.g. SharC's suggested sharing-cast insertions.
    Suggestion,
    /// Something that may be wrong but does not stop compilation,
    /// e.g. a pointer definitely live after being nulled by a cast.
    Warning,
    /// A hard error; compilation cannot continue to the next phase.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Suggestion => write!(f, "suggestion"),
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// A single diagnostic with optional secondary notes.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    pub severity: Severity,
    pub message: String,
    pub span: Span,
    pub notes: Vec<(String, Span)>,
}

impl Diagnostic {
    /// Creates an error diagnostic.
    pub fn error(message: impl Into<String>, span: Span) -> Self {
        Diagnostic {
            severity: Severity::Error,
            message: message.into(),
            span,
            notes: Vec::new(),
        }
    }

    /// Creates a warning diagnostic.
    pub fn warning(message: impl Into<String>, span: Span) -> Self {
        Diagnostic {
            severity: Severity::Warning,
            message: message.into(),
            span,
            notes: Vec::new(),
        }
    }

    /// Creates a suggestion diagnostic (e.g. "insert SCAST here").
    pub fn suggestion(message: impl Into<String>, span: Span) -> Self {
        Diagnostic {
            severity: Severity::Suggestion,
            message: message.into(),
            span,
            notes: Vec::new(),
        }
    }

    /// Attaches a secondary note pointing at `span`.
    pub fn with_note(mut self, message: impl Into<String>, span: Span) -> Self {
        self.notes.push((message.into(), span));
        self
    }

    /// Renders the diagnostic with locations resolved through `sm`.
    pub fn render(&self, sm: &SourceMap) -> String {
        let mut out = format!(
            "{}: {} @ {}",
            self.severity,
            self.message,
            sm.location(self.span)
        );
        for (msg, span) in &self.notes {
            out.push_str(&format!("\n  note: {} @ {}", msg, sm.location(*span)));
        }
        out
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.severity, self.message)
    }
}

impl std::error::Error for Diagnostic {}

/// An ordered collection of diagnostics accumulated across a phase.
#[derive(Debug, Clone, Default)]
pub struct Diagnostics {
    items: Vec<Diagnostic>,
}

impl Diagnostics {
    /// Creates an empty collection.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a diagnostic.
    pub fn push(&mut self, d: Diagnostic) {
        self.items.push(d);
    }

    /// Returns true if any diagnostic is an error.
    pub fn has_errors(&self) -> bool {
        self.items.iter().any(|d| d.severity == Severity::Error)
    }

    /// Number of diagnostics collected.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Returns true if no diagnostics were collected.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Iterates over the diagnostics in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &Diagnostic> {
        self.items.iter()
    }

    /// Renders all diagnostics, one per line.
    pub fn render(&self, sm: &SourceMap) -> String {
        self.items
            .iter()
            .map(|d| d.render(sm))
            .collect::<Vec<_>>()
            .join("\n")
    }

    /// Consumes the collection, yielding the underlying vector.
    pub fn into_vec(self) -> Vec<Diagnostic> {
        self.items
    }
}

impl IntoIterator for Diagnostics {
    type Item = Diagnostic;
    type IntoIter = std::vec::IntoIter<Diagnostic>;
    fn into_iter(self) -> Self::IntoIter {
        self.items.into_iter()
    }
}

impl Extend<Diagnostic> for Diagnostics {
    fn extend<T: IntoIterator<Item = Diagnostic>>(&mut self, iter: T) {
        self.items.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_includes_location_and_notes() {
        let sm = SourceMap::new("t.c", "int x;\nint y;\n");
        let d = Diagnostic::error("bad thing", Span::new(7, 10))
            .with_note("declared here", Span::new(0, 3));
        let rendered = d.render(&sm);
        assert!(rendered.contains("error: bad thing @ t.c: 2"));
        assert!(rendered.contains("note: declared here @ t.c: 1"));
    }

    #[test]
    fn has_errors_tracks_severity() {
        let mut ds = Diagnostics::new();
        ds.push(Diagnostic::warning("w", Span::DUMMY));
        assert!(!ds.has_errors());
        ds.push(Diagnostic::error("e", Span::DUMMY));
        assert!(ds.has_errors());
        assert_eq!(ds.len(), 2);
    }

    #[test]
    fn severity_ordering() {
        assert!(Severity::Suggestion < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
    }
}
