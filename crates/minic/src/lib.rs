//! # MiniC
//!
//! A C-like language with SharC's sharing-mode type qualifiers,
//! serving as the analysis substrate for the SharC reproduction
//! (Anderson, Gay, Ennals, Brewer — PLDI 2008).
//!
//! MiniC supports pointers, structs (with qualifier polymorphism),
//! arrays, function pointers, globals, threads (`spawn`), mutexes and
//! condition variables — the language features the paper's analyses
//! operate over — plus the five sharing modes as type qualifiers:
//! `private`, `readonly`, `locked(l)`, `racy`, and `dynamic`.
//!
//! ## Example
//!
//! ```
//! let src = r#"
//!     struct point { int x; int y; };
//!     int dynamic counter;
//!     void main() { counter = counter + 1; }
//! "#;
//! let program = minic::parse(src)?;
//! assert_eq!(program.structs.len(), 1);
//! let table = minic::env::StructTable::build(&program)?;
//! assert_eq!(table.layout(table.lookup("point").unwrap()).size, 2);
//! # Ok::<(), minic::diag::Diagnostic>(())
//! ```

pub mod ast;
pub mod diag;
pub mod env;
pub mod lexer;
pub mod parser;
pub mod pretty;
pub mod span;
pub mod token;

pub use ast::{Expr, FnDef, Program, Qual, Stmt, Type, TypeKind};
pub use diag::{Diagnostic, Diagnostics, Severity};
pub use parser::{parse, parse_expr};
pub use span::{SourceMap, Span};
