//! Byte-offset source spans and the source map used to render them as
//! `file: line` locations in diagnostics and runtime conflict reports.

use std::fmt;

/// A half-open byte range `[lo, hi)` into a single source file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Span {
    /// Byte offset of the first character.
    pub lo: u32,
    /// Byte offset one past the last character.
    pub hi: u32,
}

impl Span {
    /// Creates a span covering `[lo, hi)`.
    pub fn new(lo: u32, hi: u32) -> Self {
        debug_assert!(lo <= hi, "span lo must not exceed hi");
        Span { lo, hi }
    }

    /// A zero-width span at offset zero, used for synthesized nodes.
    pub const DUMMY: Span = Span { lo: 0, hi: 0 };

    /// Returns the smallest span covering both `self` and `other`.
    pub fn to(self, other: Span) -> Span {
        Span {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// Returns true if this is the dummy span.
    pub fn is_dummy(self) -> bool {
        self == Span::DUMMY
    }
}

/// A line/column pair (both 1-based) produced by [`SourceMap::lookup`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LineCol {
    pub line: u32,
    pub col: u32,
}

impl fmt::Display for LineCol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Maps byte offsets back to line/column positions for one source file.
///
/// # Examples
///
/// ```
/// use minic::span::{SourceMap, Span};
/// let sm = SourceMap::new("test.c", "int x;\nint y;\n");
/// let loc = sm.lookup(Span::new(7, 10));
/// assert_eq!(loc.line, 2);
/// assert_eq!(loc.col, 1);
/// ```
#[derive(Debug, Clone)]
pub struct SourceMap {
    name: String,
    src: String,
    line_starts: Vec<u32>,
}

impl SourceMap {
    /// Builds a source map for `src`, remembering `name` for reports.
    pub fn new(name: impl Into<String>, src: impl Into<String>) -> Self {
        let src = src.into();
        let mut line_starts = vec![0u32];
        for (i, b) in src.bytes().enumerate() {
            if b == b'\n' {
                line_starts.push(i as u32 + 1);
            }
        }
        SourceMap {
            name: name.into(),
            src,
            line_starts,
        }
    }

    /// The file name this map was built for.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The full source text.
    pub fn source(&self) -> &str {
        &self.src
    }

    /// Returns the 1-based line/column of the start of `span`.
    pub fn lookup(&self, span: Span) -> LineCol {
        let pos = span.lo;
        let line_idx = match self.line_starts.binary_search(&pos) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        LineCol {
            line: line_idx as u32 + 1,
            col: pos - self.line_starts[line_idx] + 1,
        }
    }

    /// Returns the source text of `span`, or an empty string for
    /// out-of-range spans.
    pub fn snippet(&self, span: Span) -> &str {
        self.src
            .get(span.lo as usize..span.hi as usize)
            .unwrap_or("")
    }

    /// Formats `span` as `file: line`, the style used by SharC's
    /// conflict reports (e.g. `pipeline_test.c: 15`).
    pub fn location(&self, span: Span) -> String {
        format!("{}: {}", self.name, self.lookup(span).line)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_first_line() {
        let sm = SourceMap::new("a.c", "abc\ndef");
        assert_eq!(sm.lookup(Span::new(0, 1)), LineCol { line: 1, col: 1 });
        assert_eq!(sm.lookup(Span::new(2, 3)), LineCol { line: 1, col: 3 });
    }

    #[test]
    fn lookup_later_lines() {
        let sm = SourceMap::new("a.c", "abc\ndef\nghi\n");
        assert_eq!(sm.lookup(Span::new(4, 5)), LineCol { line: 2, col: 1 });
        assert_eq!(sm.lookup(Span::new(10, 11)), LineCol { line: 3, col: 3 });
    }

    #[test]
    fn span_join() {
        let a = Span::new(3, 5);
        let b = Span::new(8, 9);
        assert_eq!(a.to(b), Span::new(3, 9));
        assert_eq!(b.to(a), Span::new(3, 9));
    }

    #[test]
    fn snippet_and_location() {
        let sm = SourceMap::new("pipeline_test.c", "x = 1;\ny = 2;\n");
        assert_eq!(sm.snippet(Span::new(7, 13)), "y = 2;");
        assert_eq!(sm.location(Span::new(7, 13)), "pipeline_test.c: 2");
    }

    #[test]
    fn empty_source() {
        let sm = SourceMap::new("e.c", "");
        assert_eq!(sm.lookup(Span::DUMMY), LineCol { line: 1, col: 1 });
        assert_eq!(sm.snippet(Span::new(0, 4)), "");
    }
}
