//! Hand-written lexer for MiniC.
//!
//! Supports `//` line comments, `/* */` block comments, decimal and hex
//! integer literals, character literals with the common escapes, and
//! string literals.

use crate::diag::Diagnostic;
use crate::span::Span;
use crate::token::{Token, TokenKind};

/// Lexes `src` into a token vector ending with an [`TokenKind::Eof`]
/// token.
///
/// # Errors
///
/// Returns a [`Diagnostic`] for unterminated comments/strings, malformed
/// literals, and unexpected characters.
pub fn lex(src: &str) -> Result<Vec<Token>, Diagnostic> {
    Lexer::new(src).run()
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
        }
    }

    fn run(mut self) -> Result<Vec<Token>, Diagnostic> {
        let mut tokens = Vec::new();
        loop {
            self.skip_trivia()?;
            let lo = self.pos as u32;
            let Some(c) = self.peek() else {
                tokens.push(Token {
                    kind: TokenKind::Eof,
                    span: Span::new(lo, lo),
                });
                return Ok(tokens);
            };
            let kind = self.next_token(c)?;
            let hi = self.pos as u32;
            tokens.push(Token {
                kind,
                span: Span::new(lo, hi),
            });
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        Some(c)
    }

    fn eat(&mut self, c: u8) -> bool {
        if self.peek() == Some(c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn skip_trivia(&mut self) -> Result<(), Diagnostic> {
        loop {
            match self.peek() {
                Some(b' ') | Some(b'\t') | Some(b'\r') | Some(b'\n') => {
                    self.pos += 1;
                }
                Some(b'/') if self.peek2() == Some(b'/') => {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.pos += 1;
                    }
                }
                Some(b'/') if self.peek2() == Some(b'*') => {
                    let start = self.pos as u32;
                    self.pos += 2;
                    loop {
                        match self.peek() {
                            Some(b'*') if self.peek2() == Some(b'/') => {
                                self.pos += 2;
                                break;
                            }
                            Some(_) => self.pos += 1,
                            None => {
                                return Err(Diagnostic::error(
                                    "unterminated block comment",
                                    Span::new(start, self.pos as u32),
                                ))
                            }
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn next_token(&mut self, c: u8) -> Result<TokenKind, Diagnostic> {
        use TokenKind::*;
        let lo = self.pos as u32;
        self.pos += 1;
        Ok(match c {
            b'(' => LParen,
            b')' => RParen,
            b'{' => LBrace,
            b'}' => RBrace,
            b'[' => LBracket,
            b']' => RBracket,
            b';' => Semi,
            b',' => Comma,
            b'.' => Dot,
            b'?' => Question,
            b':' => Colon,
            b'~' => Tilde,
            b'^' => Caret,
            b'+' => {
                if self.eat(b'=') {
                    PlusEq
                } else if self.eat(b'+') {
                    PlusPlus
                } else {
                    Plus
                }
            }
            b'-' => {
                if self.eat(b'>') {
                    Arrow
                } else if self.eat(b'=') {
                    MinusEq
                } else if self.eat(b'-') {
                    MinusMinus
                } else {
                    Minus
                }
            }
            b'*' => {
                if self.eat(b'=') {
                    StarEq
                } else {
                    Star
                }
            }
            b'/' => {
                if self.eat(b'=') {
                    SlashEq
                } else {
                    Slash
                }
            }
            b'%' => Percent,
            b'&' => {
                if self.eat(b'&') {
                    AmpAmp
                } else {
                    Amp
                }
            }
            b'|' => {
                if self.eat(b'|') {
                    PipePipe
                } else {
                    Pipe
                }
            }
            b'!' => {
                if self.eat(b'=') {
                    NotEq
                } else {
                    Bang
                }
            }
            b'=' => {
                if self.eat(b'=') {
                    EqEq
                } else {
                    Assign
                }
            }
            b'<' => {
                if self.eat(b'=') {
                    Le
                } else if self.eat(b'<') {
                    Shl
                } else {
                    Lt
                }
            }
            b'>' => {
                if self.eat(b'=') {
                    Ge
                } else if self.eat(b'>') {
                    Shr
                } else {
                    Gt
                }
            }
            b'\'' => self.char_literal(lo)?,
            b'"' => self.string_literal(lo)?,
            b'0'..=b'9' => {
                self.pos -= 1;
                self.number(lo)?
            }
            c if c == b'_' || c.is_ascii_alphabetic() => {
                self.pos -= 1;
                self.ident()
            }
            other => {
                return Err(Diagnostic::error(
                    format!("unexpected character `{}`", other as char),
                    Span::new(lo, self.pos as u32),
                ))
            }
        })
    }

    fn ident(&mut self) -> TokenKind {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c == b'_' || c.is_ascii_alphanumeric() {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text =
            std::str::from_utf8(&self.src[start..self.pos]).expect("identifier bytes are ASCII");
        TokenKind::keyword(text).unwrap_or_else(|| TokenKind::Ident(text.to_owned()))
    }

    fn number(&mut self, lo: u32) -> Result<TokenKind, Diagnostic> {
        let start = self.pos;
        let radix = if self.peek() == Some(b'0') && matches!(self.peek2(), Some(b'x') | Some(b'X'))
        {
            self.pos += 2;
            16
        } else {
            10
        };
        let digits_start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_hexdigit() && (radix == 16 || c.is_ascii_digit()) {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.src[digits_start..self.pos]).unwrap();
        if radix == 16 && text.is_empty() {
            return Err(Diagnostic::error(
                "hex literal requires at least one digit",
                Span::new(lo, self.pos as u32),
            ));
        }
        let digits = if radix == 16 {
            text
        } else {
            std::str::from_utf8(&self.src[start..self.pos]).unwrap()
        };
        i64::from_str_radix(digits, radix)
            .map(TokenKind::IntLit)
            .map_err(|_| {
                Diagnostic::error(
                    format!("integer literal `{digits}` out of range"),
                    Span::new(lo, self.pos as u32),
                )
            })
    }

    fn escape(&mut self, lo: u32) -> Result<u8, Diagnostic> {
        let c = self.bump().ok_or_else(|| {
            Diagnostic::error("unterminated escape", Span::new(lo, self.pos as u32))
        })?;
        Ok(match c {
            b'n' => b'\n',
            b't' => b'\t',
            b'r' => b'\r',
            b'0' => 0,
            b'\\' => b'\\',
            b'\'' => b'\'',
            b'"' => b'"',
            other => {
                return Err(Diagnostic::error(
                    format!("unknown escape `\\{}`", other as char),
                    Span::new(lo, self.pos as u32),
                ))
            }
        })
    }

    fn char_literal(&mut self, lo: u32) -> Result<TokenKind, Diagnostic> {
        let c = self.bump().ok_or_else(|| {
            Diagnostic::error("unterminated char literal", Span::new(lo, self.pos as u32))
        })?;
        let value = if c == b'\\' { self.escape(lo)? } else { c };
        if !self.eat(b'\'') {
            return Err(Diagnostic::error(
                "unterminated char literal",
                Span::new(lo, self.pos as u32),
            ));
        }
        Ok(TokenKind::CharLit(value))
    }

    fn string_literal(&mut self, lo: u32) -> Result<TokenKind, Diagnostic> {
        let mut out = Vec::new();
        loop {
            let c = self.bump().ok_or_else(|| {
                Diagnostic::error(
                    "unterminated string literal",
                    Span::new(lo, self.pos as u32),
                )
            })?;
            match c {
                b'"' => break,
                b'\\' => out.push(self.escape(lo)?),
                other => out.push(other),
            }
        }
        Ok(TokenKind::StrLit(
            String::from_utf8(out).expect("string literal bytes are ASCII"),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn punctuation_and_operators() {
        use TokenKind::*;
        assert_eq!(
            kinds("-> - -= >= >> = =="),
            vec![Arrow, Minus, MinusEq, Ge, Shr, Assign, EqEq, Eof]
        );
    }

    #[test]
    fn keywords_and_idents() {
        use TokenKind::*;
        assert_eq!(
            kinds("int private dynamic foo SCAST"),
            vec![
                KwInt,
                KwPrivate,
                KwDynamic,
                Ident("foo".into()),
                KwScast,
                Eof
            ]
        );
    }

    #[test]
    fn numbers() {
        use TokenKind::*;
        assert_eq!(
            kinds("0 42 0x1F"),
            vec![IntLit(0), IntLit(42), IntLit(31), Eof]
        );
    }

    #[test]
    fn char_and_string_literals() {
        use TokenKind::*;
        assert_eq!(
            kinds(r#"'a' '\n' "hi\tthere""#),
            vec![
                CharLit(b'a'),
                CharLit(b'\n'),
                StrLit("hi\tthere".into()),
                Eof
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        use TokenKind::*;
        assert_eq!(
            kinds("a // line\n /* block \n still */ b"),
            vec![Ident("a".into()), Ident("b".into()), Eof]
        );
    }

    #[test]
    fn unterminated_comment_is_error() {
        assert!(lex("/* oops").is_err());
    }

    #[test]
    fn unexpected_char_is_error() {
        assert!(lex("int $x;").is_err());
    }

    #[test]
    fn spans_are_correct() {
        let toks = lex("ab cd").unwrap();
        assert_eq!(toks[0].span, Span::new(0, 2));
        assert_eq!(toks[1].span, Span::new(3, 5));
    }
}
