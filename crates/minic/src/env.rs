//! Semantic tables for a parsed program: struct layout, sizes, and
//! name canonicalization (typedef aliases).
//!
//! MiniC's unit of storage is the *cell* (one machine word). Every
//! scalar, pointer, mutex, and cond occupies one cell; a struct is its
//! fields laid out consecutively; an array of `n` elements of size `s`
//! occupies `n * s` cells. This mirrors the paper's treatment of an
//! array "like a single object of the array's base type".

use crate::ast::{Program, StructDef, Type, TypeKind};
use crate::diag::Diagnostic;
use std::collections::HashMap;

/// A resolved struct identifier (index into the struct table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StructId(pub usize);

/// Rewrites every `TypeKind::Named` that uses a typedef alias to the
/// struct's canonical name, so name comparisons are by identity.
///
/// Run this once on a freshly parsed program, before analysis.
pub fn canonicalize_struct_names(program: &mut Program) {
    use crate::ast::{Block, Expr, ExprKind, Stmt, StmtKind};
    use std::collections::HashMap;
    let aliases: HashMap<String, String> = program
        .structs
        .iter()
        .filter_map(|sd| {
            sd.alias
                .as_ref()
                .filter(|a| **a != sd.name)
                .map(|a| (a.clone(), sd.name.clone()))
        })
        .collect();
    if aliases.is_empty() {
        return;
    }
    let fix = |ty: &mut Type| {
        ty.for_each_level_mut(&mut |l| {
            if let TypeKind::Named(n) = &mut l.kind {
                if let Some(canon) = aliases.get(n) {
                    *n = canon.clone();
                }
            }
        });
    };
    fn fix_expr(e: &mut Expr, fix: &impl Fn(&mut Type)) {
        match &mut e.kind {
            ExprKind::Unary(_, a) => fix_expr(a, fix),
            ExprKind::Binary(_, a, b) => {
                fix_expr(a, fix);
                fix_expr(b, fix);
            }
            ExprKind::Index(a, b) => {
                fix_expr(a, fix);
                fix_expr(b, fix);
            }
            ExprKind::Field(a, _, _) => fix_expr(a, fix),
            ExprKind::Call(f, args) => {
                fix_expr(f, fix);
                for a in args {
                    fix_expr(a, fix);
                }
            }
            ExprKind::Cast(ty, a) | ExprKind::Scast(ty, a) | ExprKind::NewArray(ty, a) => {
                fix(ty);
                fix_expr(a, fix);
            }
            ExprKind::New(ty) | ExprKind::Sizeof(ty) => fix(ty),
            ExprKind::Ternary(c, a, b) => {
                fix_expr(c, fix);
                fix_expr(a, fix);
                fix_expr(b, fix);
            }
            _ => {}
        }
    }
    fn fix_stmt(s: &mut Stmt, fix: &impl Fn(&mut Type)) {
        match &mut s.kind {
            StmtKind::Decl { ty, init, .. } => {
                fix(ty);
                if let Some(e) = init {
                    fix_expr(e, fix);
                }
            }
            StmtKind::Assign { lhs, rhs } => {
                fix_expr(lhs, fix);
                fix_expr(rhs, fix);
            }
            StmtKind::Expr(e) => fix_expr(e, fix),
            StmtKind::If {
                cond,
                then_blk,
                else_blk,
            } => {
                fix_expr(cond, fix);
                fix_block(then_blk, fix);
                if let Some(eb) = else_blk {
                    fix_block(eb, fix);
                }
            }
            StmtKind::While { cond, body } => {
                fix_expr(cond, fix);
                fix_block(body, fix);
            }
            StmtKind::For {
                init,
                cond,
                step,
                body,
            } => {
                if let Some(i) = init {
                    fix_stmt(i, fix);
                }
                if let Some(c) = cond {
                    fix_expr(c, fix);
                }
                if let Some(st) = step {
                    fix_stmt(st, fix);
                }
                fix_block(body, fix);
            }
            StmtKind::Return(Some(e)) => fix_expr(e, fix),
            StmtKind::Block(b) => fix_block(b, fix),
            _ => {}
        }
    }
    fn fix_block(b: &mut Block, fix: &impl Fn(&mut Type)) {
        for s in &mut b.stmts {
            fix_stmt(s, fix);
        }
    }
    for sd in &mut program.structs {
        for f in &mut sd.fields {
            fix(&mut f.ty);
        }
    }
    for g in &mut program.globals {
        fix(&mut g.ty);
    }
    for f in &mut program.fns {
        fix(&mut f.ret);
        for p in &mut f.params {
            fix(&mut p.ty);
        }
        fix_block(&mut f.body, &fix);
    }
}

/// Layout information for one struct.
#[derive(Debug, Clone)]
pub struct StructLayout {
    /// Cell offset of each field, in declaration order.
    pub offsets: Vec<usize>,
    /// Total size in cells.
    pub size: usize,
}

/// Struct definitions with layouts and alias resolution.
#[derive(Debug, Clone)]
pub struct StructTable {
    defs: Vec<StructDef>,
    layouts: Vec<StructLayout>,
    by_name: HashMap<String, StructId>,
}

impl StructTable {
    /// Builds the table from a program, computing layouts.
    ///
    /// # Errors
    ///
    /// Reports duplicate struct names, unknown field types, and
    /// structs containing themselves by value (infinite size).
    pub fn build(program: &Program) -> Result<StructTable, Diagnostic> {
        let mut by_name = HashMap::new();
        for (i, sd) in program.structs.iter().enumerate() {
            let id = StructId(i);
            if by_name.insert(sd.name.clone(), id).is_some() {
                return Err(Diagnostic::error(
                    format!("duplicate struct name `{}`", sd.name),
                    sd.span,
                ));
            }
            if let Some(alias) = &sd.alias {
                if alias != &sd.name && by_name.insert(alias.clone(), id).is_some() {
                    return Err(Diagnostic::error(
                        format!("duplicate type name `{alias}`"),
                        sd.span,
                    ));
                }
            }
        }
        let mut table = StructTable {
            defs: program.structs.clone(),
            layouts: Vec::new(),
            by_name,
        };
        // Compute layouts with cycle detection.
        let mut sizes: Vec<Option<usize>> = vec![None; table.defs.len()];
        let mut in_progress = vec![false; table.defs.len()];
        for i in 0..table.defs.len() {
            table.size_of_struct(StructId(i), &mut sizes, &mut in_progress)?;
        }
        fn field_size(table: &StructTable, sizes: &[Option<usize>], ty: &Type) -> usize {
            match &ty.kind {
                TypeKind::Named(name) => {
                    let id = table.lookup(name).expect("checked during size pass");
                    sizes[id.0].expect("size computed")
                }
                TypeKind::Array(elem, n) => field_size(table, sizes, elem) * n,
                _ => 1,
            }
        }
        for i in 0..table.defs.len() {
            let mut offsets = Vec::with_capacity(table.defs[i].fields.len());
            let mut off = 0usize;
            for f in &table.defs[i].fields {
                offsets.push(off);
                off += field_size(&table, &sizes, &f.ty);
            }
            table.layouts.push(StructLayout {
                offsets,
                size: sizes[i].expect("size computed"),
            });
        }
        Ok(table)
    }

    fn size_of_struct(
        &self,
        id: StructId,
        sizes: &mut Vec<Option<usize>>,
        in_progress: &mut Vec<bool>,
    ) -> Result<usize, Diagnostic> {
        if let Some(s) = sizes[id.0] {
            return Ok(s);
        }
        let def = &self.defs[id.0];
        if in_progress[id.0] {
            return Err(Diagnostic::error(
                format!("struct `{}` contains itself by value", def.name),
                def.span,
            ));
        }
        in_progress[id.0] = true;
        let mut total = 0usize;
        for f in &def.fields {
            total += self.size_of_inner(&f.ty, sizes, in_progress, f.span)?;
        }
        in_progress[id.0] = false;
        // A struct with no fields still occupies one cell so it has an
        // address distinct from its neighbors.
        let total = total.max(1);
        sizes[id.0] = Some(total);
        Ok(total)
    }

    fn size_of_inner(
        &self,
        ty: &Type,
        sizes: &mut Vec<Option<usize>>,
        in_progress: &mut Vec<bool>,
        span: crate::span::Span,
    ) -> Result<usize, Diagnostic> {
        Ok(match &ty.kind {
            TypeKind::Named(name) => {
                let sid = self.lookup(name).ok_or_else(|| {
                    Diagnostic::error(format!("unknown struct type `{name}`"), span)
                })?;
                self.size_of_struct(sid, sizes, in_progress)?
            }
            TypeKind::Array(elem, n) => self.size_of_inner(elem, sizes, in_progress, span)? * n,
            TypeKind::Void => {
                return Err(Diagnostic::error("field of type void", span));
            }
            _ => 1,
        })
    }

    /// Resolves a struct name or typedef alias to its id.
    pub fn lookup(&self, name: &str) -> Option<StructId> {
        self.by_name.get(name).copied()
    }

    /// The definition of a struct.
    pub fn def(&self, id: StructId) -> &StructDef {
        &self.defs[id.0]
    }

    /// The layout of a struct.
    pub fn layout(&self, id: StructId) -> &StructLayout {
        &self.layouts[id.0]
    }

    /// Number of structs in the table.
    pub fn len(&self) -> usize {
        self.defs.len()
    }

    /// Returns true if no structs are defined.
    pub fn is_empty(&self) -> bool {
        self.defs.is_empty()
    }

    /// Iterates over `(id, def)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (StructId, &StructDef)> {
        self.defs.iter().enumerate().map(|(i, d)| (StructId(i), d))
    }

    /// Size of a type in cells.
    ///
    /// # Panics
    ///
    /// Panics if `ty` names an unknown struct (the table is built from
    /// the same program, so checked code never hits this).
    pub fn size_of(&self, ty: &Type) -> usize {
        match &ty.kind {
            TypeKind::Named(name) => {
                let id = self.lookup(name).expect("unknown struct in size_of");
                self.layouts[id.0].size
            }
            TypeKind::Array(elem, n) => self.size_of(elem) * n,
            _ => 1,
        }
    }

    /// Cell offset of `field` within struct `id`, with the field index.
    pub fn field_offset(&self, id: StructId, field: &str) -> Option<(usize, usize)> {
        let def = &self.defs[id.0];
        let idx = def.fields.iter().position(|f| f.name == field)?;
        Some((idx, self.layouts[id.0].offsets[idx]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    #[test]
    fn layout_of_simple_struct() {
        let p = parse("struct pair { int a; int b; };").unwrap();
        let t = StructTable::build(&p).unwrap();
        let id = t.lookup("pair").unwrap();
        assert_eq!(t.layout(id).size, 2);
        assert_eq!(t.field_offset(id, "a"), Some((0, 0)));
        assert_eq!(t.field_offset(id, "b"), Some((1, 1)));
    }

    #[test]
    fn nested_struct_layout() {
        let p = parse("struct inner { int x; int y; }; struct outer { struct inner i; int z; };")
            .unwrap();
        let t = StructTable::build(&p).unwrap();
        let id = t.lookup("outer").unwrap();
        assert_eq!(t.layout(id).size, 3);
        assert_eq!(t.field_offset(id, "z"), Some((1, 2)));
    }

    #[test]
    fn array_field_layout() {
        let p = parse("struct buf { int data[8]; int len; };").unwrap();
        let t = StructTable::build(&p).unwrap();
        let id = t.lookup("buf").unwrap();
        assert_eq!(t.layout(id).size, 9);
        assert_eq!(t.field_offset(id, "len"), Some((1, 8)));
    }

    #[test]
    fn self_reference_by_pointer_is_fine() {
        let p = parse("struct node { struct node * next; int v; };").unwrap();
        let t = StructTable::build(&p).unwrap();
        assert_eq!(t.layout(t.lookup("node").unwrap()).size, 2);
    }

    #[test]
    fn self_reference_by_value_is_error() {
        let p = parse("struct bad { struct bad inner; };").unwrap();
        assert!(StructTable::build(&p).is_err());
    }

    #[test]
    fn alias_resolves() {
        let p = parse("typedef struct stage { int x; } stage_t;").unwrap();
        let t = StructTable::build(&p).unwrap();
        assert_eq!(t.lookup("stage"), t.lookup("stage_t"));
    }

    #[test]
    fn size_of_types() {
        let p = parse("struct pair { int a; int b; };").unwrap();
        let t = StructTable::build(&p).unwrap();
        use crate::ast::Qual;
        assert_eq!(t.size_of(&Type::int(Qual::Infer)), 1);
        assert_eq!(
            t.size_of(&Type::ptr(Type::int(Qual::Infer), Qual::Infer)),
            1
        );
        let pair = Type::unqual(TypeKind::Named("pair".into()));
        assert_eq!(t.size_of(&pair), 2);
        let arr = Type::unqual(TypeKind::Array(Box::new(pair), 3));
        assert_eq!(t.size_of(&arr), 6);
    }
}
