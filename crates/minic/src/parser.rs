//! Recursive-descent parser for MiniC.
//!
//! The grammar is a C subset extended with SharC's sharing-mode
//! qualifiers. Types are written C-style with qualifiers *after* the
//! level they qualify:
//!
//! ```c
//! int dynamic * private p;          // private pointer to dynamic int
//! char locked(mut) *locked(mut) s;  // as in the paper's Figure 2
//! void (*q fun)(char private * fdata);  // function pointer field
//! ```

use crate::ast::*;
use crate::diag::Diagnostic;
use crate::lexer::lex;
use crate::span::Span;
use crate::token::{Token, TokenKind};

/// Parses a full MiniC translation unit.
///
/// # Errors
///
/// Returns the first syntax error encountered.
///
/// # Examples
///
/// ```
/// let prog = minic::parse("int g; void main() { g = 1; }").unwrap();
/// assert_eq!(prog.fns.len(), 1);
/// assert_eq!(prog.globals.len(), 1);
/// ```
pub fn parse(src: &str) -> Result<Program, Diagnostic> {
    let tokens = lex(src)?;
    Parser::new(tokens).program()
}

/// Parses a single expression, assigning node ids starting at
/// `first_id`. Used to synthesize lock-check expressions from
/// `locked(...)` paths.
///
/// # Errors
///
/// Returns a syntax error if `src` is not a single expression.
pub fn parse_expr(src: &str, first_id: u32) -> Result<Expr, Diagnostic> {
    let tokens = lex(src)?;
    let mut p = Parser::new(tokens);
    p.next_id = first_id;
    let e = p.expr()?;
    p.expect(TokenKind::Eof)?;
    Ok(e)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    next_id: u32,
    /// Struct names (and typedef aliases resolving to them) seen so far,
    /// so `stage_t *S;` parses as a declaration.
    type_names: Vec<String>,
}

type PResult<T> = Result<T, Diagnostic>;

impl Parser {
    fn new(tokens: Vec<Token>) -> Self {
        Parser {
            tokens,
            pos: 0,
            next_id: 0,
            type_names: Vec::new(),
        }
    }

    fn fresh_id(&mut self) -> NodeId {
        let id = NodeId(self.next_id);
        self.next_id += 1;
        id
    }

    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn peek_at(&self, n: usize) -> &TokenKind {
        let idx = (self.pos + n).min(self.tokens.len() - 1);
        &self.tokens[idx].kind
    }

    fn span(&self) -> Span {
        self.tokens[self.pos].span
    }

    fn prev_span(&self) -> Span {
        self.tokens[self.pos.saturating_sub(1)].span
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == kind {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: TokenKind) -> PResult<Token> {
        if self.peek() == &kind {
            Ok(self.bump())
        } else {
            Err(Diagnostic::error(
                format!("expected {kind}, found {}", self.peek()),
                self.span(),
            ))
        }
    }

    fn expect_ident(&mut self) -> PResult<(String, Span)> {
        let span = self.span();
        match self.peek().clone() {
            TokenKind::Ident(name) => {
                self.bump();
                Ok((name, span))
            }
            other => Err(Diagnostic::error(
                format!("expected identifier, found {other}"),
                span,
            )),
        }
    }

    fn is_type_start(&self) -> bool {
        self.is_type_start_at(0)
    }

    fn is_type_start_at(&self, n: usize) -> bool {
        match self.peek_at(n) {
            TokenKind::Ident(name) => self.type_names.iter().any(|t| t == name),
            k => k.starts_type(),
        }
    }

    // ----- program structure -----

    fn program(&mut self) -> PResult<Program> {
        let mut prog = Program {
            structs: Vec::new(),
            globals: Vec::new(),
            fns: Vec::new(),
        };
        while self.peek() != &TokenKind::Eof {
            match self.peek() {
                TokenKind::KwTypedef => {
                    let sd = self.typedef()?;
                    prog.structs.push(sd);
                }
                TokenKind::KwRacy if self.peek_at(1) == &TokenKind::KwStruct => {
                    self.bump();
                    let sd = self.struct_def(true)?;
                    prog.structs.push(sd);
                }
                TokenKind::KwStruct if matches!(self.peek_at(2), TokenKind::LBrace) => {
                    let sd = self.struct_def(false)?;
                    prog.structs.push(sd);
                }
                _ => self.global_or_fn(&mut prog)?,
            }
        }
        Ok(prog)
    }

    /// `typedef [racy] struct name { fields } alias;`
    fn typedef(&mut self) -> PResult<StructDef> {
        self.expect(TokenKind::KwTypedef)?;
        let racy = self.eat(&TokenKind::KwRacy);
        let mut sd = self.struct_body(racy)?;
        // Alias name; we register it as referring to the same struct.
        let (alias, _) = self.expect_ident()?;
        self.expect(TokenKind::Semi)?;
        // Keep the struct's own name if it has one; otherwise use alias.
        if sd.name.is_empty() {
            sd.name = alias.clone();
        }
        self.type_names.push(sd.name.clone());
        if alias != sd.name {
            // An alias is a second name for the same struct. We record it
            // by pushing the alias as a known type name and relying on
            // name canonicalization in `struct_body` callers: MiniC
            // treats the alias as the canonical name if distinct.
            self.type_names.push(alias.clone());
        }
        sd.alias = Some(alias);
        Ok(sd)
    }

    /// `[racy] struct name { fields } ;`
    fn struct_def(&mut self, racy: bool) -> PResult<StructDef> {
        let sd = self.struct_body(racy)?;
        self.expect(TokenKind::Semi)?;
        self.type_names.push(sd.name.clone());
        Ok(sd)
    }

    fn struct_body(&mut self, racy: bool) -> PResult<StructDef> {
        let start = self.span();
        self.expect(TokenKind::KwStruct)?;
        let name = match self.peek().clone() {
            TokenKind::Ident(n) => {
                self.bump();
                // Make the struct name usable inside its own body
                // (e.g. `struct stage *next;`).
                self.type_names.push(n.clone());
                n
            }
            _ => String::new(),
        };
        self.expect(TokenKind::LBrace)?;
        let mut fields = Vec::new();
        while !self.eat(&TokenKind::RBrace) {
            let base = self.type_prefix()?;
            loop {
                let (ty, fname, fspan) = self.declarator(base.clone())?;
                fields.push(Field {
                    name: fname,
                    ty,
                    span: fspan,
                });
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect(TokenKind::Semi)?;
        }
        Ok(StructDef {
            name,
            fields,
            racy,
            span: start.to(self.prev_span()),
            alias: None,
        })
    }

    fn global_or_fn(&mut self, prog: &mut Program) -> PResult<()> {
        let start = self.span();
        if !self.is_type_start() {
            return Err(Diagnostic::error(
                format!("expected declaration, found {}", self.peek()),
                start,
            ));
        }
        let base = self.type_prefix()?;
        let (ty, name, _) = self.declarator(base.clone())?;
        if self.peek() == &TokenKind::LParen {
            // Function definition.
            self.bump();
            let mut params = Vec::new();
            if !self.eat(&TokenKind::RParen) {
                loop {
                    params.push(self.param()?);
                    if !self.eat(&TokenKind::Comma) {
                        break;
                    }
                }
                self.expect(TokenKind::RParen)?;
            }
            let body = self.block()?;
            prog.fns.push(FnDef {
                name,
                ret: ty,
                params,
                body,
                span: start.to(self.prev_span()),
            });
        } else {
            // Global(s).
            let mut push_global =
                |p: &mut Self, ty: Type, name: String, span: Span| -> PResult<()> {
                    let init = if p.eat(&TokenKind::Assign) {
                        Some(p.expr()?)
                    } else {
                        None
                    };
                    prog.globals.push(GlobalDef {
                        name,
                        ty,
                        init,
                        span,
                    });
                    Ok(())
                };
            push_global(self, ty, name, start.to(self.prev_span()))?;
            while self.eat(&TokenKind::Comma) {
                let (ty2, name2, sp2) = self.declarator(base.clone())?;
                push_global(self, ty2, name2, sp2)?;
            }
            self.expect(TokenKind::Semi)?;
        }
        Ok(())
    }

    fn param(&mut self) -> PResult<Param> {
        let start = self.span();
        let base = self.type_prefix()?;
        let (ty, name, _) = self.declarator_opt_name(base)?;
        Ok(Param {
            name,
            ty,
            span: start.to(self.prev_span()),
        })
    }

    // ----- types -----

    /// Parses the base type and the qualifiers that follow it:
    /// `int dynamic`, `struct stage`, `char locked(mut)`, `stage_t`.
    fn type_prefix(&mut self) -> PResult<Type> {
        let kind = match self.peek().clone() {
            TokenKind::KwInt => {
                self.bump();
                TypeKind::Int
            }
            TokenKind::KwChar => {
                self.bump();
                TypeKind::Char
            }
            TokenKind::KwBool => {
                self.bump();
                TypeKind::Bool
            }
            TokenKind::KwVoid => {
                self.bump();
                TypeKind::Void
            }
            TokenKind::KwMutex => {
                self.bump();
                TypeKind::Mutex
            }
            TokenKind::KwCond => {
                self.bump();
                TypeKind::Cond
            }
            TokenKind::KwStruct => {
                self.bump();
                let (name, _) = self.expect_ident()?;
                TypeKind::Named(name)
            }
            TokenKind::Ident(name) if self.type_names.iter().any(|t| t == &name) => {
                self.bump();
                TypeKind::Named(name)
            }
            other => {
                return Err(Diagnostic::error(
                    format!("expected type, found {other}"),
                    self.span(),
                ))
            }
        };
        let qual = self.quals()?;
        Ok(Type { kind, qual })
    }

    /// Parses zero or more qualifier keywords, returning the last one
    /// written (duplicates are a parse error) or `Qual::Infer`.
    fn quals(&mut self) -> PResult<Qual> {
        let mut qual = Qual::Infer;
        loop {
            let q = match self.peek() {
                TokenKind::KwPrivate => Qual::Private,
                TokenKind::KwReadonly => Qual::Readonly,
                TokenKind::KwRacy => Qual::Racy,
                TokenKind::KwDynamic => Qual::Dynamic,
                TokenKind::KwLocked => {
                    let start = self.span();
                    self.bump();
                    self.expect(TokenKind::LParen)?;
                    let path = self.lock_path()?;
                    self.expect(TokenKind::RParen)?;
                    if qual != Qual::Infer {
                        return Err(Diagnostic::error(
                            "conflicting sharing-mode qualifiers",
                            start,
                        ));
                    }
                    qual = Qual::Locked(path);
                    continue;
                }
                _ => break,
            };
            if qual != Qual::Infer {
                return Err(Diagnostic::error(
                    "conflicting sharing-mode qualifiers",
                    self.span(),
                ));
            }
            self.bump();
            qual = q;
        }
        Ok(qual)
    }

    fn lock_path(&mut self) -> PResult<LockPath> {
        let start = self.span();
        let (base, _) = self.expect_ident()?;
        let mut segs = vec![base];
        while self.eat(&TokenKind::Arrow) {
            let (seg, _) = self.expect_ident()?;
            segs.push(seg);
        }
        Ok(LockPath::new(segs, start.to(self.prev_span())))
    }

    /// Parses `* qual*` pointer layers, the declared name, and array
    /// suffixes. Also handles function-pointer declarators
    /// `( * qual* name ) ( params )`.
    fn declarator(&mut self, base: Type) -> PResult<(Type, String, Span)> {
        let (ty, name, span) = self.declarator_opt_name(base)?;
        if name.is_empty() {
            return Err(Diagnostic::error("expected name in declaration", span));
        }
        Ok((ty, name, span))
    }

    fn declarator_opt_name(&mut self, base: Type) -> PResult<(Type, String, Span)> {
        let mut ty = base;
        while self.eat(&TokenKind::Star) {
            let qual = self.quals()?;
            ty = Type::ptr(ty, qual);
        }
        // Function-pointer declarator: `( * qual* name? ) ( params )`.
        if self.peek() == &TokenKind::LParen && self.peek_at(1) == &TokenKind::Star {
            self.bump(); // (
            self.bump(); // *
            let qual = self.quals()?;
            let (name, nspan) = match self.peek().clone() {
                TokenKind::Ident(n) => {
                    let sp = self.span();
                    self.bump();
                    (n, sp)
                }
                _ => (String::new(), self.span()),
            };
            self.expect(TokenKind::RParen)?;
            self.expect(TokenKind::LParen)?;
            let mut params = Vec::new();
            if !self.eat(&TokenKind::RParen) {
                loop {
                    params.push(self.param()?);
                    if !self.eat(&TokenKind::Comma) {
                        break;
                    }
                }
                self.expect(TokenKind::RParen)?;
            }
            let sig = FnSig { ret: ty, params };
            let fn_ty = Type::new(TypeKind::Fn(Box::new(sig)), Qual::Infer);
            return Ok((Type::ptr(fn_ty, qual), name, nspan));
        }
        let (name, nspan) = match self.peek().clone() {
            TokenKind::Ident(n) => {
                let sp = self.span();
                self.bump();
                (n, sp)
            }
            _ => (String::new(), self.span()),
        };
        while self.eat(&TokenKind::LBracket) {
            let len = match self.peek().clone() {
                TokenKind::IntLit(n) if n >= 0 => {
                    self.bump();
                    n as usize
                }
                other => {
                    return Err(Diagnostic::error(
                        format!("expected array length, found {other}"),
                        self.span(),
                    ))
                }
            };
            self.expect(TokenKind::RBracket)?;
            let q = ty.qual.clone();
            ty = Type::new(TypeKind::Array(Box::new(ty), len), q);
        }
        Ok((ty, name, nspan))
    }

    /// Parses a type with an abstract declarator (no name), as used in
    /// casts and `SCAST`/`new` arguments: `char private *`.
    fn abstract_type(&mut self) -> PResult<Type> {
        let base = self.type_prefix()?;
        let mut ty = base;
        while self.eat(&TokenKind::Star) {
            let qual = self.quals()?;
            ty = Type::ptr(ty, qual);
        }
        Ok(ty)
    }

    // ----- statements -----

    fn block(&mut self) -> PResult<Block> {
        self.expect(TokenKind::LBrace)?;
        let mut stmts = Vec::new();
        while !self.eat(&TokenKind::RBrace) {
            self.stmt_into(&mut stmts)?;
        }
        Ok(Block { stmts })
    }

    /// Parses one statement; declarations with multiple declarators
    /// push several statements.
    fn stmt_into(&mut self, out: &mut Vec<Stmt>) -> PResult<()> {
        let start = self.span();
        match self.peek() {
            TokenKind::LBrace => {
                let b = self.block()?;
                let id = self.fresh_id();
                out.push(Stmt {
                    kind: StmtKind::Block(b),
                    span: start.to(self.prev_span()),
                    id,
                });
            }
            TokenKind::KwIf => {
                self.bump();
                self.expect(TokenKind::LParen)?;
                let cond = self.expr()?;
                self.expect(TokenKind::RParen)?;
                let then_blk = self.block_or_single()?;
                let else_blk = if self.eat(&TokenKind::KwElse) {
                    Some(self.block_or_single()?)
                } else {
                    None
                };
                let id = self.fresh_id();
                out.push(Stmt {
                    kind: StmtKind::If {
                        cond,
                        then_blk,
                        else_blk,
                    },
                    span: start.to(self.prev_span()),
                    id,
                });
            }
            TokenKind::KwWhile => {
                self.bump();
                self.expect(TokenKind::LParen)?;
                let cond = self.expr()?;
                self.expect(TokenKind::RParen)?;
                let body = self.block_or_single()?;
                let id = self.fresh_id();
                out.push(Stmt {
                    kind: StmtKind::While { cond, body },
                    span: start.to(self.prev_span()),
                    id,
                });
            }
            TokenKind::KwFor => {
                self.bump();
                self.expect(TokenKind::LParen)?;
                let init = if self.peek() == &TokenKind::Semi {
                    self.bump();
                    None
                } else {
                    let mut tmp = Vec::new();
                    self.simple_stmt_into(&mut tmp)?;
                    self.expect(TokenKind::Semi)?;
                    if tmp.len() != 1 {
                        return Err(Diagnostic::error(
                            "for-init must be a single declaration or assignment",
                            start,
                        ));
                    }
                    Some(Box::new(tmp.pop().unwrap()))
                };
                let cond = if self.peek() == &TokenKind::Semi {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(TokenKind::Semi)?;
                let step = if self.peek() == &TokenKind::RParen {
                    None
                } else {
                    let mut tmp = Vec::new();
                    self.simple_stmt_into(&mut tmp)?;
                    if tmp.len() != 1 {
                        return Err(Diagnostic::error(
                            "for-step must be a single assignment",
                            start,
                        ));
                    }
                    Some(Box::new(tmp.pop().unwrap()))
                };
                self.expect(TokenKind::RParen)?;
                let body = self.block_or_single()?;
                let id = self.fresh_id();
                out.push(Stmt {
                    kind: StmtKind::For {
                        init,
                        cond,
                        step,
                        body,
                    },
                    span: start.to(self.prev_span()),
                    id,
                });
            }
            TokenKind::KwReturn => {
                self.bump();
                let value = if self.peek() == &TokenKind::Semi {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(TokenKind::Semi)?;
                let id = self.fresh_id();
                out.push(Stmt {
                    kind: StmtKind::Return(value),
                    span: start.to(self.prev_span()),
                    id,
                });
            }
            TokenKind::KwBreak => {
                self.bump();
                self.expect(TokenKind::Semi)?;
                let id = self.fresh_id();
                out.push(Stmt {
                    kind: StmtKind::Break,
                    span: start,
                    id,
                });
            }
            TokenKind::KwContinue => {
                self.bump();
                self.expect(TokenKind::Semi)?;
                let id = self.fresh_id();
                out.push(Stmt {
                    kind: StmtKind::Continue,
                    span: start,
                    id,
                });
            }
            _ => {
                self.simple_stmt_into(out)?;
                self.expect(TokenKind::Semi)?;
            }
        }
        Ok(())
    }

    /// A single statement, or a braced block, wrapped as a Block either
    /// way (for `if`/`while`/`for` bodies).
    fn block_or_single(&mut self) -> PResult<Block> {
        if self.peek() == &TokenKind::LBrace {
            self.block()
        } else {
            let mut stmts = Vec::new();
            self.stmt_into(&mut stmts)?;
            Ok(Block { stmts })
        }
    }

    /// Declarations, assignments, and expression statements — without
    /// the trailing semicolon (shared with `for` headers).
    fn simple_stmt_into(&mut self, out: &mut Vec<Stmt>) -> PResult<()> {
        let start = self.span();
        if self.is_type_start() {
            let base = self.type_prefix()?;
            loop {
                let (ty, name, _) = self.declarator(base.clone())?;
                let init = if self.eat(&TokenKind::Assign) {
                    Some(self.expr()?)
                } else {
                    None
                };
                let id = self.fresh_id();
                out.push(Stmt {
                    kind: StmtKind::Decl { name, ty, init },
                    span: start.to(self.prev_span()),
                    id,
                });
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
            return Ok(());
        }
        let lhs = self.expr()?;
        let kind = match self.peek().clone() {
            TokenKind::Assign => {
                self.bump();
                let rhs = self.expr()?;
                StmtKind::Assign { lhs, rhs }
            }
            k @ (TokenKind::PlusEq
            | TokenKind::MinusEq
            | TokenKind::StarEq
            | TokenKind::SlashEq) => {
                self.bump();
                let op = match k {
                    TokenKind::PlusEq => BinOp::Add,
                    TokenKind::MinusEq => BinOp::Sub,
                    TokenKind::StarEq => BinOp::Mul,
                    _ => BinOp::Div,
                };
                let rhs = self.expr()?;
                let lhs_copy = self.refresh_ids(&lhs);
                let id = self.fresh_id();
                let desugared = Expr {
                    span: lhs.span.to(rhs.span),
                    id,
                    kind: ExprKind::Binary(op, Box::new(lhs_copy), Box::new(rhs)),
                };
                StmtKind::Assign {
                    lhs,
                    rhs: desugared,
                }
            }
            TokenKind::PlusPlus | TokenKind::MinusMinus => {
                let op = if self.peek() == &TokenKind::PlusPlus {
                    BinOp::Add
                } else {
                    BinOp::Sub
                };
                self.bump();
                let lhs_copy = self.refresh_ids(&lhs);
                let one_id = self.fresh_id();
                let one = Expr {
                    kind: ExprKind::IntLit(1),
                    span: self.prev_span(),
                    id: one_id,
                };
                let id = self.fresh_id();
                let desugared = Expr {
                    span: lhs.span,
                    id,
                    kind: ExprKind::Binary(op, Box::new(lhs_copy), Box::new(one)),
                };
                StmtKind::Assign {
                    lhs,
                    rhs: desugared,
                }
            }
            _ => StmtKind::Expr(lhs),
        };
        let id = self.fresh_id();
        out.push(Stmt {
            kind,
            span: start.to(self.prev_span()),
            id,
        });
        Ok(())
    }

    /// Clones an expression assigning fresh node ids throughout (used
    /// when desugaring `x += e` into `x = x + e`).
    fn refresh_ids(&mut self, e: &Expr) -> Expr {
        let kind = match &e.kind {
            ExprKind::Unary(op, a) => ExprKind::Unary(*op, Box::new(self.refresh_ids(a))),
            ExprKind::Binary(op, a, b) => ExprKind::Binary(
                *op,
                Box::new(self.refresh_ids(a)),
                Box::new(self.refresh_ids(b)),
            ),
            ExprKind::Index(a, b) => {
                ExprKind::Index(Box::new(self.refresh_ids(a)), Box::new(self.refresh_ids(b)))
            }
            ExprKind::Field(a, f, arrow) => {
                ExprKind::Field(Box::new(self.refresh_ids(a)), f.clone(), *arrow)
            }
            ExprKind::Call(f, args) => ExprKind::Call(
                Box::new(self.refresh_ids(f)),
                args.iter().map(|a| self.refresh_ids(a)).collect(),
            ),
            ExprKind::Cast(t, a) => ExprKind::Cast(t.clone(), Box::new(self.refresh_ids(a))),
            ExprKind::Scast(t, a) => ExprKind::Scast(t.clone(), Box::new(self.refresh_ids(a))),
            ExprKind::NewArray(t, a) => {
                ExprKind::NewArray(t.clone(), Box::new(self.refresh_ids(a)))
            }
            ExprKind::Ternary(c, a, b) => ExprKind::Ternary(
                Box::new(self.refresh_ids(c)),
                Box::new(self.refresh_ids(a)),
                Box::new(self.refresh_ids(b)),
            ),
            other => other.clone(),
        };
        Expr {
            kind,
            span: e.span,
            id: self.fresh_id(),
        }
    }

    // ----- expressions -----

    fn expr(&mut self) -> PResult<Expr> {
        self.ternary()
    }

    fn ternary(&mut self) -> PResult<Expr> {
        let cond = self.binary(0)?;
        if self.eat(&TokenKind::Question) {
            let then = self.expr()?;
            self.expect(TokenKind::Colon)?;
            let els = self.ternary()?;
            let id = self.fresh_id();
            let span = cond.span.to(els.span);
            return Ok(Expr {
                kind: ExprKind::Ternary(Box::new(cond), Box::new(then), Box::new(els)),
                span,
                id,
            });
        }
        Ok(cond)
    }

    fn binop_for(&self, k: &TokenKind) -> Option<(BinOp, u8)> {
        use BinOp::*;
        use TokenKind as T;
        Some(match k {
            T::PipePipe => (Or, 1),
            T::AmpAmp => (And, 2),
            T::Pipe => (BitOr, 3),
            T::Caret => (BitXor, 4),
            T::Amp => (BitAnd, 5),
            T::EqEq => (Eq, 6),
            T::NotEq => (Ne, 6),
            T::Lt => (Lt, 7),
            T::Le => (Le, 7),
            T::Gt => (Gt, 7),
            T::Ge => (Ge, 7),
            T::Shl => (Shl, 8),
            T::Shr => (Shr, 8),
            T::Plus => (Add, 9),
            T::Minus => (Sub, 9),
            T::Star => (Mul, 10),
            T::Slash => (Div, 10),
            T::Percent => (Rem, 10),
            _ => return None,
        })
    }

    fn binary(&mut self, min_prec: u8) -> PResult<Expr> {
        let mut lhs = self.unary()?;
        while let Some((op, prec)) = self.binop_for(self.peek()) {
            if prec < min_prec {
                break;
            }
            self.bump();
            let rhs = self.binary(prec + 1)?;
            let id = self.fresh_id();
            let span = lhs.span.to(rhs.span);
            lhs = Expr {
                kind: ExprKind::Binary(op, Box::new(lhs), Box::new(rhs)),
                span,
                id,
            };
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> PResult<Expr> {
        let start = self.span();
        let op = match self.peek() {
            TokenKind::Star => Some(UnOp::Deref),
            TokenKind::Amp => Some(UnOp::AddrOf),
            TokenKind::Minus => Some(UnOp::Neg),
            TokenKind::Bang => Some(UnOp::Not),
            TokenKind::Tilde => Some(UnOp::BitNot),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let inner = self.unary()?;
            let id = self.fresh_id();
            let span = start.to(inner.span);
            return Ok(Expr {
                kind: ExprKind::Unary(op, Box::new(inner)),
                span,
                id,
            });
        }
        self.postfix()
    }

    fn postfix(&mut self) -> PResult<Expr> {
        let mut e = self.primary()?;
        loop {
            match self.peek().clone() {
                TokenKind::LBracket => {
                    self.bump();
                    let idx = self.expr()?;
                    self.expect(TokenKind::RBracket)?;
                    let id = self.fresh_id();
                    let span = e.span.to(self.prev_span());
                    e = Expr {
                        kind: ExprKind::Index(Box::new(e), Box::new(idx)),
                        span,
                        id,
                    };
                }
                TokenKind::Dot => {
                    self.bump();
                    let (name, _) = self.expect_ident()?;
                    let id = self.fresh_id();
                    let span = e.span.to(self.prev_span());
                    e = Expr {
                        kind: ExprKind::Field(Box::new(e), name, false),
                        span,
                        id,
                    };
                }
                TokenKind::Arrow => {
                    self.bump();
                    let (name, _) = self.expect_ident()?;
                    let id = self.fresh_id();
                    let span = e.span.to(self.prev_span());
                    e = Expr {
                        kind: ExprKind::Field(Box::new(e), name, true),
                        span,
                        id,
                    };
                }
                TokenKind::LParen => {
                    self.bump();
                    let mut args = Vec::new();
                    if !self.eat(&TokenKind::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat(&TokenKind::Comma) {
                                break;
                            }
                        }
                        self.expect(TokenKind::RParen)?;
                    }
                    let id = self.fresh_id();
                    let span = e.span.to(self.prev_span());
                    e = Expr {
                        kind: ExprKind::Call(Box::new(e), args),
                        span,
                        id,
                    };
                }
                _ => break,
            }
        }
        Ok(e)
    }

    fn primary(&mut self) -> PResult<Expr> {
        let start = self.span();
        let kind = match self.peek().clone() {
            TokenKind::IntLit(v) => {
                self.bump();
                ExprKind::IntLit(v)
            }
            TokenKind::CharLit(c) => {
                self.bump();
                ExprKind::CharLit(c)
            }
            TokenKind::StrLit(s) => {
                self.bump();
                ExprKind::StrLit(s)
            }
            TokenKind::KwTrue => {
                self.bump();
                ExprKind::BoolLit(true)
            }
            TokenKind::KwFalse => {
                self.bump();
                ExprKind::BoolLit(false)
            }
            TokenKind::KwNull => {
                self.bump();
                ExprKind::Null
            }
            TokenKind::Ident(name) => {
                self.bump();
                ExprKind::Ident(name)
            }
            TokenKind::KwScast => {
                self.bump();
                self.expect(TokenKind::LParen)?;
                let ty = self.abstract_type()?;
                self.expect(TokenKind::Comma)?;
                let e = self.expr()?;
                self.expect(TokenKind::RParen)?;
                ExprKind::Scast(ty, Box::new(e))
            }
            TokenKind::KwNew => {
                self.bump();
                self.expect(TokenKind::LParen)?;
                let ty = self.abstract_type()?;
                self.expect(TokenKind::RParen)?;
                ExprKind::New(ty)
            }
            TokenKind::KwNewArray => {
                self.bump();
                self.expect(TokenKind::LParen)?;
                let ty = self.abstract_type()?;
                self.expect(TokenKind::Comma)?;
                let n = self.expr()?;
                self.expect(TokenKind::RParen)?;
                ExprKind::NewArray(ty, Box::new(n))
            }
            TokenKind::KwSizeof => {
                self.bump();
                self.expect(TokenKind::LParen)?;
                let ty = self.abstract_type()?;
                self.expect(TokenKind::RParen)?;
                ExprKind::Sizeof(ty)
            }
            TokenKind::LParen => {
                self.bump();
                if self.is_type_start() {
                    // A cast: `(type) expr`.
                    let ty = self.abstract_type()?;
                    self.expect(TokenKind::RParen)?;
                    let e = self.unary()?;
                    let id = self.fresh_id();
                    let span = start.to(e.span);
                    return Ok(Expr {
                        kind: ExprKind::Cast(ty, Box::new(e)),
                        span,
                        id,
                    });
                }
                let e = self.expr()?;
                self.expect(TokenKind::RParen)?;
                return Ok(e);
            }
            other => {
                return Err(Diagnostic::error(
                    format!("expected expression, found {other}"),
                    start,
                ))
            }
        };
        let id = self.fresh_id();
        Ok(Expr {
            kind,
            span: start.to(self.prev_span()),
            id,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_globals_and_fn() {
        let p = parse("int g; int h = 5; void main() { g = h; }").unwrap();
        assert_eq!(p.globals.len(), 2);
        assert_eq!(p.fns.len(), 1);
        assert!(p.globals[1].init.is_some());
    }

    #[test]
    fn parses_qualified_types() {
        let p = parse("int dynamic * private p;").unwrap();
        let ty = &p.globals[0].ty;
        assert_eq!(ty.qual, Qual::Private);
        assert_eq!(ty.pointee().unwrap().qual, Qual::Dynamic);
    }

    #[test]
    fn parses_locked_qualifier() {
        let p =
            parse("struct s { mutex racy * readonly mut; char locked(mut) * locked(mut) sdata; };")
                .unwrap();
        let sd = &p.structs[0];
        let sdata = sd.field("sdata").unwrap();
        match &sdata.ty.qual {
            Qual::Locked(path) => assert_eq!(path.to_string(), "mut"),
            other => panic!("expected locked, got {other:?}"),
        }
        match &sdata.ty.pointee().unwrap().qual {
            Qual::Locked(_) => {}
            other => panic!("expected locked pointee, got {other:?}"),
        }
    }

    #[test]
    fn parses_fn_pointer_field() {
        let p = parse("struct stage { void (*fun)(char private * fdata); };").unwrap();
        let f = p.structs[0].field("fun").unwrap();
        let fn_ty = f.ty.pointee().unwrap();
        match &fn_ty.kind {
            TypeKind::Fn(sig) => {
                assert!(sig.ret.is_void());
                assert_eq!(sig.params.len(), 1);
                assert_eq!(sig.params[0].ty.pointee().unwrap().qual, Qual::Private);
            }
            other => panic!("expected fn type, got {other:?}"),
        }
    }

    #[test]
    fn parses_typedef_struct() {
        let p = parse(
            "typedef struct stage { struct stage * next; } stage_t;\n\
             void f() { stage_t * s; s = NULL; }",
        )
        .unwrap();
        assert_eq!(p.structs[0].name, "stage");
        assert_eq!(p.structs[0].alias.as_deref(), Some("stage_t"));
    }

    #[test]
    fn parses_scast() {
        let p =
            parse("void f(char dynamic * d) { char private * l; l = SCAST(char private *, d); }")
                .unwrap();
        let body = &p.fns[0].body;
        match &body.stmts[1].kind {
            StmtKind::Assign { rhs, .. } => {
                assert!(matches!(rhs.kind, ExprKind::Scast(..)));
            }
            other => panic!("expected assign, got {other:?}"),
        }
    }

    #[test]
    fn parses_control_flow() {
        let p = parse(
            "void f() { int i; for (i = 0; i < 10; i++) { if (i % 2 == 0) continue; else break; } \
             while (i > 0) i -= 1; return; }",
        )
        .unwrap();
        assert_eq!(p.fns.len(), 1);
    }

    #[test]
    fn desugars_compound_assignment() {
        let p = parse("void f() { int x; x += 3; }").unwrap();
        match &p.fns[0].body.stmts[1].kind {
            StmtKind::Assign { rhs, .. } => {
                assert!(matches!(rhs.kind, ExprKind::Binary(BinOp::Add, ..)));
            }
            other => panic!("expected assign, got {other:?}"),
        }
    }

    #[test]
    fn parses_pipeline_example() {
        // The paper's Figure 1 program (annotated variant).
        let src = r#"
            typedef struct stage {
                struct stage * next;
                cond racy * cv;
                mutex racy * readonly mut;
                char locked(mut) * locked(mut) sdata;
                void (* fun)(char private * fdata);
            } stage_t;

            int notDone;

            void thrFunc(stage_t * d) {
                stage_t * S = d;
                stage_t * nextS = S->next;
                char private * ldata;
                while (notDone) {
                    mutex_lock(S->mut);
                    while (S->sdata == NULL)
                        cond_wait(S->cv, S->mut);
                    ldata = SCAST(char private *, S->sdata);
                    S->sdata = NULL;
                    cond_signal(S->cv);
                    mutex_unlock(S->mut);
                    S->fun(ldata);
                    if (nextS) {
                        mutex_lock(nextS->mut);
                        while (nextS->sdata)
                            cond_wait(nextS->cv, nextS->mut);
                        nextS->sdata = SCAST(char locked(mut) *, ldata);
                        cond_signal(nextS->cv);
                        mutex_unlock(nextS->mut);
                    }
                }
            }
        "#;
        let p = parse(src).unwrap();
        assert_eq!(p.structs.len(), 1);
        assert_eq!(p.fns.len(), 1);
        assert_eq!(p.globals.len(), 1);
    }

    #[test]
    fn rejects_conflicting_quals() {
        assert!(parse("int private dynamic x;").is_err());
    }

    #[test]
    fn parses_arrays() {
        let p = parse("int buf[16]; void f() { buf[3] = 7; }").unwrap();
        match &p.globals[0].ty.kind {
            TypeKind::Array(elem, 16) => assert!(elem.is_integral()),
            other => panic!("expected array, got {other:?}"),
        }
    }

    #[test]
    fn parses_ternary_and_casts() {
        let p = parse("void f() { int x; x = (int)(x > 0 ? x : 0 - x); }").unwrap();
        assert_eq!(p.fns.len(), 1);
    }
}
