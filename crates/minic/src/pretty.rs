//! Pretty-printer for MiniC programs and fragments.
//!
//! Used to reproduce the paper's Figure 2 (the program with inferred
//! qualifiers shown) and to render l-values in conflict reports
//! (e.g. `S->sdata`, `*(fdata + i)`).

use crate::ast::*;
use std::fmt::Write as _;

/// Renders a whole program, including all qualifier annotations.
pub fn program(p: &Program) -> String {
    let mut out = String::new();
    for sd in &p.structs {
        out.push_str(&struct_def(sd));
        out.push('\n');
    }
    for g in &p.globals {
        let init = g
            .init
            .as_ref()
            .map(|e| format!(" = {}", expr(e)))
            .unwrap_or_default();
        let _ = writeln!(out, "{}{};", decl(&g.ty, &g.name), init);
    }
    if !p.globals.is_empty() {
        out.push('\n');
    }
    for f in &p.fns {
        out.push_str(&fn_def(f));
        out.push('\n');
    }
    out
}

/// Renders one struct definition.
pub fn struct_def(sd: &StructDef) -> String {
    let mut out = String::new();
    let racy = if sd.racy { "racy " } else { "" };
    if let Some(alias) = &sd.alias {
        let _ = writeln!(out, "typedef {racy}struct {} {{", sd.name);
        for f in &sd.fields {
            let _ = writeln!(out, "    {};", decl(&f.ty, &f.name));
        }
        let _ = writeln!(out, "}} {alias};");
    } else {
        let _ = writeln!(out, "{racy}struct {} {{", sd.name);
        for f in &sd.fields {
            let _ = writeln!(out, "    {};", decl(&f.ty, &f.name));
        }
        let _ = writeln!(out, "}};");
    }
    out
}

/// Renders one function definition.
pub fn fn_def(f: &FnDef) -> String {
    let params = f
        .params
        .iter()
        .map(|p| decl(&p.ty, &p.name))
        .collect::<Vec<_>>()
        .join(", ");
    let mut out = format!("{}({params}) ", decl(&f.ret, &f.name));
    out.push_str(&block(&f.body, 0));
    out
}

fn indent(n: usize) -> String {
    "    ".repeat(n)
}

fn block(b: &Block, depth: usize) -> String {
    let mut out = String::from("{\n");
    for s in &b.stmts {
        out.push_str(&stmt(s, depth + 1));
    }
    let _ = writeln!(out, "{}}}", indent(depth));
    out
}

fn stmt(s: &Stmt, depth: usize) -> String {
    let pad = indent(depth);
    match &s.kind {
        StmtKind::Decl { name, ty, init } => {
            let init = init
                .as_ref()
                .map(|e| format!(" = {}", expr(e)))
                .unwrap_or_default();
            format!("{pad}{}{init};\n", decl(ty, name))
        }
        StmtKind::Assign { lhs, rhs } => format!("{pad}{} = {};\n", expr(lhs), expr(rhs)),
        StmtKind::Expr(e) => format!("{pad}{};\n", expr(e)),
        StmtKind::If {
            cond,
            then_blk,
            else_blk,
        } => {
            let mut out = format!("{pad}if ({}) {}", expr(cond), block(then_blk, depth));
            if let Some(eb) = else_blk {
                out.pop();
                let _ = write!(out, " else {}", block(eb, depth));
            }
            out
        }
        StmtKind::While { cond, body } => {
            format!("{pad}while ({}) {}", expr(cond), block(body, depth))
        }
        StmtKind::For {
            init,
            cond,
            step,
            body,
        } => {
            let i = init.as_ref().map(|s| stmt_inline(s)).unwrap_or_default();
            let c = cond.as_ref().map(expr).unwrap_or_default();
            let st = step.as_ref().map(|s| stmt_inline(s)).unwrap_or_default();
            format!("{pad}for ({i}; {c}; {st}) {}", block(body, depth))
        }
        StmtKind::Return(None) => format!("{pad}return;\n"),
        StmtKind::Return(Some(e)) => format!("{pad}return {};\n", expr(e)),
        StmtKind::Break => format!("{pad}break;\n"),
        StmtKind::Continue => format!("{pad}continue;\n"),
        StmtKind::Block(b) => format!("{pad}{}", block(b, depth)),
    }
}

fn stmt_inline(s: &Stmt) -> String {
    match &s.kind {
        StmtKind::Decl { name, ty, init } => {
            let init = init
                .as_ref()
                .map(|e| format!(" = {}", expr(e)))
                .unwrap_or_default();
            format!("{}{init}", decl(ty, name))
        }
        StmtKind::Assign { lhs, rhs } => format!("{} = {}", expr(lhs), expr(rhs)),
        StmtKind::Expr(e) => expr(e),
        _ => String::from("..."),
    }
}

/// Renders a declaration `type name`, C-style with qualifiers after
/// the level they qualify: `char locked(mut) *locked(mut) sdata`.
pub fn decl(ty: &Type, name: &str) -> String {
    // Unwind pointer/array layers to find the base.
    match &ty.kind {
        TypeKind::Ptr(inner) => {
            if let TypeKind::Fn(sig) = &inner.kind {
                let params = sig
                    .params
                    .iter()
                    .map(|p| decl(&p.ty, &p.name))
                    .collect::<Vec<_>>()
                    .join(", ");
                let q = qual_str(&ty.qual);
                let qs = if q.is_empty() {
                    String::new()
                } else {
                    format!("{q} ")
                };
                return format!("{}(*{qs}{name})({params})", base_prefix(&sig.ret));
            }
            let q = qual_str(&ty.qual);
            let sep = if q.is_empty() { "" } else { " " };
            let inner_decl = format!("*{q}{sep}{name}");
            format!("{}{}", base_prefix(inner), inner_decl)
        }
        TypeKind::Array(elem, n) => {
            format!("{}{name}[{n}]", base_prefix(elem))
        }
        _ => format!("{}{name}", base_prefix(ty)),
    }
}

/// The leading `base qual ` part of a declaration for `ty` (recursing
/// through pointers so that `int dynamic * private` renders pointee
/// qualifiers in place).
fn base_prefix(ty: &Type) -> String {
    match &ty.kind {
        TypeKind::Ptr(inner) => {
            let q = qual_str(&ty.qual);
            let sep = if q.is_empty() { "" } else { " " };
            format!("{}*{q}{sep}", base_prefix(inner))
        }
        _ => {
            let base = base_name(ty);
            let q = qual_str(&ty.qual);
            if q.is_empty() {
                format!("{base} ")
            } else {
                format!("{base} {q} ")
            }
        }
    }
}

fn base_name(ty: &Type) -> String {
    match &ty.kind {
        TypeKind::Int => "int".into(),
        TypeKind::Char => "char".into(),
        TypeKind::Bool => "bool".into(),
        TypeKind::Void => "void".into(),
        TypeKind::Mutex => "mutex".into(),
        TypeKind::Cond => "cond".into(),
        TypeKind::Named(n) => n.clone(),
        TypeKind::Array(elem, n) => format!("{}[{n}]", base_name(elem)),
        TypeKind::Ptr(inner) => format!("{}*", base_name(inner)),
        TypeKind::Fn(_) => "<fn>".into(),
    }
}

fn qual_str(q: &Qual) -> String {
    match q {
        Qual::Infer => String::new(),
        other => other.to_string(),
    }
}

/// Renders a type without a declared name (for casts and messages).
pub fn type_str(ty: &Type) -> String {
    decl(ty, "").trim_end().to_string()
}

/// Renders an expression (used verbatim in conflict reports).
pub fn expr(e: &Expr) -> String {
    match &e.kind {
        ExprKind::IntLit(v) => v.to_string(),
        ExprKind::CharLit(c) => format!("'{}'", (*c as char).escape_default()),
        ExprKind::BoolLit(b) => b.to_string(),
        ExprKind::StrLit(s) => format!("{s:?}"),
        ExprKind::Null => "NULL".into(),
        ExprKind::Ident(n) => n.clone(),
        ExprKind::Unary(op, a) => format!("{op}{}", maybe_paren(a)),
        ExprKind::Binary(op, a, b) => {
            format!("{} {op} {}", maybe_paren(a), maybe_paren(b))
        }
        ExprKind::Index(a, i) => format!("{}[{}]", maybe_paren(a), expr(i)),
        ExprKind::Field(a, f, true) => format!("{}->{f}", maybe_paren(a)),
        ExprKind::Field(a, f, false) => format!("{}.{f}", maybe_paren(a)),
        ExprKind::Call(f, args) => {
            let args = args.iter().map(expr).collect::<Vec<_>>().join(", ");
            format!("{}({args})", maybe_paren(f))
        }
        ExprKind::Cast(t, a) => format!("({}){}", type_str(t), maybe_paren(a)),
        ExprKind::Scast(t, a) => format!("SCAST({}, {})", type_str(t), expr(a)),
        ExprKind::New(t) => format!("new({})", type_str(t)),
        ExprKind::NewArray(t, n) => format!("newarray({}, {})", type_str(t), expr(n)),
        ExprKind::Sizeof(t) => format!("sizeof({})", type_str(t)),
        ExprKind::Ternary(c, a, b) => {
            format!("{} ? {} : {}", maybe_paren(c), expr(a), expr(b))
        }
    }
}

fn maybe_paren(e: &Expr) -> String {
    match &e.kind {
        ExprKind::Binary(..) | ExprKind::Ternary(..) | ExprKind::Cast(..) => {
            format!("({})", expr(e))
        }
        _ => expr(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    #[test]
    fn roundtrips_qualified_decl() {
        let p = parse("int dynamic * private p;").unwrap();
        let s = decl(&p.globals[0].ty, "p");
        assert_eq!(s, "int dynamic *private p");
        // Reparse the printed form.
        let p2 = parse(&format!("{s};")).unwrap();
        assert_eq!(p2.globals[0].ty, p.globals[0].ty);
    }

    #[test]
    fn prints_locked_field() {
        let p =
            parse("struct s { mutex racy * readonly mut; char locked(mut) *locked(mut) sdata; };")
                .unwrap();
        let out = struct_def(&p.structs[0]);
        assert!(
            out.contains("char locked(mut) *locked(mut) sdata;"),
            "{out}"
        );
    }

    #[test]
    fn prints_lvalue_exprs_like_the_paper() {
        let p = parse(
            "struct stage { struct stage * next; char * sdata; };\n\
             void f(struct stage * S, char * fdata, int i) {\n\
                 S->sdata = NULL;\n\
                 *(fdata + i) = 'x';\n\
             }",
        )
        .unwrap();
        let body = &p.fns[0].body;
        let (lhs1, lhs2) = match (&body.stmts[0].kind, &body.stmts[1].kind) {
            (StmtKind::Assign { lhs: a, .. }, StmtKind::Assign { lhs: b, .. }) => (a, b),
            _ => panic!("expected assigns"),
        };
        assert_eq!(expr(lhs1), "S->sdata");
        assert_eq!(expr(lhs2), "*(fdata + i)");
    }

    #[test]
    fn program_roundtrip_parses() {
        let src = "typedef struct stage { struct stage * next; } stage_t;\n\
                   int g;\n\
                   void main() { g = 1; if (g) { g = 2; } while (g < 5) g += 1; }";
        let p = parse(src).unwrap();
        let printed = program(&p);
        let p2 = parse(&printed).unwrap_or_else(|e| panic!("reparse failed: {e}\n{printed}"));
        assert_eq!(p2.fns.len(), p.fns.len());
        assert_eq!(p2.structs.len(), p.structs.len());
    }
}
