//! The MiniC abstract syntax tree, including types and SharC's
//! sharing-mode qualifiers.
//!
//! Every expression and statement carries a [`NodeId`] so later phases
//! (type checking, instrumentation, the VM compiler) can attach side
//! tables without mutating the tree.

use crate::span::Span;
use std::fmt;

/// A unique id for an AST node, assigned by the parser.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A sharing-mode qualifier, as written by the user or inferred by
/// SharC's sharing analysis (paper §2, §4.1).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Qual {
    /// No annotation written; to be resolved by the sharing analysis.
    Infer,
    /// Owned by one thread; only that thread may access it (static).
    Private,
    /// Readable by any thread, not writable — except a `readonly` field
    /// of a `private` struct, which is writable (static).
    Readonly,
    /// Protected by the lock named by the path; accesses checked at
    /// runtime against the thread's held-lock log.
    Locked(LockPath),
    /// Intentionally racy; no enforcement.
    Racy,
    /// Checked at runtime: read-only or accessed by a single thread.
    Dynamic,
    /// A struct's instance qualifier `q`: unqualified fields inherit
    /// the qualifier of the containing structure instance.
    Poly,
    /// An inference variable introduced by elaboration (internal).
    Var(u32),
}

impl Qual {
    /// True if this is a concrete user-visible mode (not `Infer`,
    /// `Var`, or `Poly`).
    pub fn is_concrete(&self) -> bool {
        !matches!(self, Qual::Infer | Qual::Var(_) | Qual::Poly)
    }
}

impl fmt::Display for Qual {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Qual::Infer => write!(f, "<infer>"),
            Qual::Private => write!(f, "private"),
            Qual::Readonly => write!(f, "readonly"),
            Qual::Locked(p) => write!(f, "locked({p})"),
            Qual::Racy => write!(f, "racy"),
            Qual::Dynamic => write!(f, "dynamic"),
            Qual::Poly => write!(f, "q"),
            Qual::Var(v) => write!(f, "?{v}"),
        }
    }
}

/// The restricted lock expression allowed inside `locked(...)`:
/// a variable or field name followed by zero or more `->field`
/// dereferences, e.g. `mut`, `S->mut`, `g->inner->lock`.
///
/// The first segment is resolved by the checker to either a sibling
/// field of the enclosing struct or a variable in scope; for soundness
/// it must be verifiably constant (an unmodified local, a formal, or a
/// `readonly` value).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct LockPath {
    pub segs: Vec<String>,
    pub span: Span,
}

impl LockPath {
    /// Creates a lock path from its segments.
    pub fn new(segs: Vec<String>, span: Span) -> Self {
        debug_assert!(!segs.is_empty(), "lock path needs at least one segment");
        LockPath { segs, span }
    }

    /// The base variable or field name.
    pub fn base(&self) -> &str {
        &self.segs[0]
    }
}

impl fmt::Display for LockPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.segs.join("->"))
    }
}

/// A MiniC type: a shape ([`TypeKind`]) plus the sharing mode of the
/// storage at this level.
///
/// In `int dynamic * private p`, the pointee level is
/// `Type { kind: Int, qual: Dynamic }` and the whole type is
/// `Type { kind: Ptr(..), qual: Private }`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Type {
    pub kind: TypeKind,
    pub qual: Qual,
}

impl Type {
    /// Creates a type with the given shape and qualifier.
    pub fn new(kind: TypeKind, qual: Qual) -> Self {
        Type { kind, qual }
    }

    /// Creates an unannotated type (qualifier to be inferred).
    pub fn unqual(kind: TypeKind) -> Self {
        Type {
            kind,
            qual: Qual::Infer,
        }
    }

    /// Shorthand for `int` with a qualifier.
    pub fn int(qual: Qual) -> Self {
        Type::new(TypeKind::Int, qual)
    }

    /// Shorthand for a pointer to `inner` with a qualifier.
    pub fn ptr(inner: Type, qual: Qual) -> Self {
        Type::new(TypeKind::Ptr(Box::new(inner)), qual)
    }

    /// Returns the pointee type if this is a pointer.
    pub fn pointee(&self) -> Option<&Type> {
        match &self.kind {
            TypeKind::Ptr(inner) => Some(inner),
            _ => None,
        }
    }

    /// Returns the element type if this is an array.
    pub fn elem(&self) -> Option<&Type> {
        match &self.kind {
            TypeKind::Array(inner, _) => Some(inner),
            _ => None,
        }
    }

    /// True if the shape is a pointer.
    pub fn is_ptr(&self) -> bool {
        matches!(self.kind, TypeKind::Ptr(_))
    }

    /// True if the shape is `void`.
    pub fn is_void(&self) -> bool {
        matches!(self.kind, TypeKind::Void)
    }

    /// True for integer-like scalars (`int`, `char`, `bool`).
    pub fn is_integral(&self) -> bool {
        matches!(self.kind, TypeKind::Int | TypeKind::Char | TypeKind::Bool)
    }

    /// Visits every level of the type top-down (self, then pointee /
    /// element / field-free levels reachable without a struct table).
    pub fn for_each_level<'t>(&'t self, f: &mut impl FnMut(&'t Type)) {
        f(self);
        match &self.kind {
            TypeKind::Ptr(inner) | TypeKind::Array(inner, _) => inner.for_each_level(f),
            TypeKind::Fn(sig) => {
                sig.ret.for_each_level(f);
                for p in &sig.params {
                    p.ty.for_each_level(f);
                }
            }
            _ => {}
        }
    }

    /// Mutable variant of [`Type::for_each_level`].
    pub fn for_each_level_mut(&mut self, f: &mut impl FnMut(&mut Type)) {
        f(self);
        match &mut self.kind {
            TypeKind::Ptr(inner) | TypeKind::Array(inner, _) => inner.for_each_level_mut(f),
            TypeKind::Fn(sig) => {
                sig.ret.for_each_level_mut(f);
                for p in &mut sig.params {
                    p.ty.for_each_level_mut(f);
                }
            }
            _ => {}
        }
    }

    /// True if the two types have the same shape, ignoring qualifiers.
    pub fn same_shape(&self, other: &Type) -> bool {
        match (&self.kind, &other.kind) {
            (TypeKind::Int, TypeKind::Int)
            | (TypeKind::Char, TypeKind::Char)
            | (TypeKind::Bool, TypeKind::Bool)
            | (TypeKind::Void, TypeKind::Void)
            | (TypeKind::Mutex, TypeKind::Mutex)
            | (TypeKind::Cond, TypeKind::Cond) => true,
            (TypeKind::Named(a), TypeKind::Named(b)) => a == b,
            (TypeKind::Ptr(a), TypeKind::Ptr(b)) => a.same_shape(b),
            (TypeKind::Array(a, n), TypeKind::Array(b, m)) => n == m && a.same_shape(b),
            (TypeKind::Fn(a), TypeKind::Fn(b)) => {
                a.ret.same_shape(&b.ret)
                    && a.params.len() == b.params.len()
                    && a.params
                        .iter()
                        .zip(&b.params)
                        .all(|(x, y)| x.ty.same_shape(&y.ty))
            }
            _ => false,
        }
    }
}

/// The shape of a MiniC type.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum TypeKind {
    Int,
    Char,
    Bool,
    Void,
    /// A pthread-style mutex; inherently `racy` (paper §2.1).
    Mutex,
    /// A pthread-style condition variable; inherently `racy`.
    Cond,
    /// A named struct type.
    Named(String),
    Ptr(Box<Type>),
    Array(Box<Type>, usize),
    /// A function type; only valid behind a pointer.
    Fn(Box<FnSig>),
}

/// A function signature used in function-pointer types.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct FnSig {
    pub ret: Type,
    pub params: Vec<Param>,
}

/// One formal parameter: an optional name (required on definitions)
/// plus a type.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Param {
    pub name: String,
    pub ty: Type,
    pub span: Span,
}

/// A whole translation unit.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    pub structs: Vec<StructDef>,
    pub globals: Vec<GlobalDef>,
    pub fns: Vec<FnDef>,
}

impl Program {
    /// Looks up a function definition by name.
    pub fn fn_by_name(&self, name: &str) -> Option<&FnDef> {
        self.fns.iter().find(|f| f.name == name)
    }

    /// Looks up a struct definition by name.
    pub fn struct_by_name(&self, name: &str) -> Option<&StructDef> {
        self.structs.iter().find(|s| s.name == name)
    }

    /// Looks up a global definition by name.
    pub fn global_by_name(&self, name: &str) -> Option<&GlobalDef> {
        self.globals.iter().find(|g| g.name == name)
    }
}

/// A struct definition, optionally marked inherently `racy`.
#[derive(Debug, Clone, PartialEq)]
pub struct StructDef {
    pub name: String,
    pub fields: Vec<Field>,
    pub racy: bool,
    pub span: Span,
    /// The typedef alias, if declared via `typedef struct n {...} alias;`.
    pub alias: Option<String>,
}

impl StructDef {
    /// Looks up a field by name.
    pub fn field(&self, name: &str) -> Option<&Field> {
        self.fields.iter().find(|f| f.name == name)
    }
}

/// One struct field.
#[derive(Debug, Clone, PartialEq)]
pub struct Field {
    pub name: String,
    pub ty: Type,
    pub span: Span,
}

/// A global variable definition.
#[derive(Debug, Clone, PartialEq)]
pub struct GlobalDef {
    pub name: String,
    pub ty: Type,
    pub init: Option<Expr>,
    pub span: Span,
}

/// A function definition.
#[derive(Debug, Clone, PartialEq)]
pub struct FnDef {
    pub name: String,
    pub ret: Type,
    pub params: Vec<Param>,
    pub body: Block,
    pub span: Span,
}

impl FnDef {
    /// This function's signature as a [`FnSig`].
    pub fn sig(&self) -> FnSig {
        FnSig {
            ret: self.ret.clone(),
            params: self.params.clone(),
        }
    }
}

/// A brace-delimited statement sequence.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Block {
    pub stmts: Vec<Stmt>,
}

/// A statement with id and span.
#[derive(Debug, Clone, PartialEq)]
pub struct Stmt {
    pub kind: StmtKind,
    pub span: Span,
    pub id: NodeId,
}

/// Statement shapes.
#[derive(Debug, Clone, PartialEq)]
pub enum StmtKind {
    /// A local declaration, optionally initialized.
    Decl {
        name: String,
        ty: Type,
        init: Option<Expr>,
    },
    /// `lhs = rhs;` — the only place memory is written.
    Assign {
        lhs: Expr,
        rhs: Expr,
    },
    /// An expression evaluated for effect (typically a call).
    Expr(Expr),
    If {
        cond: Expr,
        then_blk: Block,
        else_blk: Option<Block>,
    },
    While {
        cond: Expr,
        body: Block,
    },
    For {
        init: Option<Box<Stmt>>,
        cond: Option<Expr>,
        step: Option<Box<Stmt>>,
        body: Block,
    },
    Return(Option<Expr>),
    Break,
    Continue,
    Block(Block),
}

/// An expression with id and span.
#[derive(Debug, Clone, PartialEq)]
pub struct Expr {
    pub kind: ExprKind,
    pub span: Span,
    pub id: NodeId,
}

impl Expr {
    /// True if this expression is a syntactic l-value.
    pub fn is_lvalue(&self) -> bool {
        matches!(
            self.kind,
            ExprKind::Ident(_)
                | ExprKind::Unary(UnOp::Deref, _)
                | ExprKind::Index(..)
                | ExprKind::Field(..)
        )
    }
}

/// Expression shapes.
#[derive(Debug, Clone, PartialEq)]
pub enum ExprKind {
    IntLit(i64),
    CharLit(u8),
    BoolLit(bool),
    StrLit(String),
    Null,
    Ident(String),
    Unary(UnOp, Box<Expr>),
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// `base[index]`
    Index(Box<Expr>, Box<Expr>),
    /// `base.field` (`arrow == false`) or `base->field` (`arrow == true`)
    Field(Box<Expr>, String, bool),
    /// A direct or indirect call. Builtins (`spawn`, `mutex_lock`, ...)
    /// appear here with an `Ident` callee.
    Call(Box<Expr>, Vec<Expr>),
    /// An ordinary C cast `(type)e`. Sharing modes may not change here.
    Cast(Type, Box<Expr>),
    /// `SCAST(type, lval)` — the sharing cast: nulls out `lval` and
    /// checks the reference count is one (paper §2, Fig. 7).
    Scast(Type, Box<Expr>),
    /// `new(type)` — allocates one zeroed object of `type`.
    New(Type),
    /// `newarray(type, n)` — allocates `n` zeroed objects of `type`.
    NewArray(Type, Box<Expr>),
    /// `sizeof(type)` in cells.
    Sizeof(Type),
    /// `cond ? a : b`
    Ternary(Box<Expr>, Box<Expr>, Box<Expr>),
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// `*e`
    Deref,
    /// `&e`
    AddrOf,
    /// `-e`
    Neg,
    /// `!e`
    Not,
    /// `~e`
    BitNot,
}

impl fmt::Display for UnOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            UnOp::Deref => "*",
            UnOp::AddrOf => "&",
            UnOp::Neg => "-",
            UnOp::Not => "!",
            UnOp::BitNot => "~",
        };
        write!(f, "{s}")
    }
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    And,
    Or,
    BitAnd,
    BitOr,
    BitXor,
    Shl,
    Shr,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl BinOp {
    /// True for comparison operators (result type `bool`).
    pub fn is_comparison(self) -> bool {
        use BinOp::*;
        matches!(self, Eq | Ne | Lt | Le | Gt | Ge)
    }

    /// True for the short-circuiting logical operators.
    pub fn is_logical(self) -> bool {
        matches!(self, BinOp::And | BinOp::Or)
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use BinOp::*;
        let s = match self {
            Add => "+",
            Sub => "-",
            Mul => "*",
            Div => "/",
            Rem => "%",
            And => "&&",
            Or => "||",
            BitAnd => "&",
            BitOr => "|",
            BitXor => "^",
            Shl => "<<",
            Shr => ">>",
            Eq => "==",
            Ne => "!=",
            Lt => "<",
            Le => "<=",
            Gt => ">",
            Ge => ">=",
        };
        write!(f, "{s}")
    }
}

/// Names of the built-in functions recognized by the checker and VM.
pub const BUILTINS: &[&str] = &[
    "spawn",
    "join",
    "join_all",
    "mutex_lock",
    "mutex_unlock",
    "cond_wait",
    "cond_signal",
    "cond_broadcast",
    "free",
    "print",
    "print_str",
    "assert",
    "random",
    "yield_now",
];

/// Returns true if `name` is a MiniC builtin function.
pub fn is_builtin(name: &str) -> bool {
    BUILTINS.contains(&name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_shape_comparison_ignores_quals() {
        let a = Type::ptr(Type::int(Qual::Dynamic), Qual::Private);
        let b = Type::ptr(Type::int(Qual::Private), Qual::Dynamic);
        assert!(a.same_shape(&b));
        let c = Type::int(Qual::Private);
        assert!(!a.same_shape(&c));
    }

    #[test]
    fn for_each_level_visits_all() {
        let t = Type::ptr(
            Type::ptr(Type::int(Qual::Dynamic), Qual::Dynamic),
            Qual::Private,
        );
        let mut quals = Vec::new();
        t.for_each_level(&mut |l| quals.push(l.qual.clone()));
        assert_eq!(quals, vec![Qual::Private, Qual::Dynamic, Qual::Dynamic]);
    }

    #[test]
    fn lock_path_display() {
        let p = LockPath::new(vec!["S".into(), "mut".into()], Span::DUMMY);
        assert_eq!(p.to_string(), "S->mut");
        assert_eq!(p.base(), "S");
    }

    #[test]
    fn qual_concreteness() {
        assert!(Qual::Private.is_concrete());
        assert!(Qual::Dynamic.is_concrete());
        assert!(!Qual::Infer.is_concrete());
        assert!(!Qual::Var(3).is_concrete());
        assert!(!Qual::Poly.is_concrete());
    }

    #[test]
    fn builtins_recognized() {
        assert!(is_builtin("spawn"));
        assert!(is_builtin("mutex_lock"));
        assert!(!is_builtin("main"));
    }
}
