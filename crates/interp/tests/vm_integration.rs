//! End-to-end tests: MiniC source -> SharC pipeline -> VM execution,
//! reproducing the behaviours the paper describes in §2 and §4.

use sharc_interp::{compile_and_run, ConflictKind, ExitStatus, RunOutcome, SchedPolicy, VmConfig};

fn cfg(seed: u64) -> VmConfig {
    VmConfig {
        seed,
        ..VmConfig::default()
    }
}

/// Compiles with the elision facts ignored — for tests that exercise
/// runtime check machinery on programs the elision pass would
/// otherwise strip.
fn compile_and_run_full(name: &str, src: &str, config: VmConfig) -> RunOutcome {
    let checked = sharc_core::compile(name, src).unwrap();
    assert!(!checked.diags.has_errors(), "{}", checked.render_diags());
    let module = sharc_interp::compile_full_checks(&checked).unwrap();
    sharc_interp::run(&module, &checked.source_map, config)
}

#[test]
fn sequential_program_runs_clean() {
    let out = compile_and_run(
        "seq.c",
        "void main() { int i; int acc; acc = 0; \
         for (i = 0; i < 100; i++) acc += i; print(acc); }",
        cfg(1),
    )
    .unwrap();
    assert_eq!(out.status, ExitStatus::Completed);
    assert_eq!(out.output, vec!["4950"]);
    assert!(out.reports.is_empty());
}

#[test]
fn unsynchronized_writers_race_is_reported() {
    let src = "void worker(int * d) { int i; for (i = 0; i < 50; i++) *d = *d + 1; }\n\
               void main() { int * p; p = new(int); \
                 spawn(worker, p); spawn(worker, p); join_all(); }";
    // Try several seeds; the race is near-certain under any schedule
    // that interleaves at all.
    let mut found = false;
    for seed in 0..4 {
        let out = compile_and_run("race.c", src, cfg(seed)).unwrap();
        assert_eq!(out.status, ExitStatus::Completed);
        if out
            .reports
            .iter()
            .any(|r| matches!(r.kind, ConflictKind::Read | ConflictKind::Write))
        {
            found = true;
            break;
        }
    }
    assert!(found, "expected a read/write conflict report");
}

#[test]
fn report_has_paper_format() {
    let src = "void worker(int * d) { int i; for (i = 0; i < 50; i++) *d = *d + 1; }\n\
               void main() { int * p; p = new(int); \
                 spawn(worker, p); spawn(worker, p); join_all(); }";
    let out = compile_and_run("race.c", src, cfg(0)).unwrap();
    let r = out
        .reports
        .iter()
        .find(|r| matches!(r.kind, ConflictKind::Read | ConflictKind::Write))
        .expect("race report");
    let text = r.to_string();
    assert!(text.contains("conflict(0x"), "{text}");
    assert!(text.contains("who("), "{text}");
    assert!(text.contains("*d @ race.c:"), "{text}");
}

#[test]
fn lock_protected_counter_is_clean() {
    let src = "struct ctr { mutex m; int locked(m) v; };\n\
               void worker(struct ctr * c) { int i; \
                 for (i = 0; i < 25; i++) { mutex_lock(&c->m); c->v = c->v + 1; \
                   mutex_unlock(&c->m); } }\n\
               void main() { struct ctr * c = new(struct ctr); \
                 spawn(worker, c); spawn(worker, c); join_all(); \
                 mutex_lock(&c->m); print(c->v); mutex_unlock(&c->m); }";
    for seed in 0..4 {
        let out = compile_and_run("ctr.c", src, cfg(seed)).unwrap();
        assert_eq!(out.status, ExitStatus::Completed, "seed {seed}");
        assert!(out.reports.is_empty(), "seed {seed}: {:?}", out.reports);
        assert_eq!(out.output, vec!["50"], "seed {seed}");
        assert!(out.stats.lock_checks > 0);
    }
}

#[test]
fn unlocked_access_to_locked_field_reported() {
    let src = "struct ctr { mutex m; int locked(m) v; };\n\
               void worker(struct ctr * c) { c->v = 7; }\n\
               void main() { struct ctr * c = new(struct ctr); \
                 spawn(worker, c); join_all(); }";
    let out = compile_and_run("nolock.c", src, cfg(0)).unwrap();
    assert!(
        out.reports.iter().any(|r| r.kind == ConflictKind::Lock),
        "{:?}",
        out.reports
    );
}

#[test]
fn scast_with_single_reference_succeeds() {
    // main hands the buffer off at spawn with a sharing cast, giving
    // up its reference, so the worker's cast sees a unique reference.
    let src = "void worker(char * d) { char private * l; \
                 l = SCAST(char private *, d); l[0] = 'x'; l[1] = 'y'; }\n\
               void main() { char * b; b = newarray(char, 8); \
                 spawn(worker, SCAST(char dynamic *, b)); join_all(); }";
    let out = compile_and_run("scast_ok.c", src, cfg(0)).unwrap();
    assert_eq!(out.status, ExitStatus::Completed);
    assert!(out.reports.is_empty(), "{:?}", out.reports);
    assert!(out.stats.oneref_checks >= 1);
}

#[test]
fn scast_with_extra_reference_fails_oneref() {
    // A second reference to the buffer lives in a global cell, so the
    // sharing cast must fail the oneref check.
    let src = "char * keep;\n\
               void worker(char * d) { char private * l; \
                 l = SCAST(char private *, d); }\n\
               void main() { char * b; b = newarray(char, 8); keep = b; \
                 spawn(worker, b); join_all(); }";
    let out = compile_and_run("scast_bad.c", src, cfg(0)).unwrap();
    assert!(
        out.reports.iter().any(|r| r.kind == ConflictKind::OneRef),
        "{:?}",
        out.reports
    );
}

#[test]
fn ownership_transfer_pipeline_is_clean() {
    // Producer/consumer hand-off through a locked slot with sharing
    // casts on both sides — the paper's §2.1 idiom. No reports.
    let src = r#"
        struct chan {
            mutex m;
            cond cv;
            int racy done;
            char *locked(m) slot;
        };

        void consumer(struct chan * ch) {
            char private * data;
            int got;
            got = 0;
            while (got < 20) {
                mutex_lock(&ch->m);
                while (ch->slot == NULL)
                    cond_wait(&ch->cv, &ch->m);
                data = SCAST(char private *, ch->slot);
                cond_signal(&ch->cv);
                mutex_unlock(&ch->m);
                data[0] = data[0] + 1;
                free(data);
                got = got + 1;
            }
        }

        void main() {
            struct chan * ch = new(struct chan);
            char private * buf;
            int i;
            spawn(consumer, ch);
            for (i = 0; i < 20; i++) {
                buf = newarray(char private, 4);
                buf[0] = 'a';
                mutex_lock(&ch->m);
                while (ch->slot)
                    cond_wait(&ch->cv, &ch->m);
                ch->slot = SCAST(char locked(ch->m) *, buf);
                cond_signal(&ch->cv);
                mutex_unlock(&ch->m);
            }
            join_all();
        }
    "#;
    for seed in [0u64, 7, 42] {
        let out = compile_and_run("chan.c", src, cfg(seed)).unwrap();
        assert_eq!(out.status, ExitStatus::Completed, "seed {seed}");
        assert!(out.reports.is_empty(), "seed {seed}: {}", out.reports[0]);
    }
}

#[test]
fn threads_with_disjoint_lifetimes_do_not_race() {
    // Thread exit clears its reader/writer bits: sequential reuse of
    // the same dynamic object by different threads is not a race.
    let src = "void worker(int * d) { *d = *d + 1; }\n\
               void main() { int * p; int t; p = new(int); \
                 t = spawn(worker, p); join(t); \
                 t = spawn(worker, p); join(t); }";
    let out = compile_and_run("seq_threads.c", src, cfg(0)).unwrap();
    assert_eq!(out.status, ExitStatus::Completed);
    assert!(out.reports.is_empty(), "{:?}", out.reports);
}

#[test]
fn read_sharing_is_not_a_race() {
    // Many readers, no writer: dynamic mode allows it.
    let src = "void reader(int * d) { int v; int i; \
                 for (i = 0; i < 20; i++) v = *d; }\n\
               void main() { int * p; p = new(int); \
                 spawn(reader, p); spawn(reader, p); spawn(reader, p); join_all(); }";
    let out = compile_and_run("readers.c", src, cfg(3)).unwrap();
    assert_eq!(out.status, ExitStatus::Completed);
    assert!(out.reports.is_empty(), "{:?}", out.reports);
}

#[test]
fn deadlock_is_detected() {
    let src = "struct two { mutex a; mutex b; };\n\
               void w1(struct two * t) { mutex_lock(&t->a); yield_now(); \
                 mutex_lock(&t->b); mutex_unlock(&t->b); mutex_unlock(&t->a); }\n\
               void w2(struct two * t) { mutex_lock(&t->b); yield_now(); \
                 mutex_lock(&t->a); mutex_unlock(&t->a); mutex_unlock(&t->b); }\n\
               void main() { struct two * t; t = new(struct two); \
                 spawn(w1, t); spawn(w2, t); join_all(); }";
    let mut saw_deadlock = false;
    for seed in 0..20 {
        let out = compile_and_run("dead.c", src, cfg(seed)).unwrap();
        if out.status == ExitStatus::Deadlock {
            saw_deadlock = true;
            break;
        }
    }
    assert!(saw_deadlock, "expected at least one schedule to deadlock");
}

#[test]
fn deterministic_given_seed() {
    let src = "void worker(int * d) { int i; for (i = 0; i < 30; i++) *d = *d + 1; }\n\
               void main() { int * p; p = new(int); \
                 spawn(worker, p); spawn(worker, p); join_all(); print(*p); }";
    let a = compile_and_run("det.c", src, cfg(123)).unwrap();
    let b = compile_and_run("det.c", src, cfg(123)).unwrap();
    assert_eq!(a.output, b.output);
    assert_eq!(a.reports.len(), b.reports.len());
    assert_eq!(a.stats.steps, b.stats.steps);
}

#[test]
fn round_robin_policy_works() {
    let src = "void main() { int i; int s; s = 0; for (i = 0; i < 10; i++) s += i; print(s); }";
    let out = compile_and_run(
        "rr.c",
        src,
        VmConfig {
            policy: SchedPolicy::RoundRobin(16),
            ..VmConfig::default()
        },
    )
    .unwrap();
    assert_eq!(out.output, vec!["45"]);
}

#[test]
fn dynamic_fraction_reflects_sharing() {
    // A mostly-private program has a tiny dynamic fraction; a
    // fully-shared one is large — the basis of Table 1's "% dynamic
    // accesses" column.
    let private_src = "void main() { int i; int acc; acc = 0; \
                       for (i = 0; i < 200; i++) acc += i; print(acc); }";
    let shared_src = "void worker(int * d) { int i; \
                        for (i = 0; i < 100; i++) *d = *d + 1; }\n\
                      void main() { int * p; int t; p = new(int); \
                        t = spawn(worker, p); join(t); print(*p); }";
    let a = compile_and_run("p.c", private_src, cfg(0)).unwrap();
    let b = compile_and_run("s.c", shared_src, cfg(0)).unwrap();
    assert_eq!(a.stats.dynamic_accesses, 0);
    assert!(
        b.stats.dynamic_fraction() > 0.1,
        "{}",
        b.stats.dynamic_fraction()
    );
}

#[test]
fn function_calls_and_recursion() {
    let src = "int fib(int n) { if (n < 2) return n; return fib(n - 1) + fib(n - 2); }\n\
               void main() { print(fib(12)); }";
    let out = compile_and_run("fib.c", src, cfg(0)).unwrap();
    assert_eq!(out.output, vec!["144"]);
}

#[test]
fn function_pointers_dispatch() {
    let src = "int dbl(int x) { return x * 2; }\n\
               int inc(int x) { return x + 1; }\n\
               void main() { int (* f)(int x); f = dbl; print(f(21)); f = inc; print(f(41)); }";
    let out = compile_and_run("fp.c", src, cfg(0)).unwrap();
    assert_eq!(out.output, vec!["42", "42"]);
}

#[test]
fn structs_arrays_and_strings() {
    let src = r#"
        struct point { int x; int y; };
        void main() {
            struct point p;
            struct point q;
            int arr[5];
            int i;
            p.x = 3; p.y = 4;
            q = p;
            print(q.x * q.x + q.y * q.y);
            for (i = 0; i < 5; i++) arr[i] = i * i;
            print(arr[4]);
            print_str("hello sharc");
        }
    "#;
    let out = compile_and_run("st.c", src, cfg(0)).unwrap();
    assert_eq!(out.output, vec!["25", "16", "hello sharc"]);
}

#[test]
fn free_clears_shadow_state() {
    // Freed memory reused by another thread is not a race: free
    // clears the reader/writer sets.
    let src = "void w1(int * d) { *d = 1; free(d); }\n\
               void main() { int * p; int t; \
                 p = new(int); t = spawn(w1, p); join(t); \
                 p = new(int); t = spawn(w1, p); join(t); }";
    let out = compile_and_run("free.c", src, cfg(0)).unwrap();
    assert_eq!(out.status, ExitStatus::Completed);
    assert!(out.reports.is_empty(), "{:?}", out.reports);
}

#[test]
fn assert_failure_kills_thread() {
    let src = "void main() { assert(1 == 2); print(99); }";
    let out = compile_and_run("a.c", src, cfg(0)).unwrap();
    assert!(out.output.is_empty());
    assert_eq!(out.status, ExitStatus::Completed);
}

#[test]
fn stop_on_error_halts() {
    let src = "void worker(int * d) { int i; for (i = 0; i < 50; i++) *d = *d + 1; }\n\
               void main() { int * p; p = new(int); \
                 spawn(worker, p); spawn(worker, p); join_all(); }";
    let out = compile_and_run(
        "halt.c",
        src,
        VmConfig {
            stop_on_error: true,
            seed: 0,
            ..VmConfig::default()
        },
    )
    .unwrap();
    assert!(matches!(out.status, ExitStatus::Failed(_)));
}

#[test]
fn racy_mode_suppresses_checks() {
    let src = "int racy flag;\n\
               void worker(int * d) { flag = flag + 1; }\n\
               void main() { int * p; spawn(worker, p); spawn(worker, p); \
                 join_all(); flag = 0; }";
    let out = compile_and_run("racy.c", src, cfg(0)).unwrap();
    assert!(out.reports.is_empty(), "{:?}", out.reports);
    assert_eq!(out.stats.dynamic_accesses, 0);
}

#[test]
fn sixteen_byte_granularity_false_sharing() {
    // Two adjacent 1-cell objects land in the same 16-byte granule
    // when allocated contiguously; SharC's 16-byte granularity then
    // reports a (false) race — the paper's §4.5 limitation. With the
    // default allocator each allocation is its own object, so to
    // model a custom allocator we use adjacent fields of one struct.
    let src = "struct two { int a; int b; };\n\
               void w1(struct two * t) { int i; for (i = 0; i < 40; i++) t->a = i; }\n\
               void w2(struct two * t) { int i; for (i = 0; i < 40; i++) t->b = i; }\n\
               void main() { struct two * t; t = new(struct two); \
                 spawn(w1, t); spawn(w2, t); join_all(); }";
    let coarse = compile_and_run("fs.c", src, cfg(5)).unwrap();
    assert!(
        !coarse.reports.is_empty(),
        "16-byte granularity should report false sharing"
    );
    // With 8-byte granularity (1 cell per granule) the fields are
    // separate and no race is reported.
    let fine = compile_and_run(
        "fs.c",
        src,
        VmConfig {
            granule: 1,
            seed: 5,
            ..VmConfig::default()
        },
    )
    .unwrap();
    assert!(fine.reports.is_empty(), "{:?}", fine.reports);
}

#[test]
fn library_read_summary_checks_dynamic_strings() {
    // §4.4: `print_str` has a read summary. Printing a dynamic buffer
    // that another thread concurrently writes must be reported.
    let src = "void writer(char * d) { int i; \
                 for (i = 0; i < 40; i++) d[0] = 'a' + i % 4; }\n\
               void reader(char * d) { int i; \
                 for (i = 0; i < 40; i++) print_str(d); }\n\
               void main() { char * b; b = newarray(char, 4); b[0] = 'x'; \
                 spawn(writer, b); spawn(reader, b); join_all(); }";
    let mut found = false;
    for seed in 0..6 {
        let out = compile_and_run("lib.c", src, cfg(seed)).unwrap();
        if !out.reports.is_empty() {
            found = true;
            break;
        }
    }
    assert!(
        found,
        "summary-covered reads must participate in race detection"
    );
}

#[test]
fn library_read_summary_accepts_read_sharing() {
    // Many threads printing the same dynamic string: reads only, no
    // reports.
    // The buffer is initialized privately, then published with a
    // sharing cast (initializing a dynamic buffer directly would
    // correctly be reported: main's writes precede the reads).
    let src = "void reader(char * d) { int i; \
                 for (i = 0; i < 20; i++) print_str(d); }\n\
               void main() { char private * b; char dynamic * s; \
                 b = newarray(char private, 4); b[0] = 'o'; b[1] = 'k'; \
                 s = SCAST(char dynamic *, b); \
                 spawn(reader, s); spawn(reader, s); join_all(); }";
    let out = compile_and_run("lib2.c", src, cfg(1)).unwrap();
    assert_eq!(out.status, ExitStatus::Completed);
    assert!(out.reports.is_empty(), "{:?}", out.reports);
    assert_eq!(out.output.len(), 40);
}

#[test]
fn library_call_rejects_locked_argument() {
    let src = "struct s { mutex m; char *locked(m) msg; };\n\
               void worker(struct s * x) { mutex_lock(&x->m); \
                 print_str(x->msg); mutex_unlock(&x->m); }\n\
               void main() { struct s * x = new(struct s); \
                 spawn(worker, x); join_all(); }";
    let checked = sharc_core::compile("locked_lib.c", src).unwrap();
    assert!(checked.diags.has_errors());
    let rendered = checked.render_diags();
    assert!(rendered.contains("locked argument"), "{rendered}");
}

#[test]
fn deadlock_diagnostics_name_the_blockers() {
    let src = "struct two { mutex a; mutex b; };\n\
               void w1(struct two * t) { mutex_lock(&t->a); yield_now(); \
                 mutex_lock(&t->b); mutex_unlock(&t->b); mutex_unlock(&t->a); }\n\
               void w2(struct two * t) { mutex_lock(&t->b); yield_now(); \
                 mutex_lock(&t->a); mutex_unlock(&t->a); mutex_unlock(&t->b); }\n\
               void main() { struct two * t = new(struct two); \
                 spawn(w1, t); spawn(w2, t); join_all(); }";
    for seed in 0..20 {
        let out = compile_and_run("dead.c", src, cfg(seed)).unwrap();
        if out.status == ExitStatus::Deadlock {
            assert!(
                out.blocked.iter().any(|b| b.contains("blocked acquiring")),
                "{:?}",
                out.blocked
            );
            assert!(
                out.blocked.iter().any(|b| b.contains("join_all")),
                "main is stuck too: {:?}",
                out.blocked
            );
            return;
        }
    }
    panic!("no deadlock observed in 20 seeds");
}

#[test]
fn owned_cache_never_changes_verdicts() {
    // The owned-granule fast path must be verdict-transparent: the
    // same seeded schedule produces the same output and the same
    // report multiset with the cache on and off, on both clean and
    // racy programs (including frees and sharing casts, which bump
    // the invalidation epoch).
    let srcs = [
        // Clean: thread-private dynamic data, heavy re-access.
        "void worker(int * d) { int i; for (i = 0; i < 200; i++) *d = *d + 1; }\n\
         void main() { int * p; int * q; p = new(int); q = new(int); \
           spawn(worker, p); spawn(worker, q); join_all(); print(*p + *q); }",
        // Racy: two writers on one object.
        "void worker(int * d) { int i; for (i = 0; i < 50; i++) *d = *d + 1; }\n\
         void main() { int * p; p = new(int); \
           spawn(worker, p); spawn(worker, p); join_all(); }",
        // Free + reuse: the epoch must flush stale ownership.
        "void main() { int * p; int i; \
           for (i = 0; i < 10; i++) { p = new(int); *p = i; free(p); } print(1); }",
    ];
    for (n, src) in srcs.iter().enumerate() {
        for seed in 0..3u64 {
            let on = compile_and_run("c.c", src, cfg(seed)).unwrap();
            let off = compile_and_run(
                "c.c",
                src,
                VmConfig {
                    seed,
                    owned_cache: false,
                    ..VmConfig::default()
                },
            )
            .unwrap();
            assert_eq!(on.status, off.status, "src {n} seed {seed}");
            assert_eq!(on.output, off.output, "src {n} seed {seed}");
            assert_eq!(
                on.reports.len(),
                off.reports.len(),
                "src {n} seed {seed}: {:?} vs {:?}",
                on.reports,
                off.reports
            );
            assert_eq!(off.stats.cache_hits, 0, "flag off means no cache");
        }
    }
}

#[test]
fn epoch_region_count_never_changes_verdicts() {
    // The epoch-region geometry is a pure performance knob: runs with
    // the per-region table (default), the degenerate global epoch
    // (`epoch_regions: 1`), and the cache disabled entirely must
    // produce the same status, output, and report multiset on the
    // same seeded schedule. The region table can only ever *keep*
    // entries the global epoch would have flushed, so its hit count
    // dominates too.
    let srcs = [
        // Clean private loops racing with unrelated alloc/free churn
        // (the workload regions exist for).
        "void worker(int * d) { int i; for (i = 0; i < 100; i++) *d = *d + 1; }\n\
         void main() { int * p; int * q; int i; p = new(int); spawn(worker, p); \
           for (i = 0; i < 20; i++) { q = new(int); *q = i; free(q); } \
           join_all(); print(*p); }",
        // Racy: two writers on one object, with a free afterwards.
        "void worker(int * d) { int i; for (i = 0; i < 50; i++) *d = *d + 1; }\n\
         void main() { int * p; p = new(int); \
           spawn(worker, p); spawn(worker, p); join_all(); free(p); }",
        // Free + reuse in a tight loop: every epoch bump on the hot
        // region itself.
        "void main() { int * p; int i; \
           for (i = 0; i < 10; i++) { p = new(int); *p = i; free(p); } print(1); }",
    ];
    for (n, src) in srcs.iter().enumerate() {
        for seed in 0..3u64 {
            let region = compile_and_run("e.c", src, cfg(seed)).unwrap();
            let global = compile_and_run(
                "e.c",
                src,
                VmConfig {
                    seed,
                    epoch_regions: 1,
                    ..VmConfig::default()
                },
            )
            .unwrap();
            let off = compile_and_run(
                "e.c",
                src,
                VmConfig {
                    seed,
                    owned_cache: false,
                    ..VmConfig::default()
                },
            )
            .unwrap();
            for other in [&global, &off] {
                assert_eq!(region.status, other.status, "src {n} seed {seed}");
                assert_eq!(region.output, other.output, "src {n} seed {seed}");
                assert_eq!(
                    region.reports.len(),
                    other.reports.len(),
                    "src {n} seed {seed}: {:?} vs {:?}",
                    region.reports,
                    other.reports
                );
            }
            // Region validity dominates global validity on identical
            // traces: anything the global epoch keeps alive, the
            // region table keeps alive too.
            assert!(
                region.stats.cache_hits >= global.stats.cache_hits,
                "src {n} seed {seed}: region {} < global {}",
                region.stats.cache_hits,
                global.stats.cache_hits
            );
        }
    }
}

#[test]
fn report_after_hot_private_loop_names_latest_access() {
    // Cache hits skip the granule's `last_*` bookkeeping, so without
    // the per-thread last-hit record a conflict after a hot private
    // loop would blame the loop's *install* site (line 2) instead of
    // the loop body that actually touched the data last (line 3).
    // Deterministic schedule: round-robin with a huge quantum plus
    // explicit yields hands control main -> worker (install + full
    // loop, cache-served) -> main (conflicting write).
    let src = "void worker(int * d) { int i;\n\
               *d = 1;\n\
               for (i = 0; i < 300; i++) *d = *d + 2;\n\
               yield_now(); }\n\
               void main() { int * p; p = new(int);\n\
               spawn(worker, p);\n\
               yield_now();\n\
               *p = 5;\n\
               join_all(); }";
    let out = compile_and_run(
        "lasthit.c",
        src,
        VmConfig {
            seed: 1,
            policy: SchedPolicy::RoundRobin(1_000_000),
            ..VmConfig::default()
        },
    )
    .unwrap();
    assert_eq!(out.status, ExitStatus::Completed);
    // One cache-served write per iteration (the compound assignment's
    // read collapses into the write check at compile time).
    assert!(
        out.stats.cache_hits >= 300,
        "the loop must be cache-served for this test to bite: {}",
        out.stats.cache_hits
    );
    let r = out
        .reports
        .iter()
        .find(|r| r.kind == ConflictKind::Write)
        .expect("main's write must conflict with the worker's exclusive state");
    let last = r.last.as_ref().expect("write conflict names a last access");
    assert!(
        last.location.ends_with(": 3"),
        "last must name the loop body, not the stale install site: {last:?}"
    );
    assert!(
        r.who.location.ends_with(": 8"),
        "who is main's write: {:?}",
        r.who
    );
}

#[test]
fn owned_cache_absorbs_repeated_private_accesses() {
    // A tight private loop should be served almost entirely by the
    // per-thread cache — the VM-side mirror of the native
    // owned-granule fast path.
    let src = "void worker(int * d) { int i; for (i = 0; i < 500; i++) *d = *d + 1; }\n\
               void main() { int * p; p = new(int); spawn(worker, p); join_all(); }";
    // The elision pass deletes every check in this spawn-unique shape,
    // so the cache has nothing to serve; pin the full-checks build.
    let out = compile_and_run_full("priv.c", src, cfg(7));
    assert!(out.reports.is_empty());
    assert!(
        out.stats.cache_hits > 500,
        "read+write per iteration should hit: {}",
        out.stats.cache_hits
    );
    // And the default build proves the point the other way: the loop
    // needs no checks at all.
    let elided = compile_and_run("priv.c", src, cfg(7)).unwrap();
    assert!(elided.reports.is_empty());
    assert_eq!(elided.stats.dynamic_accesses, 0);
    assert!(elided.stats.checks_elided > 0);
}

#[test]
fn struct_copies_ride_the_owned_run_cache_without_changing_verdicts() {
    // A struct copy through a dynamic-mode pointer is ONE ranged
    // chkread/chkwrite spanning several granules. After the first
    // sweep installs ownership, every repeat copy is answered by a
    // single owned-run stamp compare — and the fast path is
    // verdict-transparent: status, output and reports match the
    // cache-off run exactly.
    let src = "struct big { int a; int b; int c; int d; int e; };\n\
               void worker(struct big * p) { struct big loc; int i; \
                 p->a = 1; \
                 for (i = 0; i < 50; i++) { loc = *p; *p = loc; } }\n\
               void main() { struct big * p = new(struct big); int t; \
                 t = spawn(worker, p); join(t); \
                 print(p->a); }";
    let on = compile_and_run("copy.c", src, cfg(7)).unwrap();
    let off = compile_and_run(
        "copy.c",
        src,
        VmConfig {
            seed: 7,
            owned_cache: false,
            ..VmConfig::default()
        },
    )
    .unwrap();
    assert_eq!(on.status, ExitStatus::Completed);
    assert_eq!(on.status, off.status);
    assert_eq!(on.output, off.output);
    assert_eq!(on.output, vec!["1"]);
    assert!(on.reports.is_empty() && off.reports.is_empty());
    // Both runs check the same cells; only the work per check differs.
    assert_eq!(on.stats.dynamic_accesses, off.stats.dynamic_accesses);
    assert_eq!(off.stats.range_hits, 0, "flag off means no run cache");
    assert!(
        on.stats.range_hits >= 90,
        "~2 run hits per iteration after warmup: {}",
        on.stats.range_hits
    );
}

#[test]
fn freeing_the_struct_flushes_its_owned_run() {
    // The run summary is guarded by the epoch-sum stamp: a free in
    // the covered range bumps a region epoch, so the recycled object
    // re-checks from scratch (no stale whole-run answers).
    let src = "struct big { int a; int b; int c; int d; int e; };\n\
               void touch(struct big * p) { struct big loc; int i; \
                 for (i = 0; i < 5; i++) { loc = *p; *p = loc; } }\n\
               void main() { struct big * p; int t; \
                 p = new(struct big); t = spawn(touch, p); join(t); free(p); \
                 p = new(struct big); t = spawn(touch, p); join(t); free(p); \
                 print(0); }";
    let out = compile_and_run("recycle.c", src, cfg(3)).unwrap();
    assert_eq!(out.status, ExitStatus::Completed);
    assert!(out.reports.is_empty(), "{:?}", out.reports);
    assert!(out.stats.range_hits > 0, "repeat sweeps hit the run cache");
}
