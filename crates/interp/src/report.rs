//! Runtime conflict reports, formatted the way the paper's tool
//! prints them:
//!
//! ```text
//! read conflict(0x75324464):
//!   who(2) S->sdata @ pipeline_test.c: 15
//!   last(1) nextS->sdata @ pipeline_test.c: 27
//! ```

use crate::bytecode::{Addr, CheckSite};
use minic::span::SourceMap;
use std::collections::HashSet;
use std::fmt;

/// The kind of sharing-strategy violation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConflictKind {
    /// A dynamic-mode read raced with another thread's write.
    Read,
    /// A dynamic-mode write raced with another thread's access.
    Write,
    /// A `locked(l)` access without holding `l`.
    Lock,
    /// A sharing cast on an object with other live references.
    OneRef,
}

impl fmt::Display for ConflictKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConflictKind::Read => write!(f, "read conflict"),
            ConflictKind::Write => write!(f, "write conflict"),
            ConflictKind::Lock => write!(f, "lock not held"),
            ConflictKind::OneRef => write!(f, "sharing cast failed"),
        }
    }
}

/// One access in a report: thread, l-value text, `file: line`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccessInfo {
    pub tid: u8,
    pub lvalue: String,
    pub location: String,
}

/// A rendered conflict report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConflictReport {
    pub kind: ConflictKind,
    pub addr: Addr,
    pub who: AccessInfo,
    /// The previous recorded access (dynamic-mode accesses only).
    pub last: Option<AccessInfo>,
    /// Extra detail for lock/oneref reports.
    pub detail: Option<String>,
}

impl fmt::Display for ConflictReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}({}):", self.kind, self.addr)?;
        write!(
            f,
            "  who({}) {} @ {}",
            self.who.tid, self.who.lvalue, self.who.location
        )?;
        if let Some(last) = &self.last {
            write!(
                f,
                "\n  last({}) {} @ {}",
                last.tid, last.lvalue, last.location
            )?;
        }
        if let Some(d) = &self.detail {
            write!(f, "\n  note: {d}")?;
        }
        Ok(())
    }
}

/// Collects deduplicated conflict reports during a run.
#[derive(Debug)]
pub struct Reporter<'m> {
    sm: &'m SourceMap,
    sites: &'m [CheckSite],
    reports: Vec<ConflictReport>,
    seen: HashSet<(ConflictKind, u32, Option<u32>)>,
    max: usize,
}

impl<'m> Reporter<'m> {
    /// Creates a reporter resolving site info against `sm`.
    pub fn new(sm: &'m SourceMap, sites: &'m [CheckSite], max: usize) -> Self {
        Reporter {
            sm,
            sites,
            reports: Vec::new(),
            seen: HashSet::new(),
            max,
        }
    }

    fn access(&self, tid: u8, site: u32) -> AccessInfo {
        let s = &self.sites[site as usize];
        AccessInfo {
            tid,
            lvalue: s.lvalue.clone(),
            location: self.sm.location(s.span),
        }
    }

    /// Records a read/write conflict (deduplicated per site pair).
    pub fn conflict(
        &mut self,
        kind: ConflictKind,
        addr: Addr,
        tid: u8,
        site: u32,
        last: Option<(u8, u32)>,
    ) {
        if self.reports.len() >= self.max {
            return;
        }
        let key = (kind, site, last.map(|(_, s)| s));
        if !self.seen.insert(key) {
            return;
        }
        self.reports.push(ConflictReport {
            kind,
            addr,
            who: self.access(tid, site),
            last: last.map(|(t, s)| self.access(t, s)),
            detail: None,
        });
    }

    /// Records a `locked(l)` access without the lock held.
    pub fn lock_violation(&mut self, addr: Addr, tid: u8, site: u32) {
        if self.reports.len() >= self.max {
            return;
        }
        let key = (ConflictKind::Lock, site, None);
        if !self.seen.insert(key) {
            return;
        }
        self.reports.push(ConflictReport {
            kind: ConflictKind::Lock,
            addr,
            who: self.access(tid, site),
            last: None,
            detail: Some("the required lock is not held at this access".into()),
        });
    }

    /// Records a failed `oneref` check at a sharing cast.
    pub fn oneref_violation(&mut self, addr: Addr, tid: u8, site: u32, count: i64) {
        if self.reports.len() >= self.max {
            return;
        }
        let key = (ConflictKind::OneRef, site, None);
        if !self.seen.insert(key) {
            return;
        }
        self.reports.push(ConflictReport {
            kind: ConflictKind::OneRef,
            addr,
            who: self.access(tid, site),
            last: None,
            detail: Some(format!(
                "object has {count} references; a sharing cast requires exactly one"
            )),
        });
    }

    /// Number of reports collected so far.
    pub fn len(&self) -> usize {
        self.reports.len()
    }

    /// True if no reports were collected.
    pub fn is_empty(&self) -> bool {
        self.reports.is_empty()
    }

    /// Consumes the reporter, yielding the reports.
    pub fn into_reports(self) -> Vec<ConflictReport> {
        self.reports
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minic::span::Span;

    fn setup() -> (SourceMap, Vec<CheckSite>) {
        let sm = SourceMap::new("pipeline_test.c", "line one\nS->sdata\nnextS->sdata\n");
        let sites = vec![
            CheckSite {
                lvalue: "S->sdata".into(),
                span: Span::new(9, 17),
            },
            CheckSite {
                lvalue: "nextS->sdata".into(),
                span: Span::new(18, 30),
            },
        ];
        (sm, sites)
    }

    #[test]
    fn report_format_matches_paper() {
        let (sm, sites) = setup();
        let mut r = Reporter::new(&sm, &sites, 10);
        r.conflict(ConflictKind::Read, Addr(100), 2, 0, Some((1, 1)));
        let reports = r.into_reports();
        assert_eq!(reports.len(), 1);
        let text = reports[0].to_string();
        assert!(text.starts_with("read conflict(0x"), "{text}");
        assert!(
            text.contains("who(2) S->sdata @ pipeline_test.c: 2"),
            "{text}"
        );
        assert!(
            text.contains("last(1) nextS->sdata @ pipeline_test.c: 3"),
            "{text}"
        );
    }

    #[test]
    fn deduplication() {
        let (sm, sites) = setup();
        let mut r = Reporter::new(&sm, &sites, 10);
        for _ in 0..5 {
            r.conflict(ConflictKind::Write, Addr(100), 2, 0, Some((1, 1)));
        }
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn max_reports_cap() {
        let (sm, sites) = setup();
        let mut r = Reporter::new(&sm, &sites, 1);
        r.conflict(ConflictKind::Read, Addr(100), 2, 0, None);
        r.conflict(ConflictKind::Write, Addr(101), 3, 1, None);
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn lock_and_oneref_reports() {
        let (sm, sites) = setup();
        let mut r = Reporter::new(&sm, &sites, 10);
        r.lock_violation(Addr(4), 1, 0);
        r.oneref_violation(Addr(5), 2, 1, 3);
        let reports = r.into_reports();
        assert!(reports[0].to_string().contains("lock not held"));
        assert!(reports[1].to_string().contains("3 references"));
    }
}
